#!/usr/bin/env bash
# Local CI: the gate every change must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --check

echo "== build (release) =="
cargo build --release --workspace

echo "== build bench binaries + micro-benchmarks =="
cargo build --release -p bench --bins --benches

echo "== tests =="
cargo test -q --workspace

echo "== cluster equivalence (explicit) =="
cargo test --release -q -p engine --test cluster_equivalence

echo "== postings equivalence (explicit) =="
cargo test --release -q -p searchidx --test postings_equivalence

echo "== I/O-path equivalence (explicit) =="
cargo test --release -q -p engine --test io_path_equivalence

echo "== admission equivalence (explicit) =="
cargo test --release -q -p engine --test admission_equivalence --test admission_audit

echo "== serving equivalence (explicit) =="
cargo test --release -q -p engine --test serving_equivalence

echo "== offload equivalence (explicit) =="
cargo test --release -q -p engine --test offload_equivalence --test offload_audit

echo "== mutation equivalence (explicit) =="
cargo test --release -q -p engine --test mutation_equivalence
cargo test --release -q -p searchidx --test live_index

echo "== postings_decode bench builds =="
cargo build --release -p bench --bench postings_decode

echo "== perf_regress binary builds (BENCH_6 serving + BENCH_7 offload + BENCH_8 mutation arms included) =="
cargo build --release -p bench --bin perf_regress --bin divergence_probe

echo "== xtask lint gate =="
cargo run -q -p xtask -- lint

echo "== xtask determinism analyzer (taint + oracle freeze) =="
cargo run -q -p xtask -- analyze

echo "== equivalence suites under INVARIANT_AUDIT (debug) =="
INVARIANT_AUDIT=1 cargo test -q -p hybridcache --test victim_equivalence
INVARIANT_AUDIT=1 cargo test -q -p engine --test cluster_equivalence --test io_path_equivalence
INVARIANT_AUDIT=1 cargo test -q -p engine --test admission_audit
INVARIANT_AUDIT=1 cargo test -q -p engine --test serving_equivalence --test serving_audit
INVARIANT_AUDIT=1 cargo test -q -p engine --test offload_equivalence --test offload_audit
INVARIANT_AUDIT=1 cargo test -q -p engine --test mutation_equivalence --test mutation_audit
INVARIANT_AUDIT=1 cargo test -q -p searchidx --test postings_equivalence

echo "== loom models (bounded schedule exploration) =="
RUSTFLAGS="--cfg loom" cargo test -q -p workload --lib loom_model
RUSTFLAGS="--cfg loom" cargo test -q -p engine --lib loom_pool_model

if cargo +nightly miri --version >/dev/null 2>&1; then
  echo "== miri (workload unsafe core) =="
  cargo +nightly miri test -p workload
else
  echo "== miri: nightly toolchain not available, skipping =="
fi

# ThreadSanitizer over the loom-covered concurrent code: loom explores
# bounded schedules of the *model*; TSan watches the real threaded
# runtime for data races. Needs nightly + the matching rust-src/target.
if cargo +nightly --version >/dev/null 2>&1 \
  && rustup component list --toolchain nightly 2>/dev/null | grep -q '^rust-src (installed)'; then
  echo "== thread sanitizer (loom-covered concurrent tests, nightly) =="
  TSAN_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
  RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q \
    -Zbuild-std -p workload --lib --target "$TSAN_TARGET" || {
      echo "thread sanitizer stage FAILED" >&2
      exit 1
    }
else
  echo "== thread sanitizer: nightly toolchain with rust-src not available, skipping =="
fi

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "CI OK"
