#!/usr/bin/env bash
# Local CI: the gate every change must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "CI OK"
