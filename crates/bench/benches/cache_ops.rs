//! Criterion micro-benchmarks of the cache building blocks: the hot-path
//! operations every simulated query exercises.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cachekit::{LruCache, LruList, SegmentedLru};
use simclock::Rng;

fn bench_lru_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_list");
    g.bench_function("touch_hot_1k", |b| {
        let mut l = LruList::new();
        for k in 0..1_000u32 {
            l.insert_mru(k);
        }
        let mut rng = Rng::new(1);
        b.iter(|| {
            let k = rng.next_below(1_000) as u32;
            black_box(l.touch(&k));
        });
    });
    g.bench_function("insert_pop_cycle", |b| {
        let mut l = LruList::new();
        let mut next = 0u32;
        b.iter(|| {
            l.insert_mru(next);
            next = next.wrapping_add(1);
            if l.len() > 1_000 {
                black_box(l.pop_lru());
            }
        });
    });
    g.finish();
}

fn bench_segmented(c: &mut Criterion) {
    let mut g = c.benchmark_group("segmented_lru");
    g.bench_function("best_in_window_w8", |b| {
        let mut s = SegmentedLru::new(8);
        for k in 0..1_000u32 {
            s.insert_mru(k);
        }
        b.iter(|| black_box(s.best_in_replace_first(|&k| k)));
    });
    g.finish();
}

fn bench_lru_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_cache");
    g.bench_function("mixed_get_insert", |b| {
        b.iter_batched(
            || (LruCache::<u32, u64>::new(64_000), Rng::new(7)),
            |(mut cache, mut rng)| {
                for _ in 0..1_000 {
                    let k = rng.next_below(200) as u32;
                    if cache.get(&k).is_none() {
                        let _ = cache.insert(k, k as u64, 1_000);
                    }
                }
                black_box(cache.len())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_lru_list, bench_segmented, bench_lru_cache);
criterion_main!(benches);
