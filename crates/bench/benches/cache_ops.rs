//! Criterion micro-benchmarks of the cache building blocks: the hot-path
//! operations every simulated query exercises.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cachekit::{LruCache, LruList, SegmentedLru};
use hybridcache::mem::{ListMeta, MemListCache};
use hybridcache::ssd::{ListStore, SlotRegion};
use hybridcache::{PolicyKind, VictimSelection};
use simclock::{Rng, SimDuration};
use storagecore::RamDisk;

fn bench_lru_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_list");
    g.bench_function("touch_hot_1k", |b| {
        let mut l = LruList::new();
        for k in 0..1_000u32 {
            l.insert_mru(k);
        }
        let mut rng = Rng::new(1);
        b.iter(|| {
            let k = rng.next_below(1_000) as u32;
            black_box(l.touch(&k));
        });
    });
    g.bench_function("insert_pop_cycle", |b| {
        let mut l = LruList::new();
        let mut next = 0u32;
        b.iter(|| {
            l.insert_mru(next);
            next = next.wrapping_add(1);
            if l.len() > 1_000 {
                black_box(l.pop_lru());
            }
        });
    });
    g.finish();
}

fn bench_segmented(c: &mut Criterion) {
    let mut g = c.benchmark_group("segmented_lru");
    g.bench_function("best_in_window_w8", |b| {
        let mut s = SegmentedLru::new(8);
        for k in 0..1_000u32 {
            s.insert_mru(k);
        }
        b.iter(|| black_box(s.best_in_replace_first(|&k| k)));
    });
    g.finish();
}

fn bench_lru_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_cache");
    g.bench_function("mixed_get_insert", |b| {
        b.iter_batched(
            || (LruCache::<u32, u64>::new(64_000), Rng::new(7)),
            |(mut cache, mut rng)| {
                for _ in 0..1_000 {
                    let k = rng.next_below(200) as u32;
                    if cache.get(&k).is_none() {
                        let _ = cache.insert(k, k as u64, 1_000);
                    }
                }
                black_box(cache.len())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// The old linear victim scans against the indexed cascade — same
/// victims by construction (see `hybridcache`'s victim-equivalence
/// property tests), so the delta is pure selection overhead.
fn bench_victim_selection(c: &mut Criterion) {
    const BLOCK: u64 = 128 * 1024;
    let mut g = c.benchmark_group("victim_selection");
    for (label, selection) in [
        ("scan", VictimSelection::Scan),
        ("indexed", VictimSelection::Indexed),
    ] {
        g.bench_function(format!("list_store_churn_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut s: ListStore<u32> =
                        ListStore::new(SlotRegion::new(0, BLOCK, 256), BLOCK, true, 16, 0.0);
                    s.set_victim_selection(selection);
                    let dev = RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10));
                    (s, dev, Rng::new(3))
                },
                |(mut s, mut dev, mut rng)| {
                    for i in 0..512u64 {
                        let term = rng.next_below(192) as u32;
                        let blocks = 1 + rng.next_below(4);
                        s.offer(term, blocks, blocks * BLOCK, 1 + i % 7, &mut dev);
                        if i % 3 == 0 {
                            black_box(s.lookup(term, BLOCK, &mut dev, true));
                        }
                    }
                    black_box(s.stats().evictions)
                },
                BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("mem_ev_churn_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut m: MemListCache<u32> =
                        MemListCache::new(64 * 1024, PolicyKind::Cblru, 16, 1024);
                    m.set_victim_selection(selection);
                    (m, Rng::new(5))
                },
                |(mut m, mut rng)| {
                    for _ in 0..512 {
                        let term = rng.next_below(256) as u32;
                        let si_bytes = 1024 * (1 + rng.next_below(4));
                        if m.touch(term, si_bytes, 0.5).is_none() {
                            let _ = m.insert(
                                term,
                                ListMeta {
                                    si_bytes,
                                    pu: 0.5,
                                    freq: 1,
                                    full_bytes: 8 * 1024,
                                },
                            );
                        }
                        m.drain_evicted();
                    }
                    black_box(m.len())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lru_list,
    bench_segmented,
    bench_lru_cache,
    bench_victim_selection
);
criterion_main!(benches);
