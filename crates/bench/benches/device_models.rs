//! Criterion micro-benchmarks of the device models: how fast the
//! simulators themselves run (requests per wall-second), which bounds
//! every figure sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hddsim::{HddDisk, HddParams};
use simclock::Rng;
use storagecore::{BlockDevice, Extent};
use tracetools::{umass_like, StackDistance, TraceProfile, UmassSpec};

fn bench_hdd(c: &mut Criterion) {
    let mut g = c.benchmark_group("hdd_model");
    g.bench_function("random_read", |b| {
        let mut d = HddDisk::new(HddParams::small_test_disk(1 << 30));
        let sectors = d.geometry().sectors;
        let mut rng = Rng::new(1);
        b.iter(|| {
            let lba = rng.next_below(sectors - 64);
            black_box(d.read(Extent::new(lba, 16)).expect("in range"))
        });
    });
    g.bench_function("sequential_read", |b| {
        let mut d = HddDisk::new(HddParams::small_test_disk(1 << 30));
        let sectors = d.geometry().sectors;
        let mut cursor = 0u64;
        b.iter(|| {
            cursor = (cursor + 16) % (sectors - 16);
            black_box(d.read(Extent::new(cursor, 16)).expect("in range"))
        });
    });
    g.finish();
}

fn bench_trace_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_tools");
    g.sample_size(20);
    let trace = umass_like(&UmassSpec {
        requests: 20_000,
        ..UmassSpec::default()
    });
    g.bench_function("profile_20k_events", |b| {
        b.iter(|| black_box(TraceProfile::from_events(&trace).read_fraction));
    });
    g.bench_function("stack_distance_20k", |b| {
        b.iter(|| {
            let mut sd = StackDistance::new();
            for e in &trace {
                sd.record(e.extent.lba / 256);
            }
            black_box(sd.hit_ratio_at(64))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_hdd, bench_trace_analysis);
criterion_main!(benches);
