//! Criterion end-to-end benchmark: simulated wall-cost of running query
//! batches through the full engine (index + cache + devices). This is the
//! simulator's own speed, not the simulated system's — useful to keep the
//! harness fast enough for the figure sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use engine::{EngineConfig, SearchEngine};
use hybridcache::{HybridConfig, PolicyKind};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_e2e");
    g.sample_size(10);

    g.bench_function("cached_100_queries", |b| {
        let cache = HybridConfig::paper(2 << 20, 16 << 20, PolicyKind::Cblru);
        let mut e = SearchEngine::new(EngineConfig::cached(100_000, cache, 1));
        e.run(500); // warm
        b.iter(|| black_box(e.run(100).postings_scanned));
    });

    g.bench_function("uncached_50_queries", |b| {
        let mut e = SearchEngine::new(EngineConfig::no_cache(
            100_000,
            engine::IndexPlacement::Hdd,
            1,
        ));
        b.iter(|| black_box(e.run(50).postings_scanned));
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
