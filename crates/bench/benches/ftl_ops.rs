//! Criterion micro-benchmarks of the flash simulator: page-mapped FTL
//! writes under sequential and random (GC-heavy) patterns.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use flashsim::{FlashParams, Ftl, PageMapFtl};
use simclock::Rng;

fn params() -> FlashParams {
    FlashParams::paper(8 << 20)
}

fn bench_ftl(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_map_ftl");
    g.bench_function("sequential_fill", |b| {
        b.iter_batched(
            || PageMapFtl::new(params()),
            |mut ftl| {
                let n = ftl.logical_pages();
                for lpn in 0..n {
                    black_box(ftl.write(lpn).expect("in range"));
                }
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("random_overwrite_steady_state", |b| {
        // Pre-filled device: every write is an overwrite, GC active.
        b.iter_batched(
            || {
                let mut ftl = PageMapFtl::new(params());
                let n = ftl.logical_pages();
                for lpn in 0..n {
                    ftl.write(lpn).expect("in range");
                }
                (ftl, Rng::new(3))
            },
            |(mut ftl, mut rng)| {
                let n = ftl.logical_pages();
                for _ in 0..1_000 {
                    black_box(ftl.write(rng.next_below(n)).expect("in range"));
                }
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("read_hot_page", |b| {
        let mut ftl = PageMapFtl::new(params());
        ftl.write(0).expect("in range");
        b.iter(|| black_box(ftl.read(0).expect("mapped")));
    });
    g.finish();
}

criterion_group!(benches, bench_ftl);
criterion_main!(benches);
