//! Regression bench for `parallel_map` dispatch overhead.
//!
//! On cheap items the per-item cost of the sweep is pure dispatch:
//! claiming the index, moving the input out, writing the result back.
//! PR 1 paid a `Mutex` lock/unlock pair per slot on both sides; the
//! lock-free once-write handoff removes it. The old scheme is kept here
//! (`mutex_reference`) so the drop stays measurable, the same way the
//! cache keeps its `Scan` victim arm.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use workload::parallel_map;

/// PR 1's handoff, verbatim: per-slot `Mutex<Option<T>>` on both the
/// input and the result side, same chunked cursor.
mod mutex_reference {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    pub fn parallel_map_mutex<T, U, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        }
        .min(n);
        if threads <= 1 {
            return inputs.into_iter().map(f).collect();
        }

        let items: Vec<Mutex<Option<T>>> =
            inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let f = &f;
        let items = &items;
        let results = &results;
        let cursor = &cursor;

        let panicked = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || loop {
                        let start = cursor.load(Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let want = ((n - start) / (2 * threads)).max(1);
                        let start = cursor.fetch_add(want, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + want).min(n);
                        for i in start..end {
                            let input = items[i]
                                .lock()
                                .expect("input mutex poisoned")
                                .take()
                                .expect("each index is claimed once");
                            let output = f(input);
                            *results[i].lock().expect("result mutex poisoned") = Some(output);
                        }
                    })
                })
                .collect();
            handles.into_iter().any(|h| h.join().is_err())
        });
        assert!(!panicked, "a sweep worker panicked");

        results
            .iter()
            .map(|m| {
                m.lock()
                    .expect("result mutex poisoned")
                    .take()
                    .expect("every index was processed")
            })
            .collect()
    }
}

/// An item cheap enough that dispatch dominates.
#[inline]
fn cheap(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_sweep");
    g.sample_size(10);
    for &threads in &[2usize, 4] {
        g.bench_function(format!("lockfree_cheap_10k_t{threads}"), |b| {
            b.iter(|| {
                black_box(parallel_map(
                    (0..10_000u64).collect::<Vec<_>>(),
                    threads,
                    cheap,
                ))
            });
        });
        g.bench_function(format!("mutex_cheap_10k_t{threads}"), |b| {
            b.iter(|| {
                black_box(mutex_reference::parallel_map_mutex(
                    (0..10_000u64).collect::<Vec<_>>(),
                    threads,
                    cheap,
                ))
            });
        });
    }
    // Expensive items for contrast: dispatch is noise here, so the two
    // schemes should tie — if they don't, the rewrite broke balancing.
    g.bench_function("lockfree_heavy_64", |b| {
        b.iter(|| {
            black_box(parallel_map((0..64u64).collect::<Vec<_>>(), 4, |seed| {
                let mut rng = simclock::Rng::new(seed);
                (0..2_000).map(|_| rng.next_below(1_000)).sum::<u64>()
            }))
        });
    });
    g.bench_function("mutex_heavy_64", |b| {
        b.iter(|| {
            black_box(mutex_reference::parallel_map_mutex(
                (0..64u64).collect::<Vec<_>>(),
                4,
                |seed| {
                    let mut rng = simclock::Rng::new(seed);
                    (0..2_000).map(|_| rng.next_below(1_000)).sum::<u64>()
                },
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
