//! Criterion micro-benchmarks of the block-compressed postings
//! representation: decode throughput against the lazily regenerated
//! reference lists, backend-vs-backend top-K over a query log, and
//! galloping vs skip-table intersection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use searchidx::{
    AndProcessor, BlockPostings, BlockSortedList, CorpusSpec, DecodeArena, DocSortedList,
    IndexReader, Posting, PostingsBackend, SyntheticIndex, TermId, TopKConfig, TopKProcessor,
};
use simclock::Rng;
use workload::{QueryLog, QueryLogSpec};

fn bench_postings_decode(c: &mut Criterion) {
    let index = SyntheticIndex::new(CorpusSpec::enwiki_like(100_000, 5));
    let log = QueryLog::new(QueryLogSpec::aol_like(IndexReader::num_terms(&index), 9));
    let mut g = c.benchmark_group("postings_decode");
    g.sample_size(30);

    // Steady-state serving cost of a head term's first 4k postings:
    // varint block decode from the warm store vs regeneration through
    // `postings_range` (transcendental math + a fresh Vec per call).
    let head: TermId = 0;
    let depth = 4_096u64;
    let mut warm = BlockPostings::new(index.doc_freq(head));
    warm.ensure(&index, head, depth);
    g.bench_function("block_decode_hot", |b| {
        let mut buf: Vec<Posting> = Vec::new();
        b.iter(|| {
            let mut total = 0u64;
            for blk in 0..warm.num_blocks() {
                total += warm.decode_block(blk, &mut buf) as u64;
            }
            black_box(total)
        });
    });
    g.bench_function("lazy_regen_reference", |b| {
        b.iter(|| black_box(index.postings_range(head, 0, depth).len() as u64));
    });

    // End-to-end disjunctive top-K over the same seeded query stream on
    // each backend — bit-identical outcomes, different traversal cost.
    g.bench_function("log_query_blocked", |b| {
        let mut proc = TopKProcessor::new(TopKConfig::default());
        proc.set_backend(PostingsBackend::Blocked);
        let mut rng = Rng::new(17);
        b.iter(|| {
            let q = log.sample(&mut rng);
            black_box(proc.process(&index, &q.terms).postings_scanned())
        });
    });
    g.bench_function("log_query_reference_backend", |b| {
        let mut proc = TopKProcessor::new(TopKConfig::default());
        proc.set_backend(PostingsBackend::Reference);
        let mut rng = Rng::new(17);
        b.iter(|| {
            let q = log.sample(&mut rng);
            black_box(proc.process(&index, &q.terms).postings_scanned())
        });
    });

    // Skewed intersection (head term ∩ rare term): galloping block-max
    // cursor vs the reference skip-table cursor over prebuilt lists.
    let pair: [TermId; 2] = [0, 1_500];
    let sorted: Vec<(TermId, DocSortedList)> = pair
        .iter()
        .map(|&t| (t, DocSortedList::from_postings(&index.postings(t))))
        .collect();
    let sorted_refs: Vec<(TermId, &DocSortedList)> = sorted.iter().map(|(t, l)| (*t, l)).collect();
    let blocked: Vec<(TermId, BlockSortedList)> = pair
        .iter()
        .map(|&t| (t, BlockSortedList::from_postings(&index.postings(t))))
        .collect();
    let blocked_refs: Vec<(TermId, &BlockSortedList)> =
        blocked.iter().map(|(t, l)| (*t, l)).collect();
    let proc = AndProcessor::default();
    g.bench_function("skip_intersect", |b| {
        b.iter(|| black_box(proc.intersect(&index, &sorted_refs).match_count()));
    });
    g.bench_function("galloping_intersect", |b| {
        let mut arena = DecodeArena::new();
        b.iter(|| {
            black_box(
                proc.intersect_blocked(&index, &blocked_refs, &mut arena)
                    .match_count(),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_postings_decode);
criterion_main!(benches);
