//! Criterion micro-benchmarks of top-K query processing over the
//! synthetic index, with and without early termination.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use searchidx::{CorpusSpec, SyntheticIndex, TopKConfig, TopKProcessor};
use simclock::Rng;
use workload::{QueryLog, QueryLogSpec};

fn bench_topk(c: &mut Criterion) {
    let index = SyntheticIndex::new(CorpusSpec::enwiki_like(100_000, 5));
    let log = QueryLog::new(QueryLogSpec::aol_like(
        searchidx::IndexReader::num_terms(&index),
        9,
    ));
    let mut g = c.benchmark_group("topk");
    g.sample_size(30);

    g.bench_function("log_query_early_term", |b| {
        let proc = TopKProcessor::new(TopKConfig::default());
        let mut rng = Rng::new(1);
        b.iter(|| {
            let q = log.sample(&mut rng);
            black_box(proc.process(&index, &q.terms).postings_scanned())
        });
    });

    g.bench_function("head_term_query", |b| {
        let proc = TopKProcessor::new(TopKConfig::default());
        b.iter(|| black_box(proc.process(&index, &[0, 1]).postings_scanned()));
    });

    g.bench_function("rare_terms_exact", |b| {
        let proc = TopKProcessor::new(TopKConfig {
            epsilon: 0.0,
            ..TopKConfig::default()
        });
        b.iter(|| black_box(proc.process(&index, &[5_000, 7_000]).postings_scanned()));
    });

    // The pooled open-addressed accumulator against the original
    // `HashMap` path — identical results (see
    // `scratch_accumulator_matches_hashmap_reference`), different
    // allocation behavior. Same RNG seed so both see the same stream.
    g.bench_function("log_query_pooled_scratch", |b| {
        let proc = TopKProcessor::new(TopKConfig::default());
        let mut rng = Rng::new(11);
        b.iter(|| {
            let q = log.sample(&mut rng);
            black_box(proc.process(&index, &q.terms).postings_scanned())
        });
    });
    g.bench_function("log_query_hashmap_reference", |b| {
        let proc = TopKProcessor::new(TopKConfig::default());
        let mut rng = Rng::new(11);
        b.iter(|| {
            let q = log.sample(&mut rng);
            black_box(proc.process_reference(&index, &q.terms).postings_scanned())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
