//! Criterion micro-benchmarks of the statistical samplers driving every
//! workload generator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use simclock::{dist::Discrete, Rng, Zipf};

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("samplers");
    g.bench_function("zipf_1e6", |b| {
        let z = Zipf::new(1_000_000, 1.0);
        let mut rng = Rng::new(1);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
    g.bench_function("xoshiro_u64", |b| {
        let mut rng = Rng::new(2);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("alias_table_1k", |b| {
        let weights: Vec<f64> = (1..=1000).map(|i| 1.0 / i as f64).collect();
        let d = Discrete::new(&weights);
        let mut rng = Rng::new(3);
        b.iter(|| black_box(d.sample(&mut rng)));
    });
    g.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
