//! Ablation — FTL scheme under the cache workload.
//!
//! The paper fixes the ideal page-mapped FTL; here an equivalent CBLRU
//! cache op mix (measured from a real engine run) is replayed against all
//! four implemented schemes to show how much the FTL choice moves the
//! flash-internal numbers.

use bench::{cache_config, print_table, Scale};
use engine::{EngineConfig, SearchEngine};
use flashsim::{BlockMapFtl, Dftl, FastFtl, FlashParams, Ftl, PageMapFtl, SsdDisk};
use hybridcache::PolicyKind;
use simclock::SimDuration;
use storagecore::{BlockDevice, Extent, IoKind, IoStats};
use workload::parallel_map;

/// Re-issue the measured op mix (kind, count, mean size) as block-aligned
/// requests over the region, in a deterministic shuffled order.
fn replay<F: Ftl>(
    mut disk: SsdDisk<F>,
    stats: &IoStats,
    region_sectors: u64,
) -> (u64, SimDuration) {
    let mut rng = simclock::Rng::new(61);
    let spb = 256u64; // sectors per 128 KB block
    let mut plan: Vec<(IoKind, u64)> = Vec::new();
    for kind in [IoKind::Write, IoKind::Read, IoKind::Trim] {
        let k = stats.kind(kind);
        if k.ops() > 0 {
            plan.extend(std::iter::repeat_n(
                (kind, (k.sectors() / k.ops()).max(1)),
                k.ops() as usize,
            ));
        }
    }
    rng.shuffle(&mut plan);
    let mut total = SimDuration::ZERO;
    let blocks = (region_sectors / spb).max(1);
    for (kind, sectors) in plan {
        let lba = rng.next_below(blocks) * spb;
        let sectors = sectors.min(region_sectors - lba);
        if let Ok(t) = disk.submit(kind, Extent::new(lba, sectors)) {
            total += t;
        }
    }
    (disk.ftl().nand().stats().block_erases, total)
}

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();
    let cfg = cache_config(
        scale.bytes(20 << 20),
        scale.bytes(200 << 20),
        PolicyKind::Cblru,
    );
    let footprint = (cfg.ssd_sectors() * 512).max(4 << 20);

    // Run the real experiment once; its cache-device stats define the mix.
    let mut e = SearchEngine::new(EngineConfig::cached(docs, cfg, 53));
    e.run(queries);
    let stats = e.cache().expect("cached config").device().stats().clone();
    let region_sectors = footprint / 512;
    let params = || FlashParams::paper(footprint);

    // The four replays are independent simulations over the same op mix —
    // fan them out like every other sweep.
    let rows = parallel_map(vec!["page-map", "block-map", "FAST", "DFTL"], 0, |name| {
        let (erases, total) = match name {
            "page-map" => replay(
                SsdDisk::with_ftl(PageMapFtl::new(params())),
                &stats,
                region_sectors,
            ),
            "block-map" => replay(
                SsdDisk::with_ftl(BlockMapFtl::new(params())),
                &stats,
                region_sectors,
            ),
            "FAST" => replay(
                SsdDisk::with_ftl(FastFtl::new(params())),
                &stats,
                region_sectors,
            ),
            _ => replay(
                SsdDisk::with_ftl(Dftl::new(params(), 8192)),
                &stats,
                region_sectors,
            ),
        };
        vec![
            name.to_string(),
            erases.to_string(),
            format!("{:.1}", total.as_millis_f64()),
        ]
    });

    print_table(
        "Ablation: FTL scheme under the CBLRU cache op mix",
        &["ftl", "erases", "total_io_ms"],
        &rows,
    );
    println!(
        "reading: the cache's block-aligned writes are kind to every FTL —\n\
         even block-map survives — but the page-mapped family stays\n\
         cheapest, which is why the paper baselines on the ideal\n\
         page-mapped scheme."
    );
}
