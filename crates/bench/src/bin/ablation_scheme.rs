//! Ablation — inclusive vs exclusive vs hybrid caching schemes
//! (Sec. IV-A). The paper argues for hybrid; this measures why.

use bench::{cache_config, pct, print_table, run_cached, Scale};
use hybridcache::{CachingScheme, PolicyKind};
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    let schemes = vec![
        CachingScheme::Inclusive,
        CachingScheme::Exclusive,
        CachingScheme::Hybrid,
    ];
    let results = parallel_map(schemes, 0, |scheme| {
        let mut cfg = cache_config(mem, ssd, PolicyKind::Cblru);
        cfg.scheme = scheme;
        let r = run_cached(docs, cfg, queries, 47);
        let flash = r.flash.expect("cache SSD present");
        vec![
            format!("{scheme:?}"),
            pct(r.hit_ratio()),
            format!("{:.2}", r.mean_response.as_millis_f64()),
            flash.host_writes.to_string(),
            flash.block_erases.to_string(),
        ]
    });
    print_table(
        "Ablation: caching scheme (CBLRU)",
        &["scheme", "hit_%", "resp_ms", "ssd_writes", "erases"],
        &results,
    );
    println!(
        "reading: inclusive duplicates every admit onto flash (write storm);\n\
         exclusive burns erases deleting on every promotion; hybrid keeps\n\
         the copy read-only and replaceable — the paper's choice."
    );
}
