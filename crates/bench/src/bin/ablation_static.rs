//! Ablation — CBSLRU's static-partition fraction.
//!
//! 0 % degenerates to CBLRU; 100 % would freeze the whole cache. The
//! sweet spot pins the provably-hot head while leaving room for the
//! dynamic tail.

use bench::{cache_config, pct, print_table, run_cached, Scale};
use hybridcache::PolicyKind;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    let fractions = vec![0.0f64, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let results = parallel_map(fractions, 0, |f| {
        let policy = if f == 0.0 {
            PolicyKind::Cblru
        } else {
            PolicyKind::Cbslru { static_fraction: f }
        };
        let r = run_cached(docs, cache_config(mem, ssd, policy), queries, 43);
        let flash = r.flash.expect("cache SSD present");
        vec![
            format!("{:.0}%", f * 100.0),
            pct(r.hit_ratio()),
            format!("{:.2}", r.mean_response.as_millis_f64()),
            flash.host_writes.to_string(),
            flash.block_erases.to_string(),
        ]
    });
    print_table(
        "Ablation: CBSLRU static fraction",
        &["static", "hit_%", "resp_ms", "ssd_writes", "erases"],
        &results,
    );
    println!(
        "reading: pinning the log-analysis head cuts write traffic (the\n\
         static set never churns) and erases fall with it; overshooting\n\
         the fraction leaves too little dynamic room and hit ratio sags."
    );
}
