//! Ablation — the TEV admission threshold.
//!
//! TEV = 0 admits every evicted list to the SSD; raising it trades SSD
//! write traffic (and erases) against L2 hit ratio.

use bench::{cache_config, pct, print_table, run_cached, Scale};
use hybridcache::PolicyKind;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    let tevs = vec![0.0f64, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let results = parallel_map(tevs, 0, |tev| {
        let mut cfg = cache_config(mem, ssd, PolicyKind::Cblru);
        cfg.tev = tev;
        let r = run_cached(docs, cfg, queries, 41);
        let flash = r.flash.expect("cache SSD present");
        let cache = r.cache.as_ref().expect("cached run");
        vec![
            format!("{tev:.2}"),
            pct(r.hit_ratio()),
            cache.lists.ssd_admissions.to_string(),
            cache.lists.ssd_rejections.to_string(),
            flash.host_writes.to_string(),
            flash.block_erases.to_string(),
        ]
    });
    print_table(
        "Ablation: TEV admission threshold (CBLRU)",
        &[
            "TEV",
            "hit_%",
            "admitted",
            "rejected",
            "ssd_writes",
            "erases",
        ],
        &results,
    );
    println!(
        "reading: a moderate TEV sheds the low-value tail (most rejected\n\
         lists would never be re-hit) and cuts erases with little hit-ratio\n\
         cost; an aggressive TEV starts starving the L2."
    );
}
