//! Ablation — the replace-first window `W`.
//!
//! W = 0 degenerates CBLRU's victim search to strict LRU order; large W
//! approaches global cost-based search (more policy freedom, more scan
//! work and less recency protection).

use bench::{cache_config, pct, print_table, run_cached, Scale};
use hybridcache::PolicyKind;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    let windows = vec![0usize, 2, 4, 8, 16, 32, 64];
    let results = parallel_map(windows, 0, |w| {
        let mut cfg = cache_config(mem, ssd, PolicyKind::Cblru);
        cfg.window = w;
        let r = run_cached(docs, cfg, queries, 37);
        let flash = r.flash.expect("cache SSD present");
        vec![
            w.to_string(),
            pct(r.hit_ratio()),
            format!("{:.2}", r.mean_response.as_millis_f64()),
            flash.block_erases.to_string(),
        ]
    });
    print_table(
        "Ablation: replace-first window W (CBLRU)",
        &["W", "hit_%", "resp_ms", "erases"],
        &results,
    );
    println!(
        "reading: a modest window already captures most of the benefit —\n\
         the victim search needs only a small recency-bounded candidate set."
    );
}
