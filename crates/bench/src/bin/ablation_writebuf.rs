//! Ablation — write-buffer RB assembly vs. per-entry small writes.
//!
//! The paper's Sec. VI-C1 claims converting small random writes into
//! large sequential (block-assembled) writes is what protects the SSD.
//! This ablation isolates that choice: CBLRU (assembled) vs LRU
//! (per-entry), with everything else — admission thresholds off, full
//! lists — held as close as the policies allow.

use bench::{cache_config, print_table, run_cached, Scale};
use hybridcache::PolicyKind;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    let rows = parallel_map(vec![PolicyKind::Lru, PolicyKind::Cblru], 0, |policy| {
        let mut cfg = cache_config(mem, ssd, policy);
        // Neutralize admission so the only differences left are
        // placement granularity and victim selection.
        cfg.tev = 0.0;
        cfg.result_freq_threshold = 0;
        let r = run_cached(docs, cfg, queries, 31);
        let flash = r.flash.expect("cache SSD present");
        vec![
            match policy {
                PolicyKind::Lru => "per-entry (LRU)".to_string(),
                _ => "RB-assembled (CBLRU)".to_string(),
            },
            flash.host_writes.to_string(),
            flash.block_erases.to_string(),
            format!("{:.2}", flash.write_amplification),
            format!("{:.3}", flash.mean_access.as_millis_f64()),
        ]
    });
    print_table(
        "Ablation: write granularity (admission thresholds neutralized)",
        &["placement", "host_page_writes", "erases", "WA", "access_ms"],
        &rows,
    );
    println!(
        "reading: assembling 20 KB evictions into 128 KB result blocks cuts\n\
         erases and flash access time even with identical admission."
    );
}
