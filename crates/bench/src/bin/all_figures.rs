//! Regenerate the entire evaluation: every table and figure, in order.
//! Each section is also available as its own binary (`--bin fig14` etc.).

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets = [
        "table1", "table2", "table3", "fig01", "fig03", "fig04", "fig14", "fig15", "fig16",
        "fig17", "fig18", "fig19",
    ];
    for t in targets {
        println!("\n################ {t} ################\n");
        let path = dir.join(t);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{t} exited with {status}");
    }
    println!("\nall tables and figures regenerated.");
}
