//! Diagnosis companion to `perf_regress`: when the reference and
//! optimized arms stop being bit-identical, this finds the first query
//! where they diverge by running both engines in lockstep and comparing
//! cache counters after every query.
//!
//! With `--cluster` it bisects the *cluster* arms instead: a sequential
//! and a pool-backed `SearchCluster` march through one shared query
//! stream, comparing every scatter-gather response, and the full
//! `ClusterReport`s at the end.
//!
//! With `--postings` it bisects the *postings backends*: two engines
//! differing only in `PostingsBackend` (uncompressed reference vs
//! block-compressed) run in lockstep until the first query whose
//! response or cache counters diverge.
//!
//! With `--iopath` it bisects the *I/O-path arms*: a `Direct` engine and
//! a `Queued { depth: 1 }` + FIFO engine (which must be its bit-identical
//! event-driven restatement) run in lockstep, comparing every response,
//! the cache counters, and both devices' submission-queue accounting.
//!
//! With `--admission` it bisects the *admission-tier arms*: a plain
//! engine and one carrying a fully-populated sketch-admission config
//! pinned to `AdmissionPolicy::Static` (which must leave the tier
//! completely inert) run in lockstep, comparing every response, the
//! cache counters, and the store counters.
//!
//! With `--serving` it bisects the *serving arms*: an open-loop
//! `ServingSim` at the reference configuration (infinite deadline,
//! batch 1, no shed/hedge, zero overhead) and a bare closed-loop
//! `SearchCluster` march through one arrival stream, comparing every
//! per-query service time, then the cumulative cluster reports.
//!
//! With `--offload` it bisects the *offload arms*: a `Host` engine and
//! an `InFlash` engine under the reference compute model (which must be
//! bit-identical on every simulated figure — only the bus-byte ledger
//! may move) run in lockstep, comparing every response, the cache
//! counters, both submission-queue sections, and the cache pipeline's
//! stats mirror. `--depth N` and `--channels N` pick the queued
//! configuration to bisect under.
//!
//! With `--mutation` it bisects the *mutability arms*: a `Frozen` engine
//! and a zero-ingest `Live` one (whose pristine segmented index must
//! delegate every read to the frozen base) run in lockstep, comparing
//! every response, the cache counters, the index device's I/O ledger,
//! and the running result digest.
//!
//!     cargo run --release -p bench --bin divergence_probe \
//!         [-- --policy lru|cblru|cbslru] [--no-seed] \
//!         [--cluster] [--workers N] [--postings] [--iopath] [--admission] \
//!         [--serving] [--offload] [--depth N] [--channels N] [--mutation]

use engine::{
    ClusterExecution, EngineConfig, IndexMutability, LiveConfig, OffloadMode, OpenLoopConfig,
    Outcome, PostingsBackend, SearchCluster, SearchEngine, ServingMode, ServingOutcome, ServingSim,
};
use hybridcache::{AdmissionConfig, AdmissionPolicy, PolicyKind};
use storagecore::{BlockDevice, IoPath, SchedulerPolicy};
use workload::{Arrival, ArrivalKind, ArrivalProcess, Query};

/// One engine-pair lockstep bisection — the loop every per-arm probe
/// shares. Optionally seeds both arms' static partitions first (CBSLRU),
/// then marches the shared query stream, comparing each response, the
/// cache counters, and whatever per-arm figures `snapshot` captures.
/// Prints the first divergence and returns `false`; `true` means the
/// arms stayed bit-identical for all `queries`.
fn lockstep_engines<S: PartialEq + std::fmt::Debug>(
    label_a: &str,
    label_b: &str,
    a: &mut SearchEngine,
    b: &mut SearchEngine,
    queries: usize,
    seed_static: bool,
    snapshot: impl Fn(&SearchEngine) -> S,
) -> bool {
    if seed_static {
        a.seed_static_from_log(queries);
        b.seed_static_from_log(queries);
        let (ra, rb) = (a.cache().unwrap().stats(), b.cache().unwrap().stats());
        if ra != rb {
            println!("diverged during seeding: {ra:?} vs {rb:?}");
            return false;
        }
        let (sa, sb) = (snapshot(a), snapshot(b));
        if sa != sb {
            println!(
                "snapshots diverged during seeding:\n  {label_a}: {sa:?}\n  {label_b}: {sb:?}"
            );
            return false;
        }
        println!("seeding identical");
    }
    let stream: Vec<Query> = a.log().stream(queries);
    for (i, q) in stream.iter().enumerate() {
        let ta = a.execute(q);
        let tb = b.execute(q);
        let ca = a.cache().map(|c| *c.stats());
        let cb = b.cache().map(|c| *c.stats());
        let (sa, sb) = (snapshot(a), snapshot(b));
        if ta != tb || ca != cb || sa != sb {
            println!(
                "first divergence at query {i} (id {}, {} terms)",
                q.id,
                q.terms.len()
            );
            println!("  response: {ta} vs {tb}");
            println!("  cache stats {label_a}: {ca:?}");
            println!("  cache stats {label_b}: {cb:?}");
            println!("  snapshot {label_a}: {sa:?}");
            println!("  snapshot {label_b}: {sb:?}");
            return false;
        }
    }
    true
}

/// Lockstep bisection of the cluster execution arms.
fn probe_cluster(policy: PolicyKind, workers: usize) {
    let shards = 4;
    let docs = 200_000;
    let queries = 4_000usize;
    let seed = 42;
    let cfg = || {
        EngineConfig::cached(
            docs,
            hybridcache::HybridConfig::paper(4 << 20, 40 << 20, policy),
            seed,
        )
    };

    let mut seq = SearchCluster::new(cfg(), shards);
    let mut par = SearchCluster::new(cfg(), shards);
    par.set_execution(ClusterExecution::Parallel { workers });
    println!(
        "cluster probe: {shards} shards, {docs} docs, arm B = {:?}",
        par.execution()
    );

    let stream: Vec<Query> = seq.stream(queries);
    for (i, q) in stream.iter().enumerate() {
        let ts = seq.execute(q);
        let tp = par.execute(q);
        if ts != tp {
            println!(
                "first divergence at query {i} (id {}, {} terms)",
                q.id,
                q.terms.len()
            );
            println!("  sequential response: {ts}");
            println!("  parallel   response: {tp}");
            return;
        }
    }
    // Responses agreed; the shard-level counters still might not.
    let (rs, rp) = (seq.run_queries(&[]), par.run_queries(&[]));
    if rs != rp {
        println!("responses identical but reports diverged:");
        for (i, (a, b)) in rs.shards.iter().zip(&rp.shards).enumerate() {
            if a != b {
                println!("  shard {i}:\n    seq {a:?}\n    par {b:?}");
            }
        }
        return;
    }
    println!("no divergence over {queries} cluster queries ({workers} workers)");
}

/// Lockstep bisection of the serving arms: open-loop at the reference
/// configuration vs the closed loop. The service time the front-end
/// records for arrival `i` must be the closed loop's response for query
/// `i`, bit for bit, and the cumulative shard reports must agree at the
/// end.
fn probe_serving(policy: PolicyKind, workers: usize) {
    let shards = 4;
    let docs = 200_000;
    let queries = 4_000usize;
    let seed = 42;
    let cfg = || {
        EngineConfig::cached(
            docs,
            hybridcache::HybridConfig::paper(4 << 20, 40 << 20, policy),
            seed,
        )
    };

    let mut closed = SearchCluster::new(cfg(), shards);
    let mut open = ServingSim::new(
        cfg(),
        shards,
        1,
        ServingMode::OpenLoop(OpenLoopConfig::reference()),
    );
    if workers > 0 {
        open.set_execution(ClusterExecution::Parallel { workers });
    }
    println!("serving probe: {shards} shards, {docs} docs, open-loop reference vs closed loop");

    let arrivals: Vec<Arrival> = ArrivalProcess::new(
        closed.log().clone(),
        ArrivalKind::Poisson { rate_qps: 100.0 },
    )
    .generate(queries);
    match open.run(&arrivals) {
        ServingOutcome::Open(_) => {}
        ServingOutcome::Closed(_) => unreachable!("mode is OpenLoop"),
    }
    for (i, (rec, a)) in open.records().iter().zip(&arrivals).enumerate() {
        let closed_response = closed.execute(&a.query);
        let open_service = match rec.outcome {
            Outcome::Answered { service, .. } => service,
            Outcome::Shed => {
                println!("first divergence at arrival {i}: reference config shed a query");
                return;
            }
        };
        if open_service != closed_response {
            println!(
                "first divergence at arrival {i} (id {}, {} terms)",
                a.query.id,
                a.query.terms.len()
            );
            println!("  closed-loop response:  {closed_response}");
            println!("  open-loop   service:   {open_service}");
            return;
        }
    }
    // Services agreed; the shard-level counters still might not.
    let (ro, rc) = (
        open.replica_mut(0).run_queries(&[]),
        closed.run_queries(&[]),
    );
    if ro != rc {
        println!("services identical but reports diverged:");
        for (i, (a, b)) in ro.shards.iter().zip(&rc.shards).enumerate() {
            if a != b {
                println!("  shard {i}:\n    open   {a:?}\n    closed {b:?}");
            }
        }
        return;
    }
    println!("no divergence over {queries} served arrivals");
}

/// Lockstep bisection of the postings backends. Reference mode stays off
/// on both engines, so the backend is the only thing that differs.
fn probe_postings(policy: PolicyKind, seed_flag: bool) {
    let docs = 400_000;
    let queries = 30_000usize;
    let seed = 42;
    let cfg = |backend| EngineConfig {
        postings: backend,
        ..EngineConfig::cached(
            docs,
            hybridcache::HybridConfig::paper(16 << 20, 160 << 20, policy),
            seed,
        )
    };
    let mut a = SearchEngine::new(cfg(PostingsBackend::Reference));
    let mut b = SearchEngine::new(cfg(PostingsBackend::Blocked));
    println!(
        "postings probe: {docs} docs, arm A = {:?}, arm B = {:?}",
        a.postings_backend(),
        b.postings_backend()
    );
    let seed_static = seed_flag && matches!(policy, PolicyKind::Cbslru { .. });
    if lockstep_engines(
        "reference",
        "blocked",
        &mut a,
        &mut b,
        queries,
        seed_static,
        |e| e.cache().map(|c| c.store_stats()),
    ) {
        let skips = b.postings_skip_stats();
        let store = b.postings_store_stats();
        println!("no divergence over {queries} queries between postings backends");
        println!(
            "  blocked arm: {} block-max probes, {} postings pruned undecoded, \
             {} terms encoded ({} B)",
            skips.skip_probes, skips.skipped, store.terms, store.encoded_bytes
        );
    }
}

/// Lockstep bisection of the I/O-path arms: `Direct` vs its event-driven
/// restatement at queue depth 1 with FIFO scheduling.
fn probe_iopath(policy: PolicyKind, seed_flag: bool) {
    let docs = 400_000;
    let queries = 30_000usize;
    let seed = 42;
    let cfg = || {
        EngineConfig::cached(
            docs,
            hybridcache::HybridConfig::paper(16 << 20, 160 << 20, policy),
            seed,
        )
    };
    let mut a = SearchEngine::new(cfg());
    let mut b = SearchEngine::new(cfg());
    b.set_io_path(IoPath::Queued { depth: 1 });
    b.set_io_scheduler(SchedulerPolicy::Fifo);
    println!(
        "iopath probe: {docs} docs, arm A = {:?}, arm B = {:?} + {:?}",
        a.io_path(),
        b.io_path(),
        b.io_scheduler()
    );
    let seed_static = seed_flag && matches!(policy, PolicyKind::Cbslru { .. });
    if lockstep_engines(
        "direct",
        "queued",
        &mut a,
        &mut b,
        queries,
        seed_static,
        |e| (e.index_queue_stats(), e.cache_queue_stats()),
    ) {
        println!(
            "no divergence over {queries} queries between I/O-path arms \
             ({} index dispatches, {} cache dispatches)",
            b.index_queue_stats().dispatches(),
            b.cache_queue_stats().dispatches()
        );
    }
}

/// Lockstep bisection of the admission-tier arms: arm A carries the
/// default (empty) static admission config, arm B a fully-populated
/// sketch config forced back to `Static` policy. The sketch machinery
/// being present but disabled must change nothing.
fn probe_admission(policy: PolicyKind, seed_flag: bool) {
    let docs = 400_000;
    let queries = 30_000usize;
    let seed = 42;
    let cfg = |admission: AdmissionConfig| {
        let mut cache = hybridcache::HybridConfig::paper(16 << 20, 160 << 20, policy);
        cache.admission = admission;
        EngineConfig::cached(docs, cache, seed)
    };
    let mut a = SearchEngine::new(cfg(AdmissionConfig::static_default()));
    let mut inert = AdmissionConfig::sketch_default();
    inert.policy = AdmissionPolicy::Static;
    let mut b = SearchEngine::new(cfg(inert));
    println!(
        "admission probe: {docs} docs, arm A = bare static, \
         arm B = sketch params pinned to {:?}",
        b.admission_policy()
    );
    let seed_static = seed_flag && matches!(policy, PolicyKind::Cbslru { .. });
    if lockstep_engines("bare", "inert", &mut a, &mut b, queries, seed_static, |e| {
        e.cache().map(|c| c.store_stats())
    }) {
        println!(
            "no divergence over {queries} queries between admission arms \
             (policy {policy:?}, seeded {seed_flag})"
        );
    }
}

/// Lockstep bisection of the offload arms: `Host` galloping vs the
/// in-flash predicate push-down under the reference compute model. The
/// two arms must agree on every response, cache counter, both
/// submission-queue sections, and the cache pipeline's whole stats
/// mirror; the inner SSD's bus ledger is the one figure the offload is
/// allowed to move, so it stays out of the comparison and is reported
/// at the end instead.
fn probe_offload(policy: PolicyKind, seed_flag: bool, depth: usize, channels: u32) {
    let docs = 400_000;
    let queries = 30_000usize;
    let seed = 42;
    let cfg = || {
        let mut c = EngineConfig::cached(
            docs,
            hybridcache::HybridConfig::paper(16 << 20, 160 << 20, policy),
            seed,
        );
        c.ssd_channels = channels;
        if depth > 0 {
            c.io_path = IoPath::Queued { depth };
        }
        c
    };
    let mut a = SearchEngine::new(cfg());
    let mut b = SearchEngine::new(cfg());
    b.set_offload_mode(OffloadMode::InFlash);
    println!(
        "offload probe: {docs} docs, {channels} channels, {:?}, arm A = {:?}, arm B = {:?}",
        a.io_path(),
        a.offload_mode(),
        b.offload_mode()
    );
    let seed_static = seed_flag && matches!(policy, PolicyKind::Cbslru { .. });
    if lockstep_engines(
        "host",
        "in-flash",
        &mut a,
        &mut b,
        queries,
        seed_static,
        |e| {
            (
                e.index_queue_stats(),
                e.cache_queue_stats(),
                e.cache().map(|c| c.device().stats().clone()),
            )
        },
    ) {
        let bus = b.cache_bus_stats();
        println!(
            "no divergence over {queries} queries between offload arms \
             ({} predicates pushed down, {} bus bytes saved)",
            bus.offload_ops(),
            bus.saved_bytes()
        );
    }
}

/// Lockstep bisection of the mutability toggle: a `Frozen` engine and a
/// zero-ingest `Live` one (pristine — every read delegates to the same
/// frozen base) must stay bit-identical on every response, every cache
/// counter, the index device's whole I/O ledger, and the running result
/// digest. The first query where they differ is where the live read
/// path stopped being the seed path.
fn probe_mutation(policy: PolicyKind, seed_flag: bool) {
    let docs = 400_000;
    let queries = 30_000usize;
    let seed = 42;
    let cfg = || {
        EngineConfig::cached(
            docs,
            hybridcache::HybridConfig::paper(16 << 20, 160 << 20, policy),
            seed,
        )
    };
    let mut a = SearchEngine::new(cfg());
    let mut live_cfg = cfg();
    live_cfg.mutability = IndexMutability::Live(LiveConfig::default());
    let mut b = SearchEngine::new(live_cfg);
    println!("mutation probe: {docs} docs, arm A = frozen, arm B = live (zero ingest)");
    let seed_static = seed_flag && matches!(policy, PolicyKind::Cbslru { .. });
    if lockstep_engines(
        "frozen",
        "live",
        &mut a,
        &mut b,
        queries,
        seed_static,
        |e| (e.index_io_stats().clone(), e.result_digest()),
    ) {
        assert!(
            b.live_index().is_some_and(|l| l.is_pristine()),
            "zero-ingest arm stopped being pristine"
        );
        println!(
            "no divergence over {queries} queries between mutability arms \
             (live arm still pristine)"
        );
    }
}

fn main() {
    let mut policy_arg = String::from("cbslru");
    let mut seed_flag = true;
    let mut cluster = false;
    let mut postings = false;
    let mut iopath = false;
    let mut admission = false;
    let mut serving = false;
    let mut offload = false;
    let mut mutation = false;
    let mut workers = 0usize;
    let mut depth = 0usize;
    let mut channels = 4u32;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--policy" => policy_arg = args.next().unwrap_or_default(),
            "--no-seed" => seed_flag = false,
            "--cluster" => cluster = true,
            "--postings" => postings = true,
            "--iopath" => iopath = true,
            "--admission" => admission = true,
            "--serving" => serving = true,
            "--offload" => offload = true,
            "--mutation" => mutation = true,
            "--workers" => workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            "--depth" => depth = args.next().and_then(|v| v.parse().ok()).unwrap_or(depth),
            "--channels" => channels = args.next().and_then(|v| v.parse().ok()).unwrap_or(channels),
            _ => {}
        }
    }
    let policy = match policy_arg.as_str() {
        "lru" => PolicyKind::Lru,
        "cblru" => PolicyKind::Cblru,
        _ => PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    };
    if cluster {
        probe_cluster(policy, workers);
        return;
    }
    if serving {
        probe_serving(policy, workers);
        return;
    }
    if postings {
        probe_postings(policy, seed_flag);
        return;
    }
    if iopath {
        probe_iopath(policy, seed_flag);
        return;
    }
    if admission {
        probe_admission(policy, seed_flag);
        return;
    }
    if offload {
        probe_offload(policy, seed_flag, depth, channels);
        return;
    }
    if mutation {
        probe_mutation(policy, seed_flag);
        return;
    }
    let cfg = || hybridcache::HybridConfig::paper(16 << 20, 160 << 20, policy);
    let docs = 400_000;
    let queries = 30_000usize;
    let seed = 42;

    let mut a = SearchEngine::new(EngineConfig::cached(docs, cfg(), seed));
    a.set_reference_mode(true);
    let mut b = SearchEngine::new(EngineConfig::cached(docs, cfg(), seed));
    b.set_reference_mode(false);
    let seed_static = seed_flag && matches!(policy, PolicyKind::Cbslru { .. });
    if lockstep_engines(
        "reference",
        "optimized",
        &mut a,
        &mut b,
        queries,
        seed_static,
        |e| e.cache().map(|c| c.store_stats()),
    ) {
        println!("no divergence over {queries} queries (policy {policy_arg}, seeded {seed_flag})");
    }
}
