//! Diagnosis companion to `perf_regress`: when the reference and
//! optimized arms stop being bit-identical, this finds the first query
//! where they diverge by running both engines in lockstep and comparing
//! cache counters after every query.
//!
//!     cargo run --release -p bench --bin divergence_probe \
//!         [-- --policy lru|cblru|cbslru] [--no-seed]

use engine::{EngineConfig, SearchEngine};
use hybridcache::PolicyKind;
use workload::Query;

fn main() {
    let mut policy_arg = String::from("cbslru");
    let mut seed_flag = true;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--policy" => policy_arg = args.next().unwrap_or_default(),
            "--no-seed" => seed_flag = false,
            _ => {}
        }
    }
    let policy = match policy_arg.as_str() {
        "lru" => PolicyKind::Lru,
        "cblru" => PolicyKind::Cblru,
        _ => PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    };
    let cfg = || {
        hybridcache::HybridConfig::paper(16 << 20, 160 << 20, policy)
    };
    let docs = 400_000;
    let queries = 30_000usize;
    let seed = 42;

    let mut a = SearchEngine::new(EngineConfig::cached(docs, cfg(), seed));
    a.set_reference_mode(true);
    let mut b = SearchEngine::new(EngineConfig::cached(docs, cfg(), seed));
    b.set_reference_mode(false);
    if seed_flag && matches!(policy, PolicyKind::Cbslru { .. }) {
        a.seed_static_from_log(queries);
        b.seed_static_from_log(queries);
        let (ra, rb) = (a.cache().unwrap().stats(), b.cache().unwrap().stats());
        if ra != rb {
            println!("diverged during seeding: {ra:?} vs {rb:?}");
            return;
        }
        let (sa, sb) = (a.cache().unwrap().store_stats(), b.cache().unwrap().store_stats());
        if sa != sb {
            println!("store stats diverged during seeding:\n  {sa:?}\n  {sb:?}");
            return;
        }
        println!("seeding identical");
    }

    let stream: Vec<Query> = a.log().stream(queries);
    for (i, q) in stream.iter().enumerate() {
        let ta = a.execute(q);
        let tb = b.execute(q);
        let sa = a.cache().unwrap().stats();
        let sb = b.cache().unwrap().stats();
        let (ssa, ssb) = (a.cache().unwrap().store_stats(), b.cache().unwrap().store_stats());
        if ta != tb || sa != sb || ssa != ssb {
            println!("first divergence at query {i} (id {}, {} terms)", q.id, q.terms.len());
            println!("  response: {ta} vs {tb}");
            println!("  stats a: {sa:?}");
            println!("  stats b: {sb:?}");
            println!("  store a: {ssa:?}");
            println!("  store b: {ssb:?}");
            return;
        }
    }
    println!("no divergence over {queries} queries (policy {policy_arg}, seeded {seed_flag})");
}
