//! Extension — cluster scale-out: the paper's Sec.-I deployment shape
//! (document-partitioned index servers, scatter-gather queries), swept
//! over shard counts with and without the hybrid cache.
//!
//! The sweep is parallel at both layers: `parallel_map` fans the
//! (shards, cached) points out, and each cluster runs on its
//! shard-worker pool (`ClusterExecution::Parallel`) — figures are
//! bit-identical to the sequential arm either way (the equivalence tests
//! prove it), so only wall-clock moves.

use bench::{cache_config, print_table, Scale};
use engine::{ClusterExecution, EngineConfig, IndexPlacement, SearchCluster};
use hybridcache::PolicyKind;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = (scale.queries() / 4).max(500);
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    let points: Vec<(usize, bool)> = [1usize, 2, 4, 8]
        .into_iter()
        .flat_map(|n| [(n, false), (n, true)])
        .collect();
    // Outer fan-out over sweep points; cap it so points × shard workers
    // stays near the core count instead of oversubscribing.
    let outer = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .clamp(1, 4);
    let results = parallel_map(points, outer, |(shards, cached)| {
        let cfg = if cached {
            EngineConfig::cached(docs, cache_config(mem, ssd, PolicyKind::Cblru), 73)
        } else {
            EngineConfig::no_cache(docs, IndexPlacement::Hdd, 73)
        };
        let mut c = SearchCluster::new(cfg, shards);
        c.set_execution(ClusterExecution::Parallel { workers: 0 });
        let r = c.run(queries);
        (shards, cached, r)
    });

    let rows: Vec<Vec<String>> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| {
            let find = |cached: bool| {
                results
                    .iter()
                    .find(|(s, c, _)| *s == n && *c == cached)
                    .map(|(_, _, r)| r)
                    .expect("swept")
            };
            let plain = find(false);
            let cached = find(true);
            vec![
                n.to_string(),
                format!("{:.2}", plain.mean_response.as_millis_f64()),
                format!("{:.2}", cached.mean_response.as_millis_f64()),
                format!("{:.1}", plain.throughput_qps),
                format!("{:.1}", cached.throughput_qps),
                format!("{:.1}", cached.mean_hit_ratio() * 100.0),
            ]
        })
        .collect();
    print_table(
        "Extension: cluster scale-out (scatter-gather, per-shard 2LC cache)",
        &[
            "shards",
            "plain_ms",
            "cached_ms",
            "plain_qps",
            "cached_qps",
            "hit_%",
        ],
        &rows,
    );
    println!(
        "reading: sharding divides per-query work but the response is the\n\
         slowest shard — the hybrid cache compounds with scale-out because\n\
         it tames exactly that tail."
    );
}
