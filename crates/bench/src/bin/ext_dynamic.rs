//! Extension — the dynamic scenario (paper Sec. IV-B, deferred to future
//! work): cached data carries a TTL; expired entries are recomputed from
//! the HDD. Sweeps the TTL to show the freshness ↔ performance trade.

use bench::{cache_config, pct, print_table, Scale};
use engine::{EngineConfig, SearchEngine};
use hybridcache::PolicyKind;
use simclock::SimDuration;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    // TTLs in *virtual* seconds; None = the paper's static scenario.
    let ttls: Vec<Option<u64>> = vec![None, Some(600), Some(120), Some(30), Some(5), Some(1)];
    let results = parallel_map(ttls, 0, |ttl| {
        let mut cfg = cache_config(mem, ssd, PolicyKind::Cblru);
        cfg.ttl = ttl.map(SimDuration::from_secs);
        let mut e = SearchEngine::new(EngineConfig::cached(docs, cfg, 59));
        let r = e.run(queries);
        let ((rf, rx), (lf, lx)) = e.cache().expect("cached").ttl_stats();
        vec![
            ttl.map_or("static".to_string(), |t| format!("{t}s")),
            pct(r.hit_ratio()),
            format!("{:.2}", r.mean_response.as_millis_f64()),
            (rx + lx).to_string(),
            (rf + lf).to_string(),
            r.flash.expect("cache SSD").block_erases.to_string(),
        ]
    });
    print_table(
        "Extension: TTL sweep (dynamic scenario, CBLRU)",
        &[
            "TTL",
            "hit_%",
            "resp_ms",
            "expirations",
            "fresh_hits",
            "erases",
        ],
        &results,
    );
    println!(
        "reading: generous TTLs cost almost nothing — the Zipf head is\n\
         re-referenced well inside its lifetime; aggressive TTLs convert\n\
         hits back into HDD computations and response time climbs toward\n\
         the uncached level, which is why the paper could defer dynamism."
    );
}
