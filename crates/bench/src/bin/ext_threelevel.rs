//! Extension — three-level caching (paper Sec. VIII / Long & Suel):
//! results + inverted lists + cached term-pair **intersections**.
//! Compares the paper's two-level CBLRU against the same configuration
//! with an intersection family carved in.

use bench::{cache_config, pct, print_table, Scale};
use engine::{EngineConfig, SearchEngine};
use hybridcache::{IntersectionConfig, PolicyKind};
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries() * 2; // pairs need time to recur
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    let variants: Vec<(&str, Option<IntersectionConfig>)> = vec![
        ("2-level (paper)", None),
        (
            "3-level +XC small",
            Some(IntersectionConfig {
                mem_bytes: mem / 10,
                ssd_bytes: ssd / 10,
                pair_threshold: 2,
            }),
        ),
        (
            "3-level +XC large",
            Some(IntersectionConfig {
                mem_bytes: mem / 4,
                ssd_bytes: ssd / 4,
                pair_threshold: 2,
            }),
        ),
    ];
    let results = parallel_map(variants, 0, |(name, xc)| {
        let mut cfg = cache_config(mem, ssd, PolicyKind::Cblru);
        cfg.intersections = xc;
        let mut e = SearchEngine::new(EngineConfig::cached(docs, cfg, 67));
        let r = e.run(queries);
        let (hits, installs) = e.intersection_stats();
        vec![
            name.to_string(),
            pct(r.hit_ratio()),
            format!("{:.2}", r.mean_response.as_millis_f64()),
            format!("{:.1}", r.throughput_qps),
            hits.to_string(),
            installs.to_string(),
            r.index_ops.to_string(),
        ]
    });
    print_table(
        "Extension: two-level vs three-level (intersection) caching",
        &[
            "configuration",
            "hit_%",
            "resp_ms",
            "qps",
            "xc_hits",
            "xc_installs",
            "hdd_ops",
        ],
        &results,
    );
    println!(
        "reading: a cached intersection replaces the two heaviest list\n\
         reads of a recurring multi-term query with one small read — the\n\
         further improvement the paper anticipates from a good\n\
         when-to-intersect policy."
    );
}
