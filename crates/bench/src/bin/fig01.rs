//! Fig. 1 — the I/O trace of search engines: read sequence vs. logical
//! sector for (a) a UMass-shaped web-search trace and (b) our engine's
//! own index-device trace during retrieval.

use bench::{print_table, Scale};
use engine::{EngineConfig, IndexPlacement, SearchEngine};
use tracetools::{umass_like, TraceProfile, UmassSpec};

fn series_rows(points: &[(u64, u64)]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|(x, y)| vec![x.to_string(), y.to_string()])
        .collect()
}

fn main() {
    let scale = Scale::from_args();

    // (a) Web search (UMass-shaped).
    let trace_a = umass_like(&UmassSpec::default());
    let profile_a = TraceProfile::from_events(&trace_a);
    print_table(
        "Fig 1(a) I/O trace of web search (UMass-shaped), scatter series",
        &["read_seq", "sector"],
        &series_rows(&TraceProfile::scatter_series(&trace_a, 100)),
    );
    println!(
        "profile(a): reads {:.2}%  sequential {:.2}%  unique {:.2}%\n",
        profile_a.read_fraction * 100.0,
        profile_a.sequential_fraction * 100.0,
        profile_a.unique_touch_fraction * 100.0
    );

    // (b) Our engine (the paper's "Lucene search, self-built").
    let mut cfg = EngineConfig::no_cache(scale.docs_5m() / 5, IndexPlacement::Hdd, 7);
    cfg.capture_trace = true;
    let mut e = SearchEngine::new(cfg);
    e.run(1_000);
    let trace_b = e.take_trace();
    let profile_b = TraceProfile::from_events(&trace_b);
    print_table(
        "Fig 1(b) I/O trace of engine retrieval (self-built), scatter series",
        &["read_seq", "sector"],
        &series_rows(&TraceProfile::scatter_series(&trace_b, 100)),
    );
    println!(
        "profile(b): reads {:.2}%  sequential {:.2}%  skips {:.2}%  unique {:.2}%",
        profile_b.read_fraction * 100.0,
        profile_b.sequential_fraction * 100.0,
        profile_b.skip_fraction * 100.0,
        profile_b.unique_touch_fraction * 100.0
    );
    println!(
        "\nshape check: both traces are >99% reads, non-sequential, with\n\
         strong locality bands — the paper's four Sec.-III properties."
    );
}
