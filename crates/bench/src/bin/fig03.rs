//! Fig. 3 — (a) inverted-list utilization-rate distribution and (b) term
//! access-frequency distribution, measured over the synthetic corpus and
//! an AOL-like log (the paper used 5 M enwiki docs + AOL).

use std::collections::BTreeMap;

use bench::{print_table, Scale};
use searchidx::{CorpusSpec, IndexReader, SyntheticIndex, TopKConfig, TopKProcessor};
use workload::{QueryLog, QueryLogSpec};

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let index = SyntheticIndex::new(CorpusSpec::enwiki_like(docs, 11));
    let log = QueryLog::new(QueryLogSpec::aol_like(index.num_terms(), 23));
    let processor = TopKProcessor::new(TopKConfig::default());

    // Measure per-term utilization + access counts over a query sample.
    let sample = (2_000.0 * (scale.0 * 10.0)) as usize;
    let mut pu: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
    for q in log.stream_iter(sample) {
        let outcome = processor.process(&index, &q.terms);
        for u in &outcome.usage {
            if u.df == 0 {
                continue;
            }
            let e = pu.entry(u.term).or_insert((0.0, 0));
            e.0 += u.utilization();
            e.1 += 1;
        }
    }

    // (a) utilization rate, ranked descending (paper: x = ranked terms).
    let mut rates: Vec<f64> = pu.values().map(|(sum, n)| sum / *n as f64).collect();
    rates.sort_by(|a, b| b.partial_cmp(a).expect("rates are finite"));
    let rows: Vec<Vec<String>> = rates
        .iter()
        .step_by((rates.len() / 40).max(1))
        .enumerate()
        .map(|(i, r)| {
            vec![
                (i * (rates.len() / 40).max(1)).to_string(),
                format!("{:.1}", r * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig 3(a) inverted-list utilization rate distribution (ranked)",
        &["term_rank", "utilization_%"],
        &rows,
    );
    let full = rates.iter().filter(|&&r| r > 0.999).count();
    println!(
        "{} of {} accessed terms fully traversed; median utilization {:.1}%\n",
        full,
        rates.len(),
        rates.get(rates.len() / 2).copied().unwrap_or(0.0) * 100.0
    );

    // (b) term access frequency (ranked) from the raw log.
    let counts = log.term_access_counts(sample * 5);
    let rows: Vec<Vec<String>> = counts
        .iter()
        .step_by((counts.len() / 40).max(1))
        .enumerate()
        .map(|(i, (_, c))| vec![(i * (counts.len() / 40).max(1)).to_string(), c.to_string()])
        .collect();
    print_table(
        "Fig 3(b) term access frequency distribution (ranked)",
        &["term_rank", "accesses"],
        &rows,
    );
    println!(
        "shape check: (a) only part of each list is used and only a small\n\
         part of terms are hot; (b) access frequency is Zipf-like — both\n\
         as the paper reads off its Fig. 3."
    );
}
