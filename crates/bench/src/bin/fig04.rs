//! Fig. 4 — efficiency values (EV = Freq/SC) of ranked terms and the TEV
//! threshold bands: the most efficient lists belong in memory, the next
//! band on SSD, and everything under TEV stays on HDD.

use std::collections::BTreeMap;

use bench::{print_table, Scale};
use hybridcache::{efficiency_value, sc_blocks};
use searchidx::{CorpusSpec, IndexReader, SyntheticIndex, TopKConfig, TopKProcessor};
use workload::{QueryLog, QueryLogSpec};

const SB: u64 = 128 * 1024;

fn main() {
    let scale = Scale::from_args();
    let index = SyntheticIndex::new(CorpusSpec::enwiki_like(scale.docs_5m(), 11));
    let log = QueryLog::new(QueryLogSpec::aol_like(index.num_terms(), 23));
    let processor = TopKProcessor::new(TopKConfig::default());

    let sample = (2_000.0 * (scale.0 * 10.0)) as usize;
    let mut stats: BTreeMap<u32, (u64, u64, f64)> = BTreeMap::new(); // freq, si, pu_sum
    for q in log.stream_iter(sample) {
        let outcome = processor.process(&index, &q.terms);
        for u in &outcome.usage {
            if u.scanned == 0 {
                continue;
            }
            let e = stats.entry(u.term).or_insert((0, 0, 0.0));
            e.0 += 1;
            e.1 = e.1.max(u.bytes_scanned());
            e.2 += u.utilization();
        }
    }

    let mut evs: Vec<f64> = stats
        .values()
        .map(|&(freq, si, pu_sum)| {
            let pu = (pu_sum / freq as f64).min(1.0);
            efficiency_value(freq, sc_blocks(si, pu, SB))
        })
        .collect();
    evs.sort_by(|a, b| b.partial_cmp(a).expect("EVs are finite"));

    // Tier boundaries: top 10% memory, next 40% SSD, rest HDD; TEV is the
    // EV at the SSD/HDD boundary.
    let n = evs.len();
    let mem_cut = n / 10;
    let ssd_cut = n / 2;
    let tev = evs.get(ssd_cut).copied().unwrap_or(0.0);

    let step = (n / 40).max(1);
    let rows: Vec<Vec<String>> = evs
        .iter()
        .step_by(step)
        .enumerate()
        .map(|(i, ev)| {
            let rank = i * step;
            let tier = if rank < mem_cut {
                "memory"
            } else if rank < ssd_cut {
                "SSD"
            } else {
                "HDD"
            };
            vec![rank.to_string(), format!("{ev:.3}"), tier.to_string()]
        })
        .collect();
    print_table(
        "Fig 4 efficiency value vs ranked terms, with placement bands",
        &["term_rank", "EV", "tier"],
        &rows,
    );
    println!("TEV (SSD admission threshold) = {tev:.3}");
    println!(
        "shape check: EV decays steeply with rank — a small head earns\n\
         memory, a middle band earns SSD, the long tail stays on HDD."
    );
    assert!(evs.first().copied().unwrap_or(0.0) > tev);
}
