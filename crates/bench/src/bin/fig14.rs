//! Fig. 14 — hit-ratio comparisons.
//!
//! (a) result cache (RC) vs inverted-list cache (IC) vs both (RIC) as the
//!     cache capacity grows;
//! (b) LRU vs CBLRU vs CBSLRU.

use bench::{cache_config, pct, policies, print_table, run_cached, Scale};
use hybridcache::PolicyKind;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();

    // (a) The paper sweeps ~20–200 MB for 5 M docs; scaled 1:10.
    let sizes: Vec<u64> = (1..=10).map(|i| scale.bytes((i * 20) << 20)).collect();
    let points: Vec<(u64, &'static str)> = sizes
        .iter()
        .flat_map(|&s| [(s, "RC"), (s, "IC"), (s, "RIC")])
        .collect();
    let results = parallel_map(points, 0, |(size, kind)| {
        let mut cfg = cache_config(size, size * 10, PolicyKind::Cblru);
        match kind {
            "RC" => {
                // All capacity to results.
                cfg.mem_result_bytes = size;
                cfg.mem_list_bytes = 0;
                cfg.ssd_result_bytes = size * 10;
                cfg.ssd_list_bytes = 0;
            }
            "IC" => {
                cfg.mem_result_bytes = 0;
                cfg.mem_list_bytes = size;
                cfg.ssd_result_bytes = 0;
                cfg.ssd_list_bytes = size * 10;
            }
            _ => {} // RIC: the 20/80 default
        }
        let r = run_cached(docs, cfg, queries, 3);
        (size, kind, r.hit_ratio())
    });
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&s| {
            let find = |kind: &str| {
                results
                    .iter()
                    .find(|(rs, rk, _)| *rs == s && *rk == kind)
                    .map(|(_, _, h)| pct(*h))
                    .expect("swept")
            };
            vec![(s >> 20).to_string(), find("RC"), find("IC"), find("RIC")]
        })
        .collect();
    print_table(
        "Fig 14(a) hit ratio: RC vs IC vs RIC",
        &["cache_MB", "RC_%", "IC_%", "RIC_%"],
        &rows,
    );

    // (b) policy comparison across cache sizes.
    let points: Vec<(u64, PolicyKind)> = sizes
        .iter()
        .flat_map(|&s| policies().into_iter().map(move |p| (s, p)))
        .collect();
    let results = parallel_map(points, 0, |(size, policy)| {
        let r = run_cached(docs, cache_config(size, size * 10, policy), queries, 3);
        (size, policy.label(), r.hit_ratio())
    });
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&s| {
            let find = |label: &str| {
                results
                    .iter()
                    .find(|(rs, rl, _)| *rs == s && *rl == label)
                    .map(|(_, _, h)| pct(*h))
                    .expect("swept")
            };
            vec![
                (s >> 20).to_string(),
                find("LRU"),
                find("CBLRU"),
                find("CBSLRU"),
            ]
        })
        .collect();
    print_table(
        "Fig 14(b) hit ratio: LRU vs CBLRU vs CBSLRU",
        &["cache_MB", "LRU_%", "CBLRU_%", "CBSLRU_%"],
        &rows,
    );

    // Paper headline: CBLRU +9.05%, CBSLRU +13.31% average over LRU.
    let avg = |label: &str| {
        let xs: Vec<f64> = results
            .iter()
            .filter(|(_, l, _)| *l == label)
            .map(|(_, _, h)| *h)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let (lru, cblru, cbslru) = (avg("LRU"), avg("CBLRU"), avg("CBSLRU"));
    println!(
        "average hit ratio: LRU {:.2}%  CBLRU {:.2}% (+{:.2} pts)  CBSLRU {:.2}% (+{:.2} pts)",
        lru * 100.0,
        cblru * 100.0,
        (cblru - lru) * 100.0,
        cbslru * 100.0,
        (cbslru - lru) * 100.0
    );
    println!("paper: CBLRU +9.05%, CBSLRU +13.31% over LRU (averaged).");
}
