//! Fig. 15 — the search test without cache: average response time and
//! throughput vs. collection size, with index files on HDD vs. SSD.

use bench::{ms, print_table, run_uncached, Scale};
use engine::IndexPlacement;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let queries = (scale.queries() / 10).max(200); // uncached queries are slow
    let points: Vec<(u64, IndexPlacement)> = scale
        .doc_points()
        .into_iter()
        .flat_map(|d| [(d, IndexPlacement::Hdd), (d, IndexPlacement::Ssd)])
        .collect();
    let results = parallel_map(points, 0, |(docs, placement)| {
        let r = run_uncached(docs, placement, queries, 5);
        (docs, placement, r)
    });

    let rows: Vec<Vec<String>> = scale
        .doc_points()
        .iter()
        .map(|&d| {
            let find = |p: IndexPlacement| {
                results
                    .iter()
                    .find(|(rd, rp, _)| *rd == d && *rp == p)
                    .map(|(_, _, r)| r)
                    .expect("swept")
            };
            let hdd = find(IndexPlacement::Hdd);
            let ssd = find(IndexPlacement::Ssd);
            vec![
                d.to_string(),
                ms(hdd.mean_response),
                ms(ssd.mean_response),
                format!("{:.2}", hdd.throughput_qps),
                format!("{:.2}", ssd.throughput_qps),
            ]
        })
        .collect();
    print_table(
        "Fig 15 search without cache: response time (ms) & throughput (q/s)",
        &["docs", "HDD_ms", "SSD_ms", "HDD_qps", "SSD_qps"],
        &rows,
    );
    println!(
        "shape check: response time rises and throughput falls with the\n\
         collection size; the SSD index helps but — as the paper observes —\n\
         \"the performance improvement is not obvious as expected\" because\n\
         CPU scoring dominates once seeks are amortized."
    );
}
