//! Fig. 16 — one-level vs two-level cache.
//!
//! (a) 1LC(R) with index on HDD vs on SSD;
//! (b) 1LC(R)-HDD vs 2LC(R)-HDD vs 2LC(RI)-HDD.
//!
//! Per the paper: the SSD result cache is 10× the memory result cache and
//! the SSD list cache is 100× the memory list cache.

use bench::{cache_config, ms, print_table, Scale};
use engine::{EngineConfig, IndexPlacement, SearchEngine};
use hybridcache::{HybridConfig, PolicyKind};
use workload::parallel_map;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    OneLevelRHdd,
    OneLevelRSsd,
    TwoLevelRHdd,
    TwoLevelRiHdd,
}

fn build(docs: u64, scale_bytes: u64, variant: Variant) -> engine::RunReport {
    let mem = scale_bytes;
    let mut cfg: HybridConfig = cache_config(mem, mem * 20, PolicyKind::Cblru);
    match variant {
        Variant::OneLevelRHdd | Variant::OneLevelRSsd => {
            cfg.mem_result_bytes = mem;
            cfg.mem_list_bytes = 0;
            cfg.ssd_result_bytes = 0;
            cfg.ssd_list_bytes = 0;
        }
        Variant::TwoLevelRHdd => {
            cfg.mem_result_bytes = mem;
            cfg.mem_list_bytes = 0;
            cfg.ssd_result_bytes = mem * 10;
            cfg.ssd_list_bytes = 0;
        }
        Variant::TwoLevelRiHdd => {
            cfg.mem_result_bytes = mem / 5;
            cfg.mem_list_bytes = mem - mem / 5;
            cfg.ssd_result_bytes = (mem / 5) * 10;
            cfg.ssd_list_bytes = (mem - mem / 5) * 100;
        }
    }
    let mut e = SearchEngine::new(EngineConfig {
        index_placement: if variant == Variant::OneLevelRSsd {
            IndexPlacement::Ssd
        } else {
            IndexPlacement::Hdd
        },
        ..EngineConfig::cached(docs, cfg, 9)
    });
    e.run(4_000)
}

fn main() {
    let scale = Scale::from_args();
    let mem = scale.bytes(10 << 20);
    let points: Vec<(u64, Variant)> = scale
        .doc_points()
        .into_iter()
        .flat_map(|d| {
            [
                (d, Variant::OneLevelRHdd),
                (d, Variant::OneLevelRSsd),
                (d, Variant::TwoLevelRHdd),
                (d, Variant::TwoLevelRiHdd),
            ]
        })
        .collect();
    let results = parallel_map(points, 0, |(docs, v)| (docs, v, build(docs, mem, v)));
    let get = |d: u64, v: Variant| {
        results
            .iter()
            .find(|(rd, rv, _)| *rd == d && *rv == v)
            .map(|(_, _, r)| r)
            .expect("swept")
    };

    let rows: Vec<Vec<String>> = scale
        .doc_points()
        .iter()
        .map(|&d| {
            vec![
                d.to_string(),
                ms(get(d, Variant::OneLevelRHdd).mean_response),
                ms(get(d, Variant::OneLevelRSsd).mean_response),
            ]
        })
        .collect();
    print_table(
        "Fig 16(a) 1LC(R): index on HDD vs SSD — response time (ms)",
        &["docs", "1LC(R)-HDD_ms", "1LC(R)-SSD_ms"],
        &rows,
    );

    let rows: Vec<Vec<String>> = scale
        .doc_points()
        .iter()
        .map(|&d| {
            vec![
                d.to_string(),
                ms(get(d, Variant::OneLevelRHdd).mean_response),
                ms(get(d, Variant::TwoLevelRHdd).mean_response),
                ms(get(d, Variant::TwoLevelRiHdd).mean_response),
            ]
        })
        .collect();
    print_table(
        "Fig 16(b) 1LC(R) vs 2LC(R) vs 2LC(RI), index on HDD — response time (ms)",
        &["docs", "1LC(R)_ms", "2LC(R)_ms", "2LC(RI)_ms"],
        &rows,
    );
    println!(
        "shape check: swapping the index device helps only a little (a);\n\
         adding the SSD cache level helps a lot, and caching results AND\n\
         inverted lists (RI) is best (b) — the paper's reading of Fig. 16."
    );
}
