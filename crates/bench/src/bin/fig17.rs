//! Fig. 17 — two-level cache with LRU vs CBLRU vs CBSLRU: average
//! response time and throughput across collection sizes.

use bench::{cache_config, ms, policies, print_table, run_cached, Scale};
use hybridcache::PolicyKind;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let queries = scale.queries();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    let points: Vec<(u64, PolicyKind)> = scale
        .doc_points()
        .into_iter()
        .flat_map(|d| policies().into_iter().map(move |p| (d, p)))
        .collect();
    let results = parallel_map(points, 0, |(docs, policy)| {
        let r = run_cached(docs, cache_config(mem, ssd, policy), queries, 13);
        (docs, policy.label(), r)
    });
    let get = |d: u64, l: &str| {
        results
            .iter()
            .find(|(rd, rl, _)| *rd == d && *rl == l)
            .map(|(_, _, r)| r)
            .expect("swept")
    };

    let rows: Vec<Vec<String>> = scale
        .doc_points()
        .iter()
        .map(|&d| {
            vec![
                d.to_string(),
                ms(get(d, "LRU").mean_response),
                ms(get(d, "CBLRU").mean_response),
                ms(get(d, "CBSLRU").mean_response),
            ]
        })
        .collect();
    print_table(
        "Fig 17(a) response time (ms): LRU vs CBLRU vs CBSLRU",
        &["docs", "LRU_ms", "CBLRU_ms", "CBSLRU_ms"],
        &rows,
    );

    let rows: Vec<Vec<String>> = scale
        .doc_points()
        .iter()
        .map(|&d| {
            vec![
                d.to_string(),
                format!("{:.1}", get(d, "LRU").throughput_qps),
                format!("{:.1}", get(d, "CBLRU").throughput_qps),
                format!("{:.1}", get(d, "CBSLRU").throughput_qps),
            ]
        })
        .collect();
    print_table(
        "Fig 17(b) throughput (q/s): LRU vs CBLRU vs CBSLRU",
        &["docs", "LRU_qps", "CBLRU_qps", "CBSLRU_qps"],
        &rows,
    );

    // Headline deltas averaged over the sweep.
    let avg_resp = |l: &str| {
        let xs: Vec<f64> = scale
            .doc_points()
            .iter()
            .map(|&d| get(d, l).mean_response.as_nanos() as f64)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let avg_tput = |l: &str| {
        let xs: Vec<f64> = scale
            .doc_points()
            .iter()
            .map(|&d| get(d, l).throughput_qps)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let (rl, rc, rs) = (avg_resp("LRU"), avg_resp("CBLRU"), avg_resp("CBSLRU"));
    let (tl, tc, ts) = (avg_tput("LRU"), avg_tput("CBLRU"), avg_tput("CBSLRU"));
    println!(
        "response time vs LRU: CBLRU {:.2}%  CBSLRU {:.2}%  (paper: -35.27% / -41.05%)",
        (rc / rl - 1.0) * 100.0,
        (rs / rl - 1.0) * 100.0
    );
    println!(
        "throughput vs LRU:   CBLRU +{:.2}%  CBSLRU +{:.2}%  (paper: +55.29% / +70.47%)",
        (tc / tl - 1.0) * 100.0,
        (ts / tl - 1.0) * 100.0
    );
}
