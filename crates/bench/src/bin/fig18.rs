//! Fig. 18 — cost performance.
//!
//! (a) 1LC-HDD vs 1LC-SSD vs 2LC-HDD response time across collection
//!     sizes (2LC uses CBSLRU, as in the paper);
//! (b) memory/SSD capacity mixes: big-DRAM one-level configurations vs
//!     small-DRAM + SSD two-level ones, with the $-cost of each
//!     (memory $14.5/GB, SSD $1.9/GB — the paper's prices).

use bench::{cache_config, ms, print_table, run_cached, Scale};
use engine::{EngineConfig, IndexPlacement, SearchEngine};
use hybridcache::PolicyKind;
use workload::parallel_map;

const MEM_PER_GB: f64 = 14.5;
const SSD_PER_GB: f64 = 1.9;

fn dollars(mem_bytes: u64, ssd_bytes: u64) -> f64 {
    mem_bytes as f64 / 1e9 * MEM_PER_GB + ssd_bytes as f64 / 1e9 * SSD_PER_GB
}

fn cbslru() -> PolicyKind {
    PolicyKind::Cbslru {
        static_fraction: 0.3,
    }
}

fn one_level(docs: u64, mem: u64, placement: IndexPlacement, queries: usize) -> engine::RunReport {
    let mut cfg = cache_config(mem, 0, PolicyKind::Cblru);
    cfg.ssd_result_bytes = 0;
    cfg.ssd_list_bytes = 0;
    let mut e = SearchEngine::new(EngineConfig {
        index_placement: placement,
        ..EngineConfig::cached(docs, cfg, 17)
    });
    e.run(queries)
}

fn main() {
    let scale = Scale::from_args();
    let queries = scale.queries();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);

    // (a) sweep docs for the three architectures.
    #[derive(Clone, Copy, PartialEq)]
    enum Arch {
        OneLevelHdd,
        OneLevelSsd,
        TwoLevelHdd,
    }
    let points: Vec<(u64, Arch)> = scale
        .doc_points()
        .into_iter()
        .flat_map(|d| {
            [
                (d, Arch::OneLevelHdd),
                (d, Arch::OneLevelSsd),
                (d, Arch::TwoLevelHdd),
            ]
        })
        .collect();
    let results = parallel_map(points, 0, |(docs, arch)| {
        let r = match arch {
            Arch::OneLevelHdd => one_level(docs, mem, IndexPlacement::Hdd, queries),
            Arch::OneLevelSsd => one_level(docs, mem, IndexPlacement::Ssd, queries),
            Arch::TwoLevelHdd => run_cached(docs, cache_config(mem, ssd, cbslru()), queries, 17),
        };
        (docs, arch, r.mean_response)
    });
    let get = |d: u64, a: Arch| {
        results
            .iter()
            .find(|(rd, ra, _)| *rd == d && *ra == a)
            .map(|(_, _, m)| *m)
            .expect("swept")
    };
    let rows: Vec<Vec<String>> = scale
        .doc_points()
        .iter()
        .map(|&d| {
            vec![
                d.to_string(),
                ms(get(d, Arch::OneLevelHdd)),
                ms(get(d, Arch::OneLevelSsd)),
                ms(get(d, Arch::TwoLevelHdd)),
            ]
        })
        .collect();
    print_table(
        "Fig 18(a) response time (ms): 1LC-HDD vs 1LC-SSD vs 2LC-HDD",
        &["docs", "1LC-HDD_ms", "1LC-SSD_ms", "2LC-HDD_ms"],
        &rows,
    );

    // (b) capacity mixes at the largest collection, with $-cost.
    let docs = scale.docs_5m();
    // Paper GB -> simulated bytes: shrink with the doc scale plus an
    // extra 1:10 so the biggest mixes stay laptop-fast.
    let gb = |x: f64| (x * 1e9 * scale.0) as u64 / 10;
    let mixes: Vec<(&str, u64, u64)> = vec![
        ("1LC:MM(0.5GB)", gb(0.5), 0),
        ("1LC:MM(1GB)", gb(1.0), 0),
        ("2LC:MM(0.1GB)+SSD(2GB)", gb(0.1), gb(2.0)),
        ("2LC:MM(0.5GB)+SSD(2GB)", gb(0.5), gb(2.0)),
    ];
    let results = parallel_map(mixes, 0, |(name, m, s)| {
        let r = if s == 0 {
            one_level(docs, m, IndexPlacement::Hdd, queries)
        } else {
            run_cached(docs, cache_config(m, s, cbslru()), queries, 17)
        };
        // Cost is quoted at *paper* scale: undo the simulation shrink.
        let paper_m = (m as f64 * 10.0 / scale.0) as u64;
        let paper_s = (s as f64 * 10.0 / scale.0) as u64;
        (name, r.mean_response, dollars(paper_m, paper_s))
    });
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, resp, cost)| vec![name.to_string(), ms(*resp), format!("{cost:.2}")])
        .collect();
    print_table(
        "Fig 18(b) capacity mixes at the largest collection",
        &["configuration", "response_ms", "cache_cost_$"],
        &rows,
    );
    println!(
        "shape check: the small-DRAM + SSD two-level configurations match or\n\
         beat the big-DRAM one-level ones at a fraction of the cache cost\n\
         (memory ${MEM_PER_GB}/GB vs SSD ${SSD_PER_GB}/GB) — the paper's cost argument."
    );
}
