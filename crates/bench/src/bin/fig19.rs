//! Fig. 19 — inside the SSD: (a) block erasure count and (b) flash
//! average access time as the query count grows, for LRU / CBLRU / CBSLRU.

use bench::{cache_config, policies, print_table, run_cached, Scale};
use hybridcache::PolicyKind;
use workload::parallel_map;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let mem = scale.bytes(20 << 20);
    let ssd = scale.bytes(200 << 20);
    let query_points = scale.query_points();

    let points: Vec<(usize, PolicyKind)> = query_points
        .iter()
        .flat_map(|&q| policies().into_iter().map(move |p| (q, p)))
        .collect();
    let results = parallel_map(points, 0, |(queries, policy)| {
        let r = run_cached(docs, cache_config(mem, ssd, policy), queries, 19);
        let flash = r.flash.expect("cache SSD present");
        (queries, policy.label(), flash)
    });
    let get = |q: usize, l: &str| {
        results
            .iter()
            .find(|(rq, rl, _)| *rq == q && *rl == l)
            .map(|(_, _, f)| *f)
            .expect("swept")
    };

    let rows: Vec<Vec<String>> = query_points
        .iter()
        .map(|&q| {
            vec![
                q.to_string(),
                get(q, "LRU").block_erases.to_string(),
                get(q, "CBLRU").block_erases.to_string(),
                get(q, "CBSLRU").block_erases.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig 19(a) block erasure count vs query count",
        &["queries", "LRU", "CBLRU", "CBSLRU"],
        &rows,
    );

    let rows: Vec<Vec<String>> = query_points
        .iter()
        .map(|&q| {
            vec![
                q.to_string(),
                format!("{:.3}", get(q, "LRU").mean_access.as_millis_f64()),
                format!("{:.3}", get(q, "CBLRU").mean_access.as_millis_f64()),
                format!("{:.3}", get(q, "CBSLRU").mean_access.as_millis_f64()),
            ]
        })
        .collect();
    print_table(
        "Fig 19(b) flash average access time (ms) vs query count",
        &["queries", "LRU_ms", "CBLRU_ms", "CBSLRU_ms"],
        &rows,
    );

    // Headline deltas at the largest query count.
    let &q = query_points.last().expect("non-empty sweep");
    let (l, c, s) = (get(q, "LRU"), get(q, "CBLRU"), get(q, "CBSLRU"));
    println!(
        "erases vs LRU at {q} queries: CBLRU {:.2}%  CBSLRU {:.2}%  (paper: -59.92% / -71.52%)",
        (c.block_erases as f64 / l.block_erases.max(1) as f64 - 1.0) * 100.0,
        (s.block_erases as f64 / l.block_erases.max(1) as f64 - 1.0) * 100.0
    );
    println!(
        "access time vs LRU:          CBLRU {:.2}%  CBSLRU {:.2}%  (paper: -13.20% / -43.83%)",
        (c.mean_access.as_nanos() as f64 / l.mean_access.as_nanos().max(1) as f64 - 1.0) * 100.0,
        (s.mean_access.as_nanos() as f64 / l.mean_access.as_nanos().max(1) as f64 - 1.0) * 100.0
    );
}
