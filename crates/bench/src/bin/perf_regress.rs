//! Performance-regression harness.
//!
//! **Engine arm** (PR 1, `BENCH_1.json`): runs one pinned, seeded
//! workload twice — once on the reference hot paths (linear victim
//! scans, `HashMap` top-K accumulator) and once on the optimized ones
//! (indexed victim selection, pooled open-addressed scratch) — and emits
//! a machine-readable JSON report.
//!
//! **Cluster arm** (PR 2, `BENCH_2.json`): runs one pinned, seeded
//! 4-shard cluster workload on both `ClusterExecution` arms — the
//! sequential reference loop and the persistent shard-worker pool — and
//! reports wall-clock for each, plus `max_worker_busy` (the pool's
//! critical path: what a machine with one core per worker would pay —
//! when workers outnumber cores the span absorbs preemption and
//! degenerates to the wall-clock). `available_parallelism` is recorded
//! because the wall-clock speedup is hardware-bound: on a single-core
//! container the pool can only tie the sequential arm; the ≥2x target
//! at 4 shards needs ≥2 free cores.
//!
//! **Postings arm** (PR 3, `BENCH_3.json`): runs the engine workload on
//! both `PostingsBackend`s — the uncompressed reference traversal and
//! the block-compressed lists with block-max skipping — with every other
//! toggle held at its optimized setting, so the measured gap is the
//! postings representation alone. The blocked arm additionally reports
//! its block-max accounting (bounds consulted, postings pruned without
//! decode) and the block store's encoded footprint.
//!
//! **I/O-path arm** (PR 4, `BENCH_4.json`): runs the engine workload
//! three times across the `IoPath` toggle — the synchronous `Direct`
//! reference, `Queued { depth: 1 }` + FIFO (which must be bit-identical
//! to `Direct`, queue accounting included), and `Queued { depth: 4 }` +
//! elevator scheduling, where NCQ-style reordering of the batched index
//! reads is *allowed* to move the simulated response times. A second
//! uncached seek-bound pair (`ncq_arms`) isolates the elevator's
//! benefit: with every query batching HDD index reads, depth-4 elevator
//! scheduling shortens the seek path and improves mean response — the
//! headline `response_time_ratio_vs_direct`. On the hybrid config the
//! cache SSD absorbs most reads and the dominant queueing effect is
//! RB-flush lane contention, so that ratio (`hybrid_response_time_*`)
//! dips slightly below 1 and is recorded alongside. Both deep arms
//! report measured mean/max device-queue occupancy.
//!
//! In the first three arms every **simulated figure must be bit-identical** (hit
//! ratio, response times, cache/flash counters, the full `RunReport` /
//! `ClusterReport`): the optimizations are behavior-preserving by
//! construction, and this harness re-checks that end-to-end on every
//! run. Wall-clock is the only number allowed to move.
//!
//!     cargo run --release -p bench --bin perf_regress \
//!         [-- --out PATH] [--cluster-out PATH] [--postings-out PATH] \
//!         [--iopath-out PATH] [--iopath-depth N]
//!
//! Exit status is non-zero if any arm's simulated figures diverge.

use std::time::Instant;

use bench::{cache_config, run_cached};
use engine::{
    ClusterExecution, ClusterReport, EngineConfig, IndexPlacement, PostingsBackend, RunReport,
    SearchCluster, SearchEngine,
};
use hybridcache::PolicyKind;
use storagecore::{BlockDevice, IoPath, IoStats, QueueDepthStats, SchedulerPolicy};

// The pinned workload: large enough that victim selection and top-K
// accumulation dominate, small enough for a CI-friendly run.
const DOCS: u64 = 400_000;
const QUERIES: usize = 30_000;
const SEED: u64 = 42;
const MEM_BYTES: u64 = 16 << 20;
const SSD_BYTES: u64 = 160 << 20;

// The pinned cluster workload: 4 document-partitioned shards (100 k docs
// each), per-shard CBLRU caches, one shared broadcast stream.
const CLUSTER_SHARDS: usize = 4;
const CLUSTER_DOCS: u64 = 400_000;
const CLUSTER_QUERIES: usize = 8_000;
const CLUSTER_MEM_BYTES: u64 = 4 << 20;
const CLUSTER_SSD_BYTES: u64 = 40 << 20;

/// One measured arm.
struct Arm {
    label: &'static str,
    report: RunReport,
    /// Evictions at the SSD stores (list evictions + RB collateral).
    evictions: u64,
    wall_secs: f64,
}

fn run_arm(label: &'static str, reference: bool) -> Arm {
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let policy = cfg.policy;
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
    e.set_reference_mode(reference);
    if matches!(policy, PolicyKind::Cbslru { .. }) {
        e.seed_static_from_log(QUERIES);
    }
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let (rc, ic) = e.cache().expect("cached config").store_stats();
    Arm {
        label,
        report,
        evictions: ic.evictions + rc.collateral_evictions,
        wall_secs,
    }
}

/// One measured postings arm.
struct PostingsArm {
    label: &'static str,
    report: RunReport,
    evictions: u64,
    wall_secs: f64,
    /// Block-max accounting (zeros on the reference backend).
    skips: searchidx::SkipStats,
    /// Block-store footprint (zeros on the reference backend).
    store: searchidx::BlockStoreStats,
}

fn run_postings_arm(label: &'static str, backend: PostingsBackend) -> PostingsArm {
    // Identical to the engine arm's workload; reference mode stays OFF on
    // both arms so the postings backend is the only difference.
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig {
        postings: backend,
        ..EngineConfig::cached(DOCS, cfg, SEED)
    });
    e.seed_static_from_log(QUERIES);
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let (rc, ic) = e.cache().expect("cached config").store_stats();
    PostingsArm {
        label,
        report,
        evictions: ic.evictions + rc.collateral_evictions,
        wall_secs,
        skips: e.postings_skip_stats(),
        store: e.postings_store_stats(),
    }
}

fn postings_arm_json(a: &PostingsArm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"postings_scanned\": {},\n",
            "      \"evictions\": {},\n",
            "      \"ssd_bytes_written\": {},\n",
            "      \"blockmax_bounds_probed\": {},\n",
            "      \"blockmax_postings_pruned\": {},\n",
            "      \"block_store_terms\": {},\n",
            "      \"block_store_built_postings\": {},\n",
            "      \"block_store_encoded_bytes\": {},\n",
            "      \"block_store_hot_postings\": {}\n",
            "    }}"
        ),
        a.label,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.elapsed.as_nanos(),
        r.postings_scanned,
        a.evictions,
        cache.ssd_bytes_written,
        a.skips.skip_probes,
        a.skips.skipped,
        a.store.terms,
        a.store.built_postings,
        a.store.encoded_bytes,
        a.store.hot_postings,
    )
}

/// Run both postings arms, emit `BENCH_3.json`, and return whether the
/// simulated figures were bit-identical.
fn postings_regress(out: &str) -> bool {
    let reference = run_postings_arm("reference_postings", PostingsBackend::Reference);
    eprintln!(
        "postings reference: {} ({:.2}s wall)",
        reference.report.summary(),
        reference.wall_secs
    );
    let blocked = run_postings_arm("blocked_postings", PostingsBackend::Blocked);
    eprintln!(
        "postings blocked:   {} ({:.2}s wall)",
        blocked.report.summary(),
        blocked.wall_secs
    );

    // The contract: the entire RunReport (and the store-level eviction
    // counters) is bit-identical — block-max skipping only removes work
    // the quit rules were about to remove posting-by-posting.
    let identical = reference.report == blocked.report && reference.evictions == blocked.evictions;
    let speedup = reference.wall_secs / blocked.wall_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_postings\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        postings_arm_json(&reference),
        postings_arm_json(&blocked),
        identical,
        speedup,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write postings report to {out}: {e}"));
    println!("{json}");
    println!("wrote {out}; postings speedup {speedup:.2}x, sim figures identical: {identical}");
    identical
}

fn cache_of(r: &RunReport) -> &hybridcache::CacheStats {
    r.cache.as_ref().expect("cached run")
}

fn arm_json(a: &Arm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"evictions\": {},\n",
            "      \"evictions_per_wall_sec\": {:.3},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_throughput_qps\": {:.17},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"postings_scanned\": {},\n",
            "      \"ssd_bytes_written\": {},\n",
            "      \"ssd_admissions\": {}\n",
            "    }}"
        ),
        a.label,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        a.evictions,
        a.evictions as f64 / a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.throughput_qps,
        r.elapsed.as_nanos(),
        r.postings_scanned,
        cache.ssd_bytes_written,
        cache.results.ssd_admissions + cache.lists.ssd_admissions,
    )
}

/// One measured cluster arm.
struct ClusterArm {
    label: &'static str,
    report: ClusterReport,
    wall_secs: f64,
    /// Pool workers (1 on the sequential arm's calling thread).
    workers: usize,
    /// Critical path: cumulative busy time of the busiest pool worker
    /// (equals `wall_secs` on the sequential arm).
    max_busy_secs: f64,
}

fn run_cluster_arm(label: &'static str, exec: ClusterExecution) -> ClusterArm {
    let cfg = EngineConfig::cached(
        CLUSTER_DOCS,
        cache_config(CLUSTER_MEM_BYTES, CLUSTER_SSD_BYTES, PolicyKind::Cblru),
        SEED,
    );
    let mut c = SearchCluster::new(cfg, CLUSTER_SHARDS);
    c.set_execution(exec);
    let workers = match c.execution() {
        ClusterExecution::Sequential => 1,
        ClusterExecution::Parallel { workers } => workers,
    };
    let t0 = Instant::now();
    let report = c.run(CLUSTER_QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let max_busy_secs = c.max_worker_busy().map_or(wall_secs, |d| d.as_secs_f64());
    ClusterArm {
        label,
        report,
        wall_secs,
        workers,
        max_busy_secs,
    }
}

fn cluster_arm_json(a: &ClusterArm) -> String {
    let r = &a.report;
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"workers\": {},\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"max_worker_busy_secs\": {:.6},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_mean_fastest_shard_ns\": {},\n",
            "      \"sim_throughput_qps\": {:.17},\n",
            "      \"sim_mean_hit_ratio\": {:.17},\n",
            "      \"sim_shard0_postings_scanned\": {}\n",
            "    }}"
        ),
        a.label,
        a.workers,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        a.max_busy_secs,
        r.mean_response.as_nanos(),
        r.mean_fastest_shard.as_nanos(),
        r.throughput_qps,
        r.mean_hit_ratio(),
        r.shards[0].postings_scanned,
    )
}

/// Run both cluster arms, emit `BENCH_2.json`, and return whether the
/// simulated figures were bit-identical.
fn cluster_regress(out: &str) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let seq = run_cluster_arm("sequential", ClusterExecution::Sequential);
    eprintln!(
        "cluster sequential: mean {} | {:.2} q/s sim | {:.2}s wall",
        seq.report.mean_response, seq.report.throughput_qps, seq.wall_secs
    );
    let par = run_cluster_arm(
        "parallel",
        ClusterExecution::Parallel {
            workers: CLUSTER_SHARDS,
        },
    );
    eprintln!(
        "cluster parallel:   mean {} | {:.2} q/s sim | {:.2}s wall ({:.2}s critical path)",
        par.report.mean_response, par.report.throughput_qps, par.wall_secs, par.max_busy_secs
    );

    // The contract: the full ClusterReport — per-query statistics,
    // virtual clock, every per-shard cache/flash counter — is identical.
    let identical = seq.report == par.report;
    let speedup = seq.wall_secs / par.wall_secs;
    let critical_path_speedup = seq.wall_secs / par.max_busy_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_cluster\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"shards\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes_per_shard\": {},\n",
            "    \"ssd_bytes_per_shard\": {},\n",
            "    \"policy\": \"CBLRU\"\n",
            "  }},\n",
            "  \"available_parallelism\": {},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3},\n",
            "  \"critical_path_speedup\": {:.3}\n",
            "}}\n"
        ),
        CLUSTER_DOCS,
        CLUSTER_SHARDS,
        CLUSTER_QUERIES,
        SEED,
        CLUSTER_MEM_BYTES,
        CLUSTER_SSD_BYTES,
        cores,
        cluster_arm_json(&seq),
        cluster_arm_json(&par),
        identical,
        speedup,
        critical_path_speedup,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write cluster report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; cluster speedup {speedup:.2}x wall ({critical_path_speedup:.2}x \
         critical-path, {cores} core(s) available), sim figures identical: {identical}"
    );
    if cores < CLUSTER_SHARDS {
        println!(
            "note: only {cores} core(s) for {CLUSTER_SHARDS} workers — the pool \
             timeshares, so wall-clock can at best tie, and the busiest worker's \
             span absorbs preemption, dragging the critical-path ratio to ~1x \
             too; rerun on a host with >= {CLUSTER_SHARDS} cores to see both \
             ratios approach {CLUSTER_SHARDS}x"
        );
    }
    identical
}

/// One measured I/O-path arm.
struct IoPathArm {
    label: String,
    path: String,
    scheduler: &'static str,
    report: RunReport,
    wall_secs: f64,
    /// Submission-queue accounting at the index device.
    index_queue: QueueDepthStats,
    /// Submission-queue accounting at the cache SSD.
    cache_queue: QueueDepthStats,
    /// Full cache-SSD stats (part of the bit-identity contract).
    cache_dev: IoStats,
}

fn run_iopath_arm(
    label: String,
    path_name: String,
    sched_name: &'static str,
    path: IoPath,
    policy: SchedulerPolicy,
) -> IoPathArm {
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
    e.seed_static_from_log(QUERIES);
    e.set_io_path(path);
    e.set_io_scheduler(policy);
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    IoPathArm {
        label,
        path: path_name,
        scheduler: sched_name,
        report,
        wall_secs,
        index_queue: e.index_queue_stats(),
        cache_queue: e.cache_queue_stats(),
        cache_dev: e.cache().expect("cached config").device().stats().clone(),
    }
}

/// One measured NCQ arm: the uncached seek-bound workload, where the
/// index HDD's queue is the bottleneck and elevator reordering is the
/// whole effect.
struct NcqArm {
    label: String,
    path: String,
    scheduler: &'static str,
    report: RunReport,
    wall_secs: f64,
    index_queue: QueueDepthStats,
}

/// Every query misses (no cache), so each one batches its index reads —
/// this is the workload where the device queue actually fills and the
/// elevator's seek-shortening shows up as a response-time win.
const NCQ_QUERIES: usize = 10_000;

fn run_ncq_arm(
    label: String,
    path_name: String,
    sched_name: &'static str,
    path: IoPath,
    policy: SchedulerPolicy,
) -> NcqArm {
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, SEED));
    e.set_io_path(path);
    e.set_io_scheduler(policy);
    let report = e.run(NCQ_QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    NcqArm {
        label,
        path: path_name,
        scheduler: sched_name,
        report,
        wall_secs,
        index_queue: e.index_queue_stats(),
    }
}

fn ncq_arm_json(a: &NcqArm) -> String {
    let r = &a.report;
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"io_path\": \"{}\",\n",
            "      \"scheduler\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"index_queue_dispatches\": {},\n",
            "      \"index_queue_mean_occupancy\": {:.6},\n",
            "      \"index_queue_max_occupancy\": {},\n",
            "      \"index_queue_mean_wait_ns\": {},\n",
            "      \"index_queue_max_wait_ns\": {}\n",
            "    }}"
        ),
        a.label,
        a.path,
        a.scheduler,
        a.wall_secs,
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.elapsed.as_nanos(),
        a.index_queue.dispatches(),
        a.index_queue.mean_occupancy(),
        a.index_queue.max_occupancy(),
        a.index_queue.mean_wait().as_nanos(),
        a.index_queue.max_wait().as_nanos(),
    )
}

fn iopath_arm_json(a: &IoPathArm) -> String {
    let r = &a.report;
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"io_path\": \"{}\",\n",
            "      \"scheduler\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"index_queue_dispatches\": {},\n",
            "      \"index_queue_mean_occupancy\": {:.6},\n",
            "      \"index_queue_max_occupancy\": {},\n",
            "      \"index_queue_mean_wait_ns\": {},\n",
            "      \"index_queue_max_wait_ns\": {},\n",
            "      \"cache_queue_dispatches\": {},\n",
            "      \"cache_queue_mean_occupancy\": {:.6},\n",
            "      \"cache_queue_max_occupancy\": {}\n",
            "    }}"
        ),
        a.label,
        a.path,
        a.scheduler,
        a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.elapsed.as_nanos(),
        a.index_queue.dispatches(),
        a.index_queue.mean_occupancy(),
        a.index_queue.max_occupancy(),
        a.index_queue.mean_wait().as_nanos(),
        a.index_queue.max_wait().as_nanos(),
        a.cache_queue.dispatches(),
        a.cache_queue.mean_occupancy(),
        a.cache_queue.max_occupancy(),
    )
}

/// Run the three I/O-path arms, emit `BENCH_4.json`, and return whether
/// the depth-1 FIFO arm was bit-identical to the `Direct` reference.
/// `depth` sets the deep arm's queue depth (4 in the committed report;
/// `--iopath-depth` sweeps it).
fn iopath_regress(out: &str, depth: usize) -> bool {
    let direct = run_iopath_arm(
        "direct".into(),
        "direct".into(),
        "fifo",
        IoPath::Direct,
        SchedulerPolicy::Fifo,
    );
    eprintln!(
        "iopath direct:   {} ({:.2}s wall)",
        direct.report.summary(),
        direct.wall_secs
    );
    let queued1 = run_iopath_arm(
        "queued_depth1_fifo".into(),
        "queued(1)".into(),
        "fifo",
        IoPath::Queued { depth: 1 },
        SchedulerPolicy::Fifo,
    );
    eprintln!(
        "iopath queued-1: {} ({:.2}s wall)",
        queued1.report.summary(),
        queued1.wall_secs
    );
    let deep = run_iopath_arm(
        format!("queued_depth{depth}_elevator"),
        format!("queued({depth})"),
        "elevator",
        IoPath::Queued { depth },
        SchedulerPolicy::Elevator,
    );
    eprintln!(
        "iopath queued-{depth}: {} ({:.2}s wall)",
        deep.report.summary(),
        deep.wall_secs
    );

    // The NCQ pair: the uncached seek-bound workload, where every query
    // batches index reads and elevator reordering shortens the seek path.
    let ncq_direct = run_ncq_arm(
        "ncq_direct".into(),
        "direct".into(),
        "fifo",
        IoPath::Direct,
        SchedulerPolicy::Fifo,
    );
    eprintln!(
        "ncq direct:      {} ({:.2}s wall)",
        ncq_direct.report.summary(),
        ncq_direct.wall_secs
    );
    let ncq_deep = run_ncq_arm(
        format!("ncq_queued_depth{depth}_elevator"),
        format!("queued({depth})"),
        "elevator",
        IoPath::Queued { depth },
        SchedulerPolicy::Elevator,
    );
    eprintln!(
        "ncq queued-{depth}:    {} ({:.2}s wall)",
        ncq_deep.report.summary(),
        ncq_deep.wall_secs
    );

    // The contract: at depth 1 + FIFO the pipeline degenerates to the
    // synchronous call tree — the full RunReport, both submission-queue
    // sections, and the cache SSD's complete IoStats are bit-identical.
    let identical = direct.report == queued1.report
        && direct.index_queue == queued1.index_queue
        && direct.cache_queue == queued1.cache_queue
        && direct.cache_dev == queued1.cache_dev;
    // The headline: NCQ reordering is *supposed* to move response times
    // downward on the seek-bound workload (elevator shortens each
    // batch's seek path). On the hybrid config the same deep queue is
    // reported too, but there the cache SSD absorbs most reads and the
    // dominant queueing effect is RB-flush lane contention — that ratio
    // dips slightly below 1 and is recorded honestly alongside.
    let response_ratio = ncq_direct.report.mean_response.as_nanos() as f64
        / ncq_deep.report.mean_response.as_nanos() as f64;
    let hybrid_ratio =
        direct.report.mean_response.as_nanos() as f64 / deep.report.mean_response.as_nanos() as f64;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_iopath\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"queue_depth\": {},\n",
            "  \"arms\": [\n{},\n{},\n{}\n  ],\n",
            "  \"ncq_workload\": {{ \"docs\": {}, \"queries\": {}, \"placement\": \"hdd_no_cache\" }},\n",
            "  \"ncq_arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"deep_max_device_queue_occupancy\": {},\n",
            "  \"deep_mean_device_queue_occupancy\": {:.6},\n",
            "  \"response_time_ratio_vs_direct\": {:.6},\n",
            "  \"hybrid_deep_max_device_queue_occupancy\": {},\n",
            "  \"hybrid_response_time_ratio_vs_direct\": {:.6}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        depth,
        iopath_arm_json(&direct),
        iopath_arm_json(&queued1),
        iopath_arm_json(&deep),
        DOCS,
        NCQ_QUERIES,
        ncq_arm_json(&ncq_direct),
        ncq_arm_json(&ncq_deep),
        identical,
        ncq_deep.index_queue.max_occupancy(),
        ncq_deep.index_queue.mean_occupancy(),
        response_ratio,
        deep.index_queue.max_occupancy(),
        hybrid_ratio,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write iopath report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; depth-{depth} NCQ response ratio {response_ratio:.3}x \
         (max queue occupancy {}), hybrid deep ratio {hybrid_ratio:.3}x, \
         depth-1 identical: {identical}",
        ncq_deep.index_queue.max_occupancy()
    );
    identical
}

fn main() {
    let mut out = String::from("BENCH_1.json");
    let mut cluster_out = String::from("BENCH_2.json");
    let mut postings_out = String::from("BENCH_3.json");
    let mut iopath_out = String::from("BENCH_4.json");
    let mut iopath_depth = 4usize;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(v) = args.next() {
                out = v;
            }
        } else if a == "--cluster-out" {
            if let Some(v) = args.next() {
                cluster_out = v;
            }
        } else if a == "--postings-out" {
            if let Some(v) = args.next() {
                postings_out = v;
            }
        } else if a == "--iopath-out" {
            if let Some(v) = args.next() {
                iopath_out = v;
            }
        } else if a == "--iopath-depth" {
            if let Some(v) = args.next() {
                iopath_depth = v.parse().expect("--iopath-depth takes an integer");
            }
        }
    }

    // Smoke-check the shared harness path once so the binary exercises
    // the exact entry points the figure binaries use.
    let warm = run_cached(
        50_000,
        cache_config(4 << 20, 40 << 20, PolicyKind::Cblru),
        2_000,
        SEED,
    );
    eprintln!("warm-up: {}", warm.summary());

    let naive = run_arm("reference", true);
    eprintln!(
        "reference: {} ({:.2}s wall)",
        naive.report.summary(),
        naive.wall_secs
    );
    let fast = run_arm("optimized", false);
    eprintln!(
        "optimized: {} ({:.2}s wall)",
        fast.report.summary(),
        fast.wall_secs
    );

    // The contract: every simulated figure is bit-identical across arms.
    let identical = naive.report.hit_ratio() == fast.report.hit_ratio()
        && naive.report.mean_response == fast.report.mean_response
        && naive.report.p99_response == fast.report.p99_response
        && naive.report.elapsed == fast.report.elapsed
        && naive.report.postings_scanned == fast.report.postings_scanned
        && cache_of(&naive.report) == cache_of(&fast.report)
        && naive.evictions == fast.evictions;
    let speedup = naive.wall_secs / fast.wall_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        arm_json(&naive),
        arm_json(&fast),
        identical,
        speedup,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write report to {out}: {e}"));
    println!("{json}");
    println!("wrote {out}; speedup {speedup:.2}x, sim figures identical: {identical}");

    let postings_identical = postings_regress(&postings_out);
    let cluster_identical = cluster_regress(&cluster_out);
    let iopath_identical = iopath_regress(&iopath_out, iopath_depth);

    if !identical {
        eprintln!("FAIL: simulated figures diverged between the engine arms");
    }
    if !postings_identical {
        eprintln!(
            "FAIL: postings backends diverged — bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --postings`"
        );
    }
    if !cluster_identical {
        eprintln!(
            "FAIL: cluster arms diverged — bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --cluster`"
        );
    }
    if !iopath_identical {
        eprintln!(
            "FAIL: the queued depth-1 FIFO arm diverged from the Direct \
             reference — bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --iopath`"
        );
    }
    if !identical || !postings_identical || !cluster_identical || !iopath_identical {
        std::process::exit(1);
    }
}
