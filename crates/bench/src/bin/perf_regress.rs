//! Performance-regression harness.
//!
//! **Engine arm** (PR 1, `BENCH_1.json`): runs one pinned, seeded
//! workload twice — once on the reference hot paths (linear victim
//! scans, `HashMap` top-K accumulator) and once on the optimized ones
//! (indexed victim selection, pooled open-addressed scratch) — and emits
//! a machine-readable JSON report.
//!
//! **Cluster arm** (PR 2, `BENCH_2.json`): runs one pinned, seeded
//! 4-shard cluster workload on both `ClusterExecution` arms — the
//! sequential reference loop and the persistent shard-worker pool — and
//! reports wall-clock for each, plus `max_worker_busy` (the pool's
//! critical path: what a machine with one core per worker would pay —
//! when workers outnumber cores the span absorbs preemption and
//! degenerates to the wall-clock). `available_parallelism` is recorded
//! because the wall-clock speedup is hardware-bound: on a single-core
//! container the pool can only tie the sequential arm; the ≥2x target
//! at 4 shards needs ≥2 free cores.
//!
//! **Postings arm** (PR 3, `BENCH_3.json`): runs the engine workload on
//! both `PostingsBackend`s — the uncompressed reference traversal and
//! the block-compressed lists with block-max skipping — with every other
//! toggle held at its optimized setting, so the measured gap is the
//! postings representation alone. The blocked arm additionally reports
//! its block-max accounting (bounds consulted, postings pruned without
//! decode) and the block store's encoded footprint.
//!
//! **I/O-path arm** (PR 4, `BENCH_4.json`): runs the engine workload
//! three times across the `IoPath` toggle — the synchronous `Direct`
//! reference, `Queued { depth: 1 }` + FIFO (which must be bit-identical
//! to `Direct`, queue accounting included), and `Queued { depth: 4 }` +
//! elevator scheduling, where NCQ-style reordering of the batched index
//! reads is *allowed* to move the simulated response times. A second
//! uncached seek-bound pair (`ncq_arms`) isolates the elevator's
//! benefit: with every query batching HDD index reads, depth-4 elevator
//! scheduling shortens the seek path and improves mean response — the
//! headline `response_time_ratio_vs_direct`. On the hybrid config the
//! cache SSD absorbs most reads and the dominant queueing effect is
//! RB-flush lane contention, so that ratio (`hybrid_response_time_*`)
//! dips slightly below 1 and is recorded alongside. Both deep arms
//! report measured mean/max device-queue occupancy.
//!
//! **Admission arm** (PR 6, `BENCH_5.json`): runs a scenario × policy
//! matrix — the stationary log plus the three adversarial streams
//! (drifting-Zipf, topic-churn, scan-heavy) against the static paper
//! gate (CBLRU and seeded CBSLRU) and the sketch-based admission tier
//! (CBLRU + TinyLFU filter, ghost cache, online TEV/window controller).
//! Here the figures are *supposed* to move: the committed claim is that
//! the sketch arm writes fewer SSD bytes and erases fewer flash blocks
//! on the churn and scan scenarios at an equal-or-better hit ratio. A
//! separate `static_bit_identical` check re-verifies the inertness
//! contract (sketch params present but policy `Static` changes nothing),
//! and a hasher micro-bench records the FxHash-vs-SipHash map speedup
//! behind the hot-path swap.
//!
//! **Offload arm** (PR 7, `BENCH_7.json`): the in-flash postings
//! intersection offload. A queue-depth × channel-count grid of
//! Host/`InFlash` engine pairs re-checks the bit-identity gate (full
//! `RunReport`, both submission-queue sections, the cache SSD's whole
//! `IoStats` mirror — the reference compute model is timing-neutral, so
//! *everything* but the bus ledger must agree), plus one
//! production-scale headline pair for the measured bus-bytes-crossed
//! reduction. A device-level selectivity microbench then prices the
//! offload under the *active* compute model across three regimes:
//! selective intersections (the claim regime — large bus reduction, scan
//! latency amortized across channels), sparse probes (host galloping
//! does far less device work), and dense matches (the offload honestly
//! *loses*: it crosses more bytes than the plain read and its serial
//! emit cost grows with channel count).
//!
//! **Mutation arm** (PR 9, `BENCH_8.json`): the live-index write path.
//! A zero-ingest `Live` engine is first checked bit-identical to the
//! `Frozen` seed arm (the mutability toggle's oracle). Then, across a
//! sweep of ingest mixes (mutation ops interleaved with queries at 5,
//! 25 and 100 ops per 100 queries, an eager seal/compact lifecycle so
//! merges actually happen), `Cooperative` compaction reconciliation is
//! run against naive `InvalidateAll`: the two must agree on every
//! result (equal order-insensitive digests, equal postings scanned) and
//! cooperative reconciliation must keep a better SSD list hit ratio on
//! the churn-heavy mixes — never worse there, strictly better on at
//! least one (the lightest mix drives too few compactions to gate on
//! and is recorded only). Each row
//! reports query p50/p99, SSD hit ratios, flash write-amplification and
//! erasures, and the mutation ledger (WAL bytes, seals, compactions,
//! merge traffic, background mutation I/O time).
//!
//! In the first three arms every **simulated figure must be bit-identical** (hit
//! ratio, response times, cache/flash counters, the full `RunReport` /
//! `ClusterReport`): the optimizations are behavior-preserving by
//! construction, and this harness re-checks that end-to-end on every
//! run. Wall-clock is the only number allowed to move.
//!
//!     cargo run --release -p bench --bin perf_regress \
//!         [-- --out PATH] [--cluster-out PATH] [--postings-out PATH] \
//!         [--iopath-out PATH] [--iopath-depth N] [--admission-out PATH] \
//!         [--serving-out PATH] [--offload-out PATH] [--mutation-out PATH]
//!
//! Exit status is non-zero if any arm's simulated figures diverge, or if
//! the admission arm's efficiency claim or the serving arm's
//! latency-vs-load claim fails to hold.

use std::time::Instant;

use bench::{cache_config, run_cached};
use engine::{
    detect_knee, ClusterExecution, ClusterReport, CompactionMode, EngineConfig, IndexMutability,
    IndexPlacement, LiveConfig, LoadPoint, OffloadMode, OpenLoopConfig, Outcome, PostingsBackend,
    RunReport, SearchCluster, SearchEngine, ServingMode, ServingOutcome, ServingReport, ServingSim,
};
use flashsim::{ComputeParams, FlashParams, PageMapFtl, SsdDisk};
use hybridcache::{AdmissionConfig, AdmissionPolicy, AdmissionStats, PolicyKind};
use searchidx::{
    flash_scan, host_gallop, BlockSortedList, DecodeArena, GrowthPolicy, MutationStats,
    OffloadPredicate, Posting, PostingList, SegmentPolicy,
};
use simclock::SimDuration;
use storagecore::{
    BlockDevice, Extent, IoPath, IoRequest, IoStats, QueueDepthStats, SchedulerPolicy,
    OFFLOAD_DESCRIPTOR_BYTES, SECTOR_SIZE,
};
use workload::{
    Arrival, ArrivalKind, ArrivalProcess, DriftingZipfLog, IngestSpec, IngestStream, MutationOp,
    Query, QueryLog, ScanHeavyLog, TopicChurnLog,
};

// The pinned workload: large enough that victim selection and top-K
// accumulation dominate, small enough for a CI-friendly run.
const DOCS: u64 = 400_000;
const QUERIES: usize = 30_000;
const SEED: u64 = 42;
const MEM_BYTES: u64 = 16 << 20;
const SSD_BYTES: u64 = 160 << 20;

// The pinned cluster workload: 4 document-partitioned shards (100 k docs
// each), per-shard CBLRU caches, one shared broadcast stream.
const CLUSTER_SHARDS: usize = 4;
const CLUSTER_DOCS: u64 = 400_000;
const CLUSTER_QUERIES: usize = 8_000;
const CLUSTER_MEM_BYTES: u64 = 4 << 20;
const CLUSTER_SSD_BYTES: u64 = 40 << 20;

// The pinned serving workload: a 2-replica tier of 2-shard clusters,
// swept over offered loads expressed as multiples of the naive
// (batch-1) aggregate capacity measured in-run.
const SERVING_SHARDS: usize = 2;
const SERVING_REPLICAS: usize = 2;
const SERVING_DOCS: u64 = 80_000;
const SERVING_QUERIES: usize = 2_000;
const SERVING_MEM_BYTES: u64 = 2 << 20;
const SERVING_SSD_BYTES: u64 = 20 << 20;
const SERVING_OVERHEAD: SimDuration = SimDuration::from_micros(500);
const SERVING_BATCH_MAX: usize = 16;
const SERVING_LOAD_FACTORS: [f64; 6] = [0.4, 0.7, 0.9, 1.0, 1.2, 1.5];
const SERVING_SCENARIOS: [&str; 3] = ["poisson", "bursty", "flash_crowd"];

/// Single home for the "this host timeshares" caveat (the engine,
/// cluster, and serving arms all need it): warns when the pool cannot
/// get one core per worker and returns whether that is the case, so
/// reports can record the flag instead of readers inferring it.
fn warn_if_timeshared(cores: usize, needed: usize, context: &str) -> bool {
    let timeshared = cores < needed;
    if timeshared {
        eprintln!(
            "WARNING: only {cores} core(s) for {needed} concurrent workers in the \
             {context} — wall-clock figures timeshare (speedups degrade toward 1x and \
             busy-spans absorb preemption); simulated figures are unaffected. Rerun on \
             a host with >= {needed} cores for meaningful wall-clock ratios"
        );
    }
    timeshared
}

/// One measured arm.
struct Arm {
    label: &'static str,
    report: RunReport,
    /// Evictions at the SSD stores (list evictions + RB collateral).
    evictions: u64,
    wall_secs: f64,
}

fn run_arm(label: &'static str, reference: bool) -> Arm {
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let policy = cfg.policy;
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
    e.set_reference_mode(reference);
    if matches!(policy, PolicyKind::Cbslru { .. }) {
        e.seed_static_from_log(QUERIES);
    }
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let (rc, ic) = e.cache().expect("cached config").store_stats();
    Arm {
        label,
        report,
        evictions: ic.evictions + rc.collateral_evictions,
        wall_secs,
    }
}

/// One measured postings arm.
struct PostingsArm {
    label: &'static str,
    report: RunReport,
    evictions: u64,
    wall_secs: f64,
    /// Block-max accounting (zeros on the reference backend).
    skips: searchidx::SkipStats,
    /// Block-store footprint (zeros on the reference backend).
    store: searchidx::BlockStoreStats,
}

fn run_postings_arm(label: &'static str, backend: PostingsBackend) -> PostingsArm {
    // Identical to the engine arm's workload; reference mode stays OFF on
    // both arms so the postings backend is the only difference.
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig {
        postings: backend,
        ..EngineConfig::cached(DOCS, cfg, SEED)
    });
    e.seed_static_from_log(QUERIES);
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let (rc, ic) = e.cache().expect("cached config").store_stats();
    PostingsArm {
        label,
        report,
        evictions: ic.evictions + rc.collateral_evictions,
        wall_secs,
        skips: e.postings_skip_stats(),
        store: e.postings_store_stats(),
    }
}

fn postings_arm_json(a: &PostingsArm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"postings_scanned\": {},\n",
            "      \"evictions\": {},\n",
            "      \"ssd_bytes_written\": {},\n",
            "      \"blockmax_bounds_probed\": {},\n",
            "      \"blockmax_postings_pruned\": {},\n",
            "      \"block_store_terms\": {},\n",
            "      \"block_store_built_postings\": {},\n",
            "      \"block_store_encoded_bytes\": {},\n",
            "      \"block_store_hot_postings\": {}\n",
            "    }}"
        ),
        a.label,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.elapsed.as_nanos(),
        r.postings_scanned,
        a.evictions,
        cache.ssd_bytes_written,
        a.skips.skip_probes,
        a.skips.skipped,
        a.store.terms,
        a.store.built_postings,
        a.store.encoded_bytes,
        a.store.hot_postings,
    )
}

/// Run both postings arms, emit `BENCH_3.json`, and return whether the
/// simulated figures were bit-identical.
fn postings_regress(out: &str) -> bool {
    let reference = run_postings_arm("reference_postings", PostingsBackend::Reference);
    eprintln!(
        "postings reference: {} ({:.2}s wall)",
        reference.report.summary(),
        reference.wall_secs
    );
    let blocked = run_postings_arm("blocked_postings", PostingsBackend::Blocked);
    eprintln!(
        "postings blocked:   {} ({:.2}s wall)",
        blocked.report.summary(),
        blocked.wall_secs
    );

    // The contract: the entire RunReport (and the store-level eviction
    // counters) is bit-identical — block-max skipping only removes work
    // the quit rules were about to remove posting-by-posting.
    let identical = reference.report == blocked.report && reference.evictions == blocked.evictions;
    let speedup = reference.wall_secs / blocked.wall_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_postings\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        postings_arm_json(&reference),
        postings_arm_json(&blocked),
        identical,
        speedup,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write postings report to {out}: {e}"));
    println!("{json}");
    println!("wrote {out}; postings speedup {speedup:.2}x, sim figures identical: {identical}");
    identical
}

fn cache_of(r: &RunReport) -> &hybridcache::CacheStats {
    r.cache.as_ref().expect("cached run")
}

fn arm_json(a: &Arm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"evictions\": {},\n",
            "      \"evictions_per_wall_sec\": {:.3},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_throughput_qps\": {:.17},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"postings_scanned\": {},\n",
            "      \"ssd_bytes_written\": {},\n",
            "      \"ssd_admissions\": {}\n",
            "    }}"
        ),
        a.label,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        a.evictions,
        a.evictions as f64 / a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.throughput_qps,
        r.elapsed.as_nanos(),
        r.postings_scanned,
        cache.ssd_bytes_written,
        cache.results.ssd_admissions + cache.lists.ssd_admissions,
    )
}

/// One measured cluster arm.
struct ClusterArm {
    label: &'static str,
    report: ClusterReport,
    wall_secs: f64,
    /// Pool workers (1 on the sequential arm's calling thread).
    workers: usize,
    /// Critical path: cumulative busy time of the busiest pool worker
    /// (equals `wall_secs` on the sequential arm).
    max_busy_secs: f64,
}

fn run_cluster_arm(label: &'static str, exec: ClusterExecution) -> ClusterArm {
    let cfg = EngineConfig::cached(
        CLUSTER_DOCS,
        cache_config(CLUSTER_MEM_BYTES, CLUSTER_SSD_BYTES, PolicyKind::Cblru),
        SEED,
    );
    let mut c = SearchCluster::new(cfg, CLUSTER_SHARDS);
    c.set_execution(exec);
    let workers = match c.execution() {
        ClusterExecution::Sequential => 1,
        ClusterExecution::Parallel { workers } => workers,
    };
    let t0 = Instant::now();
    let report = c.run(CLUSTER_QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let max_busy_secs = c.max_worker_busy().map_or(wall_secs, |d| d.as_secs_f64());
    ClusterArm {
        label,
        report,
        wall_secs,
        workers,
        max_busy_secs,
    }
}

fn cluster_arm_json(a: &ClusterArm) -> String {
    let r = &a.report;
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"workers\": {},\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"max_worker_busy_secs\": {:.6},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_mean_fastest_shard_ns\": {},\n",
            "      \"sim_throughput_qps\": {:.17},\n",
            "      \"sim_mean_hit_ratio\": {:.17},\n",
            "      \"sim_shard0_postings_scanned\": {}\n",
            "    }}"
        ),
        a.label,
        a.workers,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        a.max_busy_secs,
        r.mean_response.as_nanos(),
        r.mean_fastest_shard.as_nanos(),
        r.throughput_qps,
        r.mean_hit_ratio(),
        r.shards[0].postings_scanned,
    )
}

/// Run both cluster arms, emit `BENCH_2.json`, and return whether the
/// simulated figures were bit-identical.
fn cluster_regress(out: &str) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let seq = run_cluster_arm("sequential", ClusterExecution::Sequential);
    eprintln!(
        "cluster sequential: mean {} | {:.2} q/s sim | {:.2}s wall",
        seq.report.mean_response, seq.report.throughput_qps, seq.wall_secs
    );
    let par = run_cluster_arm(
        "parallel",
        ClusterExecution::Parallel {
            workers: CLUSTER_SHARDS,
        },
    );
    eprintln!(
        "cluster parallel:   mean {} | {:.2} q/s sim | {:.2}s wall ({:.2}s critical path)",
        par.report.mean_response, par.report.throughput_qps, par.wall_secs, par.max_busy_secs
    );

    // The contract: the full ClusterReport — per-query statistics,
    // virtual clock, every per-shard cache/flash counter — is identical.
    let identical = seq.report == par.report;
    let speedup = seq.wall_secs / par.wall_secs;
    let critical_path_speedup = seq.wall_secs / par.max_busy_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_cluster\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"shards\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes_per_shard\": {},\n",
            "    \"ssd_bytes_per_shard\": {},\n",
            "    \"policy\": \"CBLRU\"\n",
            "  }},\n",
            "  \"available_parallelism\": {},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3},\n",
            "  \"critical_path_speedup\": {:.3}\n",
            "}}\n"
        ),
        CLUSTER_DOCS,
        CLUSTER_SHARDS,
        CLUSTER_QUERIES,
        SEED,
        CLUSTER_MEM_BYTES,
        CLUSTER_SSD_BYTES,
        cores,
        cluster_arm_json(&seq),
        cluster_arm_json(&par),
        identical,
        speedup,
        critical_path_speedup,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write cluster report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; cluster speedup {speedup:.2}x wall ({critical_path_speedup:.2}x \
         critical-path, {cores} core(s) available), sim figures identical: {identical}"
    );
    warn_if_timeshared(cores, CLUSTER_SHARDS, "cluster arm");
    identical
}

/// One measured I/O-path arm.
struct IoPathArm {
    label: String,
    path: String,
    scheduler: &'static str,
    report: RunReport,
    wall_secs: f64,
    /// Submission-queue accounting at the index device.
    index_queue: QueueDepthStats,
    /// Submission-queue accounting at the cache SSD.
    cache_queue: QueueDepthStats,
    /// Full cache-SSD stats (part of the bit-identity contract).
    cache_dev: IoStats,
}

fn run_iopath_arm(
    label: String,
    path_name: String,
    sched_name: &'static str,
    path: IoPath,
    policy: SchedulerPolicy,
) -> IoPathArm {
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
    e.seed_static_from_log(QUERIES);
    e.set_io_path(path);
    e.set_io_scheduler(policy);
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    IoPathArm {
        label,
        path: path_name,
        scheduler: sched_name,
        report,
        wall_secs,
        index_queue: e.index_queue_stats(),
        cache_queue: e.cache_queue_stats(),
        cache_dev: e.cache().expect("cached config").device().stats().clone(),
    }
}

/// One measured NCQ arm: the uncached seek-bound workload, where the
/// index HDD's queue is the bottleneck and elevator reordering is the
/// whole effect.
struct NcqArm {
    label: String,
    path: String,
    scheduler: &'static str,
    report: RunReport,
    wall_secs: f64,
    index_queue: QueueDepthStats,
}

/// Every query misses (no cache), so each one batches its index reads —
/// this is the workload where the device queue actually fills and the
/// elevator's seek-shortening shows up as a response-time win.
const NCQ_QUERIES: usize = 10_000;

fn run_ncq_arm(
    label: String,
    path_name: String,
    sched_name: &'static str,
    path: IoPath,
    policy: SchedulerPolicy,
) -> NcqArm {
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, SEED));
    e.set_io_path(path);
    e.set_io_scheduler(policy);
    let report = e.run(NCQ_QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    NcqArm {
        label,
        path: path_name,
        scheduler: sched_name,
        report,
        wall_secs,
        index_queue: e.index_queue_stats(),
    }
}

fn ncq_arm_json(a: &NcqArm) -> String {
    let r = &a.report;
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"io_path\": \"{}\",\n",
            "      \"scheduler\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"index_queue_dispatches\": {},\n",
            "      \"index_queue_mean_occupancy\": {:.6},\n",
            "      \"index_queue_max_occupancy\": {},\n",
            "      \"index_queue_mean_wait_ns\": {},\n",
            "      \"index_queue_max_wait_ns\": {}\n",
            "    }}"
        ),
        a.label,
        a.path,
        a.scheduler,
        a.wall_secs,
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.elapsed.as_nanos(),
        a.index_queue.dispatches(),
        a.index_queue.mean_occupancy(),
        a.index_queue.max_occupancy(),
        a.index_queue.mean_wait().as_nanos(),
        a.index_queue.max_wait().as_nanos(),
    )
}

fn iopath_arm_json(a: &IoPathArm) -> String {
    let r = &a.report;
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"io_path\": \"{}\",\n",
            "      \"scheduler\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"index_queue_dispatches\": {},\n",
            "      \"index_queue_mean_occupancy\": {:.6},\n",
            "      \"index_queue_max_occupancy\": {},\n",
            "      \"index_queue_mean_wait_ns\": {},\n",
            "      \"index_queue_max_wait_ns\": {},\n",
            "      \"cache_queue_dispatches\": {},\n",
            "      \"cache_queue_mean_occupancy\": {:.6},\n",
            "      \"cache_queue_max_occupancy\": {}\n",
            "    }}"
        ),
        a.label,
        a.path,
        a.scheduler,
        a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.elapsed.as_nanos(),
        a.index_queue.dispatches(),
        a.index_queue.mean_occupancy(),
        a.index_queue.max_occupancy(),
        a.index_queue.mean_wait().as_nanos(),
        a.index_queue.max_wait().as_nanos(),
        a.cache_queue.dispatches(),
        a.cache_queue.mean_occupancy(),
        a.cache_queue.max_occupancy(),
    )
}

/// Run the three I/O-path arms, emit `BENCH_4.json`, and return whether
/// the depth-1 FIFO arm was bit-identical to the `Direct` reference.
/// `depth` sets the deep arm's queue depth (4 in the committed report;
/// `--iopath-depth` sweeps it).
fn iopath_regress(out: &str, depth: usize) -> bool {
    let direct = run_iopath_arm(
        "direct".into(),
        "direct".into(),
        "fifo",
        IoPath::Direct,
        SchedulerPolicy::Fifo,
    );
    eprintln!(
        "iopath direct:   {} ({:.2}s wall)",
        direct.report.summary(),
        direct.wall_secs
    );
    let queued1 = run_iopath_arm(
        "queued_depth1_fifo".into(),
        "queued(1)".into(),
        "fifo",
        IoPath::Queued { depth: 1 },
        SchedulerPolicy::Fifo,
    );
    eprintln!(
        "iopath queued-1: {} ({:.2}s wall)",
        queued1.report.summary(),
        queued1.wall_secs
    );
    let deep = run_iopath_arm(
        format!("queued_depth{depth}_elevator"),
        format!("queued({depth})"),
        "elevator",
        IoPath::Queued { depth },
        SchedulerPolicy::Elevator,
    );
    eprintln!(
        "iopath queued-{depth}: {} ({:.2}s wall)",
        deep.report.summary(),
        deep.wall_secs
    );

    // The NCQ pair: the uncached seek-bound workload, where every query
    // batches index reads and elevator reordering shortens the seek path.
    let ncq_direct = run_ncq_arm(
        "ncq_direct".into(),
        "direct".into(),
        "fifo",
        IoPath::Direct,
        SchedulerPolicy::Fifo,
    );
    eprintln!(
        "ncq direct:      {} ({:.2}s wall)",
        ncq_direct.report.summary(),
        ncq_direct.wall_secs
    );
    let ncq_deep = run_ncq_arm(
        format!("ncq_queued_depth{depth}_elevator"),
        format!("queued({depth})"),
        "elevator",
        IoPath::Queued { depth },
        SchedulerPolicy::Elevator,
    );
    eprintln!(
        "ncq queued-{depth}:    {} ({:.2}s wall)",
        ncq_deep.report.summary(),
        ncq_deep.wall_secs
    );

    // The contract: at depth 1 + FIFO the pipeline degenerates to the
    // synchronous call tree — the full RunReport, both submission-queue
    // sections, and the cache SSD's complete IoStats are bit-identical.
    let identical = direct.report == queued1.report
        && direct.index_queue == queued1.index_queue
        && direct.cache_queue == queued1.cache_queue
        && direct.cache_dev == queued1.cache_dev;
    // The headline: NCQ reordering is *supposed* to move response times
    // downward on the seek-bound workload (elevator shortens each
    // batch's seek path). On the hybrid config the same deep queue is
    // reported too, but there the cache SSD absorbs most reads and the
    // dominant queueing effect is RB-flush lane contention — that ratio
    // dips slightly below 1 and is recorded honestly alongside.
    let response_ratio = ncq_direct.report.mean_response.as_nanos() as f64
        / ncq_deep.report.mean_response.as_nanos() as f64;
    let hybrid_ratio =
        direct.report.mean_response.as_nanos() as f64 / deep.report.mean_response.as_nanos() as f64;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_iopath\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"queue_depth\": {},\n",
            "  \"arms\": [\n{},\n{},\n{}\n  ],\n",
            "  \"ncq_workload\": {{ \"docs\": {}, \"queries\": {}, \"placement\": \"hdd_no_cache\" }},\n",
            "  \"ncq_arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"deep_max_device_queue_occupancy\": {},\n",
            "  \"deep_mean_device_queue_occupancy\": {:.6},\n",
            "  \"response_time_ratio_vs_direct\": {:.6},\n",
            "  \"hybrid_deep_max_device_queue_occupancy\": {},\n",
            "  \"hybrid_response_time_ratio_vs_direct\": {:.6}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        depth,
        iopath_arm_json(&direct),
        iopath_arm_json(&queued1),
        iopath_arm_json(&deep),
        DOCS,
        NCQ_QUERIES,
        ncq_arm_json(&ncq_direct),
        ncq_arm_json(&ncq_deep),
        identical,
        ncq_deep.index_queue.max_occupancy(),
        ncq_deep.index_queue.mean_occupancy(),
        response_ratio,
        deep.index_queue.max_occupancy(),
        hybrid_ratio,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write iopath report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; depth-{depth} NCQ response ratio {response_ratio:.3}x \
         (max queue occupancy {}), hybrid deep ratio {hybrid_ratio:.3}x, \
         depth-1 identical: {identical}",
        ncq_deep.index_queue.max_occupancy()
    );
    identical
}

// The pinned admission workload: same corpus and budgets as the engine
// arm, driven by each scenario's 30 k-query stream.
const ADM_QUERIES: usize = 30_000;

/// The admission scenario × policy matrix.
const ADM_SCENARIOS: [&str; 4] = ["stationary", "drifting_zipf", "topic_churn", "scan_heavy"];

/// Generate one scenario's query stream off the engine's own log.
fn admission_stream(log: &QueryLog, scenario: &str, n: usize) -> Vec<Query> {
    match scenario {
        "stationary" => log.stream(n),
        // Six phases: the Zipf head flattens to α=0.4 on odd phases while
        // the rank→identity mapping rotates by a prime each phase.
        "drifting_zipf" => DriftingZipfLog::new(log.clone(), n as u64 / 6, 0.4, 7_919)
            .stream_iter(n)
            .collect(),
        // Ten abrupt topic changeovers, zero cross-phase reuse.
        "topic_churn" => TopicChurnLog::new(log.clone(), n as u64 / 10)
            .stream_iter(n)
            .collect(),
        // A third of the stream is never-repeating scan queries.
        "scan_heavy" => ScanHeavyLog::new(log.clone(), 4, 2)
            .stream_iter(n)
            .collect(),
        other => unreachable!("unknown scenario {other}"),
    }
}

/// One measured admission arm.
struct AdmissionArm {
    label: &'static str,
    report: RunReport,
    wall_secs: f64,
    admission: AdmissionStats,
    /// The controller's final TEV (the configured base under `Static`).
    final_tev: f64,
}

fn run_admission_arm(
    label: &'static str,
    policy: PolicyKind,
    admission: AdmissionConfig,
    seed_static: bool,
    queries: &[Query],
) -> AdmissionArm {
    let mut cache = cache_config(MEM_BYTES, SSD_BYTES, policy);
    cache.admission = admission;
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cache, SEED));
    if seed_static {
        e.seed_static_from_log(queries.len());
    }
    let report = e.run_queries(queries);
    let wall_secs = t0.elapsed().as_secs_f64();
    let m = e.cache().expect("cached config");
    AdmissionArm {
        label,
        report,
        wall_secs,
        admission: m.admission_stats(),
        final_tev: m.admission().tev(),
    }
}

fn admission_arm_json(a: &AdmissionArm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    let s = &a.admission;
    format!(
        concat!(
            "        {{\n",
            "          \"label\": \"{}\",\n",
            "          \"wall_clock_secs\": {:.6},\n",
            "          \"sim_hit_ratio\": {:.17},\n",
            "          \"sim_mean_response_ns\": {},\n",
            "          \"ssd_bytes_written\": {},\n",
            "          \"block_erases\": {},\n",
            "          \"ssd_admissions\": {},\n",
            "          \"ssd_rejections\": {},\n",
            "          \"sketch_list_filtered\": {},\n",
            "          \"sketch_result_filtered\": {},\n",
            "          \"ghost_fast_tracks\": {},\n",
            "          \"controller_epochs\": {},\n",
            "          \"controller_tev_raises\": {},\n",
            "          \"controller_tev_cuts\": {},\n",
            "          \"controller_window_shrinks\": {},\n",
            "          \"controller_window_grows\": {},\n",
            "          \"final_tev\": {:.6}\n",
            "        }}"
        ),
        a.label,
        a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        cache.ssd_bytes_written,
        r.flash.map_or(0, |f| f.block_erases),
        cache.results.ssd_admissions + cache.lists.ssd_admissions,
        cache.results.ssd_rejections + cache.lists.ssd_rejections,
        s.list_filtered,
        s.result_filtered,
        s.list_fast_tracks + s.result_fast_tracks,
        s.epochs,
        s.tev_raises,
        s.tev_cuts,
        s.window_shrinks,
        s.window_grows,
        a.final_tev,
    )
}

/// Re-verify the inertness contract end-to-end: an engine whose config
/// carries the full sketch parameter block pinned to `Static` must
/// produce the same `RunReport` (and store counters) as one with the
/// bare static default, on the most stateful config (seeded CBSLRU).
fn admission_static_identity(queries: &[Query]) -> bool {
    let policy = PolicyKind::Cbslru {
        static_fraction: 0.3,
    };
    let run = |admission: AdmissionConfig| {
        let mut cache = cache_config(MEM_BYTES, SSD_BYTES, policy);
        cache.admission = admission;
        let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cache, SEED));
        e.seed_static_from_log(queries.len());
        let report = e.run_queries(queries);
        let stores = e.cache().expect("cached config").store_stats();
        (report, stores)
    };
    let bare = run(AdmissionConfig::static_default());
    let mut pinned = AdmissionConfig::sketch_default();
    pinned.policy = AdmissionPolicy::Static;
    let inert = run(pinned);
    bare == inert
}

/// Time `ops` insert+probe rounds on both map flavors: the std SipHash
/// default that the hot paths used before the swap, and the `fxmap`
/// maps they use now. Returns (siphash_secs, fxhash_secs).
fn hasher_microbench() -> (f64, f64) {
    const KEYS: u64 = 400_000;
    const ROUNDS: usize = 4;
    fn drive<M>(
        mut insert: impl FnMut(&mut M, u64),
        mut probe: impl FnMut(&M, u64) -> u64,
        mut fresh: impl FnMut() -> M,
    ) -> (f64, u64) {
        let t0 = Instant::now();
        let mut sink = 0u64;
        for _ in 0..ROUNDS {
            let mut m = fresh();
            for k in 0..KEYS {
                insert(&mut m, k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            for k in 0..KEYS {
                sink ^= probe(&m, k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        (t0.elapsed().as_secs_f64(), sink)
    }
    let (sip, sink_a) = drive(
        |m: &mut std::collections::HashMap<u64, u64>, k| {
            m.insert(k, k >> 7);
        },
        |m, k| m.get(&k).copied().unwrap_or(0),
        std::collections::HashMap::new,
    );
    let (fx, sink_b) = drive(
        |m: &mut fxmap::FxHashMap<u64, u64>, k| {
            m.insert(k, k >> 7);
        },
        |m, k| m.get(&k).copied().unwrap_or(0),
        fxmap::FxHashMap::default,
    );
    assert_eq!(sink_a, sink_b, "map flavors disagreed on contents");
    (sip, fx)
}

/// Run the admission scenario × policy matrix, emit `BENCH_5.json`, and
/// return whether (a) the static arm stayed bit-identical with sketch
/// params present, and (b) the sketch arm's efficiency claim held on the
/// churn and scan scenarios.
fn admission_regress(out: &str) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    warn_if_timeshared(cores, 4, "admission arm");

    // One throwaway engine donates the log all scenario streams share.
    let log = SearchEngine::new(EngineConfig::cached(
        DOCS,
        cache_config(MEM_BYTES, SSD_BYTES, PolicyKind::Cblru),
        SEED,
    ))
    .log()
    .clone();

    let policies: [(&str, PolicyKind, AdmissionConfig, bool); 3] = [
        (
            "static_cblru",
            PolicyKind::Cblru,
            AdmissionConfig::static_default(),
            false,
        ),
        (
            "static_cbslru",
            PolicyKind::Cbslru {
                static_fraction: 0.3,
            },
            AdmissionConfig::static_default(),
            true,
        ),
        (
            "sketch_cblru",
            PolicyKind::Cblru,
            AdmissionConfig::sketch_default(),
            false,
        ),
    ];

    let mut scenario_blocks = Vec::new();
    let mut claim_lines = Vec::new();
    let mut claims_hold = true;
    for scenario in ADM_SCENARIOS {
        let stream = admission_stream(&log, scenario, ADM_QUERIES);
        let arms: Vec<AdmissionArm> = policies
            .iter()
            .map(|&(label, policy, admission, seeded)| {
                let a = run_admission_arm(label, policy, admission, seeded, &stream);
                eprintln!(
                    "admission {scenario:>13} {label:>14}: hit {:.2}% | {} B written | {} erases \
                     ({:.2}s wall)",
                    a.report.hit_ratio() * 100.0,
                    cache_of(&a.report).ssd_bytes_written,
                    a.report.flash.map_or(0, |f| f.block_erases),
                    a.wall_secs
                );
                a
            })
            .collect();

        // The headline claim, checked on the adversarial scenarios: the
        // sketch gate spends strictly fewer SSD bytes (and no more
        // erasures) than the static gate on the same base policy, without
        // giving up hit ratio.
        if matches!(scenario, "topic_churn" | "scan_heavy") {
            let stat = &arms[0];
            let sketch = &arms[2];
            let bytes_reduced = cache_of(&sketch.report).ssd_bytes_written
                < cache_of(&stat.report).ssd_bytes_written;
            let erases_not_worse = sketch.report.flash.map_or(0, |f| f.block_erases)
                <= stat.report.flash.map_or(0, |f| f.block_erases);
            let hit_not_worse = sketch.report.hit_ratio() >= stat.report.hit_ratio();
            claims_hold &= bytes_reduced && erases_not_worse && hit_not_worse;
            claim_lines.push(format!(
                concat!(
                    "    {{ \"scenario\": \"{}\", \"bytes_reduced\": {}, ",
                    "\"erases_not_worse\": {}, \"hit_ratio_not_worse\": {} }}"
                ),
                scenario, bytes_reduced, erases_not_worse, hit_not_worse
            ));
        }

        let arm_json: Vec<String> = arms.iter().map(admission_arm_json).collect();
        scenario_blocks.push(format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"arms\": [\n{}\n      ]\n    }}",
            scenario,
            arm_json.join(",\n")
        ));
    }

    let static_identical =
        admission_static_identity(&admission_stream(&log, "stationary", ADM_QUERIES));
    eprintln!("admission static bit-identity (sketch params pinned to Static): {static_identical}");

    let (sip_secs, fx_secs) = hasher_microbench();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_admission\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries_per_scenario\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {}\n",
            "  }},\n",
            "  \"cores\": {},\n",
            "  \"hasher_swap\": {{\n",
            "    \"note\": \"hot-path maps moved from std SipHash to fxmap; 400k u64 insert+probe rounds\",\n",
            "    \"siphash_map_secs\": {:.6},\n",
            "    \"fxhash_map_secs\": {:.6},\n",
            "    \"speedup\": {:.3}\n",
            "  }},\n",
            "  \"static_bit_identical\": {},\n",
            "  \"scenarios\": [\n{}\n  ],\n",
            "  \"claims\": [\n{}\n  ],\n",
            "  \"admission_claims_hold\": {}\n",
            "}}\n"
        ),
        DOCS,
        ADM_QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        cores,
        sip_secs,
        fx_secs,
        sip_secs / fx_secs,
        static_identical,
        scenario_blocks.join(",\n"),
        claim_lines.join(",\n"),
        claims_hold,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write admission report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; admission claims hold: {claims_hold}, static identical: {static_identical}"
    );
    static_identical && claims_hold
}

fn serving_cfg() -> EngineConfig {
    EngineConfig::cached(
        SERVING_DOCS,
        cache_config(SERVING_MEM_BYTES, SERVING_SSD_BYTES, PolicyKind::Cblru),
        SEED,
    )
}

/// Arrival stream for one (scenario, rate) cell. Every scenario is
/// parameterized so its *mean* rate is `rate_qps`; the shapes differ
/// (steady Poisson, 2-state MMPP bursts, a flash crowd a third of the
/// way into the horizon).
fn serving_arrivals(scenario: &str, rate_qps: f64, log: &QueryLog) -> Vec<Arrival> {
    let horizon_secs = SERVING_QUERIES as f64 / rate_qps;
    let kind = match scenario {
        "poisson" => ArrivalKind::Poisson { rate_qps },
        "bursty" => ArrivalKind::Bursty {
            base_qps: 0.5 * rate_qps,
            burst_qps: 1.5 * rate_qps,
            mean_dwell_secs: (horizon_secs / 20.0).max(0.05),
        },
        "flash_crowd" => ArrivalKind::FlashCrowd {
            base_qps: 0.8 * rate_qps,
            spike_factor: 4.0,
            spike_start_secs: horizon_secs / 3.0,
            spike_secs: horizon_secs / 6.0,
        },
        other => panic!("unknown serving scenario {other}"),
    };
    ArrivalProcess::new(log.clone(), kind).generate(SERVING_QUERIES)
}

/// One measured load point of one serving arm.
struct ServingPoint {
    factor: f64,
    report: ServingReport,
}

/// Run one (config, arrival stream) cell on a fresh replicated tier and
/// return the report plus per-replica per-worker busy time.
fn run_serving_point(oc: OpenLoopConfig, arr: &[Arrival]) -> (ServingReport, Vec<Vec<f64>>) {
    let mut sim = ServingSim::new(
        serving_cfg(),
        SERVING_SHARDS,
        SERVING_REPLICAS,
        ServingMode::OpenLoop(oc),
    );
    sim.set_execution(ClusterExecution::Parallel {
        workers: SERVING_SHARDS,
    });
    let report = match sim.run(arr) {
        ServingOutcome::Open(r) => r,
        ServingOutcome::Closed(_) => unreachable!("mode is OpenLoop"),
    };
    let busy: Vec<Vec<f64>> = (0..SERVING_REPLICAS)
        .map(|i| {
            sim.replica(i)
                .worker_busy()
                .map(|b| b.iter().map(|d| d.as_secs_f64()).collect())
                .unwrap_or_default()
        })
        .collect();
    (report, busy)
}

/// The serving arm's equivalence gate, part 1: `ServingMode::ClosedLoop`
/// must be the seed's closed-loop harness verbatim.
fn serving_closed_loop_identity(log: &QueryLog) -> bool {
    let arr = serving_arrivals("poisson", 100.0, log);
    let mut via = ServingSim::new(serving_cfg(), SERVING_SHARDS, 1, ServingMode::ClosedLoop);
    let through_serving = match via.run(&arr) {
        ServingOutcome::Closed(r) => r,
        ServingOutcome::Open(_) => unreachable!("mode is ClosedLoop"),
    };
    let queries: Vec<Query> = arr.iter().map(|a| a.query.clone()).collect();
    let mut bare = SearchCluster::new(serving_cfg(), SERVING_SHARDS);
    through_serving == bare.run_queries(&queries)
}

/// The serving arm's equivalence gate, part 2: the open loop at the
/// reference configuration must produce per-query service times and
/// cumulative shard reports bit-identical to the closed loop.
fn serving_reference_identity(log: &QueryLog) -> bool {
    let arr = serving_arrivals("poisson", 100.0, log);
    let mut open = ServingSim::new(
        serving_cfg(),
        SERVING_SHARDS,
        1,
        ServingMode::OpenLoop(OpenLoopConfig::reference()),
    );
    match open.run(&arr) {
        ServingOutcome::Open(_) => {}
        ServingOutcome::Closed(_) => unreachable!("mode is OpenLoop"),
    }
    let mut closed = SearchCluster::new(serving_cfg(), SERVING_SHARDS);
    for (rec, a) in open.records().iter().zip(&arr) {
        let response = closed.execute(&a.query);
        match rec.outcome {
            Outcome::Answered { service, .. } if service == response => {}
            _ => return false,
        }
    }
    open.replica_mut(0).run_queries(&[]) == closed.run_queries(&[])
}

fn serving_point_json(p: &ServingPoint) -> String {
    let r = &p.report;
    format!(
        concat!(
            "        {{ \"load_factor\": {:.2}, \"offered_qps\": {:.2}, ",
            "\"goodput_qps\": {:.2}, \"arrivals\": {}, \"answered\": {}, ",
            "\"shed\": {}, \"shed_rate\": {:.4}, \"deadline_misses\": {}, ",
            "\"miss_rate\": {:.4}, \"degraded\": {}, \"mean_ms\": {:.3}, ",
            "\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, ",
            "\"max_ms\": {:.3}, \"mean_queue_wait_ms\": {:.3}, ",
            "\"mean_batch\": {:.2}, \"batches\": {}, \"hedges_issued\": {}, ",
            "\"hedges_won\": {}, \"hedge_wasted_ms\": {:.3} }}"
        ),
        p.factor,
        r.offered_qps,
        r.goodput_qps,
        r.arrivals,
        r.answered,
        r.shed,
        r.shed as f64 / r.arrivals.max(1) as f64,
        r.deadline_misses,
        r.deadline_misses as f64 / r.answered.max(1) as f64,
        r.degraded,
        r.mean_response.as_millis_f64(),
        r.p50_response.as_millis_f64(),
        r.p99_response.as_millis_f64(),
        r.p999_response.as_millis_f64(),
        r.max_response.as_millis_f64(),
        r.mean_queue_wait.as_millis_f64(),
        r.mean_batch,
        r.batches,
        r.hedges_issued,
        r.hedges_won,
        r.hedge_wasted.as_millis_f64(),
    )
}

/// Sweep offered load over every scenario on both serving arms, emit
/// `BENCH_6.json`, and return whether the equivalence gates and the
/// latency-vs-load claim (batching + admission + hedging reaches a
/// later knee, or a lower p99 at the top load, than naive FIFO) held.
fn serving_regress(out: &str) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Each replica runs a SERVING_SHARDS-worker pool concurrently.
    let timeshared = warn_if_timeshared(cores, SERVING_SHARDS * SERVING_REPLICAS, "serving arm");

    let log = SearchCluster::new(serving_cfg(), SERVING_SHARDS)
        .log()
        .clone();

    // Calibrate: the closed loop's mean response is the per-query
    // service cost s, so one replica at batch 1 absorbs 1/(s + o) qps
    // and the tier absorbs REPLICAS times that.
    let mean_service = SearchCluster::new(serving_cfg(), SERVING_SHARDS)
        .run(500)
        .mean_response;
    let naive_capacity = SERVING_REPLICAS as f64 / (mean_service + SERVING_OVERHEAD).as_secs_f64();
    let deadline = (mean_service + SERVING_OVERHEAD) * 6;
    eprintln!(
        "serving calibration: mean service {mean_service}, naive tier capacity \
         {naive_capacity:.1} qps, deadline {deadline}"
    );

    let closed_identical = serving_closed_loop_identity(&log);
    let reference_identical = serving_reference_identity(&log);
    eprintln!(
        "serving equivalence: closed-loop verbatim {closed_identical}, \
         open-loop reference bit-identical {reference_identical}"
    );

    let naive_cfg = OpenLoopConfig::naive_fifo(deadline, SERVING_OVERHEAD);
    let mut batched_cfg = OpenLoopConfig::batched(deadline, SERVING_OVERHEAD, SERVING_BATCH_MAX);
    // Deliberately conservative: on a deterministic tier a slow query is
    // intrinsically expensive, not noisy, so duplicating it can only win
    // via the other replica's cache. Measured at 1.5x the mean the
    // trigger fires on ~70% of answered queries with zero wins and drags
    // the poisson knee from 106.6 to 60.9 qps; at 3x it stays dormant on
    // this workload and acts as a straggler guardrail.
    batched_cfg.hedge_after = Some(mean_service * 3);
    let arms: [(&str, OpenLoopConfig); 2] = [
        ("naive_fifo", naive_cfg),
        ("batched_shed_hedge", batched_cfg),
    ];

    let mut scenario_blocks = Vec::new();
    let mut claim_lines = Vec::new();
    let mut claims_hold = true;
    let mut last_busy: Vec<Vec<f64>> = Vec::new();
    for scenario in SERVING_SCENARIOS {
        let mut arm_blocks = Vec::new();
        let mut knees = Vec::new();
        let mut top_p99s = Vec::new();
        for (label, oc) in &arms {
            let mut points = Vec::new();
            for &factor in &SERVING_LOAD_FACTORS {
                let arr = serving_arrivals(scenario, factor * naive_capacity, &log);
                let (report, busy) = run_serving_point(*oc, &arr);
                eprintln!(
                    "serving {scenario:>11} {label:>18} x{factor:.1}: offered {:>7.1} qps, \
                     goodput {:>7.1} qps, p99 {}, shed {}",
                    report.offered_qps, report.goodput_qps, report.p99_response, report.shed
                );
                last_busy = busy;
                points.push(ServingPoint { factor, report });
            }
            let curve: Vec<LoadPoint> = points
                .iter()
                .map(|p| LoadPoint {
                    offered_qps: p.report.offered_qps,
                    goodput_qps: p.report.goodput_qps,
                })
                .collect();
            let knee = detect_knee(&curve);
            let top_p99 = points
                .last()
                .map_or(SimDuration::ZERO, |p| p.report.p99_response);
            knees.push(knee);
            top_p99s.push(top_p99);
            let point_json: Vec<String> = points.iter().map(serving_point_json).collect();
            arm_blocks.push(format!(
                concat!(
                    "      {{\n",
                    "        \"label\": \"{}\",\n",
                    "        \"knee_qps\": {:.2},\n",
                    "        \"points\": [\n{}\n        ]\n",
                    "      }}"
                ),
                label,
                knee,
                point_json.join(",\n"),
            ));
        }
        // The claim, per scenario: the optimized front-end either pushes
        // the saturation knee measurably later (>5%) or answers with a
        // measurably lower p99 at the top offered load.
        let knee_later = knees[1] > knees[0] * 1.05;
        let p99_lower = top_p99s[1] < top_p99s[0];
        let holds = knee_later || p99_lower;
        claims_hold &= holds;
        claim_lines.push(format!(
            "    {{ \"scenario\": \"{}\", \"naive_knee_qps\": {:.2}, \
             \"batched_knee_qps\": {:.2}, \"naive_top_p99_ms\": {:.3}, \
             \"batched_top_p99_ms\": {:.3}, \"holds\": {} }}",
            scenario,
            knees[0],
            knees[1],
            top_p99s[0].as_millis_f64(),
            top_p99s[1].as_millis_f64(),
            holds,
        ));
        scenario_blocks.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"arms\": [\n{}\n      ]\n    }}",
            scenario,
            arm_blocks.join(",\n"),
        ));
    }

    let busy_json: Vec<String> = last_busy
        .iter()
        .map(|replica| {
            let workers: Vec<String> = replica.iter().map(|b| format!("{b:.4}")).collect();
            format!("[{}]", workers.join(", "))
        })
        .collect();
    let ok = closed_identical && reference_identical && claims_hold;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_serving\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"shards\": {},\n",
            "    \"replicas\": {},\n",
            "    \"queries_per_point\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes_per_shard\": {},\n",
            "    \"ssd_bytes_per_shard\": {},\n",
            "    \"policy\": \"CBLRU\",\n",
            "    \"deadline_ms\": {:.3},\n",
            "    \"dispatch_overhead_us\": {},\n",
            "    \"batch_max\": {},\n",
            "    \"load_factors\": [{}]\n",
            "  }},\n",
            "  \"host\": {{\n",
            "    \"available_parallelism\": {},\n",
            "    \"workers_needed\": {},\n",
            "    \"timeshared\": {},\n",
            "    \"per_worker_busy_secs\": [{}]\n",
            "  }},\n",
            "  \"calibration\": {{\n",
            "    \"mean_service_ms\": {:.3},\n",
            "    \"naive_capacity_qps\": {:.2}\n",
            "  }},\n",
            "  \"closed_loop_bit_identical\": {},\n",
            "  \"open_loop_reference_bit_identical\": {},\n",
            "  \"scenarios\": [\n{}\n  ],\n",
            "  \"claims\": [\n{}\n  ],\n",
            "  \"serving_claims_hold\": {}\n",
            "}}\n"
        ),
        SERVING_DOCS,
        SERVING_SHARDS,
        SERVING_REPLICAS,
        SERVING_QUERIES,
        SEED,
        SERVING_MEM_BYTES,
        SERVING_SSD_BYTES,
        deadline.as_millis_f64(),
        SERVING_OVERHEAD.as_nanos() / 1_000,
        SERVING_BATCH_MAX,
        SERVING_LOAD_FACTORS
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
        cores,
        SERVING_SHARDS * SERVING_REPLICAS,
        timeshared,
        busy_json.join(", "),
        mean_service.as_millis_f64(),
        naive_capacity,
        closed_identical,
        reference_identical,
        scenario_blocks.join(",\n"),
        claim_lines.join(",\n"),
        ok,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write serving report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; closed-loop identical: {closed_identical}, reference identical: \
         {reference_identical}, load-curve claims hold: {claims_hold}"
    );
    ok
}

// The pinned offload gate grid: a small corpus with a deliberately tight
// memory tier, so postings lists spill to the SSD list store — the reads
// the offload toggle routes — within the first few hundred queries of
// every cell.
const OFFL_DOCS: u64 = 40_000;
const OFFL_QUERIES: usize = 2_000;
const OFFL_MEM_BYTES: u64 = 256 << 10;
const OFFL_SSD_BYTES: u64 = 2 << 20;
const OFFL_DEPTHS: [usize; 3] = [1, 4, 8];
const OFFL_CHANNELS: [u32; 3] = [1, 4, 8];

/// One gate cell: a Host/`InFlash` engine pair on identical configs.
struct OffloadCell {
    depth: usize,
    channels: u32,
    /// Whether every simulated figure outside the bus ledger agreed.
    identical: bool,
    offload_ops: u64,
    saved_bytes: i64,
    host_bus_bytes: u64,
    flash_bus_bytes: u64,
    wall_secs: f64,
}

/// Run one Host/`InFlash` pair. `depth == 0` means the `Direct` I/O path.
fn run_offload_pair(
    docs: u64,
    queries: usize,
    mem: u64,
    ssd: u64,
    depth: usize,
    channels: u32,
) -> OffloadCell {
    let t0 = Instant::now();
    let mk = |mode| {
        let mut cfg = EngineConfig::cached(docs, cache_config(mem, ssd, PolicyKind::Cblru), SEED);
        cfg.ssd_channels = channels;
        let mut e = SearchEngine::new(cfg);
        if depth > 0 {
            e.set_io_path(IoPath::Queued { depth });
        }
        e.set_offload_mode(mode);
        e
    };
    let mut host = mk(OffloadMode::Host);
    let mut flash = mk(OffloadMode::InFlash);
    let rh = host.run(queries);
    let rf = flash.run(queries);
    // The gate: the reference compute model is timing-neutral, so the
    // full report (responses, match sets, cache counters), both
    // submission-queue sections, and the pipeline wrapper's whole
    // IoStats mirror (bus-free by design) must be bit-identical. Only
    // the inner SSD's bus ledger may move.
    let identical = rh == rf
        && host.index_queue_stats() == flash.index_queue_stats()
        && host.cache_queue_stats() == flash.cache_queue_stats()
        && host.cache().expect("cached config").device().stats()
            == flash.cache().expect("cached config").device().stats();
    let bh = host.cache_bus_stats();
    let bf = flash.cache_bus_stats();
    OffloadCell {
        depth,
        channels,
        identical,
        offload_ops: bf.offload_ops(),
        saved_bytes: bf.saved_bytes(),
        host_bus_bytes: bh.host_crossed_bytes(),
        flash_bus_bytes: bf.host_crossed_bytes(),
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

fn offload_cell_json(c: &OffloadCell) -> String {
    format!(
        concat!(
            "    {{ \"depth\": {}, \"channels\": {}, \"identical\": {}, ",
            "\"offload_ops\": {}, \"bus_saved_bytes\": {}, \"host_bus_bytes\": {}, ",
            "\"inflash_bus_bytes\": {}, \"wall_clock_secs\": {:.3} }}"
        ),
        c.depth,
        c.channels,
        c.identical,
        c.offload_ops,
        c.saved_bytes,
        c.host_bus_bytes,
        c.flash_bus_bytes,
        c.wall_secs,
    )
}

/// One selectivity regime of the device-level microbench: a pinned
/// block-compressed list and predicate, priced both ways on an SSD
/// running the *active* compute model.
struct OffloadRegime {
    name: &'static str,
    entries: u64,
    matches: u64,
    /// Entries the host gallop actually visited (it skips; the flash
    /// scan cannot and always decodes all `entries`).
    gallop_visited: u64,
    bus_bytes_host: u64,
    bus_bytes_inflash: u64,
    /// `(channels, host-read ns, offloaded-read ns)` per swept width.
    latencies: Vec<(u32, u64, u64)>,
    scan_energy_nj: u64,
    emit_energy_nj: u64,
}

/// Entries per microbench list: 128 KiB of postings — 64 paper pages.
const REGIME_ENTRIES: u32 = 16_384;

fn run_offload_regime(name: &'static str, pred: OffloadPredicate) -> OffloadRegime {
    let postings: Vec<Posting> = (0..REGIME_ENTRIES)
        .map(|i| Posting {
            doc: i * 4,
            tf: i % 7 + 1,
        })
        .collect();
    let list = BlockSortedList::from_postings(&PostingList::new(0, postings));
    let scan = flash_scan(&list, &pred);
    let mut arena = DecodeArena::new();
    let (gallop, gallop_stats) = host_gallop(&list, &pred, &mut arena);
    assert_eq!(
        scan.matches, gallop,
        "{name}: flash scan diverged from the host gallop"
    );

    let entry_bytes = searchidx::types::POSTING_BYTES;
    let bytes = list.len() as u64 * entry_bytes;
    let sectors = bytes.div_ceil(SECTOR_SIZE as u64);
    let page = flashsim::PAPER_PAGE_BYTES as u64;
    let scanned_bytes = (sectors * SECTOR_SIZE as u64).div_ceil(page) * page;
    let scan_entries = (scanned_bytes / entry_bytes) as u32;
    let emit_entries = scan.matches.len() as u32;

    let mut latencies = Vec::new();
    let mut scan_energy = 0;
    let mut emit_energy = 0;
    for channels in OFFL_CHANNELS {
        let mut params = FlashParams::paper(8 << 20);
        params.channels = channels;
        params.compute = ComputeParams::active();
        let mut d = SsdDisk::with_ftl(PageMapFtl::new(params));
        let extent = Extent::new(0, sectors);
        d.write(extent).expect("regime extent fits the device");
        let host_ns = d.read(extent).expect("in-region").as_nanos();
        let desc = pred
            .descriptor(entry_bytes as u32)
            .with_counts(scan_entries, emit_entries);
        let flash_ns = d
            .request(&IoRequest::read(extent).with_offload(desc))
            .expect("in-region")
            .as_nanos();
        latencies.push((channels, host_ns, flash_ns));
        scan_energy = d.compute_stats().scan_energy_nj;
        emit_energy = d.compute_stats().emit_energy_nj;
    }
    OffloadRegime {
        name,
        entries: scan.entries_scanned,
        matches: emit_entries as u64,
        gallop_visited: gallop_stats.visited,
        bus_bytes_host: scanned_bytes,
        bus_bytes_inflash: OFFLOAD_DESCRIPTOR_BYTES + emit_entries as u64 * entry_bytes,
        latencies,
        scan_energy_nj: scan_energy,
        emit_energy_nj: emit_energy,
    }
}

fn offload_regime_json(r: &OffloadRegime) -> String {
    let lat: Vec<String> = r
        .latencies
        .iter()
        .map(|(c, h, f)| {
            format!(
                "        {{ \"channels\": {c}, \"host_read_ns\": {h}, \"inflash_read_ns\": {f} }}"
            )
        })
        .collect();
    format!(
        concat!(
            "    {{\n",
            "      \"regime\": \"{}\",\n",
            "      \"entries\": {},\n",
            "      \"matches\": {},\n",
            "      \"gallop_visited\": {},\n",
            "      \"bus_bytes_host\": {},\n",
            "      \"bus_bytes_inflash\": {},\n",
            "      \"scan_energy_nj\": {},\n",
            "      \"emit_energy_nj\": {},\n",
            "      \"latencies\": [\n{}\n      ]\n",
            "    }}"
        ),
        r.name,
        r.entries,
        r.matches,
        r.gallop_visited,
        r.bus_bytes_host,
        r.bus_bytes_inflash,
        r.scan_energy_nj,
        r.emit_energy_nj,
        lat.join(",\n"),
    )
}

/// Run the offload gate grid, the production-scale headline pair, and
/// the selectivity microbench; emit `BENCH_7.json`; return whether the
/// bit-identity gate, the cost-rule safety property, and the
/// bus-reduction claim all held.
fn offload_regress(out: &str) -> bool {
    let mut cells = Vec::new();
    for &depth in &OFFL_DEPTHS {
        for &channels in &OFFL_CHANNELS {
            let cell = run_offload_pair(
                OFFL_DOCS,
                OFFL_QUERIES,
                OFFL_MEM_BYTES,
                OFFL_SSD_BYTES,
                depth,
                channels,
            );
            eprintln!(
                "offload depth {} channels {}: identical {} ({} offloads, {} bus bytes \
                 saved, {:.2}s wall)",
                cell.depth,
                cell.channels,
                cell.identical,
                cell.offload_ops,
                cell.saved_bytes,
                cell.wall_secs
            );
            cells.push(cell);
        }
    }
    // The headline pair: the standard pinned engine workload at the
    // Direct path and 4 channels, for the bus-reduction figure at
    // production scale.
    let headline = run_offload_pair(DOCS, QUERIES, MEM_BYTES, SSD_BYTES, 0, 4);
    eprintln!(
        "offload headline: identical {} ({} offloads, {} bus bytes saved, {:.2}s wall)",
        headline.identical, headline.offload_ops, headline.saved_bytes, headline.wall_secs
    );

    let gate_ok = cells.iter().all(|c| c.identical && c.offload_ops > 0)
        && headline.identical
        && headline.offload_ops > 0;
    // The ListStore cost rule only attaches a descriptor where it pays,
    // so the engine-run ledgers must never go negative.
    let cost_rule_ok = cells.iter().all(|c| c.saved_bytes >= 0) && headline.saved_bytes >= 0;

    // The selectivity microbench. Lists hold docs {0, 4, 8, ...}; the
    // three predicates carve out the regimes the routing rule cares
    // about.
    let doc_span = (REGIME_ENTRIES - 1) * 4;
    let regimes = [
        // ~1/64 of the list matches: the offload's home turf.
        run_offload_regime(
            "selective_intersection",
            OffloadPredicate::new(0, doc_span / 64, 0),
        ),
        // A handful of matches, and the gallop skips almost everything:
        // pushing down buys little and the scan decodes 16 k entries the
        // host path never touches.
        run_offload_regime("sparse_probes", OffloadPredicate::new(40_000, 40_016, 0)),
        // Everything matches: the emitted postings are the whole list,
        // so the offload crosses *more* bytes (the descriptor is pure
        // overhead) and its serial emit cost grows with channel count.
        run_offload_regime("dense_matches", OffloadPredicate::new(0, doc_span, 1)),
    ];
    for r in &regimes {
        eprintln!(
            "offload regime {:>22}: {} / {} entries match (gallop visited {}), bus {} -> {} \
             bytes",
            r.name, r.matches, r.entries, r.gallop_visited, r.bus_bytes_host, r.bus_bytes_inflash
        );
    }

    // The claim: on the selective regime the offload crosses at least 4x
    // fewer bus bytes, and the in-flash latency *overhead* (scan time on
    // top of the plain read) shrinks as channels widen, because the scan
    // parallelizes across the per-channel compute units while the
    // per-match emit stays serial and small.
    let selective = &regimes[0];
    let dense = &regimes[2];
    let overhead_ns = |r: &OffloadRegime, ch: u32| -> u64 {
        let (_, h, f) = *r
            .latencies
            .iter()
            .find(|(c, _, _)| *c == ch)
            .expect("swept channel width");
        f - h
    };
    let bus_reduction = selective.bus_bytes_host as f64 / selective.bus_bytes_inflash as f64;
    let claim_ok = bus_reduction >= 4.0
        && overhead_ns(selective, 8) < overhead_ns(selective, 1)
        && overhead_ns(selective, 4) < overhead_ns(selective, 1);
    // The honest loss, recorded: dense matches cross more bytes in-flash
    // than the plain read does.
    let dense_loses_bus = dense.bus_bytes_inflash > dense.bus_bytes_host;

    let ok = gate_ok && cost_rule_ok && claim_ok;
    let cell_json: Vec<String> = cells.iter().map(offload_cell_json).collect();
    let regime_json: Vec<String> = regimes.iter().map(offload_regime_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_offload\",\n",
            "  \"gate_workload\": {{ \"docs\": {}, \"queries\": {}, \"seed\": {}, ",
            "\"mem_bytes\": {}, \"ssd_bytes\": {}, \"policy\": \"CBLRU\" }},\n",
            "  \"gate_cells\": [\n{}\n  ],\n",
            "  \"headline_workload\": {{ \"docs\": {}, \"queries\": {}, \"seed\": {}, ",
            "\"mem_bytes\": {}, \"ssd_bytes\": {}, \"policy\": \"CBLRU\", ",
            "\"channels\": 4, \"io_path\": \"direct\" }},\n",
            "  \"headline\": {},\n",
            "  \"microbench_compute\": \"active (8 us/page scan, 50 ns/entry emit, ",
            "100 nJ/page, 1 nJ/entry)\",\n",
            "  \"regimes\": [\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"cost_rule_never_negative\": {},\n",
            "  \"selective_bus_reduction\": {:.3},\n",
            "  \"selective_overhead_ns_ch1\": {},\n",
            "  \"selective_overhead_ns_ch4\": {},\n",
            "  \"selective_overhead_ns_ch8\": {},\n",
            "  \"dense_loses_bus\": {},\n",
            "  \"offload_claims_hold\": {}\n",
            "}}\n"
        ),
        OFFL_DOCS,
        OFFL_QUERIES,
        SEED,
        OFFL_MEM_BYTES,
        OFFL_SSD_BYTES,
        cell_json.join(",\n"),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        offload_cell_json(&headline).trim_start(),
        regime_json.join(",\n"),
        gate_ok,
        cost_rule_ok,
        bus_reduction,
        overhead_ns(selective, 1),
        overhead_ns(selective, 4),
        overhead_ns(selective, 8),
        dense_loses_bus,
        ok,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write offload report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; gate identical: {gate_ok}, selective bus reduction {bus_reduction:.1}x, \
         headline saved {} bytes over {} offloads, claims hold: {claim_ok}",
        headline.saved_bytes, headline.offload_ops
    );
    ok
}

// The pinned mutation workload (PR 9, `BENCH_8.json`): the hybrid cache
// config the mutation-equivalence suite pins, an eager segment lifecycle
// so a few thousand ops drive many seals and compactions, swept over
// ingest mixes expressed as mutation ops per 100 queries (the achieved
// ops-per-virtual-second rate is measured in-run and reported).
const MUT_DOCS: u64 = 40_000;
const MUT_QUERIES: usize = 4_000;
const MUT_MEM_BYTES: u64 = 1 << 20;
const MUT_SSD_BYTES: u64 = 8 << 20;
const MUT_VOCAB: u64 = 4_000;
const MUT_MIXES: [u64; 3] = [5, 25, 100];
/// The mixes the efficiency claim is checked on: the churn-heavy ones
/// where compaction is frequent enough for coherence handling to matter
/// (mix 5 drives only a handful of compactions, so its delta is within
/// cache-perturbation noise; it is recorded but not gated).
const MUT_CLAIM_MIXES: [u64; 2] = [25, 100];

/// The eager lifecycle the mutation arm (and the equivalence suite) use:
/// seal every 16 docs, compact at fan-in 3.
fn mutation_segments() -> SegmentPolicy {
    SegmentPolicy {
        seal_threshold_docs: 16,
        compact_fanin: 3,
        growth: GrowthPolicy::Contiguous,
    }
}

fn mutation_engine(mutability: IndexMutability) -> SearchEngine {
    let mut cfg = EngineConfig::cached(
        MUT_DOCS,
        cache_config(MUT_MEM_BYTES, MUT_SSD_BYTES, PolicyKind::Cblru),
        SEED,
    );
    cfg.mutability = mutability;
    SearchEngine::new(cfg)
}

/// One measured mutation arm.
struct MutationArm {
    label: &'static str,
    /// Mutation ops per 100 queries.
    mix: u64,
    report: RunReport,
    p50: SimDuration,
    digest: u64,
    stats: MutationStats,
    mutation_io: SimDuration,
    /// SSD-level hit ratio of the list family (full + partial prefix
    /// hits over lookups) — the figure compaction coherence moves.
    ssd_hit_ratio: f64,
    /// Mutations actually applied.
    applied: u64,
    /// Applied mutations per second of virtual time.
    achieved_rate: f64,
    wall_secs: f64,
}

/// Run one engine over the shared query stream, interleaving the seeded
/// mutation stream at `mix` ops per 100 queries. The schedule is a pure
/// function of the query index and both coherence modes accept every
/// add, so two arms at the same mix replay identical histories. The
/// frozen oracle runs through this same loop (at mix 0, which never
/// mutates) so its report snapshot is comparable field-for-field.
fn run_mutation_arm(label: &'static str, mutability: IndexMutability, mix: u64) -> MutationArm {
    let t0 = Instant::now();
    let mut e = mutation_engine(mutability);
    let queries: Vec<Query> = e.log().clone().stream(MUT_QUERIES);
    let ops = IngestStream::new(IngestSpec::small(MUT_VOCAB, SEED))
        .generate((MUT_QUERIES as u64 * mix / 100) as usize);
    let mut next = ops.iter();
    let mut alive: Vec<u32> = Vec::new();
    let mut applied = 0u64;
    let sim_start = e.now();
    for (i, q) in queries.iter().enumerate() {
        let target = i as u64 * mix / 100;
        while applied < target {
            let Some(m) = next.next() else { break };
            match &m.op {
                MutationOp::AddDoc { terms } => {
                    alive.push(e.ingest_document(terms).expect("mutating arm is live"));
                }
                MutationOp::DeleteDoc { pick } => {
                    if !alive.is_empty() {
                        let idx = (*pick % alive.len() as u64) as usize;
                        e.delete_document(alive.swap_remove(idx));
                    }
                }
            }
            applied += 1;
        }
        e.execute(q);
    }
    let report = e.report();
    let lists = report.cache.as_ref().expect("cached config").lists;
    let ssd_hit_ratio = if lists.lookups() == 0 {
        0.0
    } else {
        (lists.ssd_hits + lists.partial_hits) as f64 / lists.lookups() as f64
    };
    let elapsed = (e.now() - sim_start).as_secs_f64();
    MutationArm {
        label,
        mix,
        p50: e.response_quantile(0.5),
        digest: e.result_digest(),
        stats: e.mutation_stats(),
        mutation_io: e.mutation_io_time(),
        ssd_hit_ratio,
        applied,
        achieved_rate: if elapsed > 0.0 {
            applied as f64 / elapsed
        } else {
            0.0
        },
        wall_secs: t0.elapsed().as_secs_f64(),
        report,
    }
}

fn mutation_arm_json(a: &MutationArm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    let s = &a.stats;
    format!(
        concat!(
            "        {{\n",
            "          \"label\": \"{}\",\n",
            "          \"ops_per_100_queries\": {},\n",
            "          \"ops_applied\": {},\n",
            "          \"achieved_ingest_ops_per_sim_sec\": {:.3},\n",
            "          \"sim_p50_response_ns\": {},\n",
            "          \"sim_p99_response_ns\": {},\n",
            "          \"sim_mean_response_ns\": {},\n",
            "          \"sim_hit_ratio\": {:.17},\n",
            "          \"list_ssd_hit_ratio\": {:.17},\n",
            "          \"ssd_bytes_written\": {},\n",
            "          \"block_erases\": {},\n",
            "          \"write_amplification\": {:.6},\n",
            "          \"seals\": {},\n",
            "          \"compactions\": {},\n",
            "          \"wal_bytes\": {},\n",
            "          \"merge_bytes_written\": {},\n",
            "          \"tombstones_cleared\": {},\n",
            "          \"mutation_io_ns\": {},\n",
            "          \"postings_scanned\": {},\n",
            "          \"result_digest\": \"{:#018x}\",\n",
            "          \"wall_clock_secs\": {:.6}\n",
            "        }}"
        ),
        a.label,
        a.mix,
        a.applied,
        a.achieved_rate,
        a.p50.as_nanos(),
        r.p99_response.as_nanos(),
        r.mean_response.as_nanos(),
        r.hit_ratio(),
        a.ssd_hit_ratio,
        cache.ssd_bytes_written,
        r.flash.map_or(0, |f| f.block_erases),
        r.flash.map_or(0.0, |f| f.write_amplification),
        s.seals,
        s.compactions,
        s.wal_bytes,
        s.merge_bytes_written,
        s.tombstones_cleared,
        a.mutation_io.as_nanos(),
        r.postings_scanned,
        a.digest,
        a.wall_secs,
    )
}

/// Run the live-index mutation arm, emit `BENCH_8.json`, and return
/// whether (a) the zero-ingest `Live` engine stayed bit-identical to the
/// `Frozen` seed arm, (b) `Cooperative` and `InvalidateAll` compaction
/// agreed on every result at every ingest mix (equal digests, equal
/// postings scanned, with compactions actually exercised), and (c) the
/// cooperative mode won the efficiency claim on the churn-heavy mixes:
/// never a worse SSD list hit ratio than invalidate-all, and strictly
/// better on at least one gated mix.
fn mutation_regress(out: &str) -> bool {
    // The oracle row: a frozen engine on the same workload, against the
    // zero-ingest live arm, both through the same loop.
    let frozen = run_mutation_arm("frozen", IndexMutability::Frozen, 0);
    let live_default = IndexMutability::Live(LiveConfig {
        segments: mutation_segments(),
        compaction: CompactionMode::Cooperative,
    });
    let zero = run_mutation_arm("zero_ingest_live", live_default, 0);
    let zero_identical = frozen.report == zero.report && frozen.digest == zero.digest;
    eprintln!(
        "mutation zero-ingest gate: identical {} (frozen {:.2}s, live {:.2}s wall)",
        zero_identical, frozen.wall_secs, zero.wall_secs
    );

    let mut rows = vec![mutation_arm_json(&frozen), mutation_arm_json(&zero)];
    let mut claim_lines = Vec::new();
    let mut correctness_ok = true;
    let mut coop_never_worse = true;
    let mut coop_strictly_better = false;
    for mix in MUT_MIXES {
        let arm = |mode| {
            IndexMutability::Live(LiveConfig {
                segments: mutation_segments(),
                compaction: mode,
            })
        };
        let coop = run_mutation_arm("cooperative", arm(CompactionMode::Cooperative), mix);
        let naive = run_mutation_arm("invalidate_all", arm(CompactionMode::InvalidateAll), mix);
        let agree = coop.digest == naive.digest
            && coop.report.postings_scanned == naive.report.postings_scanned;
        let exercised = coop.stats.compactions > 0 && naive.stats.compactions > 0;
        correctness_ok &= agree && exercised;
        if MUT_CLAIM_MIXES.contains(&mix) {
            coop_never_worse &= coop.ssd_hit_ratio >= naive.ssd_hit_ratio;
            coop_strictly_better |= coop.ssd_hit_ratio > naive.ssd_hit_ratio;
        }
        for a in [&coop, &naive] {
            eprintln!(
                "mutation mix {:>3}/100 {:>14}: p50 {} p99 {} | list SSD hit {:.2}% | \
                 {} seals {} compactions | {} B written ({:.2}s wall)",
                mix,
                a.label,
                a.p50,
                a.report.p99_response,
                a.ssd_hit_ratio * 100.0,
                a.stats.seals,
                a.stats.compactions,
                cache_of(&a.report).ssd_bytes_written,
                a.wall_secs
            );
        }
        claim_lines.push(format!(
            concat!(
                "    {{ \"ops_per_100_queries\": {}, \"results_agree\": {}, ",
                "\"compactions_exercised\": {}, \"coop_ssd_hit_ratio\": {:.17}, ",
                "\"naive_ssd_hit_ratio\": {:.17}, \"hit_claim_gated\": {} }}"
            ),
            mix,
            agree,
            exercised,
            coop.ssd_hit_ratio,
            naive.ssd_hit_ratio,
            MUT_CLAIM_MIXES.contains(&mix)
        ));
        rows.push(mutation_arm_json(&coop));
        rows.push(mutation_arm_json(&naive));
    }

    let coop_wins = coop_never_worse && coop_strictly_better;
    let ok = zero_identical && correctness_ok && coop_wins;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_mutation\",\n",
            "  \"workload\": {{ \"docs\": {}, \"queries\": {}, \"seed\": {}, ",
            "\"mem_bytes\": {}, \"ssd_bytes\": {}, \"policy\": \"CBLRU\", ",
            "\"ingest_vocab\": {}, \"seal_threshold_docs\": {}, \"compact_fanin\": {} }},\n",
            "  \"arms\": [\n{}\n  ],\n",
            "  \"claims\": [\n{}\n  ],\n",
            "  \"zero_ingest_bit_identical\": {},\n",
            "  \"coherence_modes_agree_on_results\": {},\n",
            "  \"cooperative_ssd_hit_never_worse\": {},\n",
            "  \"cooperative_ssd_hit_strictly_better_somewhere\": {},\n",
            "  \"mutation_claims_hold\": {}\n",
            "}}\n"
        ),
        MUT_DOCS,
        MUT_QUERIES,
        SEED,
        MUT_MEM_BYTES,
        MUT_SSD_BYTES,
        MUT_VOCAB,
        mutation_segments().seal_threshold_docs,
        mutation_segments().compact_fanin,
        rows.join(",\n"),
        claim_lines.join(",\n"),
        zero_identical,
        correctness_ok,
        coop_never_worse,
        coop_strictly_better,
        ok,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write mutation report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; zero-ingest identical: {zero_identical}, coherence modes agree: \
         {correctness_ok}, cooperative wins SSD hit ratio: {coop_wins}"
    );
    ok
}

fn main() {
    let mut out = String::from("BENCH_1.json");
    let mut cluster_out = String::from("BENCH_2.json");
    let mut postings_out = String::from("BENCH_3.json");
    let mut iopath_out = String::from("BENCH_4.json");
    let mut admission_out = String::from("BENCH_5.json");
    let mut serving_out = String::from("BENCH_6.json");
    let mut offload_out = String::from("BENCH_7.json");
    let mut mutation_out = String::from("BENCH_8.json");
    let mut only_serving = false;
    let mut only_offload = false;
    let mut only_mutation = false;
    let mut iopath_depth = 4usize;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(v) = args.next() {
                out = v;
            }
        } else if a == "--cluster-out" {
            if let Some(v) = args.next() {
                cluster_out = v;
            }
        } else if a == "--postings-out" {
            if let Some(v) = args.next() {
                postings_out = v;
            }
        } else if a == "--iopath-out" {
            if let Some(v) = args.next() {
                iopath_out = v;
            }
        } else if a == "--iopath-depth" {
            if let Some(v) = args.next() {
                iopath_depth = v.parse().expect("--iopath-depth takes an integer");
            }
        } else if a == "--admission-out" {
            if let Some(v) = args.next() {
                admission_out = v;
            }
        } else if a == "--serving-out" {
            if let Some(v) = args.next() {
                serving_out = v;
            }
        } else if a == "--offload-out" {
            if let Some(v) = args.next() {
                offload_out = v;
            }
        } else if a == "--mutation-out" {
            if let Some(v) = args.next() {
                mutation_out = v;
            }
        } else if a == "--only-serving" {
            only_serving = true;
        } else if a == "--only-offload" {
            only_offload = true;
        } else if a == "--only-mutation" {
            only_mutation = true;
        }
    }

    // Fast path for iterating on the mutation arm (CI runs everything).
    if only_mutation {
        if !mutation_regress(&mutation_out) {
            eprintln!(
                "FAIL: mutation arm — bisect with \
                 `cargo run --release -p bench --bin divergence_probe -- --mutation`"
            );
            std::process::exit(1);
        }
        return;
    }

    // Fast path for iterating on the offload arm (CI runs everything).
    if only_offload {
        if !offload_regress(&offload_out) {
            eprintln!(
                "FAIL: offload arm — bisect with \
                 `cargo run --release -p bench --bin divergence_probe -- --offload`"
            );
            std::process::exit(1);
        }
        return;
    }

    // Fast path for iterating on the serving arm (CI runs everything).
    if only_serving {
        if !serving_regress(&serving_out) {
            eprintln!(
                "FAIL: serving arm — bisect with \
                 `cargo run --release -p bench --bin divergence_probe -- --serving`"
            );
            std::process::exit(1);
        }
        return;
    }

    // Smoke-check the shared harness path once so the binary exercises
    // the exact entry points the figure binaries use.
    let warm = run_cached(
        50_000,
        cache_config(4 << 20, 40 << 20, PolicyKind::Cblru),
        2_000,
        SEED,
    );
    eprintln!("warm-up: {}", warm.summary());

    let naive = run_arm("reference", true);
    eprintln!(
        "reference: {} ({:.2}s wall)",
        naive.report.summary(),
        naive.wall_secs
    );
    let fast = run_arm("optimized", false);
    eprintln!(
        "optimized: {} ({:.2}s wall)",
        fast.report.summary(),
        fast.wall_secs
    );

    // The contract: every simulated figure is bit-identical across arms.
    let identical = naive.report.hit_ratio() == fast.report.hit_ratio()
        && naive.report.mean_response == fast.report.mean_response
        && naive.report.p99_response == fast.report.p99_response
        && naive.report.elapsed == fast.report.elapsed
        && naive.report.postings_scanned == fast.report.postings_scanned
        && cache_of(&naive.report) == cache_of(&fast.report)
        && naive.evictions == fast.evictions;
    let speedup = naive.wall_secs / fast.wall_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        arm_json(&naive),
        arm_json(&fast),
        identical,
        speedup,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write report to {out}: {e}"));
    println!("{json}");
    println!("wrote {out}; speedup {speedup:.2}x, sim figures identical: {identical}");

    let postings_identical = postings_regress(&postings_out);
    let cluster_identical = cluster_regress(&cluster_out);
    let iopath_identical = iopath_regress(&iopath_out, iopath_depth);
    let admission_ok = admission_regress(&admission_out);
    let serving_ok = serving_regress(&serving_out);
    let offload_ok = offload_regress(&offload_out);
    let mutation_ok = mutation_regress(&mutation_out);

    if !identical {
        eprintln!("FAIL: simulated figures diverged between the engine arms");
    }
    if !postings_identical {
        eprintln!(
            "FAIL: postings backends diverged — bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --postings`"
        );
    }
    if !cluster_identical {
        eprintln!(
            "FAIL: cluster arms diverged — bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --cluster`"
        );
    }
    if !iopath_identical {
        eprintln!(
            "FAIL: the queued depth-1 FIFO arm diverged from the Direct \
             reference — bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --iopath`"
        );
    }
    if !admission_ok {
        eprintln!(
            "FAIL: admission arm — either the Static arm stopped being \
             bit-identical with sketch params present (bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --admission`) \
             or the sketch gate failed its efficiency claim on the \
             churn/scan scenarios"
        );
    }
    if !serving_ok {
        eprintln!(
            "FAIL: serving arm — either a serving mode stopped being bit-identical \
             to the closed loop (bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --serving`) \
             or the batched/shedding front-end failed its latency-vs-load claim \
             against naive FIFO"
        );
    }
    if !offload_ok {
        eprintln!(
            "FAIL: offload arm — either an in-flash arm stopped being bit-identical \
             to host galloping (bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --offload`), \
             the cost rule attached a losing descriptor, or the selective-intersection \
             bus-reduction claim failed"
        );
    }
    if !mutation_ok {
        eprintln!(
            "FAIL: mutation arm — either the zero-ingest live engine stopped being \
             bit-identical to the frozen seed arm (bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --mutation`), \
             the compaction coherence modes disagreed on a result, or cooperative \
             reconciliation failed to beat invalidate-all on SSD hit ratio"
        );
    }
    if !identical
        || !postings_identical
        || !cluster_identical
        || !iopath_identical
        || !admission_ok
        || !serving_ok
        || !offload_ok
        || !mutation_ok
    {
        std::process::exit(1);
    }
}
