//! Performance-regression harness.
//!
//! Runs one pinned, seeded workload twice — once on the reference hot
//! paths (linear victim scans, `HashMap` top-K accumulator) and once on
//! the optimized ones (indexed victim selection, pooled open-addressed
//! scratch) — and emits a machine-readable JSON report.
//!
//! The two arms must produce **bit-identical simulated figures** (hit
//! ratio, response times, cache/flash counters): the optimizations are
//! behavior-preserving by construction, and this harness re-checks that
//! end-to-end on every run. Wall-clock is the only number allowed to
//! move. The first committed output (`BENCH_1.json`) is the trajectory
//! baseline; run the binary under `--release` when comparing wall-clock.
//!
//!     cargo run --release -p bench --bin perf_regress [-- --out PATH]
//!
//! Exit status is non-zero if the arms' simulated figures diverge.

use std::time::Instant;

use bench::{cache_config, run_cached};
use engine::{EngineConfig, RunReport, SearchEngine};
use hybridcache::PolicyKind;

// The pinned workload: large enough that victim selection and top-K
// accumulation dominate, small enough for a CI-friendly run.
const DOCS: u64 = 400_000;
const QUERIES: usize = 30_000;
const SEED: u64 = 42;
const MEM_BYTES: u64 = 16 << 20;
const SSD_BYTES: u64 = 160 << 20;

/// One measured arm.
struct Arm {
    label: &'static str,
    report: RunReport,
    /// Evictions at the SSD stores (list evictions + RB collateral).
    evictions: u64,
    wall_secs: f64,
}

fn run_arm(label: &'static str, reference: bool) -> Arm {
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let policy = cfg.policy;
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
    e.set_reference_mode(reference);
    if matches!(policy, PolicyKind::Cbslru { .. }) {
        e.seed_static_from_log(QUERIES);
    }
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let (rc, ic) = e.cache().expect("cached config").store_stats();
    Arm {
        label,
        report,
        evictions: ic.evictions + rc.collateral_evictions,
        wall_secs,
    }
}

fn cache_of(r: &RunReport) -> &hybridcache::CacheStats {
    r.cache.as_ref().expect("cached run")
}

fn arm_json(a: &Arm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"evictions\": {},\n",
            "      \"evictions_per_wall_sec\": {:.3},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_throughput_qps\": {:.17},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"postings_scanned\": {},\n",
            "      \"ssd_bytes_written\": {},\n",
            "      \"ssd_admissions\": {}\n",
            "    }}"
        ),
        a.label,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        a.evictions,
        a.evictions as f64 / a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.throughput_qps,
        r.elapsed.as_nanos(),
        r.postings_scanned,
        cache.ssd_bytes_written,
        cache.results.ssd_admissions + cache.lists.ssd_admissions,
    )
}

fn main() {
    let mut out = String::from("BENCH_1.json");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(v) = args.next() {
                out = v;
            }
        }
    }

    // Smoke-check the shared harness path once so the binary exercises
    // the exact entry points the figure binaries use.
    let warm = run_cached(50_000, cache_config(4 << 20, 40 << 20, PolicyKind::Cblru), 2_000, SEED);
    eprintln!("warm-up: {}", warm.summary());

    let naive = run_arm("reference", true);
    eprintln!("reference: {} ({:.2}s wall)", naive.report.summary(), naive.wall_secs);
    let fast = run_arm("optimized", false);
    eprintln!("optimized: {} ({:.2}s wall)", fast.report.summary(), fast.wall_secs);

    // The contract: every simulated figure is bit-identical across arms.
    let identical = naive.report.hit_ratio() == fast.report.hit_ratio()
        && naive.report.mean_response == fast.report.mean_response
        && naive.report.p99_response == fast.report.p99_response
        && naive.report.elapsed == fast.report.elapsed
        && naive.report.postings_scanned == fast.report.postings_scanned
        && cache_of(&naive.report) == cache_of(&fast.report)
        && naive.evictions == fast.evictions;
    let speedup = naive.wall_secs / fast.wall_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        arm_json(&naive),
        arm_json(&fast),
        identical,
        speedup,
    );
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| panic!("cannot write report to {out}: {e}"));
    println!("{json}");
    println!("wrote {out}; speedup {speedup:.2}x, sim figures identical: {identical}");

    if !identical {
        eprintln!("FAIL: simulated figures diverged between the arms");
        std::process::exit(1);
    }
}
