//! Performance-regression harness.
//!
//! **Engine arm** (PR 1, `BENCH_1.json`): runs one pinned, seeded
//! workload twice — once on the reference hot paths (linear victim
//! scans, `HashMap` top-K accumulator) and once on the optimized ones
//! (indexed victim selection, pooled open-addressed scratch) — and emits
//! a machine-readable JSON report.
//!
//! **Cluster arm** (PR 2, `BENCH_2.json`): runs one pinned, seeded
//! 4-shard cluster workload on both `ClusterExecution` arms — the
//! sequential reference loop and the persistent shard-worker pool — and
//! reports wall-clock for each, plus `max_worker_busy` (the pool's
//! critical path: what a machine with one core per worker would pay —
//! when workers outnumber cores the span absorbs preemption and
//! degenerates to the wall-clock). `available_parallelism` is recorded
//! because the wall-clock speedup is hardware-bound: on a single-core
//! container the pool can only tie the sequential arm; the ≥2x target
//! at 4 shards needs ≥2 free cores.
//!
//! **Postings arm** (PR 3, `BENCH_3.json`): runs the engine workload on
//! both `PostingsBackend`s — the uncompressed reference traversal and
//! the block-compressed lists with block-max skipping — with every other
//! toggle held at its optimized setting, so the measured gap is the
//! postings representation alone. The blocked arm additionally reports
//! its block-max accounting (bounds consulted, postings pruned without
//! decode) and the block store's encoded footprint.
//!
//! In all arms every **simulated figure must be bit-identical** (hit
//! ratio, response times, cache/flash counters, the full `RunReport` /
//! `ClusterReport`): the optimizations are behavior-preserving by
//! construction, and this harness re-checks that end-to-end on every
//! run. Wall-clock is the only number allowed to move.
//!
//!     cargo run --release -p bench --bin perf_regress \
//!         [-- --out PATH] [--cluster-out PATH] [--postings-out PATH]
//!
//! Exit status is non-zero if any arm's simulated figures diverge.

use std::time::Instant;

use bench::{cache_config, run_cached};
use engine::{
    ClusterExecution, ClusterReport, EngineConfig, PostingsBackend, RunReport, SearchCluster,
    SearchEngine,
};
use hybridcache::PolicyKind;

// The pinned workload: large enough that victim selection and top-K
// accumulation dominate, small enough for a CI-friendly run.
const DOCS: u64 = 400_000;
const QUERIES: usize = 30_000;
const SEED: u64 = 42;
const MEM_BYTES: u64 = 16 << 20;
const SSD_BYTES: u64 = 160 << 20;

// The pinned cluster workload: 4 document-partitioned shards (100 k docs
// each), per-shard CBLRU caches, one shared broadcast stream.
const CLUSTER_SHARDS: usize = 4;
const CLUSTER_DOCS: u64 = 400_000;
const CLUSTER_QUERIES: usize = 8_000;
const CLUSTER_MEM_BYTES: u64 = 4 << 20;
const CLUSTER_SSD_BYTES: u64 = 40 << 20;

/// One measured arm.
struct Arm {
    label: &'static str,
    report: RunReport,
    /// Evictions at the SSD stores (list evictions + RB collateral).
    evictions: u64,
    wall_secs: f64,
}

fn run_arm(label: &'static str, reference: bool) -> Arm {
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let policy = cfg.policy;
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
    e.set_reference_mode(reference);
    if matches!(policy, PolicyKind::Cbslru { .. }) {
        e.seed_static_from_log(QUERIES);
    }
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let (rc, ic) = e.cache().expect("cached config").store_stats();
    Arm {
        label,
        report,
        evictions: ic.evictions + rc.collateral_evictions,
        wall_secs,
    }
}

/// One measured postings arm.
struct PostingsArm {
    label: &'static str,
    report: RunReport,
    evictions: u64,
    wall_secs: f64,
    /// Block-max accounting (zeros on the reference backend).
    skips: searchidx::SkipStats,
    /// Block-store footprint (zeros on the reference backend).
    store: searchidx::BlockStoreStats,
}

fn run_postings_arm(label: &'static str, backend: PostingsBackend) -> PostingsArm {
    // Identical to the engine arm's workload; reference mode stays OFF on
    // both arms so the postings backend is the only difference.
    let cfg = cache_config(
        MEM_BYTES,
        SSD_BYTES,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    );
    let t0 = Instant::now();
    let mut e = SearchEngine::new(EngineConfig {
        postings: backend,
        ..EngineConfig::cached(DOCS, cfg, SEED)
    });
    e.seed_static_from_log(QUERIES);
    let report = e.run(QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let (rc, ic) = e.cache().expect("cached config").store_stats();
    PostingsArm {
        label,
        report,
        evictions: ic.evictions + rc.collateral_evictions,
        wall_secs,
        skips: e.postings_skip_stats(),
        store: e.postings_store_stats(),
    }
}

fn postings_arm_json(a: &PostingsArm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"postings_scanned\": {},\n",
            "      \"evictions\": {},\n",
            "      \"ssd_bytes_written\": {},\n",
            "      \"blockmax_bounds_probed\": {},\n",
            "      \"blockmax_postings_pruned\": {},\n",
            "      \"block_store_terms\": {},\n",
            "      \"block_store_built_postings\": {},\n",
            "      \"block_store_encoded_bytes\": {},\n",
            "      \"block_store_hot_postings\": {}\n",
            "    }}"
        ),
        a.label,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.elapsed.as_nanos(),
        r.postings_scanned,
        a.evictions,
        cache.ssd_bytes_written,
        a.skips.skip_probes,
        a.skips.skipped,
        a.store.terms,
        a.store.built_postings,
        a.store.encoded_bytes,
        a.store.hot_postings,
    )
}

/// Run both postings arms, emit `BENCH_3.json`, and return whether the
/// simulated figures were bit-identical.
fn postings_regress(out: &str) -> bool {
    let reference = run_postings_arm("reference_postings", PostingsBackend::Reference);
    eprintln!(
        "postings reference: {} ({:.2}s wall)",
        reference.report.summary(),
        reference.wall_secs
    );
    let blocked = run_postings_arm("blocked_postings", PostingsBackend::Blocked);
    eprintln!(
        "postings blocked:   {} ({:.2}s wall)",
        blocked.report.summary(),
        blocked.wall_secs
    );

    // The contract: the entire RunReport (and the store-level eviction
    // counters) is bit-identical — block-max skipping only removes work
    // the quit rules were about to remove posting-by-posting.
    let identical =
        reference.report == blocked.report && reference.evictions == blocked.evictions;
    let speedup = reference.wall_secs / blocked.wall_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_postings\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        postings_arm_json(&reference),
        postings_arm_json(&blocked),
        identical,
        speedup,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write postings report to {out}: {e}"));
    println!("{json}");
    println!("wrote {out}; postings speedup {speedup:.2}x, sim figures identical: {identical}");
    identical
}

fn cache_of(r: &RunReport) -> &hybridcache::CacheStats {
    r.cache.as_ref().expect("cached run")
}

fn arm_json(a: &Arm) -> String {
    let r = &a.report;
    let cache = cache_of(r);
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"evictions\": {},\n",
            "      \"evictions_per_wall_sec\": {:.3},\n",
            "      \"sim_hit_ratio\": {:.17},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_p99_response_ns\": {},\n",
            "      \"sim_throughput_qps\": {:.17},\n",
            "      \"sim_elapsed_ns\": {},\n",
            "      \"postings_scanned\": {},\n",
            "      \"ssd_bytes_written\": {},\n",
            "      \"ssd_admissions\": {}\n",
            "    }}"
        ),
        a.label,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        a.evictions,
        a.evictions as f64 / a.wall_secs,
        r.hit_ratio(),
        r.mean_response.as_nanos(),
        r.p99_response.as_nanos(),
        r.throughput_qps,
        r.elapsed.as_nanos(),
        r.postings_scanned,
        cache.ssd_bytes_written,
        cache.results.ssd_admissions + cache.lists.ssd_admissions,
    )
}

/// One measured cluster arm.
struct ClusterArm {
    label: &'static str,
    report: ClusterReport,
    wall_secs: f64,
    /// Pool workers (1 on the sequential arm's calling thread).
    workers: usize,
    /// Critical path: cumulative busy time of the busiest pool worker
    /// (equals `wall_secs` on the sequential arm).
    max_busy_secs: f64,
}

fn run_cluster_arm(label: &'static str, exec: ClusterExecution) -> ClusterArm {
    let cfg = EngineConfig::cached(
        CLUSTER_DOCS,
        cache_config(CLUSTER_MEM_BYTES, CLUSTER_SSD_BYTES, PolicyKind::Cblru),
        SEED,
    );
    let mut c = SearchCluster::new(cfg, CLUSTER_SHARDS);
    c.set_execution(exec);
    let workers = match c.execution() {
        ClusterExecution::Sequential => 1,
        ClusterExecution::Parallel { workers } => workers,
    };
    let t0 = Instant::now();
    let report = c.run(CLUSTER_QUERIES);
    let wall_secs = t0.elapsed().as_secs_f64();
    let max_busy_secs = c
        .max_worker_busy()
        .map_or(wall_secs, |d| d.as_secs_f64());
    ClusterArm {
        label,
        report,
        wall_secs,
        workers,
        max_busy_secs,
    }
}

fn cluster_arm_json(a: &ClusterArm) -> String {
    let r = &a.report;
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"workers\": {},\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"wall_queries_per_sec\": {:.3},\n",
            "      \"max_worker_busy_secs\": {:.6},\n",
            "      \"sim_mean_response_ns\": {},\n",
            "      \"sim_mean_fastest_shard_ns\": {},\n",
            "      \"sim_throughput_qps\": {:.17},\n",
            "      \"sim_mean_hit_ratio\": {:.17},\n",
            "      \"sim_shard0_postings_scanned\": {}\n",
            "    }}"
        ),
        a.label,
        a.workers,
        a.wall_secs,
        r.queries as f64 / a.wall_secs,
        a.max_busy_secs,
        r.mean_response.as_nanos(),
        r.mean_fastest_shard.as_nanos(),
        r.throughput_qps,
        r.mean_hit_ratio(),
        r.shards[0].postings_scanned,
    )
}

/// Run both cluster arms, emit `BENCH_2.json`, and return whether the
/// simulated figures were bit-identical.
fn cluster_regress(out: &str) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let seq = run_cluster_arm("sequential", ClusterExecution::Sequential);
    eprintln!(
        "cluster sequential: mean {} | {:.2} q/s sim | {:.2}s wall",
        seq.report.mean_response, seq.report.throughput_qps, seq.wall_secs
    );
    let par = run_cluster_arm(
        "parallel",
        ClusterExecution::Parallel {
            workers: CLUSTER_SHARDS,
        },
    );
    eprintln!(
        "cluster parallel:   mean {} | {:.2} q/s sim | {:.2}s wall ({:.2}s critical path)",
        par.report.mean_response, par.report.throughput_qps, par.wall_secs, par.max_busy_secs
    );

    // The contract: the full ClusterReport — per-query statistics,
    // virtual clock, every per-shard cache/flash counter — is identical.
    let identical = seq.report == par.report;
    let speedup = seq.wall_secs / par.wall_secs;
    let critical_path_speedup = seq.wall_secs / par.max_busy_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress_cluster\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"shards\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes_per_shard\": {},\n",
            "    \"ssd_bytes_per_shard\": {},\n",
            "    \"policy\": \"CBLRU\"\n",
            "  }},\n",
            "  \"available_parallelism\": {},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3},\n",
            "  \"critical_path_speedup\": {:.3}\n",
            "}}\n"
        ),
        CLUSTER_DOCS,
        CLUSTER_SHARDS,
        CLUSTER_QUERIES,
        SEED,
        CLUSTER_MEM_BYTES,
        CLUSTER_SSD_BYTES,
        cores,
        cluster_arm_json(&seq),
        cluster_arm_json(&par),
        identical,
        speedup,
        critical_path_speedup,
    );
    std::fs::write(out, &json)
        .unwrap_or_else(|e| panic!("cannot write cluster report to {out}: {e}"));
    println!("{json}");
    println!(
        "wrote {out}; cluster speedup {speedup:.2}x wall ({critical_path_speedup:.2}x \
         critical-path, {cores} core(s) available), sim figures identical: {identical}"
    );
    if cores < CLUSTER_SHARDS {
        println!(
            "note: only {cores} core(s) for {CLUSTER_SHARDS} workers — the pool \
             timeshares, so wall-clock can at best tie, and the busiest worker's \
             span absorbs preemption, dragging the critical-path ratio to ~1x \
             too; rerun on a host with >= {CLUSTER_SHARDS} cores to see both \
             ratios approach {CLUSTER_SHARDS}x"
        );
    }
    identical
}

fn main() {
    let mut out = String::from("BENCH_1.json");
    let mut cluster_out = String::from("BENCH_2.json");
    let mut postings_out = String::from("BENCH_3.json");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(v) = args.next() {
                out = v;
            }
        } else if a == "--cluster-out" {
            if let Some(v) = args.next() {
                cluster_out = v;
            }
        } else if a == "--postings-out" {
            if let Some(v) = args.next() {
                postings_out = v;
            }
        }
    }

    // Smoke-check the shared harness path once so the binary exercises
    // the exact entry points the figure binaries use.
    let warm = run_cached(50_000, cache_config(4 << 20, 40 << 20, PolicyKind::Cblru), 2_000, SEED);
    eprintln!("warm-up: {}", warm.summary());

    let naive = run_arm("reference", true);
    eprintln!("reference: {} ({:.2}s wall)", naive.report.summary(), naive.wall_secs);
    let fast = run_arm("optimized", false);
    eprintln!("optimized: {} ({:.2}s wall)", fast.report.summary(), fast.wall_secs);

    // The contract: every simulated figure is bit-identical across arms.
    let identical = naive.report.hit_ratio() == fast.report.hit_ratio()
        && naive.report.mean_response == fast.report.mean_response
        && naive.report.p99_response == fast.report.p99_response
        && naive.report.elapsed == fast.report.elapsed
        && naive.report.postings_scanned == fast.report.postings_scanned
        && cache_of(&naive.report) == cache_of(&fast.report)
        && naive.evictions == fast.evictions;
    let speedup = naive.wall_secs / fast.wall_secs;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_regress\",\n",
            "  \"workload\": {{\n",
            "    \"docs\": {},\n",
            "    \"queries\": {},\n",
            "    \"seed\": {},\n",
            "    \"mem_bytes\": {},\n",
            "    \"ssd_bytes\": {},\n",
            "    \"policy\": \"CBSLRU(0.3)\"\n",
            "  }},\n",
            "  \"arms\": [\n{},\n{}\n  ],\n",
            "  \"sim_figures_bit_identical\": {},\n",
            "  \"wall_clock_speedup\": {:.3}\n",
            "}}\n"
        ),
        DOCS,
        QUERIES,
        SEED,
        MEM_BYTES,
        SSD_BYTES,
        arm_json(&naive),
        arm_json(&fast),
        identical,
        speedup,
    );
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| panic!("cannot write report to {out}: {e}"));
    println!("{json}");
    println!("wrote {out}; speedup {speedup:.2}x, sim figures identical: {identical}");

    let postings_identical = postings_regress(&postings_out);
    let cluster_identical = cluster_regress(&cluster_out);

    if !identical {
        eprintln!("FAIL: simulated figures diverged between the engine arms");
    }
    if !postings_identical {
        eprintln!(
            "FAIL: postings backends diverged — bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --postings`"
        );
    }
    if !cluster_identical {
        eprintln!(
            "FAIL: cluster arms diverged — bisect with \
             `cargo run --release -p bench --bin divergence_probe -- --cluster`"
        );
    }
    if !identical || !postings_identical || !cluster_identical {
        std::process::exit(1);
    }
}
