//! Analytic locality study: exact LRU stack distances of the engine's
//! index-device trace, and the success function they imply — the
//! theoretical ceiling behind the Fig. 14 hit-ratio sweeps.

use bench::{print_table, Scale};
use engine::{EngineConfig, IndexPlacement, SearchEngine};
use tracetools::StackDistance;

fn main() {
    let scale = Scale::from_args();
    let mut cfg = EngineConfig::no_cache(scale.docs_5m() / 2, IndexPlacement::Hdd, 71);
    cfg.capture_trace = true;
    let mut e = SearchEngine::new(cfg);
    e.run((4_000.0 * scale.0 * 10.0) as usize);
    let trace = e.take_trace();

    // Block-granular addresses (128 KB), the cache's management unit.
    let mut sd = StackDistance::new();
    for ev in &trace {
        sd.record(ev.extent.lba / 256);
    }

    println!(
        "trace: {} requests, {} distinct 128 KB blocks, {} cold misses\n",
        sd.accesses(),
        sd.distinct(),
        sd.cold_misses()
    );
    let rows: Vec<Vec<String>> = sd
        .success_function(12)
        .into_iter()
        .map(|(c, h)| {
            vec![
                c.to_string(),
                format!("{:.1}", c as f64 * 128.0 / 1024.0),
                format!("{:.2}", h * 100.0),
            ]
        })
        .collect();
    print_table(
        "LRU success function of the index I/O stream",
        &["capacity_blocks", "capacity_MB", "hit_ratio_%"],
        &rows,
    );
    println!(
        "reading: the sharp knee is the working set the paper's memory\n\
         level should cover; the long tail past it is exactly the band an\n\
         SSD level captures cheaply — the architecture in one curve."
    );
}
