//! Table I — retrieval under different situations: measured probabilities
//! and time costs of the nine R/I × memory/SSD/HDD combinations.

use bench::{cache_config, run_cached, Scale};
use hybridcache::PolicyKind;

fn main() {
    let scale = Scale::from_args();
    let docs = scale.docs_5m();
    let queries = scale.queries();
    println!("Table I (measured) — {docs} docs, {queries} queries, CBLRU 2LC\n");
    let report = run_cached(
        docs,
        cache_config(
            scale.bytes(20 << 20),
            scale.bytes(200 << 20),
            PolicyKind::Cblru,
        ),
        queries,
        1,
    );
    print!("{}", report.situations.render());
    println!();
    println!(
        "(S1–S5 dominate by design: the policies raise the probability of\n\
         memory/SSD service, exactly the goal stated under Table I.)"
    );
}
