//! Table II — the test-platform environment, paper vs. this reproduction.

fn main() {
    println!("Table II — hardware & software environment\n");
    let rows = [
        (
            "IR tool",
            "Lucene 3.0.0",
            "searchidx (from-scratch index + top-K)",
        ),
        (
            "Data set",
            "enwiki-20090805 (5M docs)",
            "SyntheticIndex, enwiki-like Zipf corpus",
        ),
        (
            "Query log",
            "AOL-user-ct-collection",
            "workload::QueryLog (Zipf α=0.85)",
        ),
        (
            "I/O trace analyzer",
            "DiskMon 2.0.1",
            "storagecore::PipelinedDevice + tracetools",
        ),
        (
            "SSD simulator",
            "FlashSim/DiskSim 3.0 (PSU)",
            "flashsim (page/block/FAST/DFTL FTLs)",
        ),
        (
            "SSD",
            "Intel SSD 320 40GB",
            "flashsim::SsdDisk, Table III parameters",
        ),
        ("HDD", "WDC WD3200AAJS 320GB", "hddsim::HddDisk::wd3200aajs"),
        (
            "OS",
            "Windows Server 2003/Ubuntu 10.04",
            "deterministic virtual-time simulation",
        ),
        (
            "CPU/RAM",
            "Pentium Dual E2180 / 2GB",
            "engine::CpuCostModel (calibrated)",
        ),
    ];
    println!("{:<22} {:<34} this reproduction", "item", "paper");
    for (item, paper, ours) in rows {
        println!("{item:<22} {paper:<34} {ours}");
    }
}
