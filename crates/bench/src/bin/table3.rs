//! Table III — simulated SSD parameters (verified against the flashsim
//! preset actually used by every experiment).

use flashsim::FlashParams;

fn main() {
    let p = FlashParams::paper(2 << 30);
    println!("Table III — simulation environment settings\n");
    println!("{:<14} page-mapping (ideal, the paper's baseline)", "FTL");
    println!("{:<14} {} B", "Page Size", p.page_bytes);
    println!(
        "{:<14} {} KB ({} pages)",
        "Block Size",
        p.block_bytes() / 1024,
        p.pages_per_block
    );
    println!("{:<14} {:.3} us", "Page Read", p.page_read.as_micros_f64());
    println!(
        "{:<14} {:.3} us",
        "Page Write",
        p.page_write.as_micros_f64()
    );
    println!(
        "{:<14} {:.1} ms",
        "Block Erase",
        p.block_erase.as_millis_f64()
    );
    assert_eq!(p.page_bytes, 2048);
    assert_eq!(p.block_bytes(), 128 * 1024);
    assert_eq!(p.page_read.as_nanos(), 32_725);
    assert_eq!(p.page_write.as_nanos(), 101_475);
    assert_eq!(p.block_erase.as_nanos(), 1_500_000);
    println!("\nall values match the paper exactly.");
}
