//! Shared harness code for the figure/table binaries.
//!
//! Every binary regenerates one table or figure of the paper at a
//! **scaled-down but shape-preserving** operating point: document counts
//! are 1/10 of the paper's (100 k–500 k for its 1 M–5 M), query counts and
//! cache capacities scale with them. Pass `--full` to run closer to paper
//! scale (slow), or `--scale <f64>` for anything in between; all series
//! print as aligned text tables plus a `csv:`-prefixed machine-readable
//! block.

use engine::{EngineConfig, IndexPlacement, SearchEngine};
use hybridcache::{HybridConfig, PolicyKind};

/// Scale factor applied to the paper's document/query counts.
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    /// Parse from argv: `--full` (0.5), `--scale F`, default 0.1.
    pub fn from_args() -> Self {
        let mut args = std::env::args();
        let mut scale = 0.1;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => scale = 0.5,
                "--scale" => {
                    if let Some(v) = args.next() {
                        scale = v.parse().unwrap_or(scale);
                    }
                }
                _ => {}
            }
        }
        Scale(scale)
    }

    /// The paper's 1–5 M document sweep, scaled.
    pub fn doc_points(&self) -> Vec<u64> {
        (1..=5).map(|m| (m as f64 * 1e6 * self.0) as u64).collect()
    }

    /// A single "large collection" point (the paper's 5 M documents).
    pub fn docs_5m(&self) -> u64 {
        (5e6 * self.0) as u64
    }

    /// The paper's 10 k–100 k query sweep (Fig. 19), scaled.
    pub fn query_points(&self) -> Vec<usize> {
        (1..=10)
            .map(|i| ((i as f64) * 1e4 * self.0) as usize)
            .collect()
    }

    /// A standard measurement run length.
    pub fn queries(&self) -> usize {
        (4e4 * self.0) as usize
    }

    /// Scale a byte capacity quoted at paper scale — capacities shrink
    /// with the document count so cache pressure (capacity : working set)
    /// is preserved.
    pub fn bytes(&self, paper_bytes: u64) -> u64 {
        ((paper_bytes as f64 * self.0) as u64).max(1 << 20)
    }
}

/// The standard cache configuration used across figures: memory cache
/// `mem_bytes`, SSD cache `ssd_bytes`, 20/80 RC/IC split.
pub fn cache_config(mem_bytes: u64, ssd_bytes: u64, policy: PolicyKind) -> HybridConfig {
    HybridConfig::paper(mem_bytes, ssd_bytes, policy)
}

/// Build and run one cached engine; CBSLRU configurations are seeded from
/// log analysis first (the paper's workflow).
pub fn run_cached(docs: u64, cache: HybridConfig, queries: usize, seed: u64) -> engine::RunReport {
    let policy = cache.policy;
    let mut e = SearchEngine::new(EngineConfig::cached(docs, cache, seed));
    if matches!(policy, PolicyKind::Cbslru { .. }) {
        e.seed_static_from_log(queries);
    }
    e.run(queries)
}

/// Build and run one uncached engine.
pub fn run_uncached(
    docs: u64,
    placement: IndexPlacement,
    queries: usize,
    seed: u64,
) -> engine::RunReport {
    let mut e = SearchEngine::new(EngineConfig::no_cache(docs, placement, seed));
    e.run(queries)
}

/// Print a text table: header + rows of equal arity.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    // Machine-readable block.
    println!("csv:{}", header.join(","));
    for row in rows {
        println!("csv:{}", row.join(","));
    }
    println!();
}

/// Format a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Format milliseconds.
pub fn ms(d: simclock::SimDuration) -> String {
    format!("{:.2}", d.as_millis_f64())
}

/// The three policies every comparison figure sweeps.
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Cblru,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_points() {
        let s = Scale(0.1);
        assert_eq!(
            s.doc_points(),
            vec![100_000, 200_000, 300_000, 400_000, 500_000]
        );
        assert_eq!(s.docs_5m(), 500_000);
        assert_eq!(s.query_points().len(), 10);
        assert_eq!(s.queries(), 4_000);
        // Capacities shrink with the docs; 1 MB floor.
        assert_eq!(s.bytes(200 << 20), 20 << 20);
        assert_eq!(s.bytes(1 << 20), 1 << 20);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(ms(simclock::SimDuration::from_micros(1500)), "1.50");
    }

    #[test]
    fn policy_list_is_ordered() {
        let p = policies();
        assert_eq!(p[0].label(), "LRU");
        assert_eq!(p[1].label(), "CBLRU");
        assert_eq!(p[2].label(), "CBSLRU");
    }
}
