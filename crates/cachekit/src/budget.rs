//! Byte-capacity accounting for variable-sized cache entries.

/// Tracks `used <= capacity` in bytes. Pure arithmetic — the caller decides
/// what to evict; the budget just refuses to go negative or over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteBudget {
    capacity: u64,
    used: u64,
}

impl ByteBudget {
    /// A budget of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        ByteBudget { capacity, used: 0 }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Whether `bytes` more would fit.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.free()
    }

    /// Whether an entry of `bytes` could *ever* fit (even into an empty
    /// budget).
    pub fn admissible(&self, bytes: u64) -> bool {
        bytes <= self.capacity
    }

    /// Charge `bytes`. Panics on overflow — the caller must evict first.
    pub fn charge(&mut self, bytes: u64) {
        assert!(
            self.fits(bytes),
            "budget overflow: {} + {bytes} > {}",
            self.used,
            self.capacity
        );
        self.used += bytes;
    }

    /// Release `bytes`. Panics on underflow — that's double-free of space.
    pub fn credit(&mut self, bytes: u64) {
        assert!(
            bytes <= self.used,
            "budget underflow: {bytes} > {}",
            self.used
        );
        self.used -= bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_credit_roundtrip() {
        let mut b = ByteBudget::new(100);
        assert!(b.fits(100));
        b.charge(60);
        assert_eq!(b.used(), 60);
        assert_eq!(b.free(), 40);
        assert!(!b.fits(41));
        assert!(b.fits(40));
        b.credit(20);
        assert_eq!(b.used(), 40);
        assert!((b.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn admissible_vs_fits() {
        let mut b = ByteBudget::new(100);
        b.charge(90);
        assert!(!b.fits(50));
        assert!(b.admissible(50), "would fit after eviction");
        assert!(!b.admissible(101));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overcharge_panics() {
        let mut b = ByteBudget::new(10);
        b.charge(11);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn overcredit_panics() {
        let mut b = ByteBudget::new(10);
        b.charge(5);
        b.credit(6);
    }

    #[test]
    fn zero_capacity_budget() {
        let b = ByteBudget::new(0);
        assert!(!b.fits(1));
        assert!(b.fits(0));
        assert_eq!(b.utilization(), 1.0, "empty-capacity reads as full");
    }
}
