//! Access-frequency tracking.
//!
//! The efficiency value of the paper's Formula 2, `EV = Freq / SC`, needs
//! per-key access counts. [`FreqCounter`] keeps exact counts with an
//! optional periodic halving ("aging") so ancient popularity eventually
//! fades — the paper's static analysis assumes a stable query log, but the
//! dynamic scenario it defers to future work needs decay, and the ablation
//! benches exercise it.

use fxmap::FxHashMap;
use std::hash::Hash;

/// Exact per-key access counter with optional aging.
#[derive(Debug, Clone)]
pub struct FreqCounter<K> {
    counts: FxHashMap<K, u64>,
    accesses: u64,
    /// Halve all counts every `aging_period` accesses (0 = never).
    aging_period: u64,
}

impl<K: Eq + Hash + Clone> Default for FreqCounter<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> FreqCounter<K> {
    /// Counter without aging.
    pub fn new() -> Self {
        FreqCounter {
            counts: FxHashMap::default(),
            accesses: 0,
            aging_period: 0,
        }
    }

    /// Counter that halves all counts every `period` recorded accesses.
    pub fn with_aging(period: u64) -> Self {
        FreqCounter {
            counts: FxHashMap::default(),
            accesses: 0,
            aging_period: period,
        }
    }

    /// Record one access and return the new count.
    pub fn record(&mut self, key: &K) -> u64 {
        self.accesses += 1;
        if self.aging_period > 0 && self.accesses % self.aging_period == 0 {
            self.age();
        }
        let c = self.counts.entry(key.clone()).or_insert(0);
        *c += 1;
        *c
    }

    /// Current count for `key` (0 if never seen).
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total recorded accesses (not affected by aging).
    pub fn total(&self) -> u64 {
        self.accesses
    }

    /// Number of distinct keys with a positive count.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Halve all counts, dropping keys that reach zero.
    pub fn age(&mut self) {
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }

    /// The `k` most frequent keys, descending by count (ties: arbitrary
    /// but deterministic for a given insertion history is *not*
    /// guaranteed — callers needing stable order sort by key too).
    pub fn top_k(&self, k: usize) -> Vec<(K, u64)> {
        let mut all: Vec<(K, u64)> = self
            .counts
            .iter()
            .map(|(key, &c)| (key.clone(), c))
            .collect();
        all.sort_unstable_by_key(|&(_, c)| core::cmp::Reverse(c));
        all.truncate(k);
        all
    }

    /// Forget one key.
    pub fn remove(&mut self, key: &K) {
        self.counts.remove(key);
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut f = FreqCounter::new();
        assert_eq!(f.get(&"a"), 0);
        assert_eq!(f.record(&"a"), 1);
        assert_eq!(f.record(&"a"), 2);
        assert_eq!(f.record(&"b"), 1);
        assert_eq!(f.get(&"a"), 2);
        assert_eq!(f.total(), 3);
        assert_eq!(f.distinct(), 2);
    }

    #[test]
    fn top_k_orders_by_count() {
        let mut f = FreqCounter::new();
        for _ in 0..5 {
            f.record(&"x");
        }
        for _ in 0..3 {
            f.record(&"y");
        }
        f.record(&"z");
        let top = f.top_k(2);
        assert_eq!(top, vec![("x", 5), ("y", 3)]);
        assert_eq!(f.top_k(10).len(), 3, "k beyond distinct keys is fine");
    }

    #[test]
    fn aging_halves_and_drops() {
        let mut f = FreqCounter::new();
        for _ in 0..8 {
            f.record(&1);
        }
        f.record(&2);
        f.age();
        assert_eq!(f.get(&1), 4);
        assert_eq!(f.get(&2), 0, "count 1 halves to 0 and is dropped");
        assert_eq!(f.distinct(), 1);
    }

    #[test]
    fn periodic_aging_fires() {
        let mut f = FreqCounter::with_aging(10);
        for _ in 0..9 {
            f.record(&"hot");
        }
        assert_eq!(f.get(&"hot"), 9);
        f.record(&"hot"); // 10th access: halves *before* counting
        assert_eq!(f.get(&"hot"), 5);
    }

    #[test]
    fn remove_and_clear() {
        let mut f = FreqCounter::new();
        f.record(&1);
        f.record(&2);
        f.remove(&1);
        assert_eq!(f.get(&1), 0);
        f.clear();
        assert_eq!(f.total(), 0);
        assert_eq!(f.distinct(), 0);
    }
}
