//! A ghost cache: bounded recency list of keys only, no payloads.
//!
//! The admission filter's blind spot is the key that was just evicted (or
//! just rejected) and immediately re-referenced: its sketch estimate may
//! still sit below the doorkeeper, yet the re-reference is the strongest
//! possible evidence of reuse. [`GhostCache`] remembers recently
//! dismissed keys as *metadata only* — an LRU list of keys with no
//! payload bytes — so the admission tier can fast-track exactly those
//! re-references past the frequency filter. This is the ARC/2Q ghost-list
//! idea applied to admission rather than sizing.

use core::fmt::Debug;
use std::hash::Hash;

use invariant::{audit, Report, Validate};

use crate::lru::LruList;

/// A bounded, payload-free LRU of recently dismissed keys.
#[derive(Debug, Clone)]
pub struct GhostCache<K> {
    list: LruList<K>,
    capacity: usize,
    /// Incrementally maintained member count, cross-checked by
    /// [`Validate`] against the list's own bookkeeping.
    members: usize,
    /// Keys dropped off the LRU end to hold the bound.
    evictions: u64,
    /// Successful consume-on-hit lookups.
    hits: u64,
}

impl<K: Eq + Hash + Clone + Debug> GhostCache<K> {
    /// A ghost list remembering at most `capacity` keys. Capacity 0 is a
    /// legal degenerate: every record is dropped immediately.
    pub fn new(capacity: usize) -> Self {
        GhostCache {
            list: LruList::new(),
            capacity,
            members: 0,
            evictions: 0,
            hits: 0,
        }
    }

    /// Keys currently remembered.
    pub fn len(&self) -> usize {
        self.members
    }

    /// Whether no keys are remembered.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// The bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.evictions)
    }

    /// Whether `key` is remembered (no recency effect, nothing consumed).
    pub fn contains(&self, key: &K) -> bool {
        self.list.contains(key)
    }

    /// Remember `key` as the most recent ghost; a key already present is
    /// refreshed in place. Evicts the oldest ghost when full.
    pub fn record(&mut self, key: K) {
        if self.capacity == 0 {
            return;
        }
        if self.list.touch(&key) {
            audit!(self, "GhostCache::record(refresh)");
            return;
        }
        if self.members == self.capacity {
            self.list.pop_lru().expect("full list has an LRU key");
            self.members -= 1;
            self.evictions += 1;
        }
        self.list.insert_mru(key);
        self.members += 1;
        audit!(self, "GhostCache::record");
    }

    /// Consume a ghost hit: if `key` is remembered, forget it and return
    /// true (the caller fast-tracks the admission). A ghost entry is
    /// single-shot — evidence spent is evidence gone, so a scan cannot
    /// ride one stale ghost forever.
    pub fn take(&mut self, key: &K) -> bool {
        if self.list.remove(key) {
            self.members -= 1;
            self.hits += 1;
            audit!(self, "GhostCache::take");
            true
        } else {
            false
        }
    }

    /// Corruption hook for the seeded-corruption audit tests: skew the
    /// incremental member count without touching the list.
    #[doc(hidden)]
    pub fn debug_corrupt_members(&mut self, delta: usize) {
        self.members += delta;
    }
}

impl<K: Eq + Hash + Clone + Debug> Validate for GhostCache<K> {
    /// Cross-checks the incremental member count against the list's own
    /// length and re-asserts the capacity bound — the ghost list is pure
    /// metadata, so an unbounded or miscounted list silently grows until
    /// every rejection fast-tracks (admission filter disabled) or none
    /// does.
    fn validate(&self, report: &mut Report) {
        const S: &str = "GhostCache";
        report.check(
            self.members == self.list.len(),
            S,
            "ghost-length-agree",
            || {
                format!(
                    "member count says {} keys, the list holds {}",
                    self.members,
                    self.list.len()
                )
            },
        );
        report.check(
            self.list.len() <= self.capacity,
            S,
            "ghost-capacity",
            || {
                format!(
                    "{} ghosts remembered against a capacity of {}",
                    self.list.len(),
                    self.capacity
                )
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_take_roundtrip() {
        let mut g: GhostCache<u64> = GhostCache::new(4);
        g.record(1);
        g.record(2);
        assert!(g.contains(&1));
        assert!(g.take(&1), "remembered key fast-tracks");
        assert!(!g.take(&1), "a ghost is single-shot");
        assert!(!g.take(&9), "never-seen key does not");
        assert_eq!(g.len(), 1);
        assert_eq!(g.stats().0, 1);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut g: GhostCache<u64> = GhostCache::new(3);
        for k in 0..5 {
            g.record(k);
        }
        assert_eq!(g.len(), 3);
        assert!(!g.contains(&0), "oldest ghosts fall off");
        assert!(!g.contains(&1));
        assert!(g.contains(&2) && g.contains(&3) && g.contains(&4));
        assert_eq!(g.stats().1, 2);
    }

    #[test]
    fn refresh_moves_to_mru() {
        let mut g: GhostCache<u64> = GhostCache::new(2);
        g.record(1);
        g.record(2);
        g.record(1); // refresh, not duplicate
        assert_eq!(g.len(), 2);
        g.record(3); // evicts 2, the LRU ghost
        assert!(g.contains(&1) && g.contains(&3) && !g.contains(&2));
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut g: GhostCache<u64> = GhostCache::new(0);
        g.record(1);
        assert!(g.is_empty());
        assert!(!g.take(&1));
        assert!(g.validation_report().is_clean());
    }

    #[test]
    fn validator_fires_on_corrupted_count() {
        let mut g: GhostCache<u64> = GhostCache::new(4);
        g.record(1);
        assert!(g.validation_report().is_clean());
        g.debug_corrupt_members(1);
        let fired: Vec<&str> = g
            .validation_report()
            .violations()
            .iter()
            .map(|v| v.invariant)
            .collect();
        assert!(fired.contains(&"ghost-length-agree"), "got {fired:?}");
    }
}
