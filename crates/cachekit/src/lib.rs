//! Cache building blocks.
//!
//! The paper's replacement machinery (Sec. VI-C) is assembled from a small
//! set of primitives, kept here so the baseline LRU and the proposed
//! CBLRU/CBSLRU share identical bookkeeping and differ *only* in policy:
//!
//! * [`LruList`] — an order-maintaining list with O(1) touch / insert /
//!   remove, backed by a slab and a hash index;
//! * [`SegmentedLru`] — an [`LruList`] split into the paper's **Working
//!   Region** and **Replace-First Region** of window `W` (Figs. 11 & 13);
//! * [`ByteBudget`] — capacity accounting for variable-sized entries;
//! * [`FreqCounter`] — access-frequency tracking used by the efficiency
//!   value `EV = Freq / SC`;
//! * [`LruCache`] — the classic byte-budgeted LRU cache, the baseline
//!   every experiment compares against;
//! * [`FreqSketch`] / [`GhostCache`] — the sketch-based admission tier's
//!   building blocks: a 4-bit counting frequency sketch (TinyLFU-style
//!   count-min with periodic halving) and a payload-free list of
//!   recently dismissed keys;
//! * [`victim`] — incremental priority indexes ([`MaxScoreIndex`],
//!   [`OrderIndex`], [`SizeClassIndex`]) that answer the paper's victim
//!   searches in O(log W) instead of scanning the window.
//!
//! Every structure implements [`invariant::Validate`], so debug builds can
//! audit the incremental bookkeeping (window partition, index agreement)
//! against a from-scratch rescan at each mutation boundary.

#![forbid(unsafe_code)]

pub mod budget;
pub mod freq;
pub mod ghost;
pub mod lru;
pub mod lru_cache;
pub mod segmented;
pub mod sketch;
pub mod victim;

pub use budget::ByteBudget;
pub use freq::FreqCounter;
pub use ghost::GhostCache;
pub use lru::LruList;
pub use lru_cache::LruCache;
pub use segmented::{SegmentedLru, WindowEvent};
pub use sketch::{FreqSketch, COUNTER_MAX};
pub use victim::{MaxScoreIndex, OrdF64, OrderIndex, SizeClassIndex, VictimSelection};
