//! An order-maintaining LRU list with O(1) operations.
//!
//! Recency order is kept in a doubly-linked list threaded through a slab
//! (`Vec` of nodes with index links — no per-node allocation, no unsafe),
//! with a `HashMap` from key to slot for O(1) lookup. This is the chassis
//! under every cache in the workspace.

use fxmap::FxHashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: u32,
    next: u32,
}

/// LRU ordering over a set of keys. MRU at the front, LRU at the back.
#[derive(Debug, Clone)]
pub struct LruList<K> {
    nodes: Vec<Node<K>>,
    index: FxHashMap<K, u32>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
}

impl<K: Eq + Hash + Clone> Default for LruList<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruList<K> {
    /// Empty list.
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            index: FxHashMap::default(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn link_front(&mut self, i: u32) {
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Insert `key` as MRU. Panics if already present (callers decide
    /// between touch and insert explicitly — silent upserts hide bugs).
    pub fn insert_mru(&mut self, key: K) {
        assert!(
            !self.index.contains_key(&key),
            "insert of a key already in the LRU list"
        );
        let i = if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node {
                key: key.clone(),
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            assert!(
                self.nodes.len() < u32::MAX as usize - 1,
                "LRU list overflow"
            );
            self.nodes.push(Node {
                key: key.clone(),
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        self.index.insert(key, i);
        self.link_front(i);
    }

    /// Move `key` to MRU. Returns false if absent.
    pub fn touch(&mut self, key: &K) -> bool {
        let Some(&i) = self.index.get(key) else {
            return false;
        };
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        true
    }

    /// Remove `key`. Returns false if absent.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(i) = self.index.remove(key) else {
            return false;
        };
        self.unlink(i);
        self.free.push(i);
        true
    }

    /// Remove and return the LRU key.
    pub fn pop_lru(&mut self) -> Option<K> {
        let i = self.tail;
        if i == NIL {
            return None;
        }
        let key = self.nodes[i as usize].key.clone();
        self.unlink(i);
        self.index.remove(&key);
        self.free.push(i);
        Some(key)
    }

    /// The LRU key, without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.nodes[self.tail as usize].key)
    }

    /// The MRU key.
    pub fn peek_mru(&self) -> Option<&K> {
        (self.head != NIL).then(|| &self.nodes[self.head as usize].key)
    }

    /// The neighbor of `key` one step towards the MRU end (`None` for the
    /// MRU itself or an absent key). O(1).
    pub fn next_toward_mru(&self, key: &K) -> Option<&K> {
        let &i = self.index.get(key)?;
        let p = self.nodes[i as usize].prev;
        (p != NIL).then(|| &self.nodes[p as usize].key)
    }

    /// The neighbor of `key` one step towards the LRU end (`None` for the
    /// LRU itself or an absent key). O(1).
    pub fn next_toward_lru(&self, key: &K) -> Option<&K> {
        let &i = self.index.get(key)?;
        let n = self.nodes[i as usize].next;
        (n != NIL).then(|| &self.nodes[n as usize].key)
    }

    /// Iterate from LRU towards MRU.
    pub fn iter_lru(&self) -> IterLru<'_, K> {
        IterLru {
            list: self,
            cur: self.tail,
        }
    }

    /// Iterate from MRU towards LRU.
    pub fn iter_mru(&self) -> IterMru<'_, K> {
        IterMru {
            list: self,
            cur: self.head,
        }
    }
}

/// LRU→MRU iterator.
pub struct IterLru<'a, K> {
    list: &'a LruList<K>,
    cur: u32,
}

impl<'a, K> Iterator for IterLru<'a, K> {
    type Item = &'a K;
    fn next(&mut self) -> Option<&'a K> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.list.nodes[self.cur as usize];
        self.cur = n.prev;
        Some(&n.key)
    }
}

/// MRU→LRU iterator.
pub struct IterMru<'a, K> {
    list: &'a LruList<K>,
    cur: u32,
}

impl<'a, K> Iterator for IterMru<'a, K> {
    type Item = &'a K;
    fn next(&mut self) -> Option<&'a K> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.list.nodes[self.cur as usize];
        self.cur = n.next;
        Some(&n.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(list: &LruList<u32>) -> Vec<u32> {
        list.iter_mru().copied().collect()
    }

    #[test]
    fn insert_and_order() {
        let mut l = LruList::new();
        for k in [1, 2, 3] {
            l.insert_mru(k);
        }
        assert_eq!(order(&l), vec![3, 2, 1]);
        assert_eq!(l.peek_mru(), Some(&3));
        assert_eq!(l.peek_lru(), Some(&1));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn touch_promotes() {
        let mut l = LruList::new();
        for k in [1, 2, 3] {
            l.insert_mru(k);
        }
        assert!(l.touch(&1));
        assert_eq!(order(&l), vec![1, 3, 2]);
        assert!(!l.touch(&9));
        // Touching the MRU is a no-op.
        assert!(l.touch(&1));
        assert_eq!(order(&l), vec![1, 3, 2]);
    }

    #[test]
    fn pop_lru_in_order() {
        let mut l = LruList::new();
        for k in [1, 2, 3] {
            l.insert_mru(k);
        }
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle_and_ends() {
        let mut l = LruList::new();
        for k in [1, 2, 3, 4] {
            l.insert_mru(k);
        }
        assert!(l.remove(&3)); // middle
        assert_eq!(order(&l), vec![4, 2, 1]);
        assert!(l.remove(&4)); // head
        assert!(l.remove(&1)); // tail
        assert_eq!(order(&l), vec![2]);
        assert!(!l.remove(&1));
    }

    #[test]
    fn slots_are_reused() {
        let mut l = LruList::new();
        for k in 0..100u32 {
            l.insert_mru(k);
        }
        for k in 0..100u32 {
            l.remove(&k);
        }
        for k in 100..200u32 {
            l.insert_mru(k);
        }
        assert_eq!(l.nodes.len(), 100, "slab must not grow past peak size");
        assert_eq!(l.len(), 100);
    }

    #[test]
    #[should_panic(expected = "already in the LRU list")]
    fn double_insert_panics() {
        let mut l = LruList::new();
        l.insert_mru(5);
        l.insert_mru(5);
    }

    #[test]
    fn iter_lru_is_reverse_of_mru() {
        let mut l = LruList::new();
        for k in [7, 8, 9, 10] {
            l.insert_mru(k);
        }
        let mut fwd: Vec<u32> = l.iter_lru().copied().collect();
        fwd.reverse();
        assert_eq!(fwd, order(&l));
    }

    #[test]
    fn stress_against_reference_model() {
        // Random ops mirrored against a Vec-based reference.
        let mut rng = ReferenceRng(12345);
        let mut l = LruList::new();
        let mut model: Vec<u32> = Vec::new(); // MRU at front
        for _ in 0..20_000 {
            let k = rng.next() % 50;
            match rng.next() % 4 {
                0 => {
                    if !model.contains(&k) {
                        l.insert_mru(k);
                        model.insert(0, k);
                    }
                }
                1 => {
                    let hit = l.touch(&k);
                    let mhit = model.contains(&k);
                    assert_eq!(hit, mhit);
                    if mhit {
                        model.retain(|&x| x != k);
                        model.insert(0, k);
                    }
                }
                2 => {
                    assert_eq!(l.remove(&k), {
                        let had = model.contains(&k);
                        model.retain(|&x| x != k);
                        had
                    });
                }
                _ => {
                    assert_eq!(l.pop_lru(), model.pop());
                }
            }
            assert_eq!(l.len(), model.len());
        }
        let got: Vec<u32> = l.iter_mru().copied().collect();
        assert_eq!(got, model);
    }

    /// Minimal xorshift for the stress test (keeps this crate dep-free).
    struct ReferenceRng(u64);
    impl ReferenceRng {
        fn next(&mut self) -> u32 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 32) as u32
        }
    }
}
