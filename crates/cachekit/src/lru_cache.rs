//! The baseline: a byte-budgeted LRU cache for variable-sized entries.
//!
//! This is the "traditional LRU" every figure in the paper's evaluation
//! compares against, used both as the memory-level cache under all
//! policies and as the L2 policy in the LRU baseline runs.

use fxmap::FxHashMap;
use std::hash::Hash;

use invariant::{Report, Validate};

use crate::budget::ByteBudget;
use crate::lru::LruList;

/// One stored entry.
#[derive(Debug, Clone)]
struct Slot<V> {
    value: V,
    bytes: u64,
}

/// Byte-budgeted LRU cache.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    list: LruList<K>,
    map: FxHashMap<K, Slot<V>>,
    budget: ByteBudget,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            list: LruList::new(),
            map: FxHashMap::default(),
            budget: ByteBudget::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes in use / capacity.
    pub fn budget(&self) -> &ByteBudget {
        &self.budget
    }

    /// (hits, misses) since construction.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit ratio in `[0,1]` (0 when never queried).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Look up and promote. Counts a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.list.touch(key) {
            self.hits += 1;
            Some(&self.map[key].value)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Look up and promote, returning a mutable reference. Counts a hit
    /// or miss like [`LruCache::get`]. Mutation must not change the
    /// entry's byte footprint — use [`LruCache::insert`] for resizes.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if self.list.touch(key) {
            self.hits += 1;
            Some(&mut self.map.get_mut(key).expect("list/map agree").value)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Look up without promoting or counting.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|s| &s.value)
    }

    /// Whether present (no promotion, no counting).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Size in bytes of a present entry.
    pub fn entry_bytes(&self, key: &K) -> Option<u64> {
        self.map.get(key).map(|s| s.bytes)
    }

    /// Insert `key` at MRU with `bytes` cost, evicting LRU entries until it
    /// fits. Returns the evicted `(key, value, bytes)` tuples, oldest
    /// first. An entry larger than the whole capacity is rejected and
    /// returned as `Err`.
    #[allow(clippy::type_complexity)]
    pub fn insert(&mut self, key: K, value: V, bytes: u64) -> Result<Vec<(K, V, u64)>, V> {
        if !self.budget.admissible(bytes) {
            return Err(value);
        }
        // Replacing an existing entry releases its old charge first.
        if let Some(old) = self.map.remove(&key) {
            self.budget.credit(old.bytes);
            self.list.remove(&key);
        }
        let mut evicted = Vec::new();
        while !self.budget.fits(bytes) {
            let victim = self
                .list
                .pop_lru()
                .expect("budget says full, list says empty");
            let slot = self.map.remove(&victim).expect("list/map agree");
            self.budget.credit(slot.bytes);
            evicted.push((victim, slot.value, slot.bytes));
        }
        self.budget.charge(bytes);
        self.list.insert_mru(key.clone());
        self.map.insert(key, Slot { value, bytes });
        Ok(evicted)
    }

    /// Remove an entry, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.map.remove(key)?;
        self.list.remove(key);
        self.budget.credit(slot.bytes);
        Some(slot.value)
    }

    /// The LRU key, if any.
    pub fn peek_lru(&self) -> Option<&K> {
        self.list.peek_lru()
    }

    /// Pop the LRU entry.
    pub fn pop_lru(&mut self) -> Option<(K, V, u64)> {
        let key = self.list.pop_lru()?;
        let slot = self.map.remove(&key).expect("list/map agree");
        self.budget.credit(slot.bytes);
        Some((key, slot.value, slot.bytes))
    }

    /// Iterate keys from LRU to MRU.
    pub fn iter_lru(&self) -> impl Iterator<Item = &K> {
        self.list.iter_lru()
    }

    /// Reset hit/miss counters.
    pub fn reset_hit_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

impl<K: Eq + Hash + Clone + std::fmt::Debug, V> Validate for LruCache<K, V> {
    /// The recency list, the slot map, and the byte budget must describe
    /// the same population: list order covers exactly the map's keys and
    /// the budget's `used` equals the sum of the stored entry sizes
    /// (never above capacity).
    fn validate(&self, report: &mut Report) {
        report.check(
            self.list.len() == self.map.len(),
            "LruCache",
            "list-map-agree",
            || {
                format!(
                    "list tracks {} keys, map holds {}",
                    self.list.len(),
                    self.map.len()
                )
            },
        );
        let mut listed = 0u64;
        for k in self.list.iter_lru() {
            listed += 1;
            report.check(
                self.map.contains_key(k),
                "LruCache",
                "list-map-agree",
                || format!("{k:?} is on the recency list but has no slot"),
            );
        }
        report.check(
            listed as usize == self.list.len(),
            "LruCache",
            "list-link-count",
            || {
                format!(
                    "walking the list visits {listed} nodes but len() says {}",
                    self.list.len()
                )
            },
        );
        let stored: u64 = self.map.values().map(|s| s.bytes).sum();
        report.check(
            stored == self.budget.used(),
            "LruCache",
            "budget-accounting",
            || {
                format!(
                    "entries sum to {stored} bytes but the budget charges {}",
                    self.budget.used()
                )
            },
        );
        report.check(
            self.budget.used() <= self.budget.capacity(),
            "LruCache",
            "budget-capacity",
            || {
                format!(
                    "{} bytes charged against a capacity of {}",
                    self.budget.used(),
                    self.budget.capacity()
                )
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = LruCache::new(100);
        c.insert("a", 1, 10).unwrap();
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.hit_stats(), (1, 1));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_lru_ordered() {
        let mut c = LruCache::new(30);
        c.insert(1, (), 10).unwrap();
        c.insert(2, (), 10).unwrap();
        c.insert(3, (), 10).unwrap();
        c.get(&1); // promote 1; LRU is now 2
        let evicted = c.insert(4, (), 20).unwrap();
        let keys: Vec<i32> = evicted.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(keys, vec![2, 3]);
        assert!(c.contains(&1));
        assert!(c.contains(&4));
        assert_eq!(c.budget().used(), 30);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = LruCache::new(10);
        c.insert(1, (), 5).unwrap();
        assert!(c.insert(2, (), 11).is_err());
        assert!(c.contains(&1), "rejection must not disturb the cache");
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruCache::new(100);
        c.insert("k", 1, 80).unwrap();
        c.insert("k", 2, 10).unwrap();
        assert_eq!(c.budget().used(), 10);
        assert_eq!(c.peek(&"k"), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_credits_budget() {
        let mut c = LruCache::new(100);
        c.insert(1, "x", 40).unwrap();
        assert_eq!(c.remove(&1), Some("x"));
        assert_eq!(c.budget().used(), 0);
        assert_eq!(c.remove(&1), None);
    }

    #[test]
    fn pop_lru_returns_size() {
        let mut c = LruCache::new(100);
        c.insert(1, 'a', 10).unwrap();
        c.insert(2, 'b', 20).unwrap();
        assert_eq!(c.pop_lru(), Some((1, 'a', 10)));
        assert_eq!(c.budget().used(), 20);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c = LruCache::new(20);
        c.insert(1, (), 10).unwrap();
        c.insert(2, (), 10).unwrap();
        c.peek(&1);
        let evicted = c.insert(3, (), 10).unwrap();
        assert_eq!(evicted[0].0, 1, "peek must not have promoted key 1");
    }

    #[test]
    fn zero_byte_entries_are_fine() {
        let mut c = LruCache::new(10);
        for k in 0..100 {
            c.insert(k, (), 0).unwrap();
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.budget().used(), 0);
    }

    #[test]
    fn budget_never_exceeded_under_random_ops() {
        let mut c = LruCache::new(500);
        let mut state = 987654321u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10_000 {
            let k = rnd() % 40;
            match rnd() % 3 {
                0 => {
                    let _ = c.insert(k, (), rnd() % 120);
                }
                1 => {
                    c.get(&k);
                }
                _ => {
                    c.remove(&k);
                }
            }
            assert!(c.budget().used() <= c.budget().capacity());
            assert_eq!(c.iter_lru().count(), c.len());
        }
    }
}
