//! The paper's two-region LRU list.
//!
//! CBLRU (Sec. VI-C) splits the recency list into a **Working Region**
//! (most-recently-used side) and a **Replace-First Region**: the `W`
//! least-recently-used entries. Victims are searched in the replace-first
//! region first — by invalid-entry count for result blocks (Fig. 11), by
//! size match for inverted lists (Fig. 13) — and only in the worst case in
//! the whole list.
//!
//! [`SegmentedLru`] wraps [`LruList`] with region-aware scans. The window
//! is a *view*, not a partition with its own lists: entries drift into the
//! replace-first region simply by not being touched, exactly as in the
//! paper's figures.

use std::hash::Hash;

use crate::lru::LruList;

/// An LRU list with a replace-first window of size `W` at the LRU end.
#[derive(Debug, Clone)]
pub struct SegmentedLru<K> {
    list: LruList<K>,
    window: usize,
}

impl<K: Eq + Hash + Clone> SegmentedLru<K> {
    /// Create with a replace-first window of `window` entries (`W` in the
    /// paper). A window of 0 degenerates to plain LRU victim selection
    /// via [`SegmentedLru::pop_lru`].
    pub fn new(window: usize) -> Self {
        SegmentedLru {
            list: LruList::new(),
            window,
        }
    }

    /// The window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Change the window size.
    pub fn set_window(&mut self, window: usize) {
        self.window = window;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.list.contains(key)
    }

    /// Insert as MRU (panics if present).
    pub fn insert_mru(&mut self, key: K) {
        self.list.insert_mru(key);
    }

    /// Promote to MRU; false if absent.
    pub fn touch(&mut self, key: &K) -> bool {
        self.list.touch(key)
    }

    /// Remove; false if absent.
    pub fn remove(&mut self, key: &K) -> bool {
        self.list.remove(key)
    }

    /// Remove and return the strict LRU entry.
    pub fn pop_lru(&mut self) -> Option<K> {
        self.list.pop_lru()
    }

    /// Iterate the replace-first region, LRU first (at most `W` entries).
    pub fn iter_replace_first(&self) -> impl Iterator<Item = &K> {
        self.list.iter_lru().take(self.window)
    }

    /// Iterate the whole list, LRU first.
    pub fn iter_lru(&self) -> impl Iterator<Item = &K> {
        self.list.iter_lru()
    }

    /// Whether `key` currently sits inside the replace-first region.
    pub fn in_replace_first(&self, key: &K) -> bool {
        self.iter_replace_first().any(|k| k == key)
    }

    /// The best victim in the replace-first region by `score` (higher is
    /// more evictable); `None` if the list is empty. Ties go to the less
    /// recently used entry, i.e. the first encountered.
    pub fn best_in_replace_first<S, F>(&self, mut score: F) -> Option<&K>
    where
        S: PartialOrd,
        F: FnMut(&K) -> S,
    {
        let mut best: Option<(&K, S)> = None;
        for k in self.iter_replace_first() {
            let s = score(k);
            match &best {
                None => best = Some((k, s)),
                Some((_, bs)) if s > *bs => best = Some((k, s)),
                _ => {}
            }
        }
        best.map(|(k, _)| k)
    }

    /// The first (most-LRU) entry in the replace-first region satisfying
    /// `pred`.
    pub fn find_in_replace_first<F>(&self, mut pred: F) -> Option<&K>
    where
        F: FnMut(&K) -> bool,
    {
        self.iter_replace_first().find(|k| pred(k))
    }

    /// The first entry satisfying `pred` scanning the *entire* list from
    /// the LRU end — the paper's worst-case fallback ("the cache manager
    /// will look up in a wider region, namely in all the LRU list").
    pub fn find_anywhere<F>(&self, mut pred: F) -> Option<&K>
    where
        F: FnMut(&K) -> bool,
    {
        self.iter_lru().find(|k| pred(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(window: usize, n: u32) -> SegmentedLru<u32> {
        let mut s = SegmentedLru::new(window);
        for k in 0..n {
            s.insert_mru(k); // 0 is LRU, n-1 is MRU
        }
        s
    }

    #[test]
    fn replace_first_region_is_the_lru_tail() {
        let s = filled(3, 10);
        let region: Vec<u32> = s.iter_replace_first().copied().collect();
        assert_eq!(region, vec![0, 1, 2]);
        assert!(s.in_replace_first(&0));
        assert!(!s.in_replace_first(&5));
    }

    #[test]
    fn window_larger_than_list_covers_everything() {
        let s = filled(100, 4);
        assert_eq!(s.iter_replace_first().count(), 4);
    }

    #[test]
    fn touching_moves_an_entry_out_of_the_window() {
        let mut s = filled(3, 10);
        assert!(s.in_replace_first(&1));
        s.touch(&1);
        assert!(!s.in_replace_first(&1));
        // Entry 3 drifted in to take its place.
        let region: Vec<u32> = s.iter_replace_first().copied().collect();
        assert_eq!(region, vec![0, 2, 3]);
    }

    #[test]
    fn best_in_replace_first_maximizes_score() {
        let s = filled(4, 10);
        // Score: prefer even keys, then larger.
        let v = s.best_in_replace_first(|&k| (k % 2 == 0) as u32 * 100 + k);
        assert_eq!(v, Some(&2));
    }

    #[test]
    fn best_breaks_ties_towards_lru() {
        let s = filled(4, 10);
        let v = s.best_in_replace_first(|_| 1u32);
        assert_eq!(v, Some(&0), "constant score must pick the LRU entry");
    }

    #[test]
    fn find_falls_back_to_whole_list() {
        let s = filled(2, 10);
        assert_eq!(s.find_in_replace_first(|&k| k == 7), None);
        assert_eq!(s.find_anywhere(|&k| k == 7), Some(&7));
    }

    #[test]
    fn empty_list_yields_no_victim() {
        let s: SegmentedLru<u32> = SegmentedLru::new(5);
        assert_eq!(s.best_in_replace_first(|_| 0u32), None);
        assert_eq!(s.find_anywhere(|_| true), None);
    }

    #[test]
    fn zero_window_means_plain_lru() {
        let mut s = filled(0, 5);
        assert_eq!(s.iter_replace_first().count(), 0);
        assert_eq!(s.pop_lru(), Some(0));
    }

    #[test]
    fn set_window_resizes_view() {
        let mut s = filled(2, 10);
        assert_eq!(s.iter_replace_first().count(), 2);
        s.set_window(5);
        assert_eq!(s.iter_replace_first().count(), 5);
        assert_eq!(s.window(), 5);
    }
}
