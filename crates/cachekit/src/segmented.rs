//! The paper's two-region LRU list.
//!
//! CBLRU (Sec. VI-C) splits the recency list into a **Working Region**
//! (most-recently-used side) and a **Replace-First Region**: the `W`
//! least-recently-used entries. Victims are searched in the replace-first
//! region first — by invalid-entry count for result blocks (Fig. 11), by
//! size match for inverted lists (Fig. 13) — and only in the worst case in
//! the whole list.
//!
//! [`SegmentedLru`] wraps [`LruList`] with region-aware scans. The window
//! is a *view*, not a partition with its own lists: entries drift into the
//! replace-first region simply by not being touched, exactly as in the
//! paper's figures.
//!
//! ## Incremental window tracking
//!
//! Membership of the replace-first region is maintained *incrementally*:
//! every operation adjusts a key→stamp map instead of re-scanning the LRU
//! tail, so [`SegmentedLru::in_replace_first`] is O(1) and callers can
//! mirror the region into priority indexes (see `victim`). Stamps are
//! assigned so that, among current window members, **a smaller stamp means
//! closer to the LRU end**: entries only ever join the window at its MRU
//! boundary (drift-in, insertion into a not-yet-full list, or re-stamping
//! on an intra-window touch), so stamp order and list order never diverge.
//! The old scan-based primitives (`best_in_replace_first`,
//! `find_in_replace_first`, `find_anywhere`) are kept verbatim as the
//! reference implementations the property tests compare against.

use fxmap::FxHashMap;
use std::hash::Hash;

use invariant::{Report, Validate};

use crate::lru::LruList;

/// A change to the replace-first region's membership, reported when event
/// tracking is enabled via [`SegmentedLru::enable_window_events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowEvent<K> {
    /// `key` became a member; `stamp` orders members (smaller = more LRU).
    Entered {
        /// The joining key.
        key: K,
        /// Its position stamp.
        stamp: u64,
    },
    /// `key` is no longer a member.
    Left {
        /// The leaving key.
        key: K,
    },
}

/// An LRU list with a replace-first window of size `W` at the LRU end.
#[derive(Debug, Clone)]
pub struct SegmentedLru<K> {
    list: LruList<K>,
    window: usize,
    /// Current replace-first members and their order stamps.
    members: FxHashMap<K, u64>,
    /// The most-MRU member (the window's boundary entry).
    window_mru: Option<K>,
    next_stamp: u64,
    events: Vec<WindowEvent<K>>,
    track_events: bool,
}

impl<K: Eq + Hash + Clone> SegmentedLru<K> {
    /// Create with a replace-first window of `window` entries (`W` in the
    /// paper). A window of 0 degenerates to plain LRU victim selection
    /// via [`SegmentedLru::pop_lru`].
    pub fn new(window: usize) -> Self {
        SegmentedLru {
            list: LruList::new(),
            window,
            members: FxHashMap::default(),
            window_mru: None,
            next_stamp: 0,
            events: Vec::new(),
            track_events: false,
        }
    }

    /// The window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Change the window size (rebuilds the membership view, O(n)).
    pub fn set_window(&mut self, window: usize) {
        self.window = window;
        let old: Vec<K> = self.members.keys().cloned().collect();
        for k in &old {
            self.leave(k);
        }
        self.window_mru = None;
        let target: Vec<K> = self.list.iter_lru().take(self.window).cloned().collect();
        for k in target {
            self.enter(k.clone());
            self.window_mru = Some(k);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.list.contains(key)
    }

    fn enter(&mut self, key: K) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.members.insert(key.clone(), stamp);
        if self.track_events {
            self.events.push(WindowEvent::Entered { key, stamp });
        }
    }

    fn leave(&mut self, key: &K) {
        self.members.remove(key);
        if self.track_events {
            self.events.push(WindowEvent::Left { key: key.clone() });
        }
    }

    /// The working-region entry adjacent to the window boundary — the one
    /// that drifts in when a member leaves. Only valid when the list is
    /// longer than the window.
    fn boundary_neighbor(&self) -> K {
        let mru = self
            .window_mru
            .as_ref()
            .expect("full window has a boundary entry");
        self.list
            .next_toward_mru(mru)
            .cloned()
            .expect("len > window implies a working-region entry")
    }

    /// Insert as MRU (panics if present).
    pub fn insert_mru(&mut self, key: K) {
        self.list.insert_mru(key.clone());
        if self.window > 0 && self.members.len() < self.window {
            // The whole list still fits inside the window, so the new MRU
            // is also the window's boundary entry.
            self.enter(key.clone());
            self.window_mru = Some(key);
        }
    }

    /// Promote to MRU; false if absent.
    pub fn touch(&mut self, key: &K) -> bool {
        if !self.list.contains(key) {
            return false;
        }
        if self.window > 0 && self.members.contains_key(key) {
            if self.list.len() > self.window {
                // The touched member leaves; its place is taken by the
                // entry just outside the boundary.
                let drift = self.boundary_neighbor();
                self.list.touch(key);
                self.leave(key);
                self.enter(drift.clone());
                self.window_mru = Some(drift);
            } else {
                // Whole list inside the window: membership is unchanged
                // but the entry moved to MRU — re-stamp it so stamps keep
                // mirroring list order.
                self.list.touch(key);
                self.leave(key);
                self.enter(key.clone());
                self.window_mru = Some(key.clone());
            }
        } else {
            self.list.touch(key);
        }
        true
    }

    /// Remove; false if absent.
    pub fn remove(&mut self, key: &K) -> bool {
        if !self.list.contains(key) {
            return false;
        }
        if self.window > 0 && self.members.contains_key(key) {
            if self.list.len() > self.window {
                let drift = self.boundary_neighbor();
                self.list.remove(key);
                self.leave(key);
                self.enter(drift.clone());
                self.window_mru = Some(drift);
            } else {
                self.list.remove(key);
                self.leave(key);
                if self.window_mru.as_ref() == Some(key) {
                    self.window_mru = self.list.peek_mru().cloned();
                }
            }
        } else {
            self.list.remove(key);
        }
        true
    }

    /// Remove and return the strict LRU entry.
    pub fn pop_lru(&mut self) -> Option<K> {
        let key = self.list.peek_lru()?.clone();
        self.remove(&key);
        Some(key)
    }

    /// The strict LRU entry, without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        self.list.peek_lru()
    }

    /// The least-recently-used entry that is not `exclude` — the O(1)
    /// equivalent of `find_anywhere(|k| Some(k) != exclude)` when at most
    /// one key is excluded.
    pub fn lru_most_excluding(&self, exclude: Option<&K>) -> Option<&K> {
        let lru = self.list.peek_lru()?;
        if Some(lru) == exclude {
            self.list.next_toward_mru(lru)
        } else {
            Some(lru)
        }
    }

    /// Iterate the replace-first region, LRU first (at most `W` entries).
    pub fn iter_replace_first(&self) -> impl Iterator<Item = &K> {
        self.list.iter_lru().take(self.window)
    }

    /// Iterate the whole list, LRU first.
    pub fn iter_lru(&self) -> impl Iterator<Item = &K> {
        self.list.iter_lru()
    }

    /// Whether `key` currently sits inside the replace-first region. O(1).
    pub fn in_replace_first(&self, key: &K) -> bool {
        self.members.contains_key(key)
    }

    /// The key's window-order stamp (smaller = closer to the LRU end);
    /// `None` outside the replace-first region.
    pub fn window_stamp(&self, key: &K) -> Option<u64> {
        self.members.get(key).copied()
    }

    /// Start recording membership changes for retrieval via
    /// [`SegmentedLru::take_window_events`]. Off by default so casual
    /// users don't accumulate an unread event log.
    pub fn enable_window_events(&mut self) {
        self.track_events = true;
    }

    /// Move all pending membership events into `out` (in occurrence
    /// order), leaving the internal buffer empty but with its capacity.
    pub fn take_window_events(&mut self, out: &mut Vec<WindowEvent<K>>) {
        out.append(&mut self.events);
    }

    /// Stop recording membership changes and drop any unread events.
    pub fn disable_window_events(&mut self) {
        self.track_events = false;
        self.events.clear();
    }

    /// The best victim in the replace-first region by `score` (higher is
    /// more evictable); `None` if the list is empty. Ties go to the less
    /// recently used entry, i.e. the first encountered.
    ///
    /// This is the seed's O(W) reference scan; indexed callers mirror the
    /// window into a `victim::MaxScoreIndex` instead and property tests
    /// assert both pick the same victim.
    pub fn best_in_replace_first<S, F>(&self, mut score: F) -> Option<&K>
    where
        S: PartialOrd,
        F: FnMut(&K) -> S,
    {
        let mut best: Option<(&K, S)> = None;
        for k in self.iter_replace_first() {
            let s = score(k);
            match &best {
                None => best = Some((k, s)),
                Some((_, bs)) if s > *bs => best = Some((k, s)),
                _ => {}
            }
        }
        best.map(|(k, _)| k)
    }

    /// The first (most-LRU) entry in the replace-first region satisfying
    /// `pred`.
    pub fn find_in_replace_first<F>(&self, mut pred: F) -> Option<&K>
    where
        F: FnMut(&K) -> bool,
    {
        self.iter_replace_first().find(|k| pred(k))
    }

    /// The first entry satisfying `pred` scanning the *entire* list from
    /// the LRU end — the paper's worst-case fallback ("the cache manager
    /// will look up in a wider region, namely in all the LRU list").
    pub fn find_anywhere<F>(&self, mut pred: F) -> Option<&K>
    where
        F: FnMut(&K) -> bool,
    {
        self.iter_lru().find(|k| pred(k))
    }

    /// Internal consistency check: the incremental membership view must
    /// equal the first `min(W, len)` entries of the LRU order, with stamps
    /// increasing towards MRU. Used by tests.
    #[doc(hidden)]
    pub fn assert_window_consistent(&self) {
        let scan: Vec<&K> = self.iter_replace_first().collect();
        assert_eq!(
            scan.len(),
            self.members.len(),
            "window member count diverged from the scan"
        );
        let mut last_stamp = None;
        for k in &scan {
            let stamp = *self
                .members
                .get(*k)
                .expect("scan member missing from the incremental view");
            if let Some(prev) = last_stamp {
                assert!(stamp > prev, "stamps must increase towards MRU");
            }
            last_stamp = Some(stamp);
        }
        assert!(
            scan.last().copied() == self.window_mru.as_ref(),
            "window boundary entry diverged"
        );
    }
}

impl<K: Eq + Hash + Clone + std::fmt::Debug> Validate for SegmentedLru<K> {
    /// The paper's replace-first window `W` (Sec. VI-C) is maintained
    /// incrementally; validation re-derives it by scanning the LRU tail:
    ///
    /// * the member map holds exactly the first `min(W, len)` LRU entries,
    /// * stamps strictly increase towards MRU (scan order == stamp order),
    /// * the cached boundary entry is the scan's last (most-MRU) member.
    fn validate(&self, report: &mut Report) {
        let scan: Vec<&K> = self.iter_replace_first().collect();
        report.check(
            scan.len() == self.members.len(),
            "SegmentedLru",
            "window-partition",
            || {
                format!(
                    "LRU tail scan finds {} window entries but the \
                     incremental view tracks {}",
                    scan.len(),
                    self.members.len()
                )
            },
        );
        let mut last_stamp = None;
        for k in &scan {
            let Some(&stamp) = self.members.get(*k) else {
                report.violation(
                    "SegmentedLru",
                    "window-partition",
                    format!("{k:?} is inside the replace-first tail but untracked"),
                );
                continue;
            };
            if let Some(prev) = last_stamp {
                report.check(stamp > prev, "SegmentedLru", "stamp-order", || {
                    format!("{k:?} has stamp {stamp} but its LRU-ward neighbor has {prev}")
                });
            }
            last_stamp = Some(stamp);
        }
        report.check(
            scan.last().copied() == self.window_mru.as_ref(),
            "SegmentedLru",
            "window-boundary",
            || {
                format!(
                    "cached boundary entry is {:?} but the scan ends at {:?}",
                    self.window_mru,
                    scan.last()
                )
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(window: usize, n: u32) -> SegmentedLru<u32> {
        let mut s = SegmentedLru::new(window);
        for k in 0..n {
            s.insert_mru(k); // 0 is LRU, n-1 is MRU
        }
        s
    }

    #[test]
    fn replace_first_region_is_the_lru_tail() {
        let s = filled(3, 10);
        let region: Vec<u32> = s.iter_replace_first().copied().collect();
        assert_eq!(region, vec![0, 1, 2]);
        assert!(s.in_replace_first(&0));
        assert!(!s.in_replace_first(&5));
        s.assert_window_consistent();
    }

    #[test]
    fn window_larger_than_list_covers_everything() {
        let s = filled(100, 4);
        assert_eq!(s.iter_replace_first().count(), 4);
        s.assert_window_consistent();
    }

    #[test]
    fn touching_moves_an_entry_out_of_the_window() {
        let mut s = filled(3, 10);
        assert!(s.in_replace_first(&1));
        s.touch(&1);
        assert!(!s.in_replace_first(&1));
        // Entry 3 drifted in to take its place.
        let region: Vec<u32> = s.iter_replace_first().copied().collect();
        assert_eq!(region, vec![0, 2, 3]);
        s.assert_window_consistent();
    }

    #[test]
    fn best_in_replace_first_maximizes_score() {
        let s = filled(4, 10);
        // Score: prefer even keys, then larger.
        let v = s.best_in_replace_first(|&k| (k % 2 == 0) as u32 * 100 + k);
        assert_eq!(v, Some(&2));
    }

    #[test]
    fn best_breaks_ties_towards_lru() {
        let s = filled(4, 10);
        let v = s.best_in_replace_first(|_| 1u32);
        assert_eq!(v, Some(&0), "constant score must pick the LRU entry");
    }

    #[test]
    fn find_falls_back_to_whole_list() {
        let s = filled(2, 10);
        assert_eq!(s.find_in_replace_first(|&k| k == 7), None);
        assert_eq!(s.find_anywhere(|&k| k == 7), Some(&7));
    }

    #[test]
    fn empty_list_yields_no_victim() {
        let s: SegmentedLru<u32> = SegmentedLru::new(5);
        assert_eq!(s.best_in_replace_first(|_| 0u32), None);
        assert_eq!(s.find_anywhere(|_| true), None);
        s.assert_window_consistent();
    }

    #[test]
    fn zero_window_means_plain_lru() {
        let mut s = filled(0, 5);
        assert_eq!(s.iter_replace_first().count(), 0);
        assert_eq!(s.pop_lru(), Some(0));
        s.assert_window_consistent();
    }

    #[test]
    fn set_window_resizes_view() {
        let mut s = filled(2, 10);
        assert_eq!(s.iter_replace_first().count(), 2);
        s.set_window(5);
        assert_eq!(s.iter_replace_first().count(), 5);
        assert_eq!(s.window(), 5);
        s.assert_window_consistent();
    }

    #[test]
    fn membership_stays_consistent_under_churn() {
        let mut s = filled(4, 12);
        s.assert_window_consistent();
        // Touch window members (drift), outsiders (no-op for the window),
        // remove from both regions, pop, and re-insert.
        for op in [
            (0u8, 1u32), // touch member
            (0, 11),     // touch outsider
            (1, 0),      // remove member
            (1, 9),      // remove outsider
            (2, 0),      // pop_lru
            (3, 100),    // insert
            (0, 100),    // touch fresh
            (3, 101),    // insert
            (2, 0),      // pop
        ] {
            match op.0 {
                0 => {
                    s.touch(&op.1);
                }
                1 => {
                    s.remove(&op.1);
                }
                2 => {
                    s.pop_lru();
                }
                _ => s.insert_mru(op.1),
            }
            s.assert_window_consistent();
        }
    }

    #[test]
    fn lru_most_excluding_skips_only_the_excluded() {
        let s = filled(2, 4);
        assert_eq!(s.lru_most_excluding(None), Some(&0));
        assert_eq!(s.lru_most_excluding(Some(&0)), Some(&1));
        assert_eq!(s.lru_most_excluding(Some(&3)), Some(&0));
        let empty: SegmentedLru<u32> = SegmentedLru::new(2);
        assert_eq!(empty.lru_most_excluding(None), None);
    }

    #[test]
    fn single_entry_window_excluding_it_finds_nothing_beyond() {
        let mut s = SegmentedLru::new(2);
        s.insert_mru(5u32);
        assert_eq!(s.lru_most_excluding(Some(&5)), None);
    }

    #[test]
    fn window_events_mirror_membership() {
        let mut s: SegmentedLru<u32> = SegmentedLru::new(2);
        s.enable_window_events();
        let mut events = Vec::new();

        s.insert_mru(1);
        s.insert_mru(2);
        s.insert_mru(3); // window stays {1, 2}
        s.take_window_events(&mut events);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, WindowEvent::Entered { .. }))
                .count(),
            2
        );

        events.clear();
        s.touch(&1); // 1 leaves, 3 drifts in
        s.take_window_events(&mut events);
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], WindowEvent::Left { key: 1 }));
        assert!(matches!(&events[1], WindowEvent::Entered { key: 3, .. }));
        s.assert_window_consistent();
    }

    #[test]
    fn stamps_order_members_lru_first() {
        let mut s = filled(3, 6);
        let region: Vec<u32> = s.iter_replace_first().copied().collect();
        let stamps: Vec<u64> = region
            .iter()
            .map(|k| s.window_stamp(k).expect("member"))
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.window_stamp(&5), None, "MRU entry is not a member");
        // An intra-window touch with the list shorter than the window
        // re-stamps the touched entry as most-MRU.
        s.set_window(10);
        s.touch(&0);
        s.assert_window_consistent();
    }
}
