//! A 4-bit counting frequency sketch (TinyLFU-style count-min).
//!
//! The paper's admission gate spends an SSD write whenever `EV = Freq/SC`
//! clears a static threshold, where `Freq` only counts accesses *while
//! cached* — a one-hit-wonder list arrives with `Freq = 1` and is written
//! anyway. [`FreqSketch`] estimates a key's recent popularity across the
//! whole stream, before any write is spent: four hashed rows of 4-bit
//! saturating counters (the count-min estimate is the row minimum, so
//! collisions only ever *over*-estimate), periodically halved so the
//! estimate tracks a sliding window of roughly `reset_window` accesses
//! rather than all of history. Halving is what lets the sketch forget:
//! after a workload phase change the old hot set decays geometrically
//! instead of pinning the admission filter to stale frequencies.
//!
//! Counters are packed two per byte — the 4-bit width is the point of
//! the design (a few hundred KB covers millions of keys); 15 is plenty
//! of resolution for an admission decision whose interesting boundary
//! sits at "seen once" vs "seen a few times".

use invariant::{audit, Report, Validate};

/// Counters saturate at the 4-bit ceiling.
pub const COUNTER_MAX: u8 = 15;

/// Row count: the classic count-min depth (error probability decays
/// exponentially per row; 4 rows is the TinyLFU reference geometry).
const ROWS: usize = 4;

/// Per-row index-derivation seeds (distinct odd constants; splitmix64
/// increments) so one key lands on independent columns per row.
const ROW_SEEDS: [u64; ROWS] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xD6E8_FEB8_6659_FD93,
];

/// Finalizing mixer (splitmix64) over `key_hash ^ seed`: full-avalanche,
/// deterministic, and cheap.
fn mix(key_hash: u64, seed: u64) -> u64 {
    let mut z = key_hash ^ seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The frequency sketch: `ROWS` rows of `width` 4-bit counters plus the
/// aging clock.
#[derive(Debug, Clone)]
pub struct FreqSketch {
    /// Packed counters, two per byte (`ROWS * width / 2` bytes). Low
    /// nibble is the even column.
    table: Vec<u8>,
    /// Columns per row; a power of two so indexing is a mask.
    width: usize,
    /// Incremented counterpart of the table: the sum of every counter,
    /// maintained incrementally so [`Validate`] can cross-check it.
    total: u64,
    /// Increments since the last halving.
    ops_since_reset: u64,
    /// Halve every this many increments (the reset window `W`).
    reset_window: u64,
    /// Halvings performed (observability for the controller/tests).
    resets: u64,
}

impl FreqSketch {
    /// A sketch with at least `min_width` counters per row (rounded up to
    /// a power of two, floor 64) halving every `reset_window` increments.
    pub fn new(min_width: usize, reset_window: u64) -> Self {
        assert!(reset_window > 0, "reset window must be positive");
        let width = min_width.max(64).next_power_of_two();
        FreqSketch {
            table: vec![0; ROWS * width / 2],
            width,
            total: 0,
            ops_since_reset: 0,
            reset_window,
            resets: 0,
        }
    }

    /// Columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The current reset window `W`.
    pub fn reset_window(&self) -> u64 {
        self.reset_window
    }

    /// Retune the reset window (the online controller's knob). Shrinking
    /// below the increments already accumulated triggers the halving at
    /// the *next* increment, not retroactively.
    pub fn set_reset_window(&mut self, window: u64) {
        assert!(window > 0, "reset window must be positive");
        self.reset_window = window;
    }

    /// Halvings performed so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Sum of all counters (incrementally maintained).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Counter index of `(row, column)` in the packed table.
    fn slot(&self, row: usize, col: usize) -> usize {
        row * self.width + col
    }

    fn get(&self, i: usize) -> u8 {
        let b = self.table[i / 2];
        if i % 2 == 0 {
            b & 0x0F
        } else {
            b >> 4
        }
    }

    fn set(&mut self, i: usize, v: u8) {
        debug_assert!(v <= COUNTER_MAX);
        let b = &mut self.table[i / 2];
        if i % 2 == 0 {
            *b = (*b & 0xF0) | v;
        } else {
            *b = (*b & 0x0F) | (v << 4);
        }
    }

    /// Record one access of the key hashed to `key_hash`. Each row's
    /// counter saturates at [`COUNTER_MAX`]; every `reset_window`
    /// increments the whole table is halved.
    pub fn increment(&mut self, key_hash: u64) {
        for (row, seed) in ROW_SEEDS.iter().enumerate() {
            let col = (mix(key_hash, *seed) as usize) & (self.width - 1);
            let i = self.slot(row, col);
            let c = self.get(i);
            if c < COUNTER_MAX {
                self.set(i, c + 1);
                self.total += 1;
            }
        }
        self.ops_since_reset += 1;
        if self.ops_since_reset >= self.reset_window {
            self.halve();
        }
        audit!(self, "FreqSketch::increment");
    }

    /// The count-min estimate for `key_hash`: the minimum over rows, an
    /// upper bound on the key's true count within the current window.
    pub fn estimate(&self, key_hash: u64) -> u8 {
        ROW_SEEDS
            .iter()
            .enumerate()
            .map(|(row, seed)| {
                let col = (mix(key_hash, *seed) as usize) & (self.width - 1);
                self.get(self.slot(row, col))
            })
            .min()
            .expect("ROWS > 0")
    }

    /// Halve every counter (the aging step). Public so the controller can
    /// force fast forgetting on a detected phase change.
    pub fn halve(&mut self) {
        let mut total = 0u64;
        for b in &mut self.table {
            // Halving both nibbles at once: shift, then mask out the bit
            // that crossed the nibble boundary.
            *b = (*b >> 1) & 0x77;
            total += u64::from(*b & 0x0F) + u64::from(*b >> 4);
        }
        self.total = total;
        self.ops_since_reset = 0;
        self.resets += 1;
        audit!(self, "FreqSketch::halve");
    }

    /// Corruption hook for the seeded-corruption audit tests: skew the
    /// incrementally maintained total without touching the table.
    #[doc(hidden)]
    pub fn debug_corrupt_total(&mut self, delta: u64) {
        self.total = self.total.wrapping_add(delta);
    }

    /// Corruption hook: make the aging clock claim more increments than
    /// the reset window allows.
    #[doc(hidden)]
    pub fn debug_corrupt_ops(&mut self) {
        self.ops_since_reset = self.reset_window + 1;
    }
}

impl Validate for FreqSketch {
    /// Re-derives the sketch's bookkeeping: the counter sum must match
    /// the incrementally maintained total (nibble packing makes a
    /// counter > 15 unrepresentable, so the sum is the corruptible
    /// aggregate), and the aging clock must sit inside the reset window
    /// (an increment at the window boundary halves immediately).
    fn validate(&self, report: &mut Report) {
        const S: &str = "FreqSketch";
        let sum: u64 = self
            .table
            .iter()
            .map(|b| u64::from(b & 0x0F) + u64::from(b >> 4))
            .sum();
        report.check(sum == self.total, S, "sketch-total-agree", || {
            format!(
                "counters sum to {sum} but the running total says {}",
                self.total
            )
        });
        report.check(
            self.ops_since_reset < self.reset_window,
            S,
            "sketch-reset-window",
            || {
                format!(
                    "{} increments since reset, window is {}",
                    self.ops_since_reset, self.reset_window
                )
            },
        );
        report.check(self.width.is_power_of_two(), S, "sketch-geometry", || {
            format!("width {} is not a power of two", self.width)
        });
        report.check(
            self.table.len() == ROWS * self.width / 2,
            S,
            "sketch-geometry",
            || {
                format!(
                    "table holds {} bytes, geometry needs {}",
                    self.table.len(),
                    ROWS * self.width / 2
                )
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_counts_and_saturates() {
        let mut s = FreqSketch::new(256, 1_000_000);
        assert_eq!(s.estimate(42), 0);
        for i in 1..=20u8 {
            s.increment(42);
            assert_eq!(s.estimate(42), i.min(COUNTER_MAX), "after {i} increments");
        }
        assert_eq!(s.estimate(42), COUNTER_MAX, "saturated at the 4-bit max");
    }

    #[test]
    fn collisions_only_overestimate() {
        let mut s = FreqSketch::new(64, 1_000_000);
        for key in 0..500u64 {
            s.increment(key);
        }
        // Every key was seen once; the row minimum may exceed 1 under
        // collisions but can never undercount.
        for key in 0..500u64 {
            assert!(s.estimate(key) >= 1, "undercount for {key}");
        }
    }

    #[test]
    fn halving_preserves_relative_order() {
        let mut s = FreqSketch::new(1024, 1_000_000);
        for _ in 0..12 {
            s.increment(7);
        }
        for _ in 0..4 {
            s.increment(8);
        }
        let (hot, cold) = (s.estimate(7), s.estimate(8));
        assert!(hot > cold);
        s.halve();
        assert_eq!(s.estimate(7), hot / 2);
        assert_eq!(s.estimate(8), cold / 2);
        assert!(s.estimate(7) > s.estimate(8), "order survives aging");
        assert_eq!(s.resets(), 1);
    }

    #[test]
    fn reset_window_triggers_halving() {
        let mut s = FreqSketch::new(64, 10);
        for _ in 0..9 {
            s.increment(3);
        }
        assert_eq!(s.estimate(3), 9);
        s.increment(3); // the 10th increment halves
        assert_eq!(s.estimate(3), 5);
        assert_eq!(s.resets(), 1);
    }

    #[test]
    fn retuning_the_window_takes_effect() {
        let mut s = FreqSketch::new(64, 1_000);
        for _ in 0..5 {
            s.increment(1);
        }
        s.set_reset_window(3);
        assert_eq!(s.resets(), 0, "shrinking is not retroactive");
        s.increment(1); // 6 >= 3: halves now
        assert_eq!(s.resets(), 1);
    }

    #[test]
    fn validator_is_clean_on_healthy_sketches() {
        let mut s = FreqSketch::new(128, 50);
        for k in 0..300u64 {
            s.increment(k % 40);
        }
        assert!(s.validation_report().is_clean());
    }

    #[test]
    fn corruption_hooks_fire_the_validators() {
        let mut s = FreqSketch::new(64, 100);
        s.increment(9);
        s.debug_corrupt_total(3);
        let fired: Vec<&str> = s
            .validation_report()
            .violations()
            .iter()
            .map(|v| v.invariant)
            .collect();
        assert!(fired.contains(&"sketch-total-agree"), "got {fired:?}");

        let mut s = FreqSketch::new(64, 100);
        s.debug_corrupt_ops();
        let fired: Vec<&str> = s
            .validation_report()
            .violations()
            .iter()
            .map(|v| v.invariant)
            .collect();
        assert!(fired.contains(&"sketch-reset-window"), "got {fired:?}");
    }
}
