//! Indexed victim selection over a replace-first window.
//!
//! The paper's victim searches are linear scans of the replace-first
//! region: max-IREN for result blocks (Fig. 11), size-match cascades for
//! inverted lists (Fig. 13), min-EV for memory lists (Fig. 12). These
//! structures maintain the same answers incrementally so a victim is an
//! O(log W) ordered-map lookup instead of an O(W·cost(score)) scan:
//!
//! * [`MaxScoreIndex`] — "highest score, ties to LRU-most" (IREN, −EV).
//! * [`OrderIndex`] — "LRU-most member" / "LRU-most matching member".
//! * [`SizeClassIndex`] — "LRU-most member of exactly this size class"
//!   (Fig. 13's same-size match).
//!
//! All three are keyed by the **window stamps** handed out by
//! [`crate::SegmentedLru`]: among current members a smaller stamp is
//! closer to the LRU end, so "first encountered by the reference scan"
//! equals "smallest stamp". Property tests in `core` drive the indexed
//! and scan paths with identical operation sequences and assert they
//! choose identical victims.

use fxmap::FxHashMap;
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;

use invariant::{Report, Validate};

/// How a cache locates its victims: the original reference scans over the
/// replace-first region, or the incremental indexes in this module. Both
/// paths pick provably identical victims; `Indexed` is the default and
/// `Scan` remains available for property tests and old-vs-new benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimSelection {
    /// The seed's linear scans (reference implementation).
    Scan,
    /// Incremental priority indexes (O(log W) victim selection).
    #[default]
    Indexed,
}

/// Total-order wrapper for finite `f64` scores (EV values are positive
/// finite numbers, so `total_cmp` agrees with the reference scan's
/// `PartialOrd`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// "Highest score wins, ties to the LRU-most entry" — the indexed form of
/// [`crate::SegmentedLru::best_in_replace_first`].
#[derive(Debug, Clone, Default)]
pub struct MaxScoreIndex<K, S> {
    by_score: BTreeMap<(S, Reverse<u64>), K>,
    by_key: FxHashMap<K, (S, u64)>,
}

impl<K: Eq + Hash + Clone, S: Ord + Copy> MaxScoreIndex<K, S> {
    /// Empty index.
    pub fn new() -> Self {
        MaxScoreIndex {
            by_score: BTreeMap::new(),
            by_key: FxHashMap::default(),
        }
    }

    /// Number of indexed members.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether no members are indexed.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Whether `key` is indexed.
    pub fn contains(&self, key: &K) -> bool {
        self.by_key.contains_key(key)
    }

    /// Add a member with its window stamp and current score. Panics on
    /// duplicate insertion — membership changes must be mirrored exactly.
    pub fn insert(&mut self, key: K, stamp: u64, score: S) {
        let prev = self.by_key.insert(key.clone(), (score, stamp));
        assert!(prev.is_none(), "duplicate window member");
        self.by_score.insert((score, Reverse(stamp)), key);
    }

    /// Drop a member; no-op if absent.
    pub fn remove(&mut self, key: &K) {
        if let Some((score, stamp)) = self.by_key.remove(key) {
            self.by_score.remove(&(score, Reverse(stamp)));
        }
    }

    /// Re-score a member in place; no-op if absent.
    pub fn update_score(&mut self, key: &K, score: S) {
        let Some(&(old, stamp)) = self.by_key.get(key) else {
            return;
        };
        if old == score {
            return;
        }
        self.by_score.remove(&(old, Reverse(stamp)));
        self.by_score.insert((score, Reverse(stamp)), key.clone());
        self.by_key.insert(key.clone(), (score, stamp));
    }

    /// The victim: highest score, ties to the smallest stamp (LRU-most),
    /// skipping at most one excluded key.
    pub fn peek_best(&self, exclude: Option<&K>) -> Option<&K> {
        self.by_score.values().rev().find(|k| Some(*k) != exclude)
    }

    /// The indexed `(score, stamp)` pair for `key`, if it is a member.
    /// Validators use this to cross-check the index against the window.
    pub fn entry(&self, key: &K) -> Option<(S, u64)> {
        self.by_key.get(key).copied()
    }

    /// Iterate every member as `(key, score, stamp)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, S, u64)> {
        self.by_key.iter().map(|(k, &(s, t))| (k, s, t))
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.by_score.clear();
        self.by_key.clear();
    }
}

impl<K, S> Validate for MaxScoreIndex<K, S>
where
    K: Eq + Hash + Clone + Debug,
    S: Ord + Copy + Debug,
{
    /// The two sides of the index must describe the same member set: every
    /// `by_key` entry must be findable in `by_score` under its exact
    /// `(score, Reverse(stamp))` key and map back to the same key.
    fn validate(&self, report: &mut Report) {
        report.check(
            self.by_score.len() == self.by_key.len(),
            "MaxScoreIndex",
            "sides-same-size",
            || {
                format!(
                    "by_score has {} entries, by_key has {}",
                    self.by_score.len(),
                    self.by_key.len()
                )
            },
        );
        for (key, &(score, stamp)) in &self.by_key {
            let found = self.by_score.get(&(score, Reverse(stamp)));
            report.check(
                found == Some(key),
                "MaxScoreIndex",
                "score-key-agree",
                || {
                    format!(
                        "{key:?} indexed at ({score:?}, stamp {stamp}) but \
                         by_score holds {found:?} there"
                    )
                },
            );
        }
    }
}

/// "The LRU-most member (of a marked subset)" — the indexed form of
/// [`crate::SegmentedLru::find_in_replace_first`] for a membership
/// predicate maintained by the caller.
#[derive(Debug, Clone, Default)]
pub struct OrderIndex<K> {
    by_stamp: BTreeMap<u64, K>,
    by_key: FxHashMap<K, u64>,
}

impl<K: Eq + Hash + Clone> OrderIndex<K> {
    /// Empty index.
    pub fn new() -> Self {
        OrderIndex {
            by_stamp: BTreeMap::new(),
            by_key: FxHashMap::default(),
        }
    }

    /// Number of indexed members.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether no members are indexed.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Whether `key` is indexed.
    pub fn contains(&self, key: &K) -> bool {
        self.by_key.contains_key(key)
    }

    /// Add a member with its window stamp. Panics on duplicates.
    pub fn insert(&mut self, key: K, stamp: u64) {
        let prev = self.by_key.insert(key.clone(), stamp);
        assert!(prev.is_none(), "duplicate window member");
        self.by_stamp.insert(stamp, key);
    }

    /// Drop a member; no-op if absent.
    pub fn remove(&mut self, key: &K) {
        if let Some(stamp) = self.by_key.remove(key) {
            self.by_stamp.remove(&stamp);
        }
    }

    /// The LRU-most member.
    pub fn first(&self) -> Option<&K> {
        self.by_stamp.values().next()
    }

    /// The indexed stamp for `key`, if it is a member.
    pub fn stamp_of(&self, key: &K) -> Option<u64> {
        self.by_key.get(key).copied()
    }

    /// Iterate every member as `(key, stamp)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.by_key.iter().map(|(k, &t)| (k, t))
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.by_stamp.clear();
        self.by_key.clear();
    }
}

impl<K: Eq + Hash + Clone + Debug> Validate for OrderIndex<K> {
    /// `by_stamp` and `by_key` must be inverse maps of each other.
    fn validate(&self, report: &mut Report) {
        report.check(
            self.by_stamp.len() == self.by_key.len(),
            "OrderIndex",
            "sides-same-size",
            || {
                format!(
                    "by_stamp has {} entries, by_key has {}",
                    self.by_stamp.len(),
                    self.by_key.len()
                )
            },
        );
        for (key, &stamp) in &self.by_key {
            let found = self.by_stamp.get(&stamp);
            report.check(found == Some(key), "OrderIndex", "stamp-key-agree", || {
                format!("{key:?} indexed at stamp {stamp} but by_stamp holds {found:?} there")
            });
        }
    }
}

/// Fig. 13's same-size match: members bucketed by a size class, each
/// bucket ordered LRU-first. `first_of(size)` answers "the LRU-most
/// window entry whose size class equals the requested one".
#[derive(Debug, Clone, Default)]
pub struct SizeClassIndex<K> {
    buckets: FxHashMap<u64, BTreeMap<u64, K>>,
    by_key: FxHashMap<K, (u64, u64)>,
}

impl<K: Eq + Hash + Clone> SizeClassIndex<K> {
    /// Empty index.
    pub fn new() -> Self {
        SizeClassIndex {
            buckets: FxHashMap::default(),
            by_key: FxHashMap::default(),
        }
    }

    /// Number of indexed members.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether no members are indexed.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Add a member with its window stamp and size class. Panics on
    /// duplicates.
    pub fn insert(&mut self, key: K, stamp: u64, size: u64) {
        let prev = self.by_key.insert(key.clone(), (size, stamp));
        assert!(prev.is_none(), "duplicate window member");
        self.buckets.entry(size).or_default().insert(stamp, key);
    }

    /// Drop a member; no-op if absent.
    pub fn remove(&mut self, key: &K) {
        if let Some((size, stamp)) = self.by_key.remove(key) {
            let bucket = self.buckets.get_mut(&size).expect("bucket exists");
            bucket.remove(&stamp);
            if bucket.is_empty() {
                self.buckets.remove(&size);
            }
        }
    }

    /// Move a member to a different size class; no-op if absent.
    pub fn update_size(&mut self, key: &K, size: u64) {
        let Some(&(old, stamp)) = self.by_key.get(key) else {
            return;
        };
        if old == size {
            return;
        }
        self.remove(key);
        self.insert(key.clone(), stamp, size);
    }

    /// The LRU-most member of exactly this size class.
    pub fn first_of(&self, size: u64) -> Option<&K> {
        self.buckets.get(&size)?.values().next()
    }

    /// The indexed `(size, stamp)` pair for `key`, if it is a member.
    pub fn entry(&self, key: &K) -> Option<(u64, u64)> {
        self.by_key.get(key).copied()
    }

    /// Iterate every member as `(key, size, stamp)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64, u64)> {
        self.by_key.iter().map(|(k, &(s, t))| (k, s, t))
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.by_key.clear();
    }
}

impl<K: Eq + Hash + Clone + Debug> Validate for SizeClassIndex<K> {
    /// Buckets and the reverse map must agree, and no bucket may be left
    /// empty (remove() is responsible for pruning them).
    fn validate(&self, report: &mut Report) {
        let bucketed: usize = self.buckets.values().map(|b| b.len()).sum();
        report.check(
            bucketed == self.by_key.len(),
            "SizeClassIndex",
            "sides-same-size",
            || {
                format!(
                    "buckets hold {bucketed} entries, by_key has {}",
                    self.by_key.len()
                )
            },
        );
        for (size, bucket) in &self.buckets {
            report.check(
                !bucket.is_empty(),
                "SizeClassIndex",
                "no-empty-buckets",
                || format!("size class {size} has an empty bucket"),
            );
        }
        for (key, &(size, stamp)) in &self.by_key {
            let found = self.buckets.get(&size).and_then(|b| b.get(&stamp));
            report.check(
                found == Some(key),
                "SizeClassIndex",
                "bucket-key-agree",
                || {
                    format!(
                        "{key:?} indexed at (size {size}, stamp {stamp}) but \
                         the bucket holds {found:?} there"
                    )
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_score_prefers_high_score_then_lru() {
        let mut idx: MaxScoreIndex<u32, u64> = MaxScoreIndex::new();
        idx.insert(1, 10, 5);
        idx.insert(2, 11, 9);
        idx.insert(3, 12, 9); // same score, more MRU than 2
        assert_eq!(idx.peek_best(None), Some(&2), "ties go to the LRU-most");
        idx.remove(&2);
        assert_eq!(idx.peek_best(None), Some(&3));
        assert_eq!(idx.peek_best(Some(&3)), Some(&1));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn max_score_update_rekeys() {
        let mut idx: MaxScoreIndex<u32, u64> = MaxScoreIndex::new();
        idx.insert(1, 10, 5);
        idx.insert(2, 11, 4);
        idx.update_score(&2, 100);
        assert_eq!(idx.peek_best(None), Some(&2));
        idx.update_score(&9, 1_000); // absent: no-op
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn max_score_exclusion_of_sole_member() {
        let mut idx: MaxScoreIndex<u32, u64> = MaxScoreIndex::new();
        idx.insert(7, 1, 3);
        assert_eq!(idx.peek_best(Some(&7)), None);
        assert_eq!(idx.peek_best(None), Some(&7));
    }

    #[test]
    fn ord_f64_orders_like_partial_cmp() {
        let mut v = [OrdF64(3.5), OrdF64(-1.0), OrdF64(0.25)];
        v.sort();
        assert_eq!(v, [OrdF64(-1.0), OrdF64(0.25), OrdF64(3.5)]);
        assert!(OrdF64(f64::NEG_INFINITY) < OrdF64(-1e308));
    }

    #[test]
    fn order_index_returns_lru_most() {
        let mut idx: OrderIndex<u32> = OrderIndex::new();
        idx.insert(5, 20);
        idx.insert(6, 7);
        idx.insert(7, 30);
        assert_eq!(idx.first(), Some(&6));
        idx.remove(&6);
        assert_eq!(idx.first(), Some(&5));
        idx.clear();
        assert_eq!(idx.first(), None);
    }

    #[test]
    fn size_class_lookup_and_migration() {
        let mut idx: SizeClassIndex<u32> = SizeClassIndex::new();
        idx.insert(1, 10, 3);
        idx.insert(2, 11, 3);
        idx.insert(3, 12, 8);
        assert_eq!(idx.first_of(3), Some(&1), "LRU-most of the class");
        assert_eq!(idx.first_of(8), Some(&3));
        assert_eq!(idx.first_of(5), None);
        idx.update_size(&1, 8);
        assert_eq!(idx.first_of(3), Some(&2));
        // 1 keeps its stamp (10) so it now precedes 3 (stamp 12).
        assert_eq!(idx.first_of(8), Some(&1));
        idx.remove(&1);
        idx.remove(&2);
        idx.remove(&3);
        assert!(idx.is_empty());
    }
}
