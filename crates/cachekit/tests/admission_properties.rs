//! Property tests of the admission-tier primitives: the 4-bit frequency
//! sketch against an exact-count reference, and the ghost cache against
//! a Vec-based recency model.

use cachekit::{FreqSketch, GhostCache, COUNTER_MAX};
use invariant::Validate;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Count-min never undercounts, and no counter escapes the 4-bit
    /// ceiling regardless of the key mix.
    #[test]
    fn sketch_estimates_bound_true_counts(
        keys in prop::collection::vec(any::<u8>(), 1..400),
        width in 64usize..512,
    ) {
        invariant::force_enable();
        let mut sketch = FreqSketch::new(width, 1_000_000);
        let mut exact: HashMap<u8, u64> = HashMap::new();
        for &k in &keys {
            sketch.increment(u64::from(k));
            *exact.entry(k).or_insert(0) += 1;
        }
        for (&k, &count) in &exact {
            let est = u64::from(sketch.estimate(u64::from(k)));
            prop_assert!(
                est >= count.min(u64::from(COUNTER_MAX)),
                "undercount for {}: est {} true {}", k, est, count
            );
            prop_assert!(est <= u64::from(COUNTER_MAX), "counter escaped 4 bits");
        }
        prop_assert!(sketch.validation_report().is_clean());
    }

    /// Halving divides every estimate by two (rounding down) and never
    /// reorders two keys: the hotter key stays at least as hot.
    #[test]
    fn halving_preserves_relative_order(
        hot_extra in 1u8..12,
        base in 0u8..4,
        halvings in 1usize..4,
    ) {
        invariant::force_enable();
        let mut sketch = FreqSketch::new(1024, 1_000_000);
        for _ in 0..base {
            sketch.increment(1);
            sketch.increment(2);
        }
        for _ in 0..hot_extra {
            sketch.increment(1);
        }
        let mut hot = sketch.estimate(1);
        let mut cold = sketch.estimate(2);
        for _ in 0..halvings {
            sketch.halve();
            prop_assert_eq!(sketch.estimate(1), hot / 2);
            prop_assert_eq!(sketch.estimate(2), cold / 2);
            prop_assert!(sketch.estimate(1) >= sketch.estimate(2));
            hot /= 2;
            cold /= 2;
        }
        prop_assert!(sketch.validation_report().is_clean());
    }

    /// The aging clock halves exactly every `window` increments.
    #[test]
    fn reset_window_discipline(
        window in 1u64..50,
        increments in 1usize..300,
    ) {
        invariant::force_enable();
        let mut sketch = FreqSketch::new(64, window);
        for i in 0..increments as u64 {
            sketch.increment(i % 7);
        }
        prop_assert_eq!(sketch.resets(), increments as u64 / window);
        prop_assert!(sketch.validation_report().is_clean());
    }

    /// Ghost cache vs a Vec model: same membership, same hit/miss
    /// answers, capacity never exceeded.
    #[test]
    fn ghost_cache_matches_recency_model(
        ops in prop::collection::vec((any::<bool>(), any::<u8>()), 1..400),
        capacity in 0usize..12,
    ) {
        invariant::force_enable();
        let mut ghost: GhostCache<u8> = GhostCache::new(capacity);
        // MRU first.
        let mut model: Vec<u8> = Vec::new();
        for (is_record, k) in ops {
            let k = k % 24;
            if is_record {
                ghost.record(k);
                if capacity > 0 {
                    model.retain(|&x| x != k);
                    if model.len() == capacity {
                        model.pop();
                    }
                    model.insert(0, k);
                }
            } else {
                let hit = ghost.take(&k);
                let model_hit = model.contains(&k);
                prop_assert_eq!(hit, model_hit, "take({}) diverged", k);
                model.retain(|&x| x != k);
            }
            prop_assert_eq!(ghost.len(), model.len());
            prop_assert!(ghost.len() <= capacity);
        }
        prop_assert!(ghost.validation_report().is_clean());
    }
}
