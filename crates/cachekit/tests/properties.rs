//! Property tests: the cache primitives against reference models.

use cachekit::{ByteBudget, FreqCounter, LruCache, LruList, SegmentedLru};
use proptest::prelude::*;

/// Operations over a small key universe so collisions are common.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u8), // key, size
    Get(u8),
    Remove(u8),
    PopLru,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, s)| Op::Insert(k % 24, s)),
            any::<u8>().prop_map(|k| Op::Get(k % 24)),
            any::<u8>().prop_map(|k| Op::Remove(k % 24)),
            Just(Op::PopLru),
        ],
        1..300,
    )
}

/// A straightforward Vec-based LRU cache model.
struct Model {
    capacity: u64,
    // MRU first: (key, size)
    entries: Vec<(u8, u64)>,
}

impl Model {
    fn used(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s).sum()
    }

    fn insert(&mut self, k: u8, size: u64) -> bool {
        if size > self.capacity {
            return false;
        }
        self.entries.retain(|(key, _)| *key != k);
        while self.used() + size > self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (k, size));
        true
    }

    fn get(&mut self, k: u8) -> bool {
        if let Some(pos) = self.entries.iter().position(|(key, _)| *key == k) {
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            true
        } else {
            false
        }
    }

    fn remove(&mut self, k: u8) -> bool {
        let n = self.entries.len();
        self.entries.retain(|(key, _)| *key != k);
        self.entries.len() != n
    }

    fn pop_lru(&mut self) -> Option<u8> {
        self.entries.pop().map(|(k, _)| k)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_cache_matches_model(capacity in 1u64..600, ops in ops()) {
        let mut cache: LruCache<u8, ()> = LruCache::new(capacity);
        let mut model = Model { capacity, entries: Vec::new() };
        for op in ops {
            match op {
                Op::Insert(k, s) => {
                    let size = s as u64;
                    let ok = cache.insert(k, (), size).is_ok();
                    let mok = model.insert(k, size);
                    prop_assert_eq!(ok, mok);
                }
                Op::Get(k) => {
                    prop_assert_eq!(cache.get(&k).is_some(), model.get(k));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(cache.remove(&k).is_some(), model.remove(k));
                }
                Op::PopLru => {
                    prop_assert_eq!(cache.pop_lru().map(|(k, _, _)| k), model.pop_lru());
                }
            }
            prop_assert_eq!(cache.len(), model.entries.len());
            prop_assert_eq!(cache.budget().used(), model.used());
            prop_assert!(cache.budget().used() <= capacity);
            // Recency order agrees end to end.
            let got: Vec<u8> = cache.iter_lru().copied().collect();
            let want: Vec<u8> = model.entries.iter().rev().map(|(k, _)| *k).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn segmented_window_is_always_the_lru_tail(
        keys in prop::collection::vec(0u16..50, 1..100),
        window in 0usize..12,
    ) {
        let mut seg = SegmentedLru::new(window);
        let mut order: Vec<u16> = Vec::new(); // LRU first
        for k in keys {
            if seg.contains(&k) {
                seg.touch(&k);
                order.retain(|&x| x != k);
                order.push(k);
            } else {
                seg.insert_mru(k);
                order.push(k);
            }
            let region: Vec<u16> = seg.iter_replace_first().copied().collect();
            let expect: Vec<u16> = order.iter().take(window).copied().collect();
            prop_assert_eq!(region, expect);
        }
    }

    #[test]
    fn incremental_window_membership_matches_scan(
        ops in prop::collection::vec((0u8..4, 0u16..30), 1..250),
        window in 0usize..10,
        resize_at in 0usize..250,
        new_window in 0usize..10,
    ) {
        // Drive the full op surface (insert/touch/remove/pop + one
        // mid-sequence resize) and require the O(1) membership view,
        // the stamps, and the boundary entry to match the reference
        // scan after every single step.
        let mut seg = SegmentedLru::new(window);
        for (i, (op, k)) in ops.into_iter().enumerate() {
            if i == resize_at {
                seg.set_window(new_window);
            }
            match op {
                0 => {
                    if !seg.contains(&k) {
                        seg.insert_mru(k);
                    }
                }
                1 => {
                    seg.touch(&k);
                }
                2 => {
                    seg.remove(&k);
                }
                _ => {
                    seg.pop_lru();
                }
            }
            seg.assert_window_consistent();
            let scan: Vec<u16> = seg.iter_replace_first().copied().collect();
            for key in 0u16..30 {
                prop_assert_eq!(
                    seg.in_replace_first(&key),
                    scan.contains(&key),
                    "membership diverged for key {}", key
                );
            }
        }
    }

    #[test]
    fn budget_arithmetic_never_lies(charges in prop::collection::vec(0u64..1000, 1..50)) {
        let capacity: u64 = 20_000;
        let mut b = ByteBudget::new(capacity);
        let mut charged: Vec<u64> = Vec::new();
        for c in charges {
            if b.fits(c) {
                b.charge(c);
                charged.push(c);
            } else if let Some(x) = charged.pop() {
                b.credit(x);
            }
            prop_assert_eq!(b.used(), charged.iter().sum::<u64>());
            prop_assert!(b.used() <= capacity);
            prop_assert_eq!(b.free(), capacity - b.used());
        }
    }

    #[test]
    fn freq_counter_totals(accesses in prop::collection::vec(0u8..20, 1..200)) {
        let mut f = FreqCounter::new();
        for k in &accesses {
            f.record(k);
        }
        prop_assert_eq!(f.total(), accesses.len() as u64);
        let sum: u64 = (0u8..20).map(|k| f.get(&k)).sum();
        prop_assert_eq!(sum, accesses.len() as u64);
        // top_k(1) really is the max.
        let top = f.top_k(1)[0].1;
        prop_assert!((0u8..20).all(|k| f.get(&k) <= top));
    }

    #[test]
    fn lru_list_pop_order_is_insert_order_without_touches(
        n in 1usize..60,
    ) {
        let mut l = LruList::new();
        for k in 0..n {
            l.insert_mru(k);
        }
        for k in 0..n {
            prop_assert_eq!(l.pop_lru(), Some(k));
        }
        prop_assert!(l.is_empty());
    }
}
