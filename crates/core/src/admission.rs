//! The sketch-based SSD admission tier.
//!
//! The paper admits an evicted list to the SSD when `EV = Freq/SC` clears
//! a *static* threshold `TEV`, where `Freq` only counts accesses made
//! while the entry sat in memory. Two failure modes follow:
//!
//! * **One-hit wonders.** A scan-style access arrives, is cached, never
//!   re-used, and is evicted with `Freq = 1`. A small list then has
//!   `EV = 1/1 = 1 ≥ TEV = 0.5` — the gate *admits* it and the SSD pays a
//!   block write (and eventually an erasure) for data that will never be
//!   read back.
//! * **Phase blindness.** A fixed `TEV` cannot tighten when churn floods
//!   the gate with cold lists, nor relax when the workload settles.
//!
//! [`AdmissionTier`] adds the three pieces the modern admission
//! literature (TinyLFU) uses against exactly these modes: a
//! [`FreqSketch`] counting accesses across the whole stream (so reuse is
//! estimated *before* a write is spent), a [`GhostCache`] of recently
//! dismissed keys (a re-reference that just missed the gate is the
//! strongest reuse signal there is, and fast-tracks past the filter), and
//! an online controller nudging `TEV` and the sketch's reset window `W`
//! from hit-ratio and write-rate feedback.
//!
//! Under [`AdmissionPolicy::Static`] the tier is completely inert: no
//! sketch updates, no ghost bookkeeping, no controller ticks — the
//! manager runs the seed's gate verbatim, which is what keeps the
//! `Static` arm bit-identical on every simulated figure.

use cachekit::{FreqSketch, GhostCache};
use invariant::{Report, Validate};

use crate::config::{AdmissionConfig, AdmissionPolicy};
use crate::selection::efficiency_value;
use crate::{QueryId, TermKey};

/// Smoothing factor of the hit-ratio EWMA.
const EWMA_ALPHA: f64 = 0.25;
/// An epoch hit ratio this far below the EWMA reads as a phase change.
const PHASE_DELTA: f64 = 0.05;
/// Multiplicative TEV feedback per epoch.
const TEV_RAISE: f64 = 1.25;
const TEV_RELAX: f64 = 0.9;
/// TEV stays within [base/2, base*8] of the configured threshold (with a
/// floor for the LRU arm whose base TEV is 0).
const TEV_CEIL_FACTOR: f64 = 8.0;

/// Counters of the admission tier (kept **outside**
/// [`crate::stats::CacheStats`]: the bit-identity contract compares that
/// struct against the seed, and these counters only exist in the sketch
/// arm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// List flushes admitted by the sketch gate.
    pub list_admitted: u64,
    /// List flushes filtered out (SSD write avoided).
    pub list_filtered: u64,
    /// List admissions fast-tracked by a ghost hit.
    pub list_fast_tracks: u64,
    /// Result flushes admitted.
    pub result_admitted: u64,
    /// Result flushes filtered out.
    pub result_filtered: u64,
    /// Result admissions fast-tracked by a ghost hit.
    pub result_fast_tracks: u64,
    /// Controller epochs completed.
    pub epochs: u64,
    /// TEV raised (write pressure) / relaxed (write slack).
    pub tev_raises: u64,
    pub tev_cuts: u64,
    /// Reset window shrunk (phase change) / grown (stability).
    pub window_shrinks: u64,
    pub window_grows: u64,
}

/// The admission tier: sketch + ghosts + controller. Owned by the cache
/// manager and consulted only when the policy is
/// [`AdmissionPolicy::Sketch`].
#[derive(Debug, Clone)]
pub struct AdmissionTier {
    policy: AdmissionPolicy,
    cfg: AdmissionConfig,
    sketch: FreqSketch,
    list_ghost: GhostCache<TermKey>,
    result_ghost: GhostCache<QueryId>,
    /// The controller's live threshold, seeded from the config's TEV.
    tev: f64,
    base_tev: f64,
    /// Epoch accumulators.
    epoch_events: u64,
    epoch_hits: u64,
    epoch_written_blocks: u64,
    /// Hit-ratio EWMA across epochs (primed by the first epoch).
    hit_ewma: f64,
    ewma_primed: bool,
    stats: AdmissionStats,
}

/// Domain-separated key hashes: lists and results share one sketch, so a
/// term id must never alias a query id.
fn list_hash(term: TermKey) -> u64 {
    fxmap::hash_one(&(0u8, term))
}

fn result_hash(id: QueryId) -> u64 {
    fxmap::hash_one(&(1u8, id))
}

impl AdmissionTier {
    /// Build from the config; `base_tev` is the static threshold the
    /// controller starts from and stays anchored to.
    pub fn new(cfg: AdmissionConfig, base_tev: f64) -> Self {
        AdmissionTier {
            policy: cfg.policy,
            sketch: FreqSketch::new(cfg.sketch_width, cfg.reset_window),
            list_ghost: GhostCache::new(cfg.ghost_capacity),
            result_ghost: GhostCache::new(cfg.ghost_capacity),
            tev: base_tev,
            base_tev,
            epoch_events: 0,
            epoch_hits: 0,
            epoch_written_blocks: 0,
            hit_ewma: 0.0,
            ewma_primed: false,
            stats: AdmissionStats::default(),
            cfg,
        }
    }

    /// The active gate.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Toggle the gate at runtime. Sketch state persists across a
    /// Sketch → Static → Sketch round trip but only learns while active.
    pub fn set_policy(&mut self, policy: AdmissionPolicy) {
        self.policy = policy;
    }

    /// Whether the sketch gate is consulted.
    pub fn is_sketch(&self) -> bool {
        self.policy == AdmissionPolicy::Sketch
    }

    /// Tier counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// The controller's current TEV.
    pub fn tev(&self) -> f64 {
        self.tev
    }

    /// The sketch's current reset window `W`.
    pub fn reset_window(&self) -> u64 {
        self.sketch.reset_window()
    }

    /// Record a list access (hit = served without touching the HDD).
    /// Inert under `Static`.
    pub fn record_list_access(&mut self, term: TermKey, hit: bool) {
        if !self.is_sketch() {
            return;
        }
        self.sketch.increment(list_hash(term));
        self.tick(hit);
    }

    /// Record a result access. Inert under `Static`.
    pub fn record_result_access(&mut self, id: QueryId, hit: bool) {
        if !self.is_sketch() {
            return;
        }
        self.sketch.increment(result_hash(id));
        self.tick(hit);
    }

    /// Gate one evicted list (`cached_freq` is the in-memory `Freq`,
    /// `blocks` the SC the paper would write). Only meaningful in the
    /// sketch arm; the caller keeps the static gate otherwise.
    pub fn admit_list(&mut self, term: TermKey, cached_freq: u64, blocks: u64) -> bool {
        debug_assert!(self.is_sketch());
        if self.list_ghost.take(&term) {
            self.stats.list_fast_tracks += 1;
            self.stats.list_admitted += 1;
            self.epoch_written_blocks += blocks;
            return true;
        }
        // The sketch sees the whole stream; the cached Freq only the
        // entry's residency. Either signal suffices.
        let est = u64::from(self.sketch.estimate(list_hash(term))).max(cached_freq);
        let pass =
            est >= u64::from(self.cfg.min_freq) && efficiency_value(est, blocks.max(1)) >= self.tev;
        if pass {
            self.stats.list_admitted += 1;
            self.epoch_written_blocks += blocks;
        } else {
            self.stats.list_filtered += 1;
            self.list_ghost.record(term);
        }
        pass
    }

    /// Gate one evicted result entry. `threshold` is the static
    /// result-frequency floor, kept as the sketch arm's baseline bar.
    pub fn admit_result(&mut self, id: QueryId, freq: u64, threshold: u64) -> bool {
        debug_assert!(self.is_sketch());
        if self.result_ghost.take(&id) {
            self.stats.result_fast_tracks += 1;
            self.stats.result_admitted += 1;
            self.epoch_written_blocks += 1;
            return true;
        }
        let est = u64::from(self.sketch.estimate(result_hash(id))).max(freq);
        let pass = est >= threshold.max(u64::from(self.cfg.min_freq));
        if pass {
            self.stats.result_admitted += 1;
            self.epoch_written_blocks += 1;
        } else {
            self.stats.result_filtered += 1;
            self.result_ghost.record(id);
        }
        pass
    }

    /// One controller tick per recorded access; retunes at epoch ends.
    fn tick(&mut self, hit: bool) {
        if self.cfg.epoch == 0 {
            return;
        }
        self.epoch_events += 1;
        if hit {
            self.epoch_hits += 1;
        }
        if self.epoch_events >= self.cfg.epoch {
            self.retune();
        }
    }

    /// End-of-epoch feedback: hit-ratio EWMA drives the reset window
    /// (phase change → forget faster), the write rate drives TEV.
    fn retune(&mut self) {
        let hr = self.epoch_hits as f64 / self.epoch_events as f64;
        if self.ewma_primed {
            if hr + PHASE_DELTA < self.hit_ewma {
                // Phase change: the cached estimate of "hot" is stale.
                // Forget fast — halve now and shorten the window.
                self.sketch.halve();
                let w = (self.sketch.reset_window() / 2).max(self.cfg.epoch.max(1));
                self.sketch.set_reset_window(w);
                self.stats.window_shrinks += 1;
            } else if self.sketch.reset_window() < self.cfg.reset_window {
                // Stable again: stretch the window back towards its
                // configured length so estimates deepen.
                let w = (self.sketch.reset_window() + self.sketch.reset_window() / 4 + 1)
                    .min(self.cfg.reset_window);
                self.sketch.set_reset_window(w);
                self.stats.window_grows += 1;
            }
            self.hit_ewma += EWMA_ALPHA * (hr - self.hit_ewma);
        } else {
            self.hit_ewma = hr;
            self.ewma_primed = true;
        }
        let ceil = (self.base_tev * TEV_CEIL_FACTOR).max(4.0);
        let floor = self.base_tev / 2.0;
        if self.epoch_written_blocks > self.cfg.write_budget_blocks {
            let t = (self.tev * TEV_RAISE).max(0.05).min(ceil);
            if t > self.tev {
                self.stats.tev_raises += 1;
            }
            self.tev = t;
        } else if self.epoch_written_blocks * 2 < self.cfg.write_budget_blocks && self.tev > floor {
            let t = (self.tev * TEV_RELAX).max(floor);
            if t < self.tev {
                self.stats.tev_cuts += 1;
            }
            self.tev = t;
        }
        self.epoch_events = 0;
        self.epoch_hits = 0;
        self.epoch_written_blocks = 0;
        self.stats.epochs += 1;
    }
}

impl Validate for AdmissionTier {
    /// Cascades into the sketch (total/reset-window agreement) and both
    /// ghost lists (length/capacity agreement), then re-asserts the
    /// controller's threshold is a usable number — a NaN TEV admits
    /// nothing forever and would silently turn the SSD tier off.
    fn validate(&self, report: &mut Report) {
        self.sketch.validate(report);
        self.list_ghost.validate(report);
        self.result_ghost.validate(report);
        report.check(
            self.tev.is_finite() && self.tev >= 0.0,
            "AdmissionTier",
            "controller-tev-sane",
            || format!("controller TEV is {}", self.tev),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdmissionConfig;

    fn sketch_tier() -> AdmissionTier {
        AdmissionTier::new(AdmissionConfig::sketch_default(), 0.5)
    }

    #[test]
    fn static_tier_is_inert() {
        let mut t = AdmissionTier::new(AdmissionConfig::static_default(), 0.5);
        assert!(!t.is_sketch());
        t.record_list_access(1, true);
        t.record_result_access(2, false);
        assert_eq!(t.sketch.total(), 0, "no sketch updates under Static");
        assert_eq!(t.stats(), AdmissionStats::default());
    }

    #[test]
    fn one_hit_wonder_is_filtered_where_static_admits() {
        let mut t = sketch_tier();
        // The static gate would admit: EV = 1/1 = 1 >= 0.5. The sketch
        // gate sees a first-and-only access (estimate 1 < doorkeeper 2).
        t.record_list_access(7, false);
        assert!(!t.admit_list(7, 1, 1));
        assert_eq!(t.stats().list_filtered, 1);
    }

    #[test]
    fn repeated_access_clears_the_doorkeeper() {
        let mut t = sketch_tier();
        for _ in 0..3 {
            t.record_list_access(7, false);
        }
        assert!(t.admit_list(7, 1, 1), "sketch remembers pre-cache reuse");
    }

    #[test]
    fn ghost_hit_fast_tracks_and_is_single_shot() {
        let mut t = sketch_tier();
        t.record_list_access(9, false);
        assert!(!t.admit_list(9, 1, 1), "first offer filtered, ghosted");
        assert!(t.admit_list(9, 1, 1), "re-offer rides the ghost");
        assert_eq!(t.stats().list_fast_tracks, 1);
        assert!(!t.admit_list(9, 1, 1), "ghost evidence is spent");
    }

    #[test]
    fn results_use_their_own_ghost_and_threshold() {
        let mut t = sketch_tier();
        t.record_result_access(4, false);
        assert!(!t.admit_result(4, 1, 2));
        assert!(t.admit_result(4, 1, 2), "ghost fast-track");
        let mut t = sketch_tier();
        for _ in 0..4 {
            t.record_result_access(5, true);
        }
        assert!(t.admit_result(5, 1, 2), "sketch estimate clears the bar");
    }

    #[test]
    fn write_pressure_raises_tev_and_slack_relaxes_it() {
        let mut cfg = AdmissionConfig::sketch_default();
        cfg.epoch = 8;
        cfg.write_budget_blocks = 4;
        let mut t = AdmissionTier::new(cfg, 0.5);
        // Epoch 1: heavy admitted writes (hot keys clear the gate).
        for k in 0..4u64 {
            t.record_list_access(k, true);
            t.record_list_access(k, true);
            assert!(t.admit_list(k, 5, 2));
        }
        assert_eq!(t.stats().epochs, 1);
        assert!(t.tev() > 0.5, "over-budget epoch raises TEV");
        let high = t.tev();
        // Epochs of quiet hits: no writes, TEV relaxes toward base/2.
        for _ in 0..40 {
            t.record_list_access(1, true);
        }
        assert!(t.tev() < high, "write slack relaxes TEV");
        assert!(t.tev() >= 0.25, "anchored at base/2");
    }

    #[test]
    fn phase_change_shrinks_the_window_and_halves_the_sketch() {
        let mut cfg = AdmissionConfig::sketch_default();
        cfg.epoch = 16;
        cfg.reset_window = 1 << 20;
        let mut t = AdmissionTier::new(cfg, 0.5);
        // Prime the EWMA with an all-hits epoch.
        for _ in 0..16 {
            t.record_list_access(1, true);
        }
        let w0 = t.reset_window();
        // Then an all-misses epoch: a detected phase change.
        for k in 0..16u64 {
            t.record_list_access(1_000 + k, false);
        }
        assert!(t.reset_window() < w0, "window shrinks on a phase change");
        assert!(t.stats().window_shrinks >= 1);
        // Recovery epochs grow it back (never past the configured W).
        for _ in 0..64 {
            t.record_list_access(1, true);
        }
        assert!(t.stats().window_grows >= 1);
        assert!(t.reset_window() <= 1 << 20);
    }

    #[test]
    fn validator_cascades_into_sketch_and_ghosts() {
        let mut t = sketch_tier();
        t.record_list_access(3, false);
        t.admit_list(3, 1, 1); // filtered → ghosted
        assert!(t.validation_report().is_clean());
        t.list_ghost.debug_corrupt_members(1);
        let fired: Vec<&str> = t
            .validation_report()
            .violations()
            .iter()
            .map(|v| v.invariant)
            .collect();
        assert!(fired.contains(&"ghost-length-agree"), "got {fired:?}");
    }
}
