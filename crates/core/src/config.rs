//! Configuration of the hybrid cache.

/// Which replacement policy drives both cache levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// The traditional baseline: plain LRU victims, full inverted lists
    /// cached, per-entry (small, random) SSD writes, no admission
    /// threshold, no replaceable-state reuse.
    Lru,
    /// Cost-Based LRU (the paper's Sec. VI-C): working/replace-first
    /// regions, IREN-based result-block victims, size-matched list
    /// victims, block-granular placement with write-buffer assembly,
    /// EV/TEV admission.
    Cblru,
    /// CBLRU plus a static partition holding the most efficient entries,
    /// seeded from query-log analysis and never evicted.
    Cbslru {
        /// Fraction of each SSD region reserved for the static partition.
        static_fraction: f64,
    },
}

impl PolicyKind {
    /// Whether this policy uses the cost-based machinery.
    pub fn is_cost_based(&self) -> bool {
        !matches!(self, PolicyKind::Lru)
    }

    /// The static fraction (0 for non-CBSLRU policies).
    pub fn static_fraction(&self) -> f64 {
        match self {
            PolicyKind::Cbslru { static_fraction } => *static_fraction,
            _ => 0.0,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Cblru => "CBLRU",
            PolicyKind::Cbslru { .. } => "CBSLRU",
        }
    }
}

/// How SSD admission is decided (the gate in front of every SSD cache
/// write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// The paper's behavior, verbatim: lists pass `EV = Freq/SC >= TEV`
    /// with the static threshold, results pass the static frequency
    /// floor. This is the reference arm — bit-identical to the seed on
    /// every simulated figure.
    Static,
    /// The sketch-based admission tier: a TinyLFU-style 4-bit frequency
    /// sketch estimates reuse across the whole stream before a write is
    /// spent, a ghost cache fast-tracks keys that were just dismissed,
    /// and an online controller retunes TEV and the sketch's reset
    /// window to the observed workload phase.
    Sketch,
}

/// Parameters of the sketch-based admission tier. Carried even when the
/// policy is [`AdmissionPolicy::Static`] so the tier can be toggled on at
/// runtime without reconstructing the manager.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Which gate is active.
    pub policy: AdmissionPolicy,
    /// Counters per sketch row (rounded up to a power of two, floor 64).
    pub sketch_width: usize,
    /// Initial reset window `W`: sketch increments between halvings.
    pub reset_window: u64,
    /// Doorkeeper: minimum sketch estimate for a key to be considered at
    /// all (filters one-hit wonders before the EV math).
    pub min_freq: u8,
    /// Ghost-list capacity in keys, per entry family.
    pub ghost_capacity: usize,
    /// Controller epoch in recorded accesses; 0 disables online tuning.
    pub epoch: u64,
    /// Per-epoch SSD write budget in blocks: the controller raises TEV
    /// while admissions exceed it and relaxes TEV when writes run cold.
    pub write_budget_blocks: u64,
}

impl AdmissionConfig {
    /// The reference arm: static gate active, sketch parameters at their
    /// defaults so a runtime toggle to `Sketch` behaves sensibly.
    pub fn static_default() -> Self {
        AdmissionConfig {
            policy: AdmissionPolicy::Static,
            ..Self::sketch_default()
        }
    }

    /// The sketch arm with default geometry: 16 Ki counters/row (32 KB
    /// table), a 64 Ki-access reset window, a doorkeeper of 2 and a
    /// 4 Ki-key ghost list.
    pub fn sketch_default() -> Self {
        AdmissionConfig {
            policy: AdmissionPolicy::Sketch,
            sketch_width: 16 * 1024,
            reset_window: 64 * 1024,
            min_freq: 2,
            ghost_capacity: 4 * 1024,
            epoch: 2_048,
            write_budget_blocks: 1_024,
        }
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.sketch_width == 0 {
            return Err("admission sketch width must be positive".into());
        }
        if self.reset_window == 0 {
            return Err("admission reset window must be positive".into());
        }
        Ok(())
    }
}

/// How the two levels share data (the paper's Sec. IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachingScheme {
    /// Every page in memory is also on SSD (write-through on admit).
    Inclusive,
    /// No page on both levels: an SSD hit deletes the SSD copy.
    Exclusive,
    /// The paper's choice: SSD holds data evicted from memory; SSD hits
    /// are copied up *without* deleting — the SSD copy merely turns
    /// replaceable.
    Hybrid,
}

/// Configuration of the optional third cache family: cached term-pair
/// intersections (the three-level scheme of Long & Suel that the paper's
/// conclusion names as future work).
#[derive(Debug, Clone, Copy)]
pub struct IntersectionConfig {
    /// Memory budget for intersection entries.
    pub mem_bytes: u64,
    /// SSD budget for intersection entries (its own region after the
    /// list region).
    pub ssd_bytes: u64,
    /// A term pair must co-occur in this many queries before its
    /// intersection is materialized.
    pub pair_threshold: u64,
}

/// Full configuration.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Time-to-live of cached data (the dynamic scenario of Sec. IV-B).
    /// `None` is the paper's static scenario: cached data never expires.
    pub ttl: Option<simclock::SimDuration>,
    /// L1 result-cache capacity in bytes.
    pub mem_result_bytes: u64,
    /// L1 inverted-list-cache capacity in bytes.
    pub mem_list_bytes: u64,
    /// L2 (SSD) result-cache capacity in bytes.
    pub ssd_result_bytes: u64,
    /// L2 (SSD) inverted-list-cache capacity in bytes.
    pub ssd_list_bytes: u64,
    /// SSD block size `SB` (128 KB in the paper; also the RB size).
    pub block_bytes: u64,
    /// Result-entry size (top-50 docs ≈ 20 KB).
    pub result_entry_bytes: u64,
    /// Replace-first window `W` (entries).
    pub window: usize,
    /// Efficiency-value admission threshold `TEV` (lists). 0 admits all.
    pub tev: f64,
    /// Minimum access frequency for a result entry to be flushed to SSD.
    pub result_freq_threshold: u64,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Level-sharing scheme.
    pub scheme: CachingScheme,
    /// First LBA of the SSD cache file (result region first, then lists,
    /// then the optional intersection region).
    pub ssd_base_lba: u64,
    /// Three-level mode: cache term-pair intersections as a third entry
    /// family. `None` is the paper's evaluated two-level configuration.
    pub intersections: Option<IntersectionConfig>,
    /// The SSD admission gate. [`AdmissionConfig::static_default`] is the
    /// paper's behavior; the sketch tier is the opt-in modernization.
    pub admission: AdmissionConfig,
}

impl HybridConfig {
    /// The paper's defaults at a given total memory/SSD cache size, with
    /// the RC:IC split of Sec. VII-A ("RC takes up 20% of the cache
    /// capacity, while IC takes up 80%").
    pub fn paper(mem_bytes: u64, ssd_bytes: u64, policy: PolicyKind) -> Self {
        HybridConfig {
            ttl: None,
            mem_result_bytes: mem_bytes / 5,
            mem_list_bytes: mem_bytes - mem_bytes / 5,
            ssd_result_bytes: ssd_bytes / 5,
            ssd_list_bytes: ssd_bytes - ssd_bytes / 5,
            block_bytes: 128 * 1024,
            result_entry_bytes: 20_000,
            window: 8,
            tev: if policy.is_cost_based() { 0.5 } else { 0.0 },
            result_freq_threshold: if policy.is_cost_based() { 2 } else { 0 },
            policy,
            scheme: CachingScheme::Hybrid,
            ssd_base_lba: 0,
            intersections: None,
            admission: AdmissionConfig::static_default(),
        }
    }

    /// Result entries per result block (`RB`).
    pub fn entries_per_rb(&self) -> usize {
        (self.block_bytes / self.result_entry_bytes) as usize
    }

    /// Result-block slots in the SSD result region.
    pub fn result_slots(&self) -> usize {
        (self.ssd_result_bytes / self.block_bytes) as usize
    }

    /// Blocks in the SSD list region.
    pub fn list_blocks(&self) -> usize {
        (self.ssd_list_bytes / self.block_bytes) as usize
    }

    /// Sectors per SSD block.
    pub fn sectors_per_block(&self) -> u64 {
        self.block_bytes / storagecore::SECTOR_SIZE as u64
    }

    /// Blocks in the SSD intersection region (0 when disabled).
    pub fn intersection_blocks(&self) -> usize {
        self.intersections
            .map_or(0, |x| (x.ssd_bytes / self.block_bytes) as usize)
    }

    /// Total SSD footprint in sectors (result + list + intersection
    /// regions).
    pub fn ssd_sectors(&self) -> u64 {
        (self.result_slots() as u64 + self.list_blocks() as u64 + self.intersection_blocks() as u64)
            * self.sectors_per_block()
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_bytes == 0 || self.block_bytes % storagecore::SECTOR_SIZE as u64 != 0 {
            return Err("block size must be a positive multiple of the sector size".into());
        }
        if self.result_entry_bytes == 0 || self.result_entry_bytes > self.block_bytes {
            return Err("a result entry must fit in one block".into());
        }
        if self.ssd_result_bytes > 0 && self.result_slots() == 0 {
            return Err("SSD result region smaller than one block".into());
        }
        if self.ssd_list_bytes > 0 && self.list_blocks() == 0 {
            return Err("SSD list region smaller than one block".into());
        }
        let sf = self.policy.static_fraction();
        if !(0.0..1.0).contains(&sf) {
            return Err("static fraction must be in [0, 1)".into());
        }
        if self.tev < 0.0 {
            return Err("TEV must be non-negative".into());
        }
        self.admission.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid_and_split_20_80() {
        let c = HybridConfig::paper(100 << 20, 1 << 30, PolicyKind::Cblru);
        c.validate().unwrap();
        assert_eq!(c.mem_result_bytes * 4, c.mem_list_bytes);
        assert_eq!(c.block_bytes, 128 * 1024);
        assert_eq!(c.entries_per_rb(), 6, "six 20 KB entries fit a 128 KB RB");
        assert_eq!(c.sectors_per_block(), 256);
    }

    #[test]
    fn lru_variant_disables_admission() {
        let c = HybridConfig::paper(1 << 20, 1 << 24, PolicyKind::Lru);
        assert_eq!(c.tev, 0.0);
        assert_eq!(c.result_freq_threshold, 0);
        assert!(!c.policy.is_cost_based());
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(PolicyKind::Cblru.label(), "CBLRU");
        let s = PolicyKind::Cbslru {
            static_fraction: 0.3,
        };
        assert_eq!(s.label(), "CBSLRU");
        assert!((s.static_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(PolicyKind::Cblru.static_fraction(), 0.0);
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = HybridConfig::paper(1 << 20, 1 << 24, PolicyKind::Cblru);
        c.result_entry_bytes = c.block_bytes + 1;
        assert!(c.validate().is_err());

        let mut c = HybridConfig::paper(1 << 20, 1 << 24, PolicyKind::Cblru);
        c.block_bytes = 1000; // not sector-aligned
        assert!(c.validate().is_err());

        let mut c = HybridConfig::paper(1 << 20, 1 << 24, PolicyKind::Cblru);
        c.policy = PolicyKind::Cbslru {
            static_fraction: 1.5,
        };
        assert!(c.validate().is_err());

        let mut c = HybridConfig::paper(1 << 20, 1 << 24, PolicyKind::Cblru);
        c.ssd_result_bytes = 1; // smaller than a block but non-zero
        assert!(c.validate().is_err());
    }

    #[test]
    fn admission_defaults_and_validation() {
        let c = HybridConfig::paper(1 << 20, 1 << 24, PolicyKind::Cblru);
        assert_eq!(c.admission.policy, AdmissionPolicy::Static);
        c.admission.validate().unwrap();
        let s = AdmissionConfig::sketch_default();
        assert_eq!(s.policy, AdmissionPolicy::Sketch);

        let mut c = HybridConfig::paper(1 << 20, 1 << 24, PolicyKind::Cblru);
        c.admission.reset_window = 0;
        assert!(c.validate().is_err());
        let mut c = HybridConfig::paper(1 << 20, 1 << 24, PolicyKind::Cblru);
        c.admission.sketch_width = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ssd_footprint() {
        let c = HybridConfig::paper(1 << 20, 10 << 20, PolicyKind::Cblru);
        // 2 MB RC -> 16 slots, 8 MB IC -> 64 blocks.
        assert_eq!(c.result_slots(), 16);
        assert_eq!(c.list_blocks(), 64);
        assert_eq!(c.ssd_sectors(), 80 * 256);
    }
}
