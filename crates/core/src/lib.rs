//! The paper's contribution: an SSD-based two-level hybrid cache for
//! large-scale search engines.
//!
//! Memory is the first-level cache, an SSD the second, and the HDD-resident
//! index the backing store. Two entry families are cached — fixed-size
//! **result entries** (~20 KB, the top-50 documents of a query) and
//! variable-size **inverted-list entries** — each with its own selection,
//! placement and replacement machinery:
//!
//! * **Selection** ([`selection`]): evicted lists are flushed to SSD at
//!   block granularity, `SC = ceil(SI·PU / SB)` (Formula 1), and admitted
//!   only when their efficiency value `EV = Freq / SC` (Formula 2) clears
//!   the `TEV` threshold; low-value data goes straight back to the HDD
//!   tier.
//! * **Placement** ([`ssd`]): an improved log-based cache file. Result
//!   entries are staged in a write buffer and assembled into 128 KB
//!   **result blocks** so the SSD only ever sees large block-aligned
//!   writes; three mapping tables (result, result-block, inverted-list)
//!   index the file.
//! * **Replacement** ([`ssd`], [`mem`]): **CBLRU** — an LRU list split
//!   into a Working Region and a Replace-First Region of window `W`;
//!   result-block victims maximize the invalid-entry count (IREN),
//!   inverted-list victims are size-matched; blocks cycle through
//!   free → normal → replaceable states, and replaceable data still
//!   serves hits until overwritten. **CBSLRU** additionally pins a
//!   static partition of the most efficient entries. The classic **LRU**
//!   (full-list caching, per-entry random writes) is implemented as the
//!   baseline.
//!
//! [`CacheManager`] ties the two levels together behind the query-,
//! selection- and replacement-management interface of the paper's Fig. 2,
//! charging all SSD traffic to a [`storagecore::BlockDevice`] so the flash
//! effects (erases, GC, access times) are measured, not assumed.

#![forbid(unsafe_code)]

pub mod admission;
pub mod config;
pub mod manager;
pub mod mem;
pub mod selection;
pub mod ssd;
pub mod stats;
pub mod ttl;

pub use admission::{AdmissionStats, AdmissionTier};
pub use cachekit::VictimSelection;
pub use config::{
    AdmissionConfig, AdmissionPolicy, CachingScheme, HybridConfig, IntersectionConfig, PolicyKind,
};
pub use manager::{CacheManager, ListServe, Tier};
pub use selection::{efficiency_value, sc_blocks, sc_bytes};
pub use stats::CacheStats;
pub use ttl::TtlTracker;

/// Identity of a distinct query (the result-cache key).
pub type QueryId = u64;

/// Identity of an inverted-list cache entry: `(segment, term)` packed as
/// `segment << 32 | term`.
///
/// Segment 0 is the frozen base index, so for a frozen corpus the key is
/// numerically the term id — exactly the pre-segmentation behaviour. A
/// live index hands out fresh segment ids as it seals and merges, which
/// is what stops a freshly merged list from *aliasing* a stale cached
/// prefix of a retired segment: the old `(segment, term)` key can only
/// ever be invalidated, never re-resolved.
pub type TermKey = u64;

/// Packs a `(segment, term)` pair into a [`TermKey`].
#[inline]
pub const fn list_key(segment: u32, term: u32) -> TermKey {
    ((segment as u64) << 32) | term as u64
}

/// The segment id of a [`TermKey`].
#[inline]
pub const fn key_segment(key: TermKey) -> u32 {
    (key >> 32) as u32
}

/// The term id of a [`TermKey`].
#[inline]
pub const fn key_term(key: TermKey) -> u32 {
    key as u32
}

/// A normalized term pair `(lo, hi)` — the intersection-cache key of the
/// three-level extension.
pub type PairKey = (TermKey, TermKey);
