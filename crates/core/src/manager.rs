//! The cache manager (the paper's Fig. 2): query management, selection
//! management and replacement management over the two cache levels.

use simclock::SimDuration;
use storagecore::BlockDevice;

use simclock::SimTime;

use crate::admission::{AdmissionStats, AdmissionTier};
use crate::config::{AdmissionPolicy, CachingScheme, HybridConfig};
use crate::mem::{ListMeta, MemListCache, MemResultCache};
use crate::selection::{admit_list, sc_blocks};
use crate::ssd::{ListStore, ResultStore, SlotRegion};
use crate::stats::CacheStats;
use crate::ttl::TtlTracker;
use crate::{PairKey, QueryId, TermKey};

/// Where a result lookup was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// L1 (memory) hit — Table I's S1.
    Mem,
    /// L2 (SSD) hit — S3.
    Ssd,
    /// Not cached; the engine must compute from the HDD index — S8.
    Hdd,
}

/// How an inverted-list request was satisfied, byte by byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ListServe {
    /// Bytes served from the memory cache.
    pub from_mem: u64,
    /// Bytes served from the SSD cache.
    pub from_ssd: u64,
    /// Bytes the engine must still read from the HDD index.
    pub from_hdd: u64,
    /// Extra HDD bytes the *policy* decided to fetch beyond the request:
    /// the traditional LRU baseline reads and caches complete inverted
    /// lists (Saraiva-style list caching), so on a fill it drags in the
    /// whole tail. Always 0 under the cost-based policies — partial
    /// caching is their contribution.
    pub fill_from_hdd: u64,
    /// SSD time spent serving this lookup (cache reads + any flush work
    /// triggered by insertions).
    pub ssd_latency: SimDuration,
}

impl ListServe {
    /// Total bytes requested.
    pub fn total(&self) -> u64 {
        self.from_mem + self.from_ssd + self.from_hdd
    }
}

/// The two-level hybrid cache manager.
///
/// Generic over the result payload `V` and the SSD block device `D`, so
/// unit tests run against a [`storagecore::RamDisk`] while the engine
/// plugs in a [`flashsim`](https://crates.io/crates/flashsim)-backed SSD.
#[derive(Debug)]
pub struct CacheManager<V, D> {
    config: HybridConfig,
    mem_rc: MemResultCache<V>,
    mem_ic: MemListCache,
    ssd_rc: ResultStore<V>,
    ssd_ic: ListStore,
    device: D,
    stats: CacheStats,
    /// Current instant, fed by the driver for TTL decisions.
    now: SimTime,
    result_ttl: Option<TtlTracker<QueryId>>,
    list_ttl: Option<TtlTracker<TermKey>>,
    /// Three-level mode: the intersection family (memory + SSD).
    mem_xc: Option<MemListCache<PairKey>>,
    ssd_xc: Option<ListStore<PairKey>>,
    /// The SSD admission gate. Inert under [`AdmissionPolicy::Static`]
    /// (the paper's EV/TEV check runs verbatim); under
    /// [`AdmissionPolicy::Sketch`] it replaces the static threshold with
    /// the frequency-sketch + ghost + controller tier.
    admission: AdmissionTier,
}

impl<V: Clone, D: BlockDevice> CacheManager<V, D> {
    /// Build a manager whose SSD cache file lives on `device` starting at
    /// `config.ssd_base_lba` (result region first, then the list region).
    pub fn new(config: HybridConfig, device: D) -> Self {
        config.validate().expect("invalid hybrid-cache config");
        assert!(
            config.ssd_base_lba + config.ssd_sectors() <= device.geometry().sectors,
            "SSD cache file exceeds the device: need {} sectors at LBA {}, device has {}",
            config.ssd_sectors(),
            config.ssd_base_lba,
            device.geometry().sectors
        );
        let spb = config.sectors_per_block();
        let result_region = SlotRegion::new(
            config.ssd_base_lba,
            config.block_bytes,
            config.result_slots() as u32,
        );
        let list_region = SlotRegion::new(
            config.ssd_base_lba + config.result_slots() as u64 * spb,
            config.block_bytes,
            config.list_blocks() as u32,
        );
        let intersection_region = SlotRegion::new(
            config.ssd_base_lba
                + (config.result_slots() as u64 + config.list_blocks() as u64) * spb,
            config.block_bytes,
            config.intersection_blocks() as u32,
        );
        let cost_based = config.policy.is_cost_based();
        let sf = config.policy.static_fraction();
        CacheManager {
            mem_rc: MemResultCache::new(config.mem_result_bytes, config.result_entry_bytes),
            mem_ic: MemListCache::new(
                config.mem_list_bytes,
                config.policy,
                config.window,
                config.block_bytes,
            ),
            ssd_rc: ResultStore::new(
                result_region,
                config.entries_per_rb(),
                config.result_entry_bytes,
                cost_based,
                config.window,
                sf,
            ),
            ssd_ic: ListStore::new(
                list_region,
                config.block_bytes,
                cost_based,
                config.window,
                sf,
            ),
            device,
            result_ttl: config.ttl.map(TtlTracker::new),
            list_ttl: config.ttl.map(TtlTracker::new),
            mem_xc: config.intersections.map(|x| {
                MemListCache::new(
                    x.mem_bytes,
                    config.policy,
                    config.window,
                    config.block_bytes,
                )
            }),
            ssd_xc: config.intersections.map(|_| {
                ListStore::new(
                    intersection_region,
                    config.block_bytes,
                    cost_based,
                    config.window,
                    0.0,
                )
            }),
            admission: AdmissionTier::new(config.admission, config.tev),
            config,
            stats: CacheStats::new(),
            now: SimTime::ZERO,
        }
    }

    /// Whether the three-level intersection family is active.
    pub fn intersections_enabled(&self) -> bool {
        self.mem_xc.is_some()
    }

    /// Switch every store between the seed's reference victim scans and
    /// the indexed victim path. Both select provably identical victims;
    /// `Scan` exists for property tests and old-vs-new benchmarks.
    pub fn set_victim_selection(&mut self, selection: cachekit::VictimSelection) {
        self.mem_ic.set_victim_selection(selection);
        self.ssd_rc.set_victim_selection(selection);
        self.ssd_ic.set_victim_selection(selection);
        if let Some(xc) = self.mem_xc.as_mut() {
            xc.set_victim_selection(selection);
        }
        if let Some(xc) = self.ssd_xc.as_mut() {
            xc.set_victim_selection(selection);
        }
    }

    /// Switch the SSD admission gate at runtime. `Static` is the paper's
    /// EV/TEV check verbatim; `Sketch` consults the frequency-sketch
    /// admission tier instead. Sketch state persists across a round trip
    /// but only learns while the sketch gate is active.
    pub fn set_admission_policy(&mut self, policy: AdmissionPolicy) {
        self.admission.set_policy(policy);
    }

    /// The active admission gate.
    pub fn admission_policy(&self) -> AdmissionPolicy {
        self.admission.policy()
    }

    /// Counters of the sketch admission tier (all zero in the `Static`
    /// arm; deliberately outside [`CacheStats`] so the bit-identity
    /// contract over the seed's figures is untouched).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// The admission tier (controller TEV / reset window observability).
    pub fn admission(&self) -> &AdmissionTier {
        &self.admission
    }

    // ------------------------------------------------------------------
    // Query management: intersections (three-level mode)
    // ------------------------------------------------------------------

    /// Probe the intersection cache for a term pair's materialized
    /// intersection of `bytes`. Returns `None` when the family is
    /// disabled or the pair is not cached; otherwise the tier split
    /// (intersections are atomic — fully served by whichever level holds
    /// them).
    pub fn lookup_intersection(&mut self, pair: PairKey, bytes: u64) -> Option<ListServe> {
        debug_assert!(pair.0 <= pair.1, "pair keys are normalized (lo, hi)");
        let mem = self.mem_xc.as_mut()?;
        let mut serve = ListServe::default();
        if mem.touch(pair, bytes, 1.0).is_some() {
            // Drain growth evictions into the SSD level.
            let displaced = mem.drain_evicted();
            let mut t = SimDuration::ZERO;
            for (p, m) in displaced {
                t += self.flush_intersection(p, m);
            }
            self.stats.ssd_time += t;
            self.stats.intersections.mem_hits += 1;
            serve.from_mem = bytes;
            return Some(serve);
        }
        let mark = self.config.scheme == CachingScheme::Hybrid;
        let ssd = self.ssd_xc.as_mut().expect("mem_xc implies ssd_xc");
        if let Some((cached, latency)) = ssd.lookup(pair, bytes, &mut self.device, mark) {
            if cached >= bytes {
                self.stats.intersections.ssd_hits += 1;
                self.stats.ssd_time += latency;
                self.stats.ssd_bytes_read += bytes;
                serve.from_ssd = bytes;
                serve.ssd_latency = latency;
                // Promote into memory (hybrid scheme).
                self.install_intersection(pair, bytes);
                return Some(serve);
            }
        }
        self.stats.intersections.misses += 1;
        None
    }

    /// Install a freshly materialized intersection into the memory level
    /// (evictions cascade to the SSD level per the usual SM rules).
    pub fn install_intersection(&mut self, pair: PairKey, bytes: u64) {
        let Some(mem) = self.mem_xc.as_mut() else {
            return;
        };
        if mem.peek(pair).is_some() {
            mem.touch(pair, bytes, 1.0);
            return;
        }
        let meta = ListMeta {
            si_bytes: bytes,
            pu: 1.0,
            freq: 1,
            full_bytes: bytes,
        };
        let mut t = SimDuration::ZERO;
        match mem.insert(pair, meta) {
            Ok(evicted) => {
                for (p, m) in evicted {
                    t += self.flush_intersection(p, m);
                }
            }
            Err(rejected) => {
                t += self.flush_intersection(pair, rejected);
            }
        }
        self.stats.ssd_time += t;
    }

    /// SM decision for an evicted intersection (EV/TEV, like lists —
    /// intersections are always fully utilized, so PU is 1).
    fn flush_intersection(&mut self, pair: PairKey, meta: ListMeta) -> SimDuration {
        let Some(ssd) = self.ssd_xc.as_mut() else {
            return SimDuration::ZERO;
        };
        let blocks = sc_blocks(meta.si_bytes, 1.0, self.config.block_bytes);
        if blocks == 0 {
            self.stats.intersections.ssd_rejections += 1;
            return SimDuration::ZERO;
        }
        if self.config.policy.is_cost_based() && !admit_list(meta.freq, blocks, self.config.tev) {
            self.stats.intersections.ssd_rejections += 1;
            return SimDuration::ZERO;
        }
        let avoided_before = ssd.stats().rewrites_avoided;
        self.device.set_background(true);
        let (written, latency) =
            ssd.offer(pair, blocks, meta.si_bytes, meta.freq, &mut self.device);
        self.device.set_background(false);
        if ssd.stats().rewrites_avoided > avoided_before {
            self.stats.intersections.rewrites_avoided += 1;
        } else if written {
            self.stats.intersections.ssd_admissions += 1;
            self.stats.ssd_bytes_written += blocks * self.config.block_bytes;
        } else {
            self.stats.intersections.ssd_rejections += 1;
        }
        latency
    }

    /// Advance the manager's notion of "now" (drives TTL expiry in the
    /// dynamic scenario; a no-op in the static one).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// `(fresh_hits, expirations)` of the result and list TTL trackers
    /// (zeros in the static scenario).
    pub fn ttl_stats(&self) -> ((u64, u64), (u64, u64)) {
        (
            self.result_ttl.as_ref().map_or((0, 0), TtlTracker::stats),
            self.list_ttl.as_ref().map_or((0, 0), TtlTracker::stats),
        )
    }

    /// TTL gate for a result: drop stale copies everywhere, reporting
    /// whether the entry had expired.
    fn expire_result_if_stale(&mut self, id: QueryId) -> bool {
        let Some(ttl) = self.result_ttl.as_mut() else {
            return false;
        };
        if ttl.check(&id, self.now) {
            return false;
        }
        ttl.forget(&id);
        self.mem_rc.remove(id);
        self.device.set_background(true);
        let t = self.ssd_rc.invalidate(id, &mut self.device);
        self.device.set_background(false);
        self.stats.ssd_time += t;
        true
    }

    /// TTL gate for an inverted list.
    fn expire_list_if_stale(&mut self, term: TermKey) -> bool {
        let Some(ttl) = self.list_ttl.as_mut() else {
            return false;
        };
        if ttl.check(&term, self.now) {
            return false;
        }
        ttl.forget(&term);
        self.mem_ic.remove(term);
        self.device.set_background(true);
        let t = self.ssd_ic.invalidate(term, &mut self.device);
        self.device.set_background(false);
        self.stats.ssd_time += t;
        true
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The SSD device (e.g. to read FTL statistics).
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable device access.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// SSD store statistics (results, lists).
    pub fn store_stats(
        &self,
    ) -> (
        crate::ssd::results::ResultStoreStats,
        crate::ssd::lists::ListStoreStats,
    ) {
        (self.ssd_rc.stats(), self.ssd_ic.stats())
    }

    /// Reset counters (cache contents persist).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    // ------------------------------------------------------------------
    // Query management: results
    // ------------------------------------------------------------------

    /// Look up a query result. On an SSD hit the entry is promoted into
    /// memory (hybrid scheme: the SSD copy stays, turned replaceable;
    /// exclusive scheme: the SSD copy is deleted).
    ///
    /// The returned latency is the **read-path** cost only. Flush work
    /// triggered by the promotion (evictions, trims) happens off the
    /// query's critical path — the drive still does it (erase counts and
    /// wear are real) but the requester does not wait; the time is
    /// accounted in [`CacheStats::ssd_time`].
    pub fn lookup_result(&mut self, id: QueryId) -> (Option<V>, Tier, SimDuration) {
        if self.expire_result_if_stale(id) {
            self.stats.results.misses += 1;
            return (None, Tier::Hdd, SimDuration::ZERO);
        }
        if let Some(v) = self.mem_rc.get(id) {
            self.stats.results.mem_hits += 1;
            self.admission.record_result_access(id, true);
            return (Some(v.clone()), Tier::Mem, SimDuration::ZERO);
        }
        let mark = self.config.scheme == CachingScheme::Hybrid;
        if let Some((value, _freq, read_latency)) = self.ssd_rc.lookup(id, &mut self.device, mark) {
            self.admission.record_result_access(id, true);
            self.stats.results.ssd_hits += 1;
            self.stats.ssd_time += read_latency;
            self.stats.ssd_bytes_read += self.config.result_entry_bytes;
            let mut background = SimDuration::ZERO;
            if self.config.scheme == CachingScheme::Exclusive {
                self.device.set_background(true);
                background += self.ssd_rc.invalidate(id, &mut self.device);
                self.device.set_background(false);
            }
            background += self.admit_result_to_mem(id, value.clone());
            self.stats.ssd_time += background;
            return (Some(value), Tier::Ssd, read_latency);
        }
        self.admission.record_result_access(id, false);
        self.stats.results.misses += 1;
        (None, Tier::Hdd, SimDuration::ZERO)
    }

    /// Install a freshly computed result (after a miss). Flushes of
    /// whatever the insertion evicted run in the background; the returned
    /// duration is the (zero) foreground cost, kept in the signature so
    /// callers charge a future synchronous-admission variant uniformly.
    pub fn complete_result(&mut self, id: QueryId, value: V) -> SimDuration {
        let now = self.now;
        if let Some(ttl) = self.result_ttl.as_mut() {
            ttl.installed(id, now);
        }
        let t = self.admit_result_to_mem(id, value);
        self.stats.ssd_time += t;
        SimDuration::ZERO
    }

    /// L1 insert + selection management over its evictions.
    fn admit_result_to_mem(&mut self, id: QueryId, value: V) -> SimDuration {
        let mut latency = SimDuration::ZERO;
        if self.config.scheme == CachingScheme::Inclusive {
            // Inclusive: the SSD gets a copy up front.
            latency += self.flush_result(id, value.clone(), 1);
        }
        for (qid, v, freq) in self.mem_rc.insert(id, value) {
            latency += self.flush_result(qid, v, freq);
        }
        latency
    }

    /// SM decision for one evicted result entry.
    fn flush_result(&mut self, id: QueryId, value: V, freq: u64) -> SimDuration {
        if self.admission.is_sketch() {
            // The sketch gate replaces the static frequency floor.
            if !self
                .admission
                .admit_result(id, freq, self.config.result_freq_threshold)
            {
                self.stats.results.ssd_rejections += 1;
                return SimDuration::ZERO;
            }
        } else if freq < self.config.result_freq_threshold {
            self.stats.results.ssd_rejections += 1;
            return SimDuration::ZERO;
        }
        let avoided_before = self.ssd_rc.stats().rewrites_avoided;
        // RB flush: a queued background write that overlaps foreground
        // reads instead of blocking the miss path.
        self.device.set_background(true);
        let latency = self.ssd_rc.offer(id, value, freq, &mut self.device);
        self.device.set_background(false);
        if self.ssd_rc.stats().rewrites_avoided > avoided_before {
            self.stats.results.rewrites_avoided += 1;
        } else {
            self.stats.results.ssd_admissions += 1;
        }
        self.stats.ssd_bytes_written += if latency > SimDuration::ZERO {
            self.config.block_bytes
        } else {
            0
        };
        latency
    }

    // ------------------------------------------------------------------
    // Query management: inverted lists
    // ------------------------------------------------------------------

    /// Request the first `needed_bytes` of a term's inverted list.
    /// `full_bytes` is the list's total on-disk size (the LRU baseline
    /// caches whole lists); `observed_pu` is this query's utilization of
    /// the list. Returns the byte split across tiers — the engine charges
    /// HDD time for `from_hdd` itself.
    pub fn lookup_list(
        &mut self,
        term: TermKey,
        needed_bytes: u64,
        full_bytes: u64,
        observed_pu: f64,
    ) -> ListServe {
        self.lookup_list_offload(term, needed_bytes, full_bytes, observed_pu, None)
    }

    /// [`CacheManager::lookup_list`] with an optional in-flash predicate
    /// template: SSD-tier block reads attach the descriptor when the
    /// per-block cost rule says pushing the filter down pays, and stay
    /// plain reads otherwise. `None` is exactly the host path.
    pub fn lookup_list_offload(
        &mut self,
        term: TermKey,
        needed_bytes: u64,
        full_bytes: u64,
        observed_pu: f64,
        offload: Option<storagecore::OffloadDescriptor>,
    ) -> ListServe {
        debug_assert!(needed_bytes > 0, "zero-byte list request");
        let expired = self.expire_list_if_stale(term);
        let _ = expired; // expiry already dropped both copies; fall through
        let covered_mem = self.mem_ic.peek(term).map(|m| m.si_bytes);
        let mut serve = ListServe::default();

        match covered_mem {
            Some(si) if si >= needed_bytes => {
                // Fully in memory: S2.
                self.mem_ic.touch(term, needed_bytes, observed_pu);
                self.flush_touch_evictions();
                self.stats.lists.mem_hits += 1;
                self.admission.record_list_access(term, true);
                serve.from_mem = needed_bytes;
                return serve;
            }
            Some(si) => {
                // Partial memory coverage; look below for the rest.
                serve.from_mem = si;
                // The LRU baseline grows its copy to the full list.
                let target = if self.config.policy.is_cost_based() {
                    needed_bytes
                } else {
                    full_bytes.max(needed_bytes)
                };
                let rest = needed_bytes - si;
                let mark = self.config.scheme == CachingScheme::Hybrid;
                if let Some((cached, latency)) =
                    self.ssd_ic
                        .lookup_offload(term, needed_bytes, &mut self.device, mark, offload)
                {
                    let extra = cached.saturating_sub(si).min(rest);
                    serve.from_ssd = extra;
                    serve.ssd_latency += latency;
                    self.stats.ssd_time += latency;
                    self.stats.ssd_bytes_read += extra;
                    if self.config.scheme == CachingScheme::Exclusive {
                        // Deletion is background work.
                        self.device.set_background(true);
                        let t = self.ssd_ic.invalidate(term, &mut self.device);
                        self.device.set_background(false);
                        self.stats.ssd_time += t;
                    }
                }
                serve.from_hdd = needed_bytes - serve.from_mem - serve.from_ssd;
                serve.fill_from_hdd = target.saturating_sub(needed_bytes);
                self.mem_ic.touch(term, target, observed_pu);
                self.flush_touch_evictions();
                self.classify_list_hit(&serve);
                self.admission.record_list_access(term, serve.from_hdd == 0);
                return serve;
            }
            None => {}
        }

        // Not in memory at all: try the SSD.
        let mark = self.config.scheme == CachingScheme::Hybrid;
        if let Some((cached, latency)) =
            self.ssd_ic
                .lookup_offload(term, needed_bytes, &mut self.device, mark, offload)
        {
            serve.from_ssd = cached.min(needed_bytes);
            serve.ssd_latency += latency;
            self.stats.ssd_time += latency;
            self.stats.ssd_bytes_read += serve.from_ssd;
            if self.config.scheme == CachingScheme::Exclusive {
                // Deletion is background work.
                self.device.set_background(true);
                let t = self.ssd_ic.invalidate(term, &mut self.device);
                self.device.set_background(false);
                self.stats.ssd_time += t;
            }
        }
        serve.from_hdd = needed_bytes - serve.from_ssd;
        self.classify_list_hit(&serve);
        self.admission.record_list_access(term, serve.from_hdd == 0);

        // Admit to memory (QM: "cache the used data in memory" — the
        // whole list under the traditional baseline). Flushes of the
        // displaced entries run off the critical path; their time lands
        // in stats.ssd_time, not in this lookup's latency.
        let target = if self.config.policy.is_cost_based() {
            needed_bytes
        } else {
            full_bytes.max(needed_bytes)
        };
        serve.fill_from_hdd = target.saturating_sub(needed_bytes.max(serve.from_ssd));
        let meta = ListMeta {
            si_bytes: target,
            pu: observed_pu,
            freq: 1,
            full_bytes,
        };
        let now = self.now;
        if let Some(ttl) = self.list_ttl.as_mut() {
            ttl.installed(term, now);
        }
        let background = self.admit_list_to_mem(term, meta);
        let _ = background; // recorded in stats by admit_list_to_mem
        serve
    }

    /// Flush (in the background) the entries a prefix-growth touch
    /// displaced from the memory list cache.
    fn flush_touch_evictions(&mut self) {
        let displaced = self.mem_ic.drain_evicted();
        let mut t = SimDuration::ZERO;
        for (term, meta) in displaced {
            t += self.flush_list(term, meta);
        }
        self.stats.ssd_time += t;
    }

    fn classify_list_hit(&mut self, serve: &ListServe) {
        if serve.from_hdd == 0 {
            // Memory partial + SSD completion, or pure SSD: an SSD-tier hit.
            self.stats.lists.ssd_hits += 1;
        } else if serve.from_mem > 0 || serve.from_ssd > 0 {
            self.stats.lists.partial_hits += 1;
        } else {
            self.stats.lists.misses += 1;
        }
    }

    /// L1 list insert + selection management over its evictions.
    fn admit_list_to_mem(&mut self, term: TermKey, meta: ListMeta) -> SimDuration {
        let mut latency = SimDuration::ZERO;
        if self.config.scheme == CachingScheme::Inclusive {
            latency += self.flush_list(term, meta);
        }
        match self.mem_ic.insert(term, meta) {
            Ok(evicted) => {
                for (t, m) in evicted {
                    latency += self.flush_list(t, m);
                }
            }
            Err(rejected) => {
                // Larger than the whole memory cache: treat as an eviction
                // of itself — flush straight to SSD.
                latency += self.flush_list(term, rejected);
            }
        }
        self.stats.ssd_time += latency;
        latency
    }

    /// SM decision for one evicted list (Formulas 1 & 2 + TEV).
    fn flush_list(&mut self, term: TermKey, meta: ListMeta) -> SimDuration {
        let (blocks, cached_bytes) = if self.config.policy.is_cost_based() {
            let sc = sc_blocks(meta.si_bytes, meta.pu, self.config.block_bytes);
            (sc, meta.si_bytes.min(sc * self.config.block_bytes))
        } else {
            // The LRU baseline caches the full inverted list.
            let full = meta.full_bytes.max(meta.si_bytes);
            (full.div_ceil(self.config.block_bytes), full)
        };
        if blocks == 0 {
            self.stats.lists.ssd_rejections += 1;
            return SimDuration::ZERO;
        }
        if self.admission.is_sketch() {
            // The sketch gate replaces the static EV/TEV threshold.
            if !self.admission.admit_list(term, meta.freq, blocks) {
                self.stats.lists.ssd_rejections += 1;
                return SimDuration::ZERO;
            }
        } else if self.config.policy.is_cost_based()
            && !admit_list(meta.freq, blocks, self.config.tev)
        {
            self.stats.lists.ssd_rejections += 1;
            return SimDuration::ZERO;
        }
        let avoided_before = self.ssd_ic.stats().rewrites_avoided;
        // RB flush: a queued background write that overlaps foreground
        // reads instead of blocking the miss path.
        self.device.set_background(true);
        let (written, latency) =
            self.ssd_ic
                .offer(term, blocks, cached_bytes, meta.freq, &mut self.device);
        self.device.set_background(false);
        if self.ssd_ic.stats().rewrites_avoided > avoided_before {
            self.stats.lists.rewrites_avoided += 1;
        } else if written {
            self.stats.lists.ssd_admissions += 1;
            self.stats.ssd_bytes_written += blocks * self.config.block_bytes;
        } else {
            self.stats.lists.ssd_rejections += 1;
        }
        latency
    }

    // ------------------------------------------------------------------
    // CBSLRU static seeding
    // ------------------------------------------------------------------

    /// Seed the static result partition (CBSLRU): the most frequent
    /// queries from log analysis, best first.
    pub fn seed_static_results(&mut self, entries: Vec<(QueryId, V, u64)>) -> SimDuration {
        self.device.set_background(true);
        let t = self.ssd_rc.seed_static(entries, &mut self.device);
        self.device.set_background(false);
        self.stats.ssd_time += t;
        t
    }

    /// Seed the static list partition (CBSLRU): `(term, si_bytes, pu,
    /// freq)` of the most efficient lists, best first.
    pub fn seed_static_lists(&mut self, lists: Vec<(TermKey, u64, f64, u64)>) -> SimDuration {
        let prepared = lists
            .into_iter()
            .map(|(term, si, pu, freq)| {
                let blocks = sc_blocks(si, pu, self.config.block_bytes);
                (term, blocks, si.min(blocks * self.config.block_bytes), freq)
            })
            .filter(|(_, blocks, _, _)| *blocks > 0)
            .collect();
        self.device.set_background(true);
        let t = self.ssd_ic.seed_static(prepared, &mut self.device);
        self.device.set_background(false);
        self.stats.ssd_time += t;
        t
    }

    // ------------------------------------------------------------------
    // Segment coherence (live index)
    // ------------------------------------------------------------------

    /// Every `(segment, term)` key cached in either tier, sorted and
    /// deduplicated. The engine sweeps this after a merge to find entries
    /// whose segment has been retired.
    pub fn cached_list_keys(&self) -> Vec<TermKey> {
        let mut keys = self.mem_ic.keys();
        keys.extend(self.ssd_ic.keys());
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// The cached profile of `key` — `(si_bytes, pu, freq, full_bytes)` —
    /// preferring the richer L1 metadata, falling back to the SSD entry
    /// (whole cached extent, so `pu = 1.0`). `None` if nowhere cached.
    pub fn list_profile(&self, key: TermKey) -> Option<(u64, f64, u64, u64)> {
        if let Some(m) = self.mem_ic.peek(key) {
            return Some((m.si_bytes, m.pu, m.freq, m.full_bytes));
        }
        self.ssd_ic
            .entry_profile(key)
            .map(|(bytes, freq)| (bytes, 1.0, freq, bytes))
    }

    /// Drop `key` from both tiers: L1 removal plus an SSD invalidate
    /// that Trims the entry's blocks as background work. Returns whether
    /// anything was actually cached.
    pub fn invalidate_list(&mut self, key: TermKey) -> bool {
        let in_mem = self.mem_ic.remove(key).is_some();
        let in_ssd = self.ssd_ic.cached_bytes(key).is_some();
        if in_ssd {
            self.device.set_background(true);
            let t = self.ssd_ic.invalidate(key, &mut self.device);
            self.device.set_background(false);
            self.stats.ssd_time += t;
        }
        if let Some(ttl) = self.list_ttl.as_mut() {
            ttl.forget(&key);
        }
        in_mem || in_ssd
    }

    /// The naive merge-coherence arm: drop every cached list from both
    /// tiers. Returns how many keys were invalidated.
    pub fn invalidate_all_lists(&mut self) -> u64 {
        let keys = self.cached_list_keys();
        let mut n = 0;
        for key in keys {
            if self.invalidate_list(key) {
                n += 1;
            }
        }
        n
    }

    /// Cooperative readmission of a freshly merged list under its new
    /// `(segment, term)` key. Goes through the normal selection gate
    /// (Formulas 1 & 2 / the sketch filter), so a merge cannot smuggle a
    /// low-value list past admission; the carried `freq` is what earns
    /// the survivor its slot. Returns whether the SSD accepted it.
    pub fn readmit_list(
        &mut self,
        key: TermKey,
        si_bytes: u64,
        pu: f64,
        freq: u64,
        full_bytes: u64,
    ) -> bool {
        let meta = ListMeta {
            si_bytes,
            pu,
            freq,
            full_bytes: full_bytes.max(si_bytes),
        };
        let t = self.flush_list(key, meta);
        self.stats.ssd_time += t;
        self.ssd_ic.cached_bytes(key).is_some()
    }
}

impl<V, D> invariant::Validate for CacheManager<V, D> {
    /// Cascades over every cache tier: the L1 result/list caches, the L2
    /// SSD stores, and (when the three-level intersection family is
    /// enabled) the intersection caches. Each store checks its own
    /// mapping-table, state-machine and accounting invariants; the
    /// equivalence suites call this after every step when
    /// `INVARIANT_AUDIT` is set.
    fn validate(&self, report: &mut invariant::Report) {
        self.mem_rc.validate(report);
        self.mem_ic.validate(report);
        self.ssd_rc.validate(report);
        self.ssd_ic.validate(report);
        if let Some(xc) = &self.mem_xc {
            xc.validate(report);
        }
        if let Some(xc) = &self.ssd_xc {
            xc.validate(report);
        }
        self.admission.validate(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use simclock::SimDuration;
    use storagecore::{IoKind, RamDisk};

    const SB: u64 = 128 * 1024;

    fn config(policy: PolicyKind) -> HybridConfig {
        // Small caches: 2 result entries + 2 blocks of lists in memory;
        // 4 RBs + 8 list blocks on SSD.
        HybridConfig {
            ttl: None,
            mem_result_bytes: 40_000,
            mem_list_bytes: 2 * SB,
            ssd_result_bytes: 4 * SB,
            ssd_list_bytes: 8 * SB,
            block_bytes: SB,
            result_entry_bytes: 20_000,
            window: 2,
            tev: 0.0,
            result_freq_threshold: 0,
            policy,
            scheme: CachingScheme::Hybrid,
            ssd_base_lba: 0,
            intersections: None,
            admission: crate::config::AdmissionConfig::static_default(),
        }
    }

    fn manager(policy: PolicyKind) -> CacheManager<u64, RamDisk> {
        CacheManager::new(
            config(policy),
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        )
    }

    #[test]
    fn result_miss_then_mem_hit() {
        let mut m = manager(PolicyKind::Cblru);
        let (v, tier, _) = m.lookup_result(1);
        assert!(v.is_none());
        assert_eq!(tier, Tier::Hdd);
        m.complete_result(1, 111);
        let (v, tier, t) = m.lookup_result(1);
        assert_eq!(v, Some(111));
        assert_eq!(tier, Tier::Mem);
        assert_eq!(t, SimDuration::ZERO);
        assert_eq!(m.stats().results.mem_hits, 1);
        assert_eq!(m.stats().results.misses, 1);
    }

    #[test]
    fn evicted_results_flow_to_ssd_and_hit_there() {
        let mut m = manager(PolicyKind::Cblru);
        // Memory holds 2 entries; push through 8 more so 6 get evicted,
        // filling one RB (entries_per_rb = 6).
        for id in 0..10u64 {
            m.lookup_result(id);
            m.complete_result(id, id * 100);
        }
        assert!(m.stats().results.ssd_admissions >= 6);
        // One of the early queries must now hit on SSD.
        let (v, tier, t) = m.lookup_result(0);
        assert_eq!(
            tier,
            Tier::Ssd,
            "query 0 was evicted and assembled into an RB"
        );
        assert_eq!(v, Some(0));
        assert!(t > SimDuration::ZERO);
        assert_eq!(m.stats().results.ssd_hits, 1);
        // And it was promoted back to memory.
        let (_, tier, _) = m.lookup_result(0);
        assert_eq!(tier, Tier::Mem);
    }

    #[test]
    fn lru_policy_writes_entries_cb_writes_blocks() {
        let writes = |policy| {
            let mut m = manager(policy);
            for id in 0..8u64 {
                m.lookup_result(id);
                m.complete_result(id, id);
            }
            let s = m.device().stats();
            (s.ops(IoKind::Write), s.kind(IoKind::Write).bytes())
        };
        let (lru_ops, lru_bytes) = writes(PolicyKind::Lru);
        let (cb_ops, cb_bytes) = writes(PolicyKind::Cblru);
        // LRU: six 20 KB writes. CB: one 128 KB write.
        assert!(lru_ops > cb_ops, "LRU {lru_ops} vs CB {cb_ops}");
        assert_eq!(cb_bytes, SB);
        assert_eq!(lru_bytes, 6 * 20_000_u64.div_ceil(512) * 512);
    }

    #[test]
    fn result_freq_threshold_rejects_cold_entries() {
        let mut cfg = config(PolicyKind::Cblru);
        cfg.result_freq_threshold = 2;
        let mut m = CacheManager::new(
            cfg,
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        );
        // Entries touched once each: all rejected at eviction.
        for id in 0..6u64 {
            m.lookup_result(id);
            m.complete_result(id, id);
        }
        assert_eq!(m.stats().results.ssd_admissions, 0);
        assert!(m.stats().results.ssd_rejections >= 4);
        // A re-used entry clears the threshold.
        let hot = 100u64;
        m.lookup_result(hot);
        m.complete_result(hot, 1);
        m.lookup_result(hot); // freq 2
        for id in 10..14u64 {
            m.lookup_result(id);
            m.complete_result(id, id);
        }
        assert!(
            m.stats().results.ssd_admissions >= 1 || m.ssd_rc.buffered(hot),
            "hot entry admitted or staged"
        );
    }

    #[test]
    fn list_flow_mem_then_ssd_then_hdd() {
        let mut m = manager(PolicyKind::Cblru);
        // First access: everything from HDD.
        let s = m.lookup_list(7, SB, 4 * SB, 0.5);
        assert_eq!(s.from_hdd, SB);
        assert_eq!(s.from_mem + s.from_ssd, 0);
        assert_eq!(m.stats().lists.misses, 1);
        // Second access: memory hit.
        let s = m.lookup_list(7, SB / 2, 4 * SB, 0.5);
        assert_eq!(s.from_mem, SB / 2);
        assert_eq!(m.stats().lists.mem_hits, 1);
        // Fill memory past capacity: term 8 (freq 1, EV 1) loses to the
        // twice-accessed term 7 (EV 2) under CBLRU and is flushed to SSD.
        m.lookup_list(8, SB, 4 * SB, 0.5);
        m.lookup_list(9, SB, 4 * SB, 0.5);
        assert!(
            m.mem_ic.peek(8).is_none(),
            "lowest-EV term evicted from memory"
        );
        assert!(
            m.mem_ic.peek(7).is_some(),
            "higher-EV term survives in memory"
        );
        assert!(
            m.ssd_ic.cached_bytes(8).is_some(),
            "evicted term flushed to SSD"
        );
        // Next access to the evicted term hits the SSD tier.
        let s = m.lookup_list(8, SB / 2, 4 * SB, 0.5);
        assert!(s.from_ssd > 0);
        assert_eq!(s.from_hdd, 0);
        assert_eq!(m.stats().lists.ssd_hits, 1);
    }

    #[test]
    fn partial_ssd_coverage_leaves_hdd_remainder() {
        let mut m = manager(PolicyKind::Cblru);
        // Cache one block's worth with PU = 0.5: SC = 1 block on flush.
        m.lookup_list(7, SB, 8 * SB, 0.5);
        m.lookup_list(8, SB, 8 * SB, 0.5);
        m.lookup_list(9, SB, 8 * SB, 0.5);
        assert_eq!(m.ssd_ic.cached_bytes(7), Some(SB));
        // Ask for much more than the cached prefix.
        let s = m.lookup_list(7, 3 * SB, 8 * SB, 0.5);
        assert_eq!(s.from_ssd, SB);
        assert_eq!(s.from_hdd, 2 * SB);
        assert_eq!(m.stats().lists.partial_hits, 1);
    }

    #[test]
    fn tev_rejects_low_ev_lists() {
        let mut cfg = config(PolicyKind::Cblru);
        cfg.tev = 5.0; // EV = freq / SC must reach 5
        let mut m = CacheManager::<u64, _>::new(
            cfg,
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        );
        // freq 1, SC 1 -> EV 1 < 5: rejected on eviction.
        m.lookup_list(1, SB, SB, 1.0);
        m.lookup_list(2, SB, SB, 1.0);
        m.lookup_list(3, SB, SB, 1.0);
        assert_eq!(m.stats().lists.ssd_admissions, 0);
        assert!(m.stats().lists.ssd_rejections >= 1);
        assert!(m.ssd_ic.is_empty());
    }

    #[test]
    fn lru_caches_full_lists_cb_caches_prefixes() {
        // Same access pattern; LRU fills + flushes full_bytes, CB only the
        // utilized prefix (SC blocks).
        let outcome = |policy| {
            let mut m = manager(policy);
            let first = m.lookup_list(1, SB, 2 * SB, 0.5); // used half of a 2-block list
            m.lookup_list(2, SB, 2 * SB, 0.5);
            m.lookup_list(3, SB, 2 * SB, 0.5); // forces term 1 out of memory
            (first.fill_from_hdd, m.ssd_ic.cached_bytes(1))
        };
        let (fill_cb, cached_cb) = outcome(PolicyKind::Cblru);
        assert_eq!(fill_cb, 0, "cost-based policies fetch only what is used");
        assert_eq!(cached_cb, Some(SB), "CB caches SC blocks");
        let (fill_lru, cached_lru) = outcome(PolicyKind::Lru);
        assert_eq!(fill_lru, SB, "the LRU baseline drags in the whole list");
        assert_eq!(cached_lru, Some(2 * SB), "LRU caches the whole list");
    }

    #[test]
    fn exclusive_scheme_deletes_on_ssd_hit() {
        let mut cfg = config(PolicyKind::Cblru);
        cfg.scheme = CachingScheme::Exclusive;
        let mut m = CacheManager::<u64, _>::new(
            cfg,
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        );
        m.lookup_list(1, SB, SB, 1.0);
        m.lookup_list(2, SB, SB, 1.0);
        m.lookup_list(3, SB, SB, 1.0); // term 1 -> SSD
        assert!(m.ssd_ic.cached_bytes(1).is_some());
        m.lookup_list(1, SB, SB, 1.0); // SSD hit deletes the copy
        assert!(m.ssd_ic.cached_bytes(1).is_none());
        assert!(m.device().stats().ops(IoKind::Trim) > 0);
    }

    #[test]
    fn inclusive_scheme_copies_up_front() {
        let mut cfg = config(PolicyKind::Cblru);
        cfg.scheme = CachingScheme::Inclusive;
        let mut m = CacheManager::<u64, _>::new(
            cfg,
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        );
        m.lookup_list(1, SB, SB, 1.0);
        assert!(
            m.ssd_ic.cached_bytes(1).is_some(),
            "inclusive scheme writes to SSD on memory admit"
        );
    }

    #[test]
    fn cbslru_static_seeding_serves_hits() {
        let mut m = CacheManager::new(
            config(PolicyKind::Cbslru {
                static_fraction: 0.5,
            }),
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        );
        m.seed_static_results(vec![(1000, 42u64, 10)]);
        m.seed_static_lists(vec![(500, SB, 1.0, 20)]);
        let (v, tier, _) = m.lookup_result(1000);
        assert_eq!(v, Some(42));
        assert_eq!(tier, Tier::Ssd);
        let s = m.lookup_list(500, SB / 2, 4 * SB, 0.5);
        assert_eq!(s.from_ssd, SB / 2);
        assert_eq!(s.from_hdd, 0);
    }

    #[test]
    fn stats_hit_ratio_reflects_traffic() {
        let mut m = manager(PolicyKind::Cblru);
        m.lookup_result(1); // miss
        m.complete_result(1, 0);
        m.lookup_result(1); // mem hit
        m.lookup_result(1); // mem hit
        assert!((m.stats().results.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!(m.stats().overall_hit_ratio() > 0.0);
    }

    #[test]
    fn oversized_memory_list_goes_straight_to_ssd() {
        let mut m = manager(PolicyKind::Cblru);
        // 3 blocks > 2-block memory cache.
        let s = m.lookup_list(1, 3 * SB, 3 * SB, 1.0);
        assert_eq!(s.from_hdd, 3 * SB);
        assert!(m.mem_ic.peek(1).is_none());
        assert!(
            m.ssd_ic.cached_bytes(1).is_some(),
            "too big for memory, flushed directly to SSD"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the device")]
    fn undersized_device_is_rejected() {
        let _ = CacheManager::<u64, _>::new(
            config(PolicyKind::Cblru),
            RamDisk::with_capacity_bytes(1024, SimDuration::ZERO),
        );
    }

    #[test]
    fn ttl_expires_results_everywhere() {
        use simclock::SimTime;
        let mut cfg = config(PolicyKind::Cblru);
        cfg.ttl = Some(SimDuration::from_millis(10));
        let mut m = CacheManager::<u64, _>::new(
            cfg,
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        );
        m.set_now(SimTime::ZERO);
        m.lookup_result(1);
        m.complete_result(1, 7);
        // Fresh: memory hit.
        m.set_now(SimTime::from_nanos(5_000_000));
        let (v, tier, _) = m.lookup_result(1);
        assert_eq!(v, Some(7));
        assert_eq!(tier, Tier::Mem);
        // Stale: treated as a miss, copies dropped.
        m.set_now(SimTime::from_nanos(50_000_000));
        let (v, tier, _) = m.lookup_result(1);
        assert_eq!(v, None);
        assert_eq!(tier, Tier::Hdd);
        let ((fresh, expired), _) = m.ttl_stats();
        assert_eq!(fresh, 1);
        assert_eq!(expired, 1);
        // Recomputing reinstalls with a fresh clock.
        m.complete_result(1, 8);
        m.set_now(SimTime::from_nanos(55_000_000));
        let (v, _, _) = m.lookup_result(1);
        assert_eq!(v, Some(8));
    }

    #[test]
    fn ttl_expires_lists_everywhere() {
        use simclock::SimTime;
        let mut cfg = config(PolicyKind::Cblru);
        cfg.ttl = Some(SimDuration::from_millis(10));
        let mut m = CacheManager::<u64, _>::new(
            cfg,
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        );
        m.set_now(SimTime::ZERO);
        m.lookup_list(7, SB, 4 * SB, 0.5); // installs
        m.set_now(SimTime::from_nanos(5_000_000));
        let s = m.lookup_list(7, SB, 4 * SB, 0.5);
        assert_eq!(s.from_mem, SB, "fresh entry hits memory");
        m.set_now(SimTime::from_nanos(50_000_000));
        let s = m.lookup_list(7, SB, 4 * SB, 0.5);
        assert_eq!(s.from_hdd, SB, "stale entry forces an HDD read");
        let (_, (fresh, expired)) = m.ttl_stats();
        assert!(fresh >= 1);
        assert_eq!(expired, 1);
    }

    #[test]
    fn intersections_disabled_by_default() {
        let mut m = manager(PolicyKind::Cblru);
        assert!(!m.intersections_enabled());
        assert!(m.lookup_intersection((1, 2), 1000).is_none());
        m.install_intersection((1, 2), 1000); // silently ignored
        assert_eq!(m.stats().intersections.lookups(), 0);
    }

    #[test]
    fn intersection_flow_mem_then_ssd() {
        use crate::config::IntersectionConfig;
        let mut cfg = config(PolicyKind::Cblru);
        cfg.intersections = Some(IntersectionConfig {
            mem_bytes: 2 * SB,
            ssd_bytes: 8 * SB,
            pair_threshold: 2,
        });
        let mut m = CacheManager::<u64, _>::new(
            cfg,
            RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10)),
        );
        assert!(m.intersections_enabled());
        // Miss, then install, then memory hit.
        assert!(m.lookup_intersection((3, 9), SB).is_none());
        m.install_intersection((3, 9), SB);
        let s = m.lookup_intersection((3, 9), SB).expect("cached");
        assert_eq!(s.from_mem, SB);
        assert_eq!(m.stats().intersections.mem_hits, 1);
        // Push it out of memory: fill with hotter pairs (touched twice so
        // their EV beats the victim's inside the replace-first window).
        for pair in [(1u64, 2u64), (4, 5), (6, 7)] {
            m.install_intersection(pair, SB);
            m.lookup_intersection(pair, SB);
            m.lookup_intersection(pair, SB);
        }
        assert!(m.mem_xc.as_ref().expect("enabled").peek((3, 9)).is_none());
        let s = m.lookup_intersection((3, 9), SB).expect("on SSD");
        assert_eq!(s.from_ssd, SB);
        assert!(s.ssd_latency > SimDuration::ZERO);
        assert_eq!(m.stats().intersections.ssd_hits, 1);
        // Promoted back to memory by the hit.
        let s = m.lookup_intersection((3, 9), SB).expect("promoted");
        assert_eq!(s.from_mem, SB);
    }

    #[test]
    fn intersection_region_extends_ssd_footprint() {
        use crate::config::IntersectionConfig;
        let mut cfg = config(PolicyKind::Cblru);
        let base = cfg.ssd_sectors();
        cfg.intersections = Some(IntersectionConfig {
            mem_bytes: SB,
            ssd_bytes: 4 * SB,
            pair_threshold: 1,
        });
        assert_eq!(cfg.ssd_sectors(), base + 4 * 256);
    }

    #[test]
    fn static_scenario_never_expires() {
        use simclock::SimTime;
        let mut m = manager(PolicyKind::Cblru);
        m.set_now(SimTime::ZERO);
        m.lookup_result(1);
        m.complete_result(1, 7);
        m.set_now(SimTime::from_nanos(u64::MAX / 2));
        let (v, tier, _) = m.lookup_result(1);
        assert_eq!(v, Some(7));
        assert_eq!(tier, Tier::Mem);
        assert_eq!(m.ttl_stats(), ((0, 0), (0, 0)));
    }
}
