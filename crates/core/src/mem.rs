//! The first-level (memory) caches.
//!
//! * [`MemResultCache`] — fixed-size result entries under plain LRU in
//!   every policy ("when L1 RC is full, the cache manager will choose the
//!   victim result entries according to the LRU algorithm").
//! * [`MemListCache`] — variable-size inverted-list entries. Under the
//!   LRU baseline the victim is the strict LRU entry; under CBLRU/CBSLRU
//!   the victim is the **lowest-EV entry inside the replace-first
//!   region** (Fig. 12) — recency bounds the candidates, efficiency picks
//!   among them.

use core::fmt::Debug;
use fxmap::FxHashMap;
use std::hash::Hash;

use cachekit::{
    ByteBudget, LruCache, MaxScoreIndex, OrdF64, SegmentedLru, VictimSelection, WindowEvent,
};
use invariant::{audit, Report, Validate};

use crate::config::PolicyKind;
use crate::selection::{efficiency_value, sc_blocks};
use crate::{QueryId, TermKey};

/// An L1 result entry: payload plus access frequency (Fig. 6(a)'s
/// `<R, freq>` value).
#[derive(Debug, Clone)]
pub struct MemResult<V> {
    /// The result payload.
    pub value: V,
    /// Access count while cached.
    pub freq: u64,
}

/// The L1 result cache.
#[derive(Debug, Clone)]
pub struct MemResultCache<V> {
    cache: LruCache<QueryId, MemResult<V>>,
    entry_bytes: u64,
}

impl<V> MemResultCache<V> {
    /// Capacity in bytes; every entry costs `entry_bytes`.
    pub fn new(capacity_bytes: u64, entry_bytes: u64) -> Self {
        assert!(entry_bytes > 0);
        MemResultCache {
            cache: LruCache::new(capacity_bytes),
            entry_bytes,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Look up a result; a hit bumps recency and frequency.
    pub fn get(&mut self, id: QueryId) -> Option<&V> {
        let entry = self.cache.get_mut(&id)?;
        entry.freq += 1;
        Some(&entry.value)
    }

    /// Insert a fresh result with frequency 1; returns evicted entries
    /// (id, payload, freq), oldest first. A cache smaller than one entry
    /// "evicts" the insertion immediately — degenerate but legal in
    /// capacity sweeps that zero out L1.
    pub fn insert(&mut self, id: QueryId, value: V) -> Vec<(QueryId, V, u64)> {
        match self
            .cache
            .insert(id, MemResult { value, freq: 1 }, self.entry_bytes)
        {
            Ok(evicted) => evicted
                .into_iter()
                .map(|(k, r, _)| (k, r.value, r.freq))
                .collect(),
            Err(rejected) => vec![(id, rejected.value, rejected.freq)],
        }
    }

    /// Whether `id` is cached (no recency effect).
    pub fn contains(&self, id: QueryId) -> bool {
        self.cache.contains(&id)
    }

    /// Remove an entry outright (TTL expiry / invalidation), returning
    /// its payload.
    pub fn remove(&mut self, id: QueryId) -> Option<V> {
        self.cache.remove(&id).map(|r| r.value)
    }

    /// Hit statistics of the underlying cache.
    pub fn hit_stats(&self) -> (u64, u64) {
        self.cache.hit_stats()
    }
}

impl<V> Validate for MemResultCache<V> {
    /// The L1 result cache is a plain byte-budgeted LRU; its list/map/
    /// budget agreement is the underlying cache's invariant.
    fn validate(&self, report: &mut Report) {
        self.cache.validate(report);
    }
}

/// Metadata of a cached inverted list in memory (Fig. 6(b)'s
/// `<I, freq, size, PU>` value — the postings themselves live with the
/// engine, the cache tracks identity and accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListMeta {
    /// Used (cached-prefix) size `SI` in bytes.
    pub si_bytes: u64,
    /// Running mean utilization rate `PU` of the full list.
    pub pu: f64,
    /// Access count while cached.
    pub freq: u64,
    /// Full on-disk list size (needed by the LRU baseline, which caches
    /// whole lists on SSD).
    pub full_bytes: u64,
}

impl ListMeta {
    /// The entry's efficiency value with block size `sb`.
    pub fn ev(&self, sb: u64) -> f64 {
        efficiency_value(self.freq, sc_blocks(self.si_bytes, self.pu, sb))
    }
}

/// The L1 inverted-list cache, generic over the entry key (terms, or
/// term pairs for the intersection family).
#[derive(Debug, Clone)]
pub struct MemListCache<K: Eq + Hash + Copy + Debug = TermKey> {
    lru: SegmentedLru<K>,
    map: FxHashMap<K, ListMeta>,
    budget: ByteBudget,
    policy: PolicyKind,
    block_bytes: u64,
    /// Entries displaced by prefix growth inside [`MemListCache::touch`],
    /// awaiting collection by the manager's selection management.
    pending_evictions: Vec<(K, ListMeta)>,
    selection: VictimSelection,
    /// Window members indexed by negated EV (cost-based, indexed mode):
    /// `peek_best` answers "lowest EV in the replace-first region" without
    /// recomputing every member's EV per eviction.
    ev_index: MaxScoreIndex<K, OrdF64>,
    /// Scratch buffer for draining window-membership events.
    events: Vec<WindowEvent<K>>,
}

impl<K: Eq + Hash + Copy + Debug> MemListCache<K> {
    /// Capacity in bytes under `policy`, with replace-first window
    /// `window` and SSD block size `block_bytes` (for EV computation).
    pub fn new(capacity_bytes: u64, policy: PolicyKind, window: usize, block_bytes: u64) -> Self {
        let mut lru = SegmentedLru::new(window);
        let selection = VictimSelection::default();
        if selection == VictimSelection::Indexed && policy.is_cost_based() {
            lru.enable_window_events();
        }
        MemListCache {
            lru,
            map: FxHashMap::default(),
            budget: ByteBudget::new(capacity_bytes),
            policy,
            block_bytes,
            pending_evictions: Vec::new(),
            selection,
            ev_index: MaxScoreIndex::new(),
            events: Vec::new(),
        }
    }

    /// Switch between the reference scans and the indexed victim path
    /// (rebuilds the index on enable).
    pub fn set_victim_selection(&mut self, selection: VictimSelection) {
        if selection == self.selection {
            return;
        }
        self.selection = selection;
        self.ev_index.clear();
        match selection {
            VictimSelection::Indexed if self.policy.is_cost_based() => {
                self.lru.enable_window_events();
                let members: Vec<K> = self.lru.iter_replace_first().copied().collect();
                for t in members {
                    let stamp = self.lru.window_stamp(&t).expect("window member");
                    self.ev_index.insert(t, stamp, self.score(&t));
                }
            }
            _ => self.lru.disable_window_events(),
        }
        audit!(self, "MemListCache::set_victim_selection");
    }

    /// The active victim-selection mode.
    pub fn victim_selection(&self) -> VictimSelection {
        self.selection
    }

    /// Whether the incremental index is live.
    fn indexing(&self) -> bool {
        self.selection == VictimSelection::Indexed && self.policy.is_cost_based()
    }

    /// The index score of a cached entry: negated EV, because the index
    /// maximizes while Fig. 12 evicts the *lowest* EV.
    fn score(&self, term: &K) -> OrdF64 {
        OrdF64(-self.map[term].ev(self.block_bytes))
    }

    /// Mirror pending window-membership changes into the EV index.
    fn sync_index(&mut self) {
        if !self.indexing() {
            return;
        }
        self.lru.take_window_events(&mut self.events);
        let mut events = std::mem::take(&mut self.events);
        for ev in events.drain(..) {
            match ev {
                WindowEvent::Entered { key, stamp } => {
                    let score = self.score(&key);
                    self.ev_index.insert(key, stamp, score);
                }
                WindowEvent::Left { key } => self.ev_index.remove(&key),
            }
        }
        self.events = events;
    }

    /// Refresh a window member's score after its metadata changed.
    fn rescore(&mut self, term: &K) {
        if self.indexing() && self.lru.in_replace_first(term) {
            let score = self.score(term);
            self.ev_index.update_score(term, score);
        }
    }

    /// Take the entries displaced by prefix growth during recent
    /// [`MemListCache::touch`] calls; the caller owes them a selection
    /// decision exactly like insert-time evictions.
    pub fn drain_evicted(&mut self) -> Vec<(K, ListMeta)> {
        std::mem::take(&mut self.pending_evictions)
    }

    /// Entries cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.budget.used()
    }

    /// Metadata of a cached term (no recency effect).
    pub fn keys(&self) -> Vec<K> {
        self.map.keys().copied().collect()
    }

    /// The cached metadata of `term` without touching recency.
    pub fn peek(&self, term: K) -> Option<&ListMeta> {
        self.map.get(&term)
    }

    /// Hit path: bump recency + frequency, and grow the cached prefix /
    /// refresh PU if this access needed more of the list. Returns the
    /// (updated) metadata on hit.
    pub fn touch(&mut self, term: K, needed_bytes: u64, observed_pu: f64) -> Option<ListMeta> {
        if !self.lru.touch(&term) {
            return None;
        }
        self.sync_index();
        // Growing the prefix may exceed the budget; make room first.
        let meta = self.map[&term];
        let grow = needed_bytes.saturating_sub(meta.si_bytes);
        if grow > 0 {
            if !self.budget.admissible(meta.si_bytes + grow) {
                // Cannot ever hold the grown prefix: serve the hit but keep
                // the old footprint.
                let m = self.map.get_mut(&term).expect("touched");
                m.freq += 1;
                m.pu = running_pu(m.pu, m.freq, observed_pu);
                let out = *m;
                self.rescore(&term);
                audit!(self, "MemListCache::touch(capped)");
                return Some(out);
            }
            // Eviction of other entries to make room never selects `term`
            // itself; the displaced entries are parked for the manager to
            // flush (they deserve the same SM decision as insert-time
            // evictions).
            let evicted = self.make_room(grow, Some(term));
            self.pending_evictions.extend(evicted);
            self.budget.charge(grow);
        }
        let m = self.map.get_mut(&term).expect("touched");
        m.si_bytes = m.si_bytes.max(needed_bytes);
        m.freq += 1;
        m.pu = running_pu(m.pu, m.freq, observed_pu);
        let out = *m;
        self.rescore(&term);
        audit!(self, "MemListCache::touch");
        Some(out)
    }

    /// Insert a new list entry; returns evicted `(term, meta)` pairs,
    /// selection-order first. Entries larger than the whole cache are
    /// refused: the rejected metadata comes back as `Err` so the caller
    /// can flush it onward.
    pub fn insert(&mut self, term: K, meta: ListMeta) -> Result<Vec<(K, ListMeta)>, ListMeta> {
        assert!(
            !self.map.contains_key(&term),
            "insert of cached key {term:?}"
        );
        if !self.budget.admissible(meta.si_bytes) {
            return Err(meta);
        }
        let evicted = self.make_room(meta.si_bytes, None);
        self.budget.charge(meta.si_bytes);
        self.map.insert(term, meta);
        self.lru.insert_mru(term);
        self.sync_index();
        audit!(self, "MemListCache::insert");
        Ok(evicted)
    }

    /// Remove an entry outright (e.g. invalidation).
    pub fn remove(&mut self, term: K) -> Option<ListMeta> {
        let meta = self.map.remove(&term)?;
        self.lru.remove(&term);
        self.sync_index();
        self.budget.credit(meta.si_bytes);
        audit!(self, "MemListCache::remove");
        Some(meta)
    }

    /// Evict until `bytes` fit, excluding `keep` from victim selection.
    fn make_room(&mut self, bytes: u64, keep: Option<K>) -> Vec<(K, ListMeta)> {
        let mut evicted = Vec::new();
        while !self.budget.fits(bytes) {
            let victim = self
                .pick_victim(keep)
                .expect("budget full but no evictable entry");
            let meta = self.map.remove(&victim).expect("victim is cached");
            self.lru.remove(&victim);
            self.sync_index();
            self.budget.credit(meta.si_bytes);
            evicted.push((victim, meta));
        }
        evicted
    }

    /// Victim selection per policy. `pick_victim_scan` is the seed's
    /// reference implementation; the indexed path must choose the exact
    /// same entry (see `tests/victim_equivalence.rs`).
    fn pick_victim(&self, keep: Option<K>) -> Option<K> {
        if self.selection == VictimSelection::Scan {
            return self.pick_victim_scan(keep);
        }
        if self.policy.is_cost_based() {
            // Lowest EV inside the replace-first region (Fig. 12): the
            // index keeps members ordered by negated EV, ties to LRU-most.
            self.ev_index
                .peek_best(keep.as_ref())
                .copied()
                // All-window-excluded corner: fall back to strict LRU.
                .or_else(|| self.lru.lru_most_excluding(keep.as_ref()).copied())
        } else {
            self.lru.lru_most_excluding(keep.as_ref()).copied()
        }
    }

    /// The seed's scan-based victim selection, kept as the reference.
    fn pick_victim_scan(&self, keep: Option<K>) -> Option<K> {
        let excluded = |t: &K| Some(*t) == keep;
        if self.policy.is_cost_based() {
            // Lowest EV inside the replace-first region (Fig. 12). The
            // score is negated EV because the primitive maximizes.
            let block = self.block_bytes;
            let candidate = self
                .lru
                .best_in_replace_first(|t| {
                    if excluded(t) {
                        f64::NEG_INFINITY
                    } else {
                        -self.map[t].ev(block)
                    }
                })
                .copied();
            // All-window-excluded corner: fall back to strict LRU scan.
            candidate
                .filter(|t| !excluded(t))
                .or_else(|| self.lru.find_anywhere(|t| !excluded(t)).copied())
        } else {
            self.lru.find_anywhere(|t| !excluded(t)).copied()
        }
    }
}

impl<K: Eq + Hash + Copy + Debug> Validate for MemListCache<K> {
    /// Re-derives the L1 list cache's bookkeeping (paper Fig. 6(b) and
    /// Fig. 12) and cross-checks it: the recency list and metadata table
    /// hold the same terms, the byte budget equals the sum of cached
    /// prefixes, and the EV victim index mirrors the replace-first window
    /// with scores recomputed from first principles.
    fn validate(&self, report: &mut Report) {
        const S: &str = "MemListCache";
        self.lru.validate(report);
        self.ev_index.validate(report);

        report.check(self.lru.len() == self.map.len(), S, "lru-map-agree", || {
            format!(
                "recency list tracks {} terms, metadata table {}",
                self.lru.len(),
                self.map.len()
            )
        });
        for term in self.lru.iter_lru() {
            report.check(self.map.contains_key(term), S, "lru-map-agree", || {
                format!("{term:?} is on the recency list but has no metadata")
            });
        }
        let stored: u64 = self.map.values().map(|m| m.si_bytes).sum();
        report.check(stored == self.budget.used(), S, "budget-accounting", || {
            format!(
                "cached prefixes sum to {stored} bytes but the budget charges {}",
                self.budget.used()
            )
        });
        report.check(
            self.budget.used() <= self.budget.capacity(),
            S,
            "budget-capacity",
            || {
                format!(
                    "{} bytes charged against a capacity of {}",
                    self.budget.used(),
                    self.budget.capacity()
                )
            },
        );

        if self.indexing() {
            let members: Vec<K> = self.lru.iter_replace_first().copied().collect();
            report.check(
                self.ev_index.len() == members.len(),
                S,
                "ev-index-window",
                || {
                    format!(
                        "EV index holds {} members, the window {}",
                        self.ev_index.len(),
                        members.len()
                    )
                },
            );
            for term in members {
                let stamp = self.lru.window_stamp(&term);
                let expected = self
                    .map
                    .get(&term)
                    .map(|m| OrdF64(-m.ev(self.block_bytes)))
                    .zip(stamp);
                let indexed = self.ev_index.entry(&term);
                report.check(indexed == expected, S, "ev-index-window", || {
                    format!(
                        "window entry {term:?} EV-indexed as {indexed:?}, expected {expected:?}"
                    )
                });
            }
        } else {
            report.check(self.ev_index.is_empty(), S, "ev-index-window", || {
                format!(
                    "EV index holds {} members while disabled",
                    self.ev_index.len()
                )
            });
        }
    }
}

/// Running mean of PU over the entry's accesses.
fn running_pu(old: f64, new_freq: u64, observed: f64) -> f64 {
    debug_assert!(new_freq >= 1);
    old + (observed - old) / new_freq as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const SB: u64 = 128 * 1024;

    fn meta(si: u64, pu: f64, freq: u64) -> ListMeta {
        ListMeta {
            si_bytes: si,
            pu,
            freq,
            full_bytes: si * 2,
        }
    }

    mod result_cache {
        use super::super::*;

        #[test]
        fn insert_and_evict_lru_order() {
            let mut c: MemResultCache<&str> = MemResultCache::new(40_000, 20_000);
            assert!(c.insert(1, "a").is_empty());
            assert!(c.insert(2, "b").is_empty());
            let ev = c.insert(3, "c");
            assert_eq!(ev.len(), 1);
            assert_eq!(ev[0].0, 1);
            assert_eq!(ev[0].1, "a");
            assert_eq!(ev[0].2, 1, "frequency travels with the eviction");
            assert!(c.contains(3));
        }

        #[test]
        fn get_bumps_frequency_and_recency() {
            let mut c: MemResultCache<&str> = MemResultCache::new(40_000, 20_000);
            c.insert(1, "a");
            c.insert(2, "b");
            assert_eq!(c.get(1), Some(&"a")); // freq 2, now MRU
            assert_eq!(c.get(9), None);
            let ev = c.insert(3, "c");
            assert_eq!(ev[0].0, 2, "2 is now the LRU entry");
            let ev = c.insert(4, "d");
            assert_eq!(ev[0].0, 1);
            assert_eq!(ev[0].2, 2, "the get was counted");
        }

        #[test]
        fn contains_and_len() {
            let mut c: MemResultCache<u8> = MemResultCache::new(100_000, 20_000);
            c.insert(7, 0);
            assert!(c.contains(7));
            assert!(!c.contains(8));
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn list_insert_within_budget() {
        let mut c = MemListCache::new(10 * SB, PolicyKind::Cblru, 2, SB);
        assert!(c.insert(1, meta(3 * SB, 0.5, 1)).unwrap().is_empty());
        assert_eq!(c.used_bytes(), 3 * SB);
        assert_eq!(c.peek(1).unwrap().si_bytes, 3 * SB);
    }

    #[test]
    fn oversized_list_refused() {
        let mut c = MemListCache::new(SB, PolicyKind::Cblru, 2, SB);
        assert!(c.insert(1, meta(2 * SB, 0.5, 1)).is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn lru_policy_evicts_strictly_by_recency() {
        let mut c = MemListCache::new(3 * SB, PolicyKind::Lru, 2, SB);
        c.insert(1, meta(SB, 1.0, 100)).unwrap(); // hot but old
        c.insert(2, meta(SB, 1.0, 1)).unwrap();
        c.insert(3, meta(SB, 1.0, 1)).unwrap();
        let ev = c.insert(4, meta(SB, 1.0, 1)).unwrap();
        assert_eq!(ev[0].0, 1, "LRU ignores frequency");
    }

    #[test]
    fn cost_based_policy_evicts_lowest_ev_in_window() {
        let mut c = MemListCache::new(3 * SB, PolicyKind::Cblru, 2, SB);
        // LRU order will be: 1 (LRU), 2, 3 (MRU). Window = {1, 2}.
        c.insert(1, meta(SB, 1.0, 100)).unwrap(); // EV = 100
        c.insert(2, meta(SB, 1.0, 5)).unwrap(); // EV = 5  <- victim
        c.insert(3, meta(SB, 1.0, 1)).unwrap(); // outside window
        let ev = c.insert(4, meta(SB, 1.0, 50)).unwrap();
        assert_eq!(ev[0].0, 2, "lowest EV inside the window loses");
        assert!(
            c.peek(1).is_some(),
            "high-EV entry survives despite being LRU"
        );
    }

    #[test]
    fn ev_accounts_for_size() {
        let mut c = MemListCache::new(9 * SB, PolicyKind::Cblru, 3, SB);
        // Same freq: the bigger entry has lower EV.
        c.insert(1, meta(4 * SB, 1.0, 10)).unwrap(); // EV = 2.5
        c.insert(2, meta(SB, 1.0, 10)).unwrap(); // EV = 10
        c.insert(3, meta(2 * SB, 1.0, 10)).unwrap(); // EV = 5
        let ev = c.insert(4, meta(3 * SB, 1.0, 10)).unwrap();
        assert_eq!(ev[0].0, 1, "biggest same-freq entry evicted first");
    }

    #[test]
    fn touch_bumps_freq_and_moves_out_of_window() {
        let mut c = MemListCache::new(3 * SB, PolicyKind::Cblru, 2, SB);
        c.insert(1, meta(SB, 0.5, 1)).unwrap();
        c.insert(2, meta(SB, 0.5, 1)).unwrap();
        c.insert(3, meta(SB, 0.5, 1)).unwrap();
        let m = c.touch(1, SB, 0.7).expect("hit");
        assert_eq!(m.freq, 2);
        assert!((m.pu - 0.6).abs() < 1e-12, "running mean of PU");
        // 1 is now MRU; inserting evicts from {2, 3} (the window), not 1.
        let ev = c.insert(4, meta(SB, 0.5, 1)).unwrap();
        assert_ne!(ev[0].0, 1);
    }

    #[test]
    fn touch_grows_prefix_and_budget() {
        let mut c = MemListCache::new(4 * SB, PolicyKind::Cblru, 2, SB);
        c.insert(1, meta(SB, 0.25, 1)).unwrap();
        let m = c.touch(1, 2 * SB, 0.5).expect("hit");
        assert_eq!(m.si_bytes, 2 * SB);
        assert_eq!(c.used_bytes(), 2 * SB);
        // A shorter access never shrinks the prefix.
        let m = c.touch(1, SB / 2, 0.5).expect("hit");
        assert_eq!(m.si_bytes, 2 * SB);
    }

    #[test]
    fn touch_growth_evicts_others_not_self() {
        let mut c = MemListCache::new(3 * SB, PolicyKind::Cblru, 3, SB);
        c.insert(1, meta(SB, 1.0, 1)).unwrap();
        c.insert(2, meta(SB, 1.0, 1)).unwrap();
        c.insert(3, meta(SB, 1.0, 1)).unwrap();
        // Growing 1 by a block must evict 2 or 3, never 1.
        let m = c.touch(1, 2 * SB, 1.0).expect("hit");
        assert_eq!(m.si_bytes, 2 * SB);
        assert!(c.peek(1).is_some());
        assert_eq!(c.len(), 2);
        assert!(c.used_bytes() <= 3 * SB);
    }

    #[test]
    fn miss_returns_none() {
        let mut c = MemListCache::new(SB, PolicyKind::Lru, 2, SB);
        assert!(c.touch(9, 100, 0.5).is_none());
    }

    #[test]
    fn remove_credits_budget() {
        let mut c = MemListCache::new(4 * SB, PolicyKind::Cblru, 2, SB);
        c.insert(1, meta(2 * SB, 0.5, 3)).unwrap();
        let m = c.remove(1).expect("present");
        assert_eq!(m.freq, 3);
        assert_eq!(c.used_bytes(), 0);
        assert!(c.remove(1).is_none());
    }

    #[test]
    fn evictions_carry_updated_meta() {
        let mut c = MemListCache::new(2 * SB, PolicyKind::Cblru, 2, SB);
        c.insert(1, meta(SB, 0.5, 1)).unwrap();
        c.touch(1, SB, 0.9);
        c.insert(2, meta(SB, 0.5, 1)).unwrap();
        let ev = c.insert(3, meta(2 * SB, 0.5, 1)).unwrap();
        let one = ev.iter().find(|(t, _)| *t == 1).expect("1 evicted");
        assert_eq!(one.1.freq, 2, "evicted meta reflects the touch");
    }
}
