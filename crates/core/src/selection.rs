//! Data selection: the paper's Formulas 1 and 2.

/// Formula 1 — the number of SSD blocks a flushed inverted list occupies:
/// `SC = ceil(SI · PU / SB)` where `SI` is the used in-memory size, `PU`
/// the utilization rate, `SB` the SSD block size.
///
/// The paper's worked example: `SI = 1000 KB, PU = 50 % → SC = 4`
/// (512 KB with `SB = 128 KB`).
pub fn sc_blocks(si_bytes: u64, pu: f64, sb_bytes: u64) -> u64 {
    assert!(sb_bytes > 0, "block size must be positive");
    assert!((0.0..=1.0).contains(&pu), "PU must be a rate, got {pu}");
    let useful = (si_bytes as f64 * pu).ceil() as u64;
    useful
        .div_ceil(sb_bytes)
        .max(if si_bytes > 0 { 1 } else { 0 })
}

/// Formula 1, in bytes: the cached size is an integral number of blocks
/// ("all the cached data are of integral blocks (128·N KB)").
pub fn sc_bytes(si_bytes: u64, pu: f64, sb_bytes: u64) -> u64 {
    sc_blocks(si_bytes, pu, sb_bytes) * sb_bytes
}

/// Formula 2 — the efficiency value of a cached inverted list:
/// `EV = Freq / SC`, directly proportional to access frequency and
/// inversely proportional to cached size (in blocks).
pub fn efficiency_value(freq: u64, sc_blocks: u64) -> f64 {
    if sc_blocks == 0 {
        return 0.0;
    }
    freq as f64 / sc_blocks as f64
}

/// The admission decision for an evicted inverted list: flush to SSD only
/// when its efficiency value clears `TEV` ("if the efficiency value of an
/// inverted list is less than a specified threshold, it will be discarded
/// directly, rather than flushed to SSD").
pub fn admit_list(freq: u64, sc: u64, tev: f64) -> bool {
    efficiency_value(freq, sc) >= tev
}

#[cfg(test)]
mod tests {
    use super::*;

    const SB: u64 = 128 * 1024;

    #[test]
    fn paper_worked_example() {
        // SI = 1000 KB, PU = 50% -> SC = 4 blocks = 512 KB.
        assert_eq!(sc_blocks(1000 * 1024, 0.5, SB), 4);
        assert_eq!(sc_bytes(1000 * 1024, 0.5, SB), 512 * 1024);
    }

    #[test]
    fn sc_rounds_up() {
        assert_eq!(sc_blocks(SB + 1, 1.0, SB), 2);
        assert_eq!(sc_blocks(SB, 1.0, SB), 1);
        assert_eq!(sc_blocks(1, 1.0, SB), 1, "any used data takes a block");
        assert_eq!(sc_blocks(1, 0.001, SB), 1);
    }

    #[test]
    fn sc_of_empty_list_is_zero() {
        assert_eq!(sc_blocks(0, 1.0, SB), 0);
        assert_eq!(sc_bytes(0, 0.5, SB), 0);
    }

    #[test]
    fn sc_scales_with_utilization() {
        let si = 10 * SB;
        assert_eq!(sc_blocks(si, 1.0, SB), 10);
        assert_eq!(sc_blocks(si, 0.5, SB), 5);
        assert_eq!(sc_blocks(si, 0.05, SB), 1);
    }

    #[test]
    fn ev_is_freq_over_blocks() {
        assert!((efficiency_value(100, 4) - 25.0).abs() < 1e-12);
        assert!((efficiency_value(7, 1) - 7.0).abs() < 1e-12);
        assert_eq!(efficiency_value(7, 0), 0.0);
    }

    #[test]
    fn admission_threshold() {
        // EV = 10/4 = 2.5
        assert!(admit_list(10, 4, 2.5));
        assert!(admit_list(10, 4, 2.0));
        assert!(!admit_list(10, 4, 2.6));
        // TEV = 0 admits everything with any frequency.
        assert!(admit_list(0, 4, 0.0));
    }

    #[test]
    fn ev_prefers_small_hot_lists() {
        // Same frequency: the smaller list is more efficient.
        assert!(efficiency_value(50, 1) > efficiency_value(50, 8));
        // Same size: the hotter list is more efficient.
        assert!(efficiency_value(50, 4) > efficiency_value(10, 4));
    }

    #[test]
    #[should_panic(expected = "PU must be a rate")]
    fn pu_out_of_range_panics() {
        sc_blocks(100, 1.5, SB);
    }
}
