//! The L2 inverted-list cache ("L2 IC"): block-granular list entries on
//! the SSD.
//!
//! Entries are whole numbers of 128 KB blocks (Formula 1's `SC`), written
//! as full-block requests. Replacement follows Fig. 13's cascade: first
//! **replaceable** entries in the replace-first region, then a
//! **same-size** normal entry there, then **assembly** of several
//! region entries, and in the worst case a scan of the whole LRU list.
//! The LRU baseline replaces the strict LRU entry and caches *full*
//! lists rather than the utilized prefix.

use fxmap::FxHashMap;

use cachekit::{OrderIndex, SegmentedLru, SizeClassIndex, VictimSelection, WindowEvent};
use invariant::{audit, Report, Validate};
use simclock::SimDuration;
use storagecore::BlockDevice;

use core::fmt::Debug;
use std::hash::Hash;

use crate::ssd::slots::{SlotId, SlotRegion};
use crate::ssd::EntryState;
use crate::TermKey;

/// A cached list entry: Fig. 7(c)'s `<ptr, freq, size>` value (the ptr is
/// the block set).
#[derive(Debug, Clone)]
struct ListEntry {
    blocks: Vec<SlotId>,
    cached_bytes: u64,
    freq: u64,
    state: EntryState,
    is_static: bool,
}

/// Store-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ListStoreStats {
    /// Block writes issued.
    pub block_writes: u64,
    /// Rewrites avoided via a still-valid replaceable copy.
    pub rewrites_avoided: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Victims taken from the replaceable pool (cascade step 1).
    pub replaceable_victims: u64,
    /// Victims chosen by exact size match (cascade step 2).
    pub size_match_victims: u64,
    /// Entries rejected because they exceed the region.
    pub oversize_rejections: u64,
    /// Trims issued on invalidation.
    pub trims: u64,
}

/// The SSD inverted-list store, generic over the entry key: `TermKey`
/// for inverted lists, a term pair for the three-level intersection cache.
#[derive(Debug, Clone)]
pub struct ListStore<K: Eq + Hash + Copy + Debug = TermKey> {
    region: SlotRegion,
    block_bytes: u64,
    cost_based: bool,
    entries: FxHashMap<K, ListEntry>,
    lru: SegmentedLru<K>,
    /// Blocks reserved for the static partition (consumed as seeded).
    static_blocks: u32,
    static_used: u32,
    stats: ListStoreStats,
    selection: VictimSelection,
    /// Replaceable window members, LRU-first (cascade step 1).
    repl_idx: OrderIndex<K>,
    /// All window members bucketed by block count (cascade step 2).
    size_idx: SizeClassIndex<K>,
    /// Scratch buffer for draining window-membership events.
    events: Vec<WindowEvent<K>>,
}

impl<K: Eq + Hash + Copy + Debug> ListStore<K> {
    /// Create over `region` (one slot = one `block_bytes` block).
    pub fn new(
        region: SlotRegion,
        block_bytes: u64,
        cost_based: bool,
        window: usize,
        static_fraction: f64,
    ) -> Self {
        let static_blocks = (region.capacity() as f64 * static_fraction).floor() as u32;
        let mut lru = SegmentedLru::new(window);
        let selection = VictimSelection::default();
        if selection == VictimSelection::Indexed && cost_based {
            lru.enable_window_events();
        }
        ListStore {
            region,
            block_bytes,
            cost_based,
            entries: FxHashMap::default(),
            lru,
            static_blocks,
            static_used: 0,
            stats: ListStoreStats::default(),
            selection,
            repl_idx: OrderIndex::new(),
            size_idx: SizeClassIndex::new(),
            events: Vec::new(),
        }
    }

    /// Switch between the reference scans and the indexed victim path
    /// (rebuilds the indexes on enable).
    pub fn set_victim_selection(&mut self, selection: VictimSelection) {
        if selection == self.selection {
            return;
        }
        self.selection = selection;
        self.repl_idx.clear();
        self.size_idx.clear();
        match selection {
            VictimSelection::Indexed if self.cost_based => {
                self.lru.enable_window_events();
                let members: Vec<K> = self.lru.iter_replace_first().copied().collect();
                for t in members {
                    let stamp = self.lru.window_stamp(&t).expect("window member");
                    let e = &self.entries[&t];
                    self.size_idx.insert(t, stamp, e.blocks.len() as u64);
                    if e.state == EntryState::Replaceable {
                        self.repl_idx.insert(t, stamp);
                    }
                }
            }
            _ => self.lru.disable_window_events(),
        }
        audit!(self, "ListStore::set_victim_selection");
    }

    /// The active victim-selection mode.
    pub fn victim_selection(&self) -> VictimSelection {
        self.selection
    }

    /// Whether the incremental indexes are live.
    fn indexing(&self) -> bool {
        self.selection == VictimSelection::Indexed && self.cost_based
    }

    /// Mirror pending window-membership changes into the cascade indexes.
    /// Entry state is read at application time, so callers must update an
    /// entry's state *before* the LRU operation that re-stamps it.
    fn sync_index(&mut self) {
        if !self.indexing() {
            return;
        }
        self.lru.take_window_events(&mut self.events);
        let mut events = std::mem::take(&mut self.events);
        for ev in events.drain(..) {
            match ev {
                WindowEvent::Entered { key, stamp } => {
                    let e = &self.entries[&key];
                    let size = e.blocks.len() as u64;
                    let replaceable = e.state == EntryState::Replaceable;
                    self.size_idx.insert(key, stamp, size);
                    if replaceable {
                        self.repl_idx.insert(key, stamp);
                    }
                }
                WindowEvent::Left { key } => {
                    self.size_idx.remove(&key);
                    self.repl_idx.remove(&key);
                }
            }
        }
        self.events = events;
    }

    /// Store counters.
    pub fn stats(&self) -> ListStoreStats {
        self.stats
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `term` is cached, and how many bytes of it.
    pub fn cached_bytes(&self, term: K) -> Option<u64> {
        self.entries.get(&term).map(|e| e.cached_bytes)
    }

    /// Every cached key, in no particular order.
    pub fn keys(&self) -> Vec<K> {
        self.entries.keys().copied().collect()
    }

    /// The `(cached_bytes, freq)` profile of a cached entry.
    pub fn entry_profile(&self, term: K) -> Option<(u64, u64)> {
        self.entries.get(&term).map(|e| (e.cached_bytes, e.freq))
    }

    /// Blocks currently unallocated in the dynamic partition.
    fn dynamic_free(&self) -> u32 {
        self.region
            .free_count()
            .saturating_sub(self.static_blocks.saturating_sub(self.static_used))
    }

    /// Serve a hit: read `min(needed, cached)` bytes off the entry's
    /// blocks; under the hybrid scheme the entry turns replaceable (it
    /// now also lives in memory). Returns (bytes served, latency).
    pub fn lookup<D: BlockDevice>(
        &mut self,
        term: K,
        needed_bytes: u64,
        device: &mut D,
        mark_replaceable: bool,
    ) -> Option<(u64, SimDuration)> {
        self.lookup_offload(term, needed_bytes, device, mark_replaceable, None)
    }

    /// Whether pushing the predicate down pays for one block read: the
    /// offload moves `take + descriptor` bytes across the bus where a
    /// plain read moves `take` rounded up to whole device pages. A full
    /// 128 KB block is page-aligned, so the descriptor can only lose
    /// there; the win lives in each lookup's final partial block.
    fn offload_pays<D: BlockDevice>(take: u64, device: &D) -> bool {
        if !device.supports_offload() {
            return false;
        }
        let page = device.offload_page_bytes().max(1);
        let page_rounded = take.div_ceil(page) * page;
        take + storagecore::OFFLOAD_DESCRIPTOR_BYTES < page_rounded
    }

    /// [`ListStore::lookup`] with an optional in-flash predicate
    /// template. For each block read where the cost rule says the
    /// descriptor pays, the template's scan/emit counts are filled in
    /// (the compute unit streams whole pages; the served prefix is what
    /// comes back) and the read goes down the queued request path with
    /// the descriptor attached; other blocks stay plain reads.
    pub fn lookup_offload<D: BlockDevice>(
        &mut self,
        term: K,
        needed_bytes: u64,
        device: &mut D,
        mark_replaceable: bool,
        offload: Option<storagecore::OffloadDescriptor>,
    ) -> Option<(u64, SimDuration)> {
        let entry = self.entries.get_mut(&term)?;
        let served = needed_bytes.min(entry.cached_bytes);
        let mut latency = SimDuration::ZERO;
        let mut remaining = served;
        for &block in &entry.blocks {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(self.block_bytes);
            let extent = self.region.sub_extent(block, 0, take);
            latency += match offload {
                Some(template) if Self::offload_pays(take, device) => {
                    let entry_bytes = template.entry_bytes.max(1) as u64;
                    let page = device.offload_page_bytes().max(1);
                    let scanned_bytes = take.div_ceil(page) * page;
                    let desc = template.with_counts(
                        (scanned_bytes / entry_bytes) as u32,
                        (take.div_ceil(entry_bytes)) as u32,
                    );
                    device
                        .request(&storagecore::IoRequest::read(extent).with_offload(desc))
                        .expect("list extent is in-region")
                }
                _ => device.read(extent).expect("list extent is in-region"),
            };
            remaining -= take;
        }
        if mark_replaceable && !entry.is_static {
            entry.state = EntryState::Replaceable;
        }
        let is_static = entry.is_static;
        entry.freq += 1;
        if !is_static {
            self.lru.touch(&term);
            self.sync_index();
        }
        audit!(self, "ListStore::lookup");
        Some((served, latency))
    }

    /// Accept a list evicted from memory: `blocks_needed` blocks covering
    /// `cached_bytes` of useful prefix. Admission (TEV) is the manager's
    /// decision. Returns `(cached, latency)` — `cached == false` when the
    /// entry cannot fit the region.
    pub fn offer<D: BlockDevice>(
        &mut self,
        term: K,
        blocks_needed: u64,
        cached_bytes: u64,
        freq: u64,
        device: &mut D,
    ) -> (bool, SimDuration) {
        debug_assert!(blocks_needed > 0);
        debug_assert!(cached_bytes <= blocks_needed * self.block_bytes);
        // Dedup: the same term's replaceable copy still covers this data —
        // flip it back to normal, no write.
        if let Some(entry) = self.entries.get_mut(&term) {
            if entry.blocks.len() as u64 >= blocks_needed {
                entry.state = EntryState::Normal;
                entry.freq = entry.freq.max(freq);
                entry.cached_bytes = entry.cached_bytes.max(cached_bytes);
                self.stats.rewrites_avoided += 1;
                if !entry.is_static {
                    self.lru.touch(&term);
                    self.sync_index();
                }
                audit!(self, "ListStore::offer(dedup)");
                return (false, SimDuration::ZERO);
            }
            // The new prefix is bigger: drop the stale copy and rewrite.
            self.evict(term);
        }
        let dynamic_capacity = self.region.capacity() - self.static_blocks;
        if blocks_needed > dynamic_capacity as u64 {
            self.stats.oversize_rejections += 1;
            return (false, SimDuration::ZERO);
        }
        // Make room.
        while (self.dynamic_free() as u64) < blocks_needed {
            let victim = self
                .pick_victim(blocks_needed)
                .expect("capacity checked, so some entry must be evictable");
            self.evict(victim);
        }
        // Allocate and write whole blocks.
        let mut blocks = Vec::with_capacity(blocks_needed as usize);
        let mut latency = SimDuration::ZERO;
        for _ in 0..blocks_needed {
            let slot = self.region.alloc().expect("room was made");
            latency += device
                .write(self.region.extent(slot))
                .expect("block extent is in-region");
            self.stats.block_writes += 1;
            blocks.push(slot);
        }
        self.entries.insert(
            term,
            ListEntry {
                blocks,
                cached_bytes,
                freq,
                state: EntryState::Normal,
                is_static: false,
            },
        );
        self.lru.insert_mru(term);
        self.sync_index();
        audit!(self, "ListStore::offer(write)");
        (true, latency)
    }

    /// Fig. 13's victim cascade. `pick_victim_scan` is the seed's
    /// reference implementation; the indexed path must choose the exact
    /// same entry (see `tests/victim_equivalence.rs`).
    fn pick_victim(&self, blocks_needed: u64) -> Option<K> {
        if self.selection == VictimSelection::Scan {
            return self.pick_victim_scan(blocks_needed);
        }
        if !self.cost_based {
            return self.lru.peek_lru().copied();
        }
        // 1. LRU-most replaceable window entry.
        if let Some(t) = self.repl_idx.first() {
            return Some(*t);
        }
        // 2. LRU-most same-size window entry (no replaceable member
        //    exists when this step runs, so "normal" needs no filter).
        if let Some(t) = self.size_idx.first_of(blocks_needed) {
            return Some(*t);
        }
        // 3+4. Assembly / whole-list fallback: both reduce to the strict
        //      LRU entry — the window is the LRU tail, so its LRU-most
        //      member *is* the list's LRU entry whenever the window is
        //      non-empty, and the whole-list scan starts there anyway.
        self.lru.peek_lru().copied()
    }

    /// The seed's scan-based victim cascade, kept as the reference.
    fn pick_victim_scan(&self, blocks_needed: u64) -> Option<K> {
        if !self.cost_based {
            return self.lru.find_anywhere(|_| true).copied();
        }
        // 1. Replaceable entry in the replace-first region.
        if let Some(t) = self
            .lru
            .find_in_replace_first(|t| self.entries[t].state == EntryState::Replaceable)
        {
            return Some(*t);
        }
        // 2. Same-size normal entry in the replace-first region.
        if let Some(t) = self
            .lru
            .find_in_replace_first(|t| self.entries[t].blocks.len() as u64 == blocks_needed)
        {
            return Some(*t);
        }
        // 3. Assembly: take replace-first entries LRU-first (the caller
        //    loops until enough blocks are free).
        if let Some(t) = self.lru.find_in_replace_first(|_| true) {
            return Some(*t);
        }
        // 4. Worst case: anywhere in the list.
        self.lru.find_anywhere(|_| true).copied()
    }

    /// Evict one entry, releasing its blocks (no trim: the blocks are
    /// about to be overwritten).
    fn evict(&mut self, term: K) {
        let entry = self.entries.remove(&term).expect("victim exists");
        debug_assert!(!entry.is_static, "static entries are never evicted");
        match entry.state {
            EntryState::Replaceable => self.stats.replaceable_victims += 1,
            EntryState::Normal => {
                if self.cost_based && self.lru.in_replace_first(&term) {
                    // Counted as a size-match or assembly victim; the
                    // distinction is which cascade step chose it — recorded
                    // by the caller via pick order. Size-match bookkeeping:
                    self.stats.size_match_victims += 1;
                }
            }
        }
        for block in entry.blocks {
            self.region.release(block);
        }
        self.lru.remove(&term);
        self.sync_index();
        self.stats.evictions += 1;
    }

    /// Remove an entry outright, trimming its blocks ("it's better to
    /// delete the cold data at a proper time … some types of SSD support
    /// Trim").
    pub fn invalidate<D: BlockDevice>(&mut self, term: K, device: &mut D) -> SimDuration {
        let Some(entry) = self.entries.remove(&term) else {
            return SimDuration::ZERO;
        };
        let mut latency = SimDuration::ZERO;
        for block in entry.blocks {
            latency += device
                .trim(self.region.extent(block))
                .expect("block extent is in-region");
            self.stats.trims += 1;
            self.region.release(block);
        }
        if entry.is_static {
            self.static_used -= entry.cached_bytes.div_ceil(self.block_bytes) as u32;
        }
        self.lru.remove(&term);
        self.sync_index();
        audit!(self, "ListStore::invalidate");
        latency
    }

    /// Seed the CBSLRU static partition with the most efficient lists
    /// (term, blocks, covered bytes, freq), best first. Stops when the
    /// static budget is exhausted. Returns the write latency.
    pub fn seed_static<D: BlockDevice>(
        &mut self,
        lists: Vec<(K, u64, u64, u64)>,
        device: &mut D,
    ) -> SimDuration {
        let mut latency = SimDuration::ZERO;
        for (term, blocks_needed, cached_bytes, freq) in lists {
            if self.static_used + blocks_needed as u32 > self.static_blocks {
                continue;
            }
            if self.entries.contains_key(&term) {
                continue;
            }
            let mut blocks = Vec::with_capacity(blocks_needed as usize);
            for _ in 0..blocks_needed {
                let slot = self.region.alloc().expect("static budget fits the region");
                latency += device
                    .write(self.region.extent(slot))
                    .expect("block extent is in-region");
                self.stats.block_writes += 1;
                blocks.push(slot);
            }
            self.static_used += blocks_needed as u32;
            self.entries.insert(
                term,
                ListEntry {
                    blocks,
                    cached_bytes,
                    freq,
                    state: EntryState::Normal,
                    is_static: true,
                },
            );
        }
        audit!(self, "ListStore::seed_static");
        latency
    }

    /// Test hook: force `term`'s entry state, bypassing the hit-path
    /// guards — forcing a *static* entry replaceable reproduces the
    /// out-of-order free → normal → replaceable transition the
    /// `state-machine` validator exists to catch (pinned entries never
    /// leave Normal).
    #[doc(hidden)]
    pub fn debug_force_state(&mut self, term: K, state: EntryState) {
        self.entries.get_mut(&term).expect("entry cached").state = state;
    }
}

impl<K: Eq + Hash + Copy + Debug> Validate for ListStore<K> {
    /// Re-derives the list store's redundant bookkeeping (paper Sec.
    /// VI-B/C, Figs. 7(c) and 13) and cross-checks it:
    ///
    /// * the entry table, the recency list and the block allocator agree
    ///   (every cached block belongs to exactly one entry, every entry's
    ///   blocks are allocated region slots);
    /// * entries cover whole 128 KB blocks — `cached_bytes` never exceeds
    ///   the blocks that were written for it;
    /// * static (pinned) entries never leave Normal and stay within the
    ///   static block budget;
    /// * the replaceable-order and size-class victim indexes mirror the
    ///   replace-first window exactly.
    fn validate(&self, report: &mut Report) {
        const S: &str = "ListStore";
        self.region.validate(report);
        self.lru.validate(report);
        self.repl_idx.validate(report);
        self.size_idx.validate(report);

        let mut used_blocks = 0usize;
        let mut block_owners = FxHashMap::default();
        let mut static_used = 0u64;
        for (&term, entry) in &self.entries {
            report.check(!entry.blocks.is_empty(), S, "block-accounting", || {
                format!("entry {term:?} is cached with zero blocks")
            });
            report.check(
                entry.cached_bytes <= entry.blocks.len() as u64 * self.block_bytes,
                S,
                "block-alignment",
                || {
                    format!(
                        "entry {term:?} claims {} cached bytes over {} whole blocks",
                        entry.cached_bytes,
                        entry.blocks.len()
                    )
                },
            );
            for &block in &entry.blocks {
                used_blocks += 1;
                report.check(
                    block < self.region.capacity() && !self.region.is_free(block),
                    S,
                    "block-accounting",
                    || format!("entry {term:?} holds unallocated block {block}"),
                );
                if let Some(other) = block_owners.insert(block, term) {
                    report.violation(
                        S,
                        "block-accounting",
                        format!("block {block} is owned by both {other:?} and {term:?}"),
                    );
                }
            }
            if entry.is_static {
                static_used += entry.blocks.len() as u64;
                report.check(
                    entry.state == EntryState::Normal,
                    S,
                    "state-machine",
                    || {
                        format!(
                            "static (pinned) entry {term:?} left Normal: {:?}",
                            entry.state
                        )
                    },
                );
            }
            report.check(
                self.lru.contains(&term) != entry.is_static,
                S,
                "lru-membership",
                || {
                    format!(
                        "entry {term:?} (static: {}) has wrong recency-list membership",
                        entry.is_static
                    )
                },
            );
        }
        report.check(
            self.region.used_count() as usize == used_blocks,
            S,
            "block-accounting",
            || {
                format!(
                    "region reports {} used blocks but entries own {used_blocks}",
                    self.region.used_count()
                )
            },
        );
        report.check(
            static_used == self.static_used as u64,
            S,
            "static-budget",
            || {
                format!(
                    "static entries own {static_used} blocks but the store accounts {}",
                    self.static_used
                )
            },
        );
        report.check(
            self.static_used <= self.static_blocks,
            S,
            "static-budget",
            || {
                format!(
                    "{} static blocks exceed the {}-block budget",
                    self.static_used, self.static_blocks
                )
            },
        );
        report.check(
            self.lru.len() == self.entries.values().filter(|e| !e.is_static).count(),
            S,
            "lru-membership",
            || {
                format!(
                    "recency list tracks {} terms but {} dynamic entries exist",
                    self.lru.len(),
                    self.entries.values().filter(|e| !e.is_static).count()
                )
            },
        );

        // Victim indexes mirror the replace-first window exactly.
        if self.selection == VictimSelection::Indexed && self.cost_based {
            let members: Vec<K> = self.lru.iter_replace_first().copied().collect();
            report.check(
                self.size_idx.len() == members.len(),
                S,
                "size-index-window",
                || {
                    format!(
                        "size index holds {} members, the window {}",
                        self.size_idx.len(),
                        members.len()
                    )
                },
            );
            let replaceable = members
                .iter()
                .filter(|t| {
                    self.entries
                        .get(t)
                        .is_some_and(|e| e.state == EntryState::Replaceable)
                })
                .count();
            report.check(
                self.repl_idx.len() == replaceable,
                S,
                "repl-index-window",
                || {
                    format!(
                        "replaceable index holds {} members but the window has {replaceable}",
                        self.repl_idx.len()
                    )
                },
            );
            for term in members {
                let stamp = self.lru.window_stamp(&term);
                let entry = self.entries.get(&term);
                let expected = entry.map(|e| e.blocks.len() as u64).zip(stamp);
                let indexed = self.size_idx.entry(&term);
                report.check(indexed == expected, S, "size-index-window", || {
                    format!(
                        "window entry {term:?} size-indexed as {indexed:?}, expected {expected:?}"
                    )
                });
                let is_repl = entry.is_some_and(|e| e.state == EntryState::Replaceable);
                report.check(
                    self.repl_idx.stamp_of(&term) == stamp.filter(|_| is_repl),
                    S,
                    "repl-index-window",
                    || {
                        format!(
                            "window entry {term:?} (replaceable: {is_repl}) \
                             repl-indexed as {:?}",
                            self.repl_idx.stamp_of(&term)
                        )
                    },
                );
            }
        } else {
            report.check(
                self.repl_idx.is_empty() && self.size_idx.is_empty(),
                S,
                "size-index-window",
                || {
                    format!(
                        "indexes hold {} + {} members while disabled",
                        self.repl_idx.len(),
                        self.size_idx.len()
                    )
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;
    use storagecore::{IoKind, RamDisk};

    const BLOCK: u64 = 128 * 1024;

    fn device() -> RamDisk {
        RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10))
    }

    fn store(blocks: u32, cost_based: bool) -> ListStore {
        ListStore::new(SlotRegion::new(0, BLOCK, blocks), BLOCK, cost_based, 2, 0.0)
    }

    #[test]
    fn offer_writes_whole_blocks() {
        let mut s = store(8, true);
        let mut dev = device();
        let (cached, t) = s.offer(1, 3, 3 * BLOCK - 100, 5, &mut dev);
        assert!(cached);
        assert!(t > SimDuration::ZERO);
        assert_eq!(dev.stats().ops(IoKind::Write), 3);
        assert_eq!(dev.stats().kind(IoKind::Write).bytes(), 3 * BLOCK);
        assert_eq!(s.cached_bytes(1), Some(3 * BLOCK - 100));
    }

    #[test]
    fn lookup_serves_prefix_and_marks_replaceable() {
        let mut s = store(8, true);
        let mut dev = device();
        s.offer(1, 2, 2 * BLOCK, 5, &mut dev);
        let (served, t) = s.lookup(1, BLOCK / 2, &mut dev, true).expect("hit");
        assert_eq!(served, BLOCK / 2);
        assert!(t > SimDuration::ZERO);
        // Asked for more than cached: clamped.
        let (served, _) = s.lookup(1, 10 * BLOCK, &mut dev, true).expect("hit");
        assert_eq!(served, 2 * BLOCK);
        // Entry is replaceable but still serving.
        assert_eq!(s.entries[&1].state, EntryState::Replaceable);
    }

    #[test]
    fn lookup_miss() {
        let mut s = store(4, true);
        let mut dev = device();
        assert!(s.lookup(9, BLOCK, &mut dev, true).is_none());
    }

    #[test]
    fn dedup_flips_replaceable_back() {
        let mut s = store(8, true);
        let mut dev = device();
        s.offer(1, 2, 2 * BLOCK, 5, &mut dev);
        s.lookup(1, BLOCK, &mut dev, true);
        let writes = dev.stats().ops(IoKind::Write);
        let (cached, t) = s.offer(1, 2, 2 * BLOCK, 6, &mut dev);
        assert!(!cached, "no new write needed");
        assert_eq!(t, SimDuration::ZERO);
        assert_eq!(dev.stats().ops(IoKind::Write), writes);
        assert_eq!(s.stats().rewrites_avoided, 1);
        assert_eq!(s.entries[&1].state, EntryState::Normal);
    }

    #[test]
    fn grown_prefix_rewrites() {
        let mut s = store(8, true);
        let mut dev = device();
        s.offer(1, 1, BLOCK, 5, &mut dev);
        let (cached, _) = s.offer(1, 3, 3 * BLOCK, 6, &mut dev);
        assert!(cached, "bigger prefix must rewrite");
        assert_eq!(s.cached_bytes(1), Some(3 * BLOCK));
        assert_eq!(s.stats().evictions, 1, "the stale copy was evicted");
    }

    #[test]
    fn replaceable_entries_are_preferred_victims() {
        let mut s = store(4, true);
        let mut dev = device();
        s.offer(1, 2, 2 * BLOCK, 5, &mut dev); // LRU
        s.offer(2, 2, 2 * BLOCK, 5, &mut dev); // MRU
                                               // Make the *MRU* entry replaceable; window (2) covers both.
        s.lookup(2, BLOCK, &mut dev, true);
        s.offer(3, 2, 2 * BLOCK, 5, &mut dev);
        assert!(s.cached_bytes(1).is_some(), "normal LRU entry survives");
        assert!(
            s.cached_bytes(2).is_none(),
            "replaceable entry was replaced"
        );
        assert_eq!(s.stats().replaceable_victims, 1);
    }

    #[test]
    fn size_match_beats_plain_lru_order() {
        let mut s = ListStore::new(SlotRegion::new(0, BLOCK, 6), BLOCK, true, 3, 0.0);
        let mut dev = device();
        s.offer(1, 1, BLOCK, 5, &mut dev); // LRU, size 1
        s.offer(2, 4, 4 * BLOCK, 5, &mut dev); // size 4
        s.offer(3, 1, BLOCK, 5, &mut dev); // MRU, size 1
                                           // Need 4 blocks: the size-4 entry is the exact match, even though
                                           // entry 1 is older.
        s.offer(4, 4, 4 * BLOCK, 5, &mut dev);
        assert!(s.cached_bytes(1).is_some());
        assert!(s.cached_bytes(2).is_none(), "size match evicted");
        assert!(s.cached_bytes(4).is_some());
    }

    #[test]
    fn assembly_evicts_several_small_entries() {
        let mut s = ListStore::new(SlotRegion::new(0, BLOCK, 4), BLOCK, true, 4, 0.0);
        let mut dev = device();
        for t in 1..=4 {
            s.offer(t, 1, BLOCK, 5, &mut dev);
        }
        // A 3-block entry must displace three 1-block entries.
        s.offer(9, 3, 3 * BLOCK, 5, &mut dev);
        assert!(s.cached_bytes(9).is_some());
        assert_eq!(s.len(), 2, "three of four small entries gone");
        assert_eq!(s.stats().evictions, 3);
    }

    #[test]
    fn lru_baseline_evicts_by_recency_only() {
        let mut s = store(4, false);
        let mut dev = device();
        s.offer(1, 2, 2 * BLOCK, 100, &mut dev); // hot but LRU
        s.offer(2, 2, 2 * BLOCK, 1, &mut dev);
        s.offer(3, 2, 2 * BLOCK, 1, &mut dev);
        assert!(s.cached_bytes(1).is_none(), "strict LRU ignores frequency");
        assert!(s.cached_bytes(2).is_some() && s.cached_bytes(3).is_some());
    }

    #[test]
    fn oversize_rejected() {
        let mut s = store(4, true);
        let mut dev = device();
        let (cached, _) = s.offer(1, 5, 5 * BLOCK, 5, &mut dev);
        assert!(!cached);
        assert_eq!(s.stats().oversize_rejections, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn invalidate_trims_blocks() {
        let mut s = store(4, true);
        let mut dev = device();
        s.offer(1, 2, 2 * BLOCK, 5, &mut dev);
        let t = s.invalidate(1, &mut dev);
        assert!(t > SimDuration::ZERO);
        assert_eq!(dev.stats().ops(IoKind::Trim), 2);
        assert!(s.is_empty());
        assert_eq!(s.dynamic_free(), 4);
        // Idempotent.
        assert_eq!(s.invalidate(1, &mut dev), SimDuration::ZERO);
    }

    #[test]
    fn static_partition_survives_pressure() {
        let mut s = ListStore::new(SlotRegion::new(0, BLOCK, 6), BLOCK, true, 2, 0.5);
        let mut dev = device();
        s.seed_static(vec![(100, 2, 2 * BLOCK, 50), (101, 1, BLOCK, 40)], &mut dev);
        assert_eq!(s.cached_bytes(100), Some(2 * BLOCK));
        // Dynamic half (3 blocks) churns; static stays.
        for t in 1..20 {
            s.offer(t, 1, BLOCK, 5, &mut dev);
        }
        assert!(s.cached_bytes(100).is_some());
        assert!(s.cached_bytes(101).is_some());
        // Static lookups never go replaceable.
        s.lookup(100, BLOCK, &mut dev, true);
        assert_eq!(s.entries[&100].state, EntryState::Normal);
    }

    #[test]
    fn static_budget_is_respected() {
        let mut s = ListStore::new(SlotRegion::new(0, BLOCK, 4), BLOCK, true, 2, 0.5);
        let mut dev = device();
        // Budget = 2 blocks; the 3-block list cannot be seeded.
        s.seed_static(
            vec![(100, 3, 3 * BLOCK, 50), (101, 2, 2 * BLOCK, 40)],
            &mut dev,
        );
        assert!(s.cached_bytes(100).is_none());
        assert_eq!(s.cached_bytes(101), Some(2 * BLOCK));
    }

    #[test]
    fn offload_descriptor_attaches_only_on_partial_page_tails() {
        let mut s = store(8, true);
        let mut dev = flashsim::SsdDisk::paper(16 << 20);
        s.offer(1, 2, 2 * BLOCK, 5, &mut dev);
        dev.reset_stats();
        let template = storagecore::OffloadDescriptor::new(0, 1_000_000, 0, 8);
        let (served, _) = s
            .lookup_offload(1, BLOCK + 1000, &mut dev, false, Some(template))
            .expect("hit");
        assert_eq!(served, BLOCK + 1000);
        let bus = dev.stats().bus();
        // The full 128 KB block is page-aligned — a descriptor only adds
        // bytes there — so only the 1000-byte tail pushes the filter down.
        assert_eq!(bus.offload_ops(), 1);
        assert_eq!(bus.read_page_bytes(), BLOCK);
        assert_eq!(bus.offload_scanned_bytes(), 2048);
        assert_eq!(bus.offload_scanned_entries(), 2048 / 8);
        assert_eq!(bus.offload_descriptor_bytes(), 24);
        // 1000 bytes at 8 B/entry: 125 entries back across the bus.
        assert_eq!(bus.offload_emitted_bytes(), 1000);
        assert_eq!(bus.saved_bytes(), 2048 - 24 - 1000);
    }

    #[test]
    fn offload_cost_rule_boundary_sits_at_page_minus_descriptor() {
        let template = storagecore::OffloadDescriptor::new(0, 1_000_000, 0, 8);
        // Page 2048, descriptor 24: a 2023-byte tail undercuts the
        // page-rounded plain read; 2024 bytes ties and stays plain.
        for (take, expect_offload) in [(2023u64, true), (2024, false), (2048, false)] {
            let mut s = store(8, true);
            let mut dev = flashsim::SsdDisk::paper(16 << 20);
            s.offer(1, 1, BLOCK, 5, &mut dev);
            dev.reset_stats();
            s.lookup_offload(1, take, &mut dev, false, Some(template))
                .expect("hit");
            assert_eq!(
                dev.stats().bus().offload_ops(),
                u64::from(expect_offload),
                "take = {take}"
            );
        }
    }

    #[test]
    fn offload_is_inert_without_device_support() {
        // RamDisk has no compute units: a descriptor-carrying lookup is
        // bit-identical to the plain one.
        let template = storagecore::OffloadDescriptor::new(0, 1_000_000, 0, 8);
        let mut s = store(8, true);
        let mut dev = device();
        s.offer(1, 2, 2 * BLOCK, 5, &mut dev);
        let offl = s
            .lookup_offload(1, BLOCK + 1000, &mut dev, false, Some(template))
            .expect("hit");
        let mut s2 = store(8, true);
        let mut dev2 = device();
        s2.offer(1, 2, 2 * BLOCK, 5, &mut dev2);
        let host = s2.lookup(1, BLOCK + 1000, &mut dev2, false).expect("hit");
        assert_eq!(offl, host);
        assert_eq!(dev.stats(), dev2.stats());
        assert_eq!(dev.stats().bus().offload_ops(), 0);
    }
}
