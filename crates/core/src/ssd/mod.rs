//! The second-level (SSD) cache: the log-based cache file of Sec. VI-B/C.
//!
//! The SSD cache file is carved into 128 KB blocks ([`slots::SlotRegion`]).
//! The **result region** stores assembled result blocks
//! ([`results::ResultStore`]); the **list region** stores block-granular
//! inverted-list entries ([`lists::ListStore`]). Both track the paper's
//! free / normal / replaceable state machine (Figs. 8–9) and implement the
//! CBLRU / CBSLRU victim selection as well as the plain-LRU baseline.
//!
//! A faithfulness note (recorded in DESIGN.md): a multi-block list entry's
//! blocks need not be physically adjacent in LBA space — the mapping table
//! scatters them, as any FTL-backed file does. Eviction *policy* semantics
//! (who is replaced, in what order, at what write granularity) are exactly
//! the paper's; every write the stores issue is still a whole 128 KB
//! block, which is what preserves the sequential-write benefit at the
//! flash level.

pub mod lists;
pub mod results;
pub mod slots;

pub use lists::ListStore;
pub use results::ResultStore;
pub use slots::{SlotId, SlotRegion};

/// Liveness state of a cached SSD entry (paper Fig. 9). `Free` is
/// represented by absence from the mapping tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Valid, read-only, not a preferred victim.
    Normal,
    /// Still valid and still serving hits, but preferred for overwrite —
    /// its data has been read back to memory (hybrid scheme) or
    /// superseded.
    Replaceable,
}

impl EntryState {
    /// Whether the paper's block state machine (Figs. 8–9) permits moving
    /// from `from` to `to`, where `None` is the Free state (absence from
    /// the mapping tables). Blocks cycle free → normal → replaceable →
    /// normal: data enters the cache *normal* (a fresh write) and may only
    /// turn replaceable after that write, so the single forbidden edge is
    /// free → replaceable. Any state may return to free (trim / eviction)
    /// and self-transitions are no-ops.
    pub fn may_become(from: Option<EntryState>, to: Option<EntryState>) -> bool {
        !matches!((from, to), (None, Some(EntryState::Replaceable)))
    }
}
