//! The L2 result cache ("L2 RC"): result blocks on the SSD.
//!
//! Under the cost-based policies, evicted result entries are staged in a
//! write buffer and flushed as whole 128 KB **result blocks** (Fig. 10(b)
//! — "several small random writes can be assembled into a large
//! sequential write"); the replacement victim is the result block with the
//! largest invalid-entry count (IREN) inside the replace-first region
//! (Fig. 11). Under the LRU baseline every entry is written individually
//! at its slot position — the small-random-write behaviour the paper
//! charges against LRU — and the victim is the strict LRU entry.

use fxmap::FxHashMap;

use cachekit::{MaxScoreIndex, SegmentedLru, VictimSelection, WindowEvent};
use invariant::{audit, Report, Validate};
use simclock::SimDuration;
use storagecore::BlockDevice;

use crate::ssd::slots::{SlotId, SlotRegion};
use crate::ssd::EntryState;
use crate::QueryId;

/// A stored result entry.
#[derive(Debug, Clone)]
struct Stored<V> {
    value: V,
    freq: u64,
    state: EntryState,
}

/// Result-block metadata: Fig. 7(b)'s `<ptr, flag>` — the pointer is the
/// slot, the flag bitmap is `entries` (Some = valid bit set).
#[derive(Debug, Clone)]
struct Rb {
    entries: Vec<Option<QueryId>>,
    is_static: bool,
    /// Incrementally-maintained IREN (invalid slots + replaceable
    /// entries); always equals what a fresh scan of `entries` would count.
    invalid: usize,
}

impl Rb {
    fn new(capacity: usize, is_static: bool) -> Self {
        Rb {
            entries: vec![None; capacity],
            is_static,
            invalid: capacity,
        }
    }
}

/// Store-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultStoreStats {
    /// Whole-RB writes issued (cost-based path).
    pub rb_writes: u64,
    /// Individual entry writes issued (LRU path).
    pub entry_writes: u64,
    /// Flushes avoided because a replaceable copy was still valid.
    pub rewrites_avoided: u64,
    /// Valid entries destroyed by RB overwrites.
    pub collateral_evictions: u64,
    /// Trims issued for fully-invalid RBs.
    pub trims: u64,
}

/// The SSD result store.
#[derive(Debug, Clone)]
pub struct ResultStore<V> {
    region: SlotRegion,
    entries_per_rb: usize,
    entry_bytes: u64,
    cost_based: bool,
    /// RB recency list (cost-based victim domain; static RBs excluded).
    rb_lru: SegmentedLru<SlotId>,
    /// Entry recency list (LRU-baseline victim domain).
    entry_lru: SegmentedLru<QueryId>,
    rbs: FxHashMap<SlotId, Rb>,
    /// Fig. 7(a): query → (RB, index).
    map: FxHashMap<QueryId, (SlotId, u8)>,
    payload: FxHashMap<QueryId, Stored<V>>,
    /// LRU mode: open entry positions available for small writes.
    free_entries: Vec<(SlotId, u8)>,
    /// CB mode: staged evictions awaiting assembly.
    write_buffer: Vec<(QueryId, V, u64)>,
    /// Slots reserved for (and consumed by) the CBSLRU static partition.
    static_slots: u32,
    stats: ResultStoreStats,
    selection: VictimSelection,
    /// Replace-first RBs indexed by IREN (cost-based, indexed mode).
    iren_index: MaxScoreIndex<SlotId, usize>,
    /// Scratch buffer for draining window-membership events.
    events: Vec<WindowEvent<SlotId>>,
}

impl<V: Clone> ResultStore<V> {
    /// Create over `region`, holding `entries_per_rb` entries of
    /// `entry_bytes` per result block. `window` is the replace-first
    /// window over RBs (cost-based) or entries (LRU).
    pub fn new(
        region: SlotRegion,
        entries_per_rb: usize,
        entry_bytes: u64,
        cost_based: bool,
        window: usize,
        static_fraction: f64,
    ) -> Self {
        assert!(entries_per_rb > 0);
        let static_slots = (region.capacity() as f64 * static_fraction).floor() as u32;
        let mut rb_lru = SegmentedLru::new(window);
        let selection = VictimSelection::default();
        if selection == VictimSelection::Indexed && cost_based {
            rb_lru.enable_window_events();
        }
        ResultStore {
            region,
            entries_per_rb,
            entry_bytes,
            cost_based,
            rb_lru,
            entry_lru: SegmentedLru::new(window),
            rbs: FxHashMap::default(),
            map: FxHashMap::default(),
            payload: FxHashMap::default(),
            free_entries: Vec::new(),
            write_buffer: Vec::new(),
            static_slots,
            stats: ResultStoreStats::default(),
            selection,
            iren_index: MaxScoreIndex::new(),
            events: Vec::new(),
        }
    }

    /// Switch between the reference scans and the indexed victim path
    /// (rebuilds the index on enable).
    pub fn set_victim_selection(&mut self, selection: VictimSelection) {
        if selection == self.selection {
            return;
        }
        self.selection = selection;
        self.iren_index.clear();
        match selection {
            VictimSelection::Indexed if self.cost_based => {
                self.rb_lru.enable_window_events();
                let members: Vec<SlotId> = self.rb_lru.iter_replace_first().copied().collect();
                for slot in members {
                    let stamp = self.rb_lru.window_stamp(&slot).expect("window member");
                    self.iren_index.insert(slot, stamp, self.rbs[&slot].invalid);
                }
            }
            _ => self.rb_lru.disable_window_events(),
        }
        audit!(self, "ResultStore::set_victim_selection");
    }

    /// The active victim-selection mode.
    pub fn victim_selection(&self) -> VictimSelection {
        self.selection
    }

    /// Whether the incremental index is live.
    fn indexing(&self) -> bool {
        self.selection == VictimSelection::Indexed && self.cost_based
    }

    /// Mirror pending window-membership changes into the IREN index.
    fn sync_index(&mut self) {
        if !self.indexing() {
            return;
        }
        self.rb_lru.take_window_events(&mut self.events);
        let mut events = std::mem::take(&mut self.events);
        for ev in events.drain(..) {
            match ev {
                WindowEvent::Entered { key, stamp } => {
                    let score = self.rbs[&key].invalid;
                    debug_assert_eq!(score, self.iren(key), "IREN counter drifted");
                    self.iren_index.insert(key, stamp, score);
                }
                WindowEvent::Left { key } => self.iren_index.remove(&key),
            }
        }
        self.events = events;
    }

    /// Refresh a window member's score after its IREN changed.
    fn rescore(&mut self, slot: SlotId) {
        if self.indexing() && self.rb_lru.in_replace_first(&slot) {
            let score = self.rbs[&slot].invalid;
            debug_assert_eq!(score, self.iren(slot), "IREN counter drifted");
            self.iren_index.update_score(&slot, score);
        }
    }

    /// Store counters.
    pub fn stats(&self) -> ResultStoreStats {
        self.stats
    }

    /// Cached entry count (staged write-buffer entries excluded).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `id` is cached on the SSD.
    pub fn contains(&self, id: QueryId) -> bool {
        self.map.contains_key(&id)
    }

    /// Invalid-result-entry number of an RB: invalid slots plus
    /// replaceable entries (Fig. 11's IREN).
    fn iren(&self, slot: SlotId) -> usize {
        let rb = &self.rbs[&slot];
        rb.entries
            .iter()
            .filter(|e| match e {
                None => true,
                Some(q) => self.payload[q].state == EntryState::Replaceable,
            })
            .count()
    }

    /// Serve a hit: reads the entry's sub-extent from the SSD and, under
    /// the hybrid scheme, turns the copy replaceable. Returns the payload,
    /// its frequency and the device latency.
    pub fn lookup<D: BlockDevice>(
        &mut self,
        id: QueryId,
        device: &mut D,
        mark_replaceable: bool,
    ) -> Option<(V, u64, SimDuration)> {
        let &(slot, idx) = self.map.get(&id)?;
        let extent = self
            .region
            .sub_extent(slot, idx as u64 * self.entry_bytes, self.entry_bytes);
        let latency = device.read(extent).expect("result extent is in-region");
        let is_static = self.rbs[&slot].is_static;
        let stored = self.payload.get_mut(&id).expect("map/payload agree");
        let turned_replaceable =
            mark_replaceable && !is_static && stored.state == EntryState::Normal;
        if mark_replaceable && !is_static {
            stored.state = EntryState::Replaceable;
        }
        let out = (stored.value.clone(), stored.freq, latency);
        if turned_replaceable {
            self.rbs.get_mut(&slot).expect("rb exists").invalid += 1;
        }
        if !is_static {
            if self.cost_based {
                self.rb_lru.touch(&slot);
                self.sync_index();
                self.rescore(slot);
            } else {
                self.entry_lru.touch(&id);
            }
        }
        audit!(self, "ResultStore::lookup");
        Some(out)
    }

    /// Accept an entry evicted from memory. Admission is the manager's
    /// decision; this handles dedup, staging and writes. Returns the SSD
    /// latency incurred now (a buffered stage costs nothing until the RB
    /// flushes).
    pub fn offer<D: BlockDevice>(
        &mut self,
        id: QueryId,
        value: V,
        freq: u64,
        device: &mut D,
    ) -> SimDuration {
        // Dedup: a replaceable copy of the same query is still on the SSD
        // — flip it back to normal instead of rewriting (Sec. VI-C1).
        if let Some(stored) = self.payload.get_mut(&id) {
            let was_replaceable = stored.state == EntryState::Replaceable;
            stored.state = EntryState::Normal;
            stored.freq = stored.freq.max(freq);
            self.stats.rewrites_avoided += 1;
            let (slot, _) = self.map[&id];
            if was_replaceable {
                self.rbs.get_mut(&slot).expect("rb exists").invalid -= 1;
            }
            if !self.rbs[&slot].is_static {
                if self.cost_based {
                    self.rb_lru.touch(&slot);
                    self.sync_index();
                    self.rescore(slot);
                } else {
                    self.entry_lru.touch(&id);
                }
            }
            audit!(self, "ResultStore::offer(dedup)");
            return SimDuration::ZERO;
        }
        if self.cost_based {
            // The same query may be evicted again before its first staging
            // flushes (miss → recompute → re-evict); refresh the staged
            // entry rather than duplicating it in the RB.
            if let Some(staged) = self.write_buffer.iter_mut().find(|(q, _, _)| *q == id) {
                staged.1 = value;
                staged.2 = staged.2.max(freq);
                return SimDuration::ZERO;
            }
            self.write_buffer.push((id, value, freq));
            let latency = if self.write_buffer.len() >= self.entries_per_rb {
                self.flush_buffer(device)
            } else {
                SimDuration::ZERO
            };
            audit!(self, "ResultStore::offer(stage)");
            latency
        } else {
            let latency = self.write_single(id, value, freq, device);
            audit!(self, "ResultStore::offer(write)");
            latency
        }
    }

    /// Whether a query is waiting in the write buffer.
    pub fn buffered(&self, id: QueryId) -> bool {
        self.write_buffer.iter().any(|(q, _, _)| *q == id)
    }

    /// CB path: assemble the buffered entries into one RB and write it as
    /// a single large request.
    fn flush_buffer<D: BlockDevice>(&mut self, device: &mut D) -> SimDuration {
        let Some(slot) = self.take_rb_slot() else {
            // Dynamic region has zero capacity (all static): drop.
            self.write_buffer.clear();
            return SimDuration::ZERO;
        };
        let staged: Vec<(QueryId, V, u64)> = self.write_buffer.drain(..).collect();
        let mut rb = Rb::new(self.entries_per_rb, false);
        for (i, (id, value, freq)) in staged.into_iter().enumerate() {
            rb.entries[i] = Some(id);
            rb.invalid -= 1;
            self.map.insert(id, (slot, i as u8));
            self.payload.insert(
                id,
                Stored {
                    value,
                    freq,
                    state: EntryState::Normal,
                },
            );
        }
        self.rbs.insert(slot, rb);
        self.rb_lru.insert_mru(slot);
        self.sync_index();
        self.stats.rb_writes += 1;
        device
            .write(self.region.extent(slot))
            .expect("RB extent is in-region")
    }

    /// A slot for a fresh RB: free pool first, then the CBLRU victim —
    /// the replace-first-region RB with the largest IREN.
    fn take_rb_slot(&mut self) -> Option<SlotId> {
        if self.region.used_count() < self.region.capacity() - self.dynamic_reserved() {
            if let Some(slot) = self.region.alloc() {
                return Some(slot);
            }
        }
        let victim = match self.selection {
            // Fig. 11's max-IREN victim, answered by the incremental
            // index; the scan below is the seed's reference path.
            VictimSelection::Indexed => self.iren_index.peek_best(None).copied(),
            VictimSelection::Scan => self
                .rb_lru
                .best_in_replace_first(|&s| self.iren(s))
                .copied(),
        }?;
        self.destroy_rb(victim);
        Some(victim)
    }

    /// Slots the static partition may still claim.
    fn dynamic_reserved(&self) -> u32 {
        self.static_slots
            .saturating_sub(self.rbs.values().filter(|rb| rb.is_static).count() as u32)
    }

    /// Drop an RB's remaining valid entries and unmap it (the slot is
    /// reused by the caller, so no trim).
    fn destroy_rb(&mut self, slot: SlotId) {
        let rb = self.rbs.remove(&slot).expect("victim exists");
        for id in rb.entries.into_iter().flatten() {
            self.map.remove(&id);
            let stored = self.payload.remove(&id).expect("map/payload agree");
            if stored.state == EntryState::Normal {
                self.stats.collateral_evictions += 1;
            }
        }
        self.rb_lru.remove(&slot);
        self.sync_index();
    }

    /// LRU path: write one entry into an open position (a small random
    /// write), evicting the strict LRU entry when no position is open.
    fn write_single<D: BlockDevice>(
        &mut self,
        id: QueryId,
        value: V,
        freq: u64,
        device: &mut D,
    ) -> SimDuration {
        let position = self.free_entries.pop().or_else(|| {
            if let Some(slot) = self.region.alloc() {
                self.rbs.insert(slot, Rb::new(self.entries_per_rb, false));
                self.free_entries
                    .extend((1..self.entries_per_rb as u8).map(|i| (slot, i)));
                return Some((slot, 0));
            }
            let victim = self.entry_lru.pop_lru()?;
            let (slot, idx) = self.map.remove(&victim).expect("victim mapped");
            let stored = self.payload.remove(&victim).expect("victim stored");
            let rb = self.rbs.get_mut(&slot).expect("rb exists");
            rb.entries[idx as usize] = None;
            if stored.state == EntryState::Normal {
                rb.invalid += 1;
            }
            self.stats.collateral_evictions += 1;
            Some((slot, idx))
        });
        let Some((slot, idx)) = position else {
            return SimDuration::ZERO; // zero-capacity region
        };
        let rb = self.rbs.get_mut(&slot).expect("rb exists");
        rb.entries[idx as usize] = Some(id);
        rb.invalid -= 1;
        self.map.insert(id, (slot, idx));
        self.payload.insert(
            id,
            Stored {
                value,
                freq,
                state: EntryState::Normal,
            },
        );
        self.entry_lru.insert_mru(id);
        self.stats.entry_writes += 1;
        device
            .write(
                self.region
                    .sub_extent(slot, idx as u64 * self.entry_bytes, self.entry_bytes),
            )
            .expect("entry extent is in-region")
    }

    /// Remove an entry (exclusive scheme, or explicit invalidation). When
    /// the RB ends up fully invalid under the cost-based policy, the whole
    /// block is trimmed and returned to the free pool.
    pub fn invalidate<D: BlockDevice>(&mut self, id: QueryId, device: &mut D) -> SimDuration {
        let Some((slot, idx)) = self.map.remove(&id) else {
            return SimDuration::ZERO;
        };
        let stored = self.payload.remove(&id).expect("map/payload agree");
        let rb = self.rbs.get_mut(&slot).expect("rb exists");
        rb.entries[idx as usize] = None;
        if stored.state == EntryState::Normal {
            rb.invalid += 1;
        }
        let is_static = rb.is_static;
        if self.cost_based {
            if !is_static && self.rbs[&slot].entries.iter().all(Option::is_none) {
                self.rbs.remove(&slot);
                self.rb_lru.remove(&slot);
                self.sync_index();
                self.stats.trims += 1;
                let t = device
                    .trim(self.region.extent(slot))
                    .expect("RB extent is in-region");
                self.region.release(slot);
                audit!(self, "ResultStore::invalidate(trim)");
                return t;
            }
            // The RB stays but its IREN grew.
            self.rescore(slot);
        } else {
            self.entry_lru.remove(&id);
            self.free_entries.push((slot, idx));
        }
        audit!(self, "ResultStore::invalidate");
        SimDuration::ZERO
    }

    /// Seed the CBSLRU static partition: the most valuable entries, known
    /// from query-log analysis, written once and pinned. Entries beyond
    /// the static capacity are ignored. Returns the write latency.
    pub fn seed_static<D: BlockDevice>(
        &mut self,
        entries: Vec<(QueryId, V, u64)>,
        device: &mut D,
    ) -> SimDuration {
        let mut latency = SimDuration::ZERO;
        let capacity = self.static_slots as usize * self.entries_per_rb;
        for chunk in entries
            .into_iter()
            .take(capacity)
            .collect::<Vec<_>>()
            .chunks(self.entries_per_rb)
        {
            let Some(slot) = self.region.alloc() else {
                break;
            };
            let mut rb = Rb::new(self.entries_per_rb, true);
            for (i, (id, value, freq)) in chunk.iter().enumerate() {
                rb.entries[i] = Some(*id);
                rb.invalid -= 1;
                self.map.insert(*id, (slot, i as u8));
                self.payload.insert(
                    *id,
                    Stored {
                        value: value.clone(),
                        freq: *freq,
                        state: EntryState::Normal,
                    },
                );
            }
            self.rbs.insert(slot, rb);
            self.stats.rb_writes += 1;
            latency += device
                .write(self.region.extent(slot))
                .expect("RB extent is in-region");
        }
        audit!(self, "ResultStore::seed_static");
        latency
    }

    /// Test hook: skew the incremental IREN counter of `id`'s RB without
    /// touching the bitmap, simulating the counter drift the
    /// `iren-bitmap-agree` validator exists to catch.
    #[doc(hidden)]
    pub fn debug_corrupt_iren(&mut self, id: QueryId, delta: isize) {
        let (slot, _) = self.map[&id];
        let rb = self.rbs.get_mut(&slot).expect("rb exists");
        rb.invalid = rb.invalid.wrapping_add_signed(delta);
    }

    /// Test hook: force `id`'s entry state while keeping the IREN counter
    /// consistent with the bitmap, so only state-machine invariants can
    /// fire — used to prove the pinned-static check catches an
    /// out-of-order free → normal → replaceable transition on its own.
    #[doc(hidden)]
    pub fn debug_force_state(&mut self, id: QueryId, state: EntryState) {
        let (slot, _) = self.map[&id];
        let stored = self.payload.get_mut(&id).expect("map/payload agree");
        if stored.state == state {
            return;
        }
        let rb = self.rbs.get_mut(&slot).expect("rb exists");
        match state {
            EntryState::Replaceable => rb.invalid += 1,
            EntryState::Normal => rb.invalid -= 1,
        }
        stored.state = state;
        if self.indexing() && self.rb_lru.in_replace_first(&slot) {
            let score = self.rbs[&slot].invalid;
            self.iren_index.update_score(&slot, score);
        }
    }

    /// Test hook: shrink or grow the per-entry footprint after the fact,
    /// breaking the "an RB packs into exactly one aligned 128 KB slot"
    /// geometry the `rb-write-alignment` validator checks.
    #[doc(hidden)]
    pub fn debug_corrupt_entry_bytes(&mut self, entry_bytes: u64) {
        self.entry_bytes = entry_bytes;
    }
}

impl<V> Validate for ResultStore<V> {
    /// Re-derives the result store's redundant bookkeeping from scratch
    /// (paper Sec. VI-B/C, Figs. 7(a)/(b) and 11) and cross-checks it:
    ///
    /// * the query→slot map, the payload table and the RB bitmaps must
    ///   form one consistent bijection;
    /// * each RB's incrementally maintained IREN equals a fresh bitmap
    ///   scan (invalid slots + replaceable entries);
    /// * slot allocation, recency lists, the IREN victim index and the
    ///   write buffer agree with the mapping tables;
    /// * static (pinned) entries never leave the Normal state;
    /// * RB geometry keeps every write one whole aligned slot.
    fn validate(&self, report: &mut Report) {
        const S: &str = "ResultStore";
        self.region.validate(report);
        self.rb_lru.validate(report);
        self.entry_lru.validate(report);
        self.iren_index.validate(report);

        let slot_bytes = self.region.slot_sectors() * storagecore::SECTOR_SIZE as u64;
        report.check(
            self.entries_per_rb as u64 * self.entry_bytes <= slot_bytes,
            S,
            "rb-write-alignment",
            || {
                format!(
                    "{} entries of {} bytes do not pack into a {} byte slot",
                    self.entries_per_rb, self.entry_bytes, slot_bytes
                )
            },
        );

        // Mapping tables: map ↔ payload ↔ RB bitmaps form a bijection.
        report.check(
            self.map.len() == self.payload.len(),
            S,
            "map-payload-agree",
            || {
                format!(
                    "map holds {} queries, payload table {}",
                    self.map.len(),
                    self.payload.len()
                )
            },
        );
        for (&id, &(slot, idx)) in &self.map {
            report.check(
                self.payload.contains_key(&id),
                S,
                "map-payload-agree",
                || format!("query {id} is mapped but has no payload"),
            );
            let Some(rb) = self.rbs.get(&slot) else {
                report.violation(
                    S,
                    "map-rb-agree",
                    format!("query {id} maps to unmapped RB slot {slot}"),
                );
                continue;
            };
            if !report.check((idx as usize) < rb.entries.len(), S, "map-rb-agree", || {
                format!(
                    "query {id} maps to position {idx} of a {}-entry RB",
                    rb.entries.len()
                )
            }) {
                continue;
            }
            report.check(
                rb.entries[idx as usize] == Some(id),
                S,
                "map-rb-agree",
                || {
                    format!(
                        "query {id} maps to RB {slot}[{idx}] but the bitmap holds {:?}",
                        rb.entries[idx as usize]
                    )
                },
            );
        }
        let bitmap_valid: usize = self
            .rbs
            .values()
            .map(|rb| rb.entries.iter().flatten().count())
            .sum();
        report.check(bitmap_valid == self.map.len(), S, "map-rb-agree", || {
            format!(
                "RB bitmaps carry {bitmap_valid} valid entries but the map holds {}",
                self.map.len()
            )
        });

        // Per-RB checks: slot allocation, IREN agreement, static pinning.
        let mut static_rbs = 0u32;
        for (&slot, rb) in &self.rbs {
            report.check(
                slot < self.region.capacity() && !self.region.is_free(slot),
                S,
                "slot-allocated",
                || format!("RB slot {slot} is not an allocated region slot"),
            );
            report.check(
                rb.entries.len() == self.entries_per_rb,
                S,
                "rb-capacity",
                || {
                    format!(
                        "RB {slot} has {} positions, the store packs {}",
                        rb.entries.len(),
                        self.entries_per_rb
                    )
                },
            );
            let scan = rb
                .entries
                .iter()
                .filter(|e| match e {
                    None => true,
                    Some(q) => self
                        .payload
                        .get(q)
                        .is_none_or(|s| s.state == EntryState::Replaceable),
                })
                .count();
            report.check(rb.invalid == scan, S, "iren-bitmap-agree", || {
                format!(
                    "RB {slot} carries IREN {} but a bitmap scan counts {scan}",
                    rb.invalid
                )
            });
            if rb.is_static {
                static_rbs += 1;
                for id in rb.entries.iter().flatten() {
                    let state = self.payload.get(id).map(|s| s.state);
                    report.check(
                        EntryState::may_become(None, state)
                            && state != Some(EntryState::Replaceable),
                        S,
                        "state-machine",
                        || {
                            format!(
                                "static (pinned) entry {id} in RB {slot} left Normal: {state:?}"
                            )
                        },
                    );
                }
            }
            if self.cost_based {
                report.check(
                    self.rb_lru.contains(&slot) != rb.is_static,
                    S,
                    "lru-membership",
                    || {
                        format!(
                            "RB {slot} (static: {}) has wrong recency-list membership",
                            rb.is_static
                        )
                    },
                );
            }
        }
        report.check(static_rbs <= self.static_slots, S, "static-budget", || {
            format!(
                "{static_rbs} static RBs exceed the {}-slot budget",
                self.static_slots
            )
        });
        report.check(
            self.region.used_count() as usize == self.rbs.len(),
            S,
            "slot-accounting",
            || {
                format!(
                    "region reports {} used slots but {} RBs exist",
                    self.region.used_count(),
                    self.rbs.len()
                )
            },
        );

        // Mode-specific structures.
        if self.cost_based {
            report.check(self.entry_lru.is_empty(), S, "lru-membership", || {
                format!(
                    "cost-based mode keeps no entry recency list, found {} entries",
                    self.entry_lru.len()
                )
            });
            report.check(
                self.free_entries.is_empty(),
                S,
                "free-entry-accounting",
                || {
                    format!(
                        "cost-based mode tracks no free entry positions, found {}",
                        self.free_entries.len()
                    )
                },
            );
        } else {
            report.check(self.rb_lru.is_empty(), S, "lru-membership", || {
                format!(
                    "LRU mode keeps no RB recency list, found {} RBs",
                    self.rb_lru.len()
                )
            });
            for (&id, &(slot, _)) in &self.map {
                let is_static = self.rbs.get(&slot).is_some_and(|rb| rb.is_static);
                report.check(
                    self.entry_lru.contains(&id) != is_static,
                    S,
                    "lru-membership",
                    || {
                        format!(
                            "entry {id} (static: {is_static}) has wrong recency-list membership"
                        )
                    },
                );
            }
            let mut seen = std::collections::HashSet::new();
            for &(slot, idx) in &self.free_entries {
                report.check(seen.insert((slot, idx)), S, "free-entry-accounting", || {
                    format!("position RB {slot}[{idx}] is free-listed twice")
                });
                let open = self
                    .rbs
                    .get(&slot)
                    .and_then(|rb| rb.entries.get(idx as usize))
                    .is_some_and(Option::is_none);
                report.check(open, S, "free-entry-accounting", || {
                    format!("free-listed position RB {slot}[{idx}] is not an open bitmap slot")
                });
            }
            let open_dynamic: usize = self
                .rbs
                .values()
                .filter(|rb| !rb.is_static)
                .map(|rb| rb.entries.iter().filter(|e| e.is_none()).count())
                .sum();
            report.check(
                open_dynamic == self.free_entries.len(),
                S,
                "free-entry-accounting",
                || {
                    format!(
                        "{open_dynamic} open bitmap positions but {} free-listed",
                        self.free_entries.len()
                    )
                },
            );
        }

        // Write buffer: staged entries are not yet mapped, each id once.
        report.check(
            self.entries_per_rb == 0 || self.write_buffer.len() < self.entries_per_rb,
            S,
            "write-buffer-bounded",
            || {
                format!(
                    "{} staged entries never flushed into a {}-entry RB",
                    self.write_buffer.len(),
                    self.entries_per_rb
                )
            },
        );
        let mut staged = std::collections::HashSet::new();
        for (id, _, _) in &self.write_buffer {
            report.check(staged.insert(*id), S, "write-buffer-unique", || {
                format!("query {id} is staged twice")
            });
            report.check(!self.map.contains_key(id), S, "write-buffer-unique", || {
                format!("query {id} is both staged and mapped")
            });
        }

        // Victim index mirrors the replace-first window exactly.
        if self.selection == VictimSelection::Indexed && self.cost_based {
            let members: Vec<SlotId> = self.rb_lru.iter_replace_first().copied().collect();
            report.check(
                self.iren_index.len() == members.len(),
                S,
                "iren-index-window",
                || {
                    format!(
                        "index holds {} members, the window {}",
                        self.iren_index.len(),
                        members.len()
                    )
                },
            );
            for slot in members {
                let stamp = self.rb_lru.window_stamp(&slot);
                let iren = self.rbs.get(&slot).map(|rb| rb.invalid);
                let expected = iren.zip(stamp);
                let indexed = self.iren_index.entry(&slot);
                report.check(indexed == expected, S, "iren-index-window", || {
                    format!(
                        "window RB {slot} indexed as {indexed:?}, expected IREN {iren:?} at stamp {stamp:?}"
                    )
                });
            }
        } else {
            report.check(self.iren_index.is_empty(), S, "iren-index-window", || {
                format!(
                    "index holds {} members while disabled",
                    self.iren_index.len()
                )
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;
    use storagecore::{IoKind, RamDisk};

    const ENTRY: u64 = 20_000;
    const BLOCK: u64 = 128 * 1024;

    fn device() -> RamDisk {
        RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10))
    }

    fn store(slots: u32, cost_based: bool) -> ResultStore<u32> {
        ResultStore::new(
            SlotRegion::new(0, BLOCK, slots),
            6,
            ENTRY,
            cost_based,
            2,
            0.0,
        )
    }

    fn fill_rb(s: &mut ResultStore<u32>, dev: &mut RamDisk, ids: std::ops::Range<u64>) {
        for id in ids {
            s.offer(id, id as u32, 1, dev);
        }
    }

    #[test]
    fn cb_mode_buffers_until_full_rb() {
        let mut s = store(4, true);
        let mut dev = device();
        for id in 0..5 {
            assert_eq!(s.offer(id, 0, 1, &mut dev), SimDuration::ZERO);
            assert!(s.buffered(id));
            assert!(!s.contains(id));
        }
        // Sixth entry completes the RB: one large write.
        let t = s.offer(5, 0, 1, &mut dev);
        assert!(t > SimDuration::ZERO);
        assert_eq!(dev.stats().ops(IoKind::Write), 1);
        assert_eq!(dev.stats().kind(IoKind::Write).bytes(), BLOCK);
        for id in 0..6 {
            assert!(s.contains(id));
        }
        assert_eq!(s.stats().rb_writes, 1);
    }

    #[test]
    fn lru_mode_writes_each_entry_small() {
        let mut s = store(4, false);
        let mut dev = device();
        s.offer(0, 0, 1, &mut dev);
        s.offer(1, 0, 1, &mut dev);
        assert_eq!(dev.stats().ops(IoKind::Write), 2, "two small writes");
        assert!(dev.stats().kind(IoKind::Write).bytes() < BLOCK);
        assert!(s.contains(0) && s.contains(1));
        assert_eq!(s.stats().entry_writes, 2);
    }

    #[test]
    fn lookup_reads_entry_extent_and_marks_replaceable() {
        let mut s = store(4, true);
        let mut dev = device();
        fill_rb(&mut s, &mut dev, 0..6);
        let (v, freq, t) = s.lookup(3, &mut dev, true).expect("hit");
        assert_eq!(v, 3);
        assert_eq!(freq, 1);
        assert!(t > SimDuration::ZERO);
        // Entry 3 is now replaceable: the RB's IREN is 1.
        let (slot, _) = s.map[&3];
        assert_eq!(s.iren(slot), 1);
        // A second lookup still hits (replaceable data stays readable).
        assert!(s.lookup(3, &mut dev, true).is_some());
    }

    #[test]
    fn lookup_miss() {
        let mut s = store(4, true);
        let mut dev = device();
        assert!(s.lookup(42, &mut dev, true).is_none());
    }

    #[test]
    fn dedup_avoids_rewrite() {
        let mut s = store(4, true);
        let mut dev = device();
        fill_rb(&mut s, &mut dev, 0..6);
        s.lookup(2, &mut dev, true); // replaceable now
        let writes_before = dev.stats().ops(IoKind::Write);
        let t = s.offer(2, 2, 5, &mut dev);
        assert_eq!(t, SimDuration::ZERO);
        assert_eq!(dev.stats().ops(IoKind::Write), writes_before);
        assert_eq!(s.stats().rewrites_avoided, 1);
        // Back to normal: IREN drops to 0.
        let (slot, _) = s.map[&2];
        assert_eq!(s.iren(slot), 0);
    }

    #[test]
    fn cb_victim_is_max_iren_in_window() {
        let mut s = store(2, true); // 2 slots only
        let mut dev = device();
        fill_rb(&mut s, &mut dev, 0..6); // RB A (slot LRU order: A)
        fill_rb(&mut s, &mut dev, 6..12); // RB B
                                          // Make RB B dirtier: two of its entries replaceable; but touch it
                                          // MRU afterwards? Window = 2 covers both. A has IREN 0, B has 2.
        s.lookup(6, &mut dev, true);
        s.lookup(7, &mut dev, true);
        // Third RB must overwrite B (max IREN), not A.
        fill_rb(&mut s, &mut dev, 12..18);
        assert!(s.contains(0), "RB A untouched");
        assert!(!s.contains(8), "RB B's normal entries were destroyed");
        assert!(s.contains(12));
        assert!(
            s.stats().collateral_evictions >= 4,
            "B had 4 normal entries"
        );
    }

    #[test]
    fn lru_victim_is_strict_lru_entry() {
        let mut s = store(1, false); // 6 entry positions total
        let mut dev = device();
        for id in 0..6 {
            s.offer(id, 0, 1, &mut dev);
        }
        s.lookup(0, &mut dev, false); // touch 0
        s.offer(6, 0, 1, &mut dev); // evicts 1 (LRU), not 0
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert!(s.contains(6));
    }

    #[test]
    fn invalidate_trims_fully_invalid_rb() {
        let mut s = store(4, true);
        let mut dev = device();
        fill_rb(&mut s, &mut dev, 0..6);
        for id in 0..6 {
            s.invalidate(id, &mut dev);
        }
        assert_eq!(s.stats().trims, 1);
        assert_eq!(dev.stats().ops(IoKind::Trim), 1);
        assert!(s.is_empty());
        // The slot is reusable.
        fill_rb(&mut s, &mut dev, 10..16);
        assert!(s.contains(10));
    }

    #[test]
    fn static_partition_is_pinned() {
        let mut s: ResultStore<u32> = ResultStore::new(
            SlotRegion::new(0, BLOCK, 4),
            6,
            ENTRY,
            true,
            2,
            0.5, // 2 of 4 slots static
        );
        let mut dev = device();
        let seeds: Vec<(QueryId, u32, u64)> = (100..112).map(|q| (q, q as u32, 9)).collect();
        s.seed_static(seeds, &mut dev);
        assert!(s.contains(100) && s.contains(111));
        // Lookups on static entries never turn them replaceable.
        s.lookup(100, &mut dev, true);
        let (slot, _) = s.map[&100];
        assert_eq!(s.iren(slot), 0);
        // Fill the dynamic remainder twice over: static entries survive.
        for batch in 0..4u64 {
            fill_rb(&mut s, &mut dev, batch * 6..batch * 6 + 6);
        }
        assert!(s.contains(100) && s.contains(111), "static entries pinned");
    }

    #[test]
    fn lru_invalidate_frees_the_entry_position() {
        let mut s = store(1, false); // 6 positions, LRU mode
        let mut dev = device();
        for id in 0..6 {
            s.offer(id, id as u32, 1, &mut dev);
        }
        // Invalidate one entry: its position must be reused by the next
        // offer instead of evicting the LRU entry.
        s.invalidate(3, &mut dev);
        assert!(!s.contains(3));
        s.offer(9, 9, 1, &mut dev);
        assert!(s.contains(9));
        for id in [0u64, 1, 2, 4, 5] {
            assert!(s.contains(id), "entry {id} must have survived");
        }
    }

    #[test]
    fn restaged_entry_refreshes_payload() {
        // The same query staged twice before its RB flushes must keep the
        // newest payload and one RB slot only.
        let mut s = store(4, true);
        let mut dev = device();
        s.offer(7, 100, 1, &mut dev);
        s.offer(7, 200, 3, &mut dev); // restage with new value + freq
        for id in 0..5 {
            s.offer(id, id as u32, 1, &mut dev); // fills and flushes the RB
        }
        let (v, freq, _) = s.lookup(7, &mut dev, true).expect("flushed");
        assert_eq!(v, 200);
        assert_eq!(freq, 3);
    }

    #[test]
    fn cb_mode_overwrite_victim_when_no_free_slot() {
        let mut s = store(1, true); // single slot: every flush overwrites
        let mut dev = device();
        fill_rb(&mut s, &mut dev, 0..6);
        fill_rb(&mut s, &mut dev, 10..16);
        for id in 0..6 {
            assert!(!s.contains(id), "first RB was overwritten");
        }
        for id in 10..16 {
            assert!(s.contains(id));
        }
        assert!(s.stats().collateral_evictions >= 6);
    }

    #[test]
    fn zero_capacity_region_drops_gracefully() {
        let mut s = store(0, true);
        let mut dev = device();
        fill_rb(&mut s, &mut dev, 0..6);
        assert!(s.is_empty());
        let mut s = store(0, false);
        s.offer(0, 0, 1, &mut dev);
        assert!(s.is_empty());
    }
}
