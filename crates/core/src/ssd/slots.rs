//! Block-granular slot allocation over an LBA region of the SSD.

use invariant::{Report, Validate};
use storagecore::{Extent, Lba};

/// Index of a 128 KB slot within a region.
pub type SlotId = u32;

/// A contiguous LBA region divided into fixed-size slots.
#[derive(Debug, Clone)]
pub struct SlotRegion {
    base: Lba,
    slot_sectors: u64,
    nslots: u32,
    free: Vec<SlotId>,
}

impl SlotRegion {
    /// Region of `nslots` slots of `slot_bytes` each, starting at `base`.
    pub fn new(base: Lba, slot_bytes: u64, nslots: u32) -> Self {
        assert!(slot_bytes > 0 && slot_bytes % storagecore::SECTOR_SIZE as u64 == 0);
        // Free list popped from the back: hand slots out in LBA order so
        // the initial fill is one long sequential write.
        let free = (0..nslots).rev().collect();
        SlotRegion {
            base,
            slot_sectors: slot_bytes / storagecore::SECTOR_SIZE as u64,
            nslots,
            free,
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> u32 {
        self.nslots
    }

    /// Currently free slots.
    pub fn free_count(&self) -> u32 {
        self.free.len() as u32
    }

    /// Slots in use.
    pub fn used_count(&self) -> u32 {
        self.nslots - self.free_count()
    }

    /// First sector of the region.
    pub fn base(&self) -> Lba {
        self.base
    }

    /// One past the region's last sector.
    pub fn end(&self) -> Lba {
        self.base + self.slot_sectors * self.nslots as u64
    }

    /// Sectors per slot.
    pub fn slot_sectors(&self) -> u64 {
        self.slot_sectors
    }

    /// Allocate a slot.
    pub fn alloc(&mut self) -> Option<SlotId> {
        self.free.pop()
    }

    /// Return a slot to the pool.
    pub fn release(&mut self, slot: SlotId) {
        debug_assert!(slot < self.nslots);
        debug_assert!(!self.free.contains(&slot), "double release of slot {slot}");
        self.free.push(slot);
    }

    /// The full extent of a slot.
    pub fn extent(&self, slot: SlotId) -> Extent {
        assert!(slot < self.nslots, "slot {slot} out of range");
        Extent::new(
            self.base + slot as u64 * self.slot_sectors,
            self.slot_sectors,
        )
    }

    /// The extent of a byte range `[offset, offset + bytes)` inside a slot.
    pub fn sub_extent(&self, slot: SlotId, offset: u64, bytes: u64) -> Extent {
        let full = self.extent(slot);
        assert!(
            offset + bytes <= full.bytes(),
            "sub-extent [{offset}, {}) exceeds slot of {} bytes",
            offset + bytes,
            full.bytes()
        );
        Extent::from_bytes(full.lba * storagecore::SECTOR_SIZE as u64 + offset, bytes)
    }

    /// Whether `slot` is currently on the free list (O(free) scan; used by
    /// validators, not the allocation path).
    pub fn is_free(&self, slot: SlotId) -> bool {
        self.free.contains(&slot)
    }
}

impl Validate for SlotRegion {
    /// The free list must stay a set of in-range slot ids — a duplicate
    /// means a double release, an out-of-range id a corrupted pool.
    fn validate(&self, report: &mut Report) {
        let mut seen = vec![false; self.nslots as usize];
        for &slot in &self.free {
            if !report.check(slot < self.nslots, "SlotRegion", "free-in-range", || {
                format!(
                    "free list holds slot {slot} but the region has {}",
                    self.nslots
                )
            }) {
                continue;
            }
            report.check(!seen[slot as usize], "SlotRegion", "free-unique", || {
                format!("slot {slot} appears twice on the free list (double release)")
            });
            seen[slot as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> SlotRegion {
        SlotRegion::new(1000, 128 * 1024, 4)
    }

    #[test]
    fn geometry() {
        let r = region();
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.slot_sectors(), 256);
        assert_eq!(r.base(), 1000);
        assert_eq!(r.end(), 1000 + 4 * 256);
    }

    #[test]
    fn alloc_in_lba_order_then_release() {
        let mut r = region();
        assert_eq!(r.alloc(), Some(0));
        assert_eq!(r.alloc(), Some(1));
        assert_eq!(r.free_count(), 2);
        r.release(0);
        assert_eq!(r.free_count(), 3);
        assert_eq!(r.used_count(), 1);
        // Exhaust.
        while r.alloc().is_some() {}
        assert_eq!(r.alloc(), None);
    }

    #[test]
    fn extents_are_disjoint_and_slot_sized() {
        let r = region();
        let e0 = r.extent(0);
        let e1 = r.extent(1);
        assert_eq!(e0, Extent::new(1000, 256));
        assert_eq!(e1, Extent::new(1256, 256));
        assert!(!e0.overlaps(&e1));
        assert_eq!(e0.bytes(), 128 * 1024);
    }

    #[test]
    fn sub_extent_addresses_within_slot() {
        let r = region();
        // Entry 1 of a 20 KB-entry RB in slot 2.
        let e = r.sub_extent(2, 20_000, 20_000);
        let slot_start_bytes = (1000 + 2 * 256) * 512;
        assert_eq!(e.lba, (slot_start_bytes + 20_000) / 512);
        assert!(r.extent(2).contains(&e));
    }

    #[test]
    #[should_panic(expected = "exceeds slot")]
    fn sub_extent_overflow_panics() {
        let r = region();
        r.sub_extent(0, 120_000, 20_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn extent_of_bad_slot_panics() {
        region().extent(4);
    }
}
