//! Cache-level statistics — the measured side of the paper's Table I.

use simclock::SimDuration;

/// Counters for one entry family (results or inverted lists).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamilyStats {
    /// Served from memory (Table I situations S1/S2).
    pub mem_hits: u64,
    /// Served from SSD (S3/S4) — for lists, fully covered by the cached
    /// prefix.
    pub ssd_hits: u64,
    /// Lists only: partially served from SSD, remainder from HDD.
    pub partial_hits: u64,
    /// Not cached anywhere — computed/read from HDD (S8/S9).
    pub misses: u64,
    /// Entries admitted and written to SSD.
    pub ssd_admissions: u64,
    /// Entries the selection policy discarded instead of flushing.
    pub ssd_rejections: u64,
    /// Flushes avoided because a replaceable SSD copy was still valid
    /// (the paper's write-buffer dedup).
    pub rewrites_avoided: u64,
}

impl FamilyStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.mem_hits + self.ssd_hits + self.partial_hits + self.misses
    }

    /// Overall hit ratio: any level, full or partial.
    pub fn hit_ratio(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            (self.mem_hits + self.ssd_hits + self.partial_hits) as f64 / n as f64
        }
    }

    /// Memory-only hit ratio.
    pub fn mem_hit_ratio(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.mem_hits as f64 / n as f64
        }
    }
}

/// Statistics for the whole hybrid cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Result-entry family.
    pub results: FamilyStats,
    /// Inverted-list family.
    pub lists: FamilyStats,
    /// Intersection family (three-level mode; all zero otherwise).
    pub intersections: FamilyStats,
    /// Simulated time spent in SSD I/O issued by the cache.
    pub ssd_time: SimDuration,
    /// Bytes written to the SSD cache file.
    pub ssd_bytes_written: u64,
    /// Bytes read from the SSD cache file.
    pub ssd_bytes_read: u64,
    /// Trim commands issued to the SSD.
    pub trims: u64,
}

impl CacheStats {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Combined hit ratio over both families.
    pub fn overall_hit_ratio(&self) -> f64 {
        let hits = self.results.mem_hits
            + self.results.ssd_hits
            + self.results.partial_hits
            + self.lists.mem_hits
            + self.lists.ssd_hits
            + self.lists.partial_hits;
        let n = self.results.lookups() + self.lists.lookups();
        if n == 0 {
            0.0
        } else {
            hits as f64 / n as f64
        }
    }

    /// Zero everything.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_ratios() {
        let f = FamilyStats {
            mem_hits: 50,
            ssd_hits: 25,
            partial_hits: 5,
            misses: 20,
            ..Default::default()
        };
        assert_eq!(f.lookups(), 100);
        assert!((f.hit_ratio() - 0.80).abs() < 1e-12);
        assert!((f.mem_hit_ratio() - 0.50).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.overall_hit_ratio(), 0.0);
        assert_eq!(s.results.hit_ratio(), 0.0);
    }

    #[test]
    fn overall_combines_families() {
        let mut s = CacheStats::new();
        s.results.mem_hits = 10;
        s.results.misses = 10;
        s.lists.ssd_hits = 20;
        s.lists.misses = 0;
        assert!((s.overall_hit_ratio() - 0.75).abs() < 1e-12);
        s.reset();
        assert_eq!(s.overall_hit_ratio(), 0.0);
    }
}
