//! The dynamic scenario: TTL-based freshness (the paper's Sec. IV-B).
//!
//! The paper evaluates the static case and sketches the dynamic one:
//! "Suppose that each cached data has a 'TTL' (Time-to-Live); when the
//! cached data expire, the search engines will read the latest data from
//! HDD for computing." [`TtlTracker`] implements exactly that sketch: it
//! remembers when each cached key was (re)installed, answers whether it
//! is still fresh at a given instant, and hands the manager the expired
//! keys so both cache levels can drop them.

use fxmap::FxHashMap;
use std::hash::Hash;

use simclock::{SimDuration, SimTime};

/// Install-time registry with a fixed TTL.
#[derive(Debug, Clone)]
pub struct TtlTracker<K> {
    ttl: SimDuration,
    born: FxHashMap<K, SimTime>,
    /// Lookups answered from data that was still fresh.
    fresh_hits: u64,
    /// Lookups that found expired data (treated as misses).
    expirations: u64,
}

impl<K: Eq + Hash + Clone> TtlTracker<K> {
    /// Tracker with the given TTL.
    pub fn new(ttl: SimDuration) -> Self {
        TtlTracker {
            ttl,
            born: FxHashMap::default(),
            fresh_hits: 0,
            expirations: 0,
        }
    }

    /// The TTL.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Record (re-)installation of `key` at `now`.
    pub fn installed(&mut self, key: K, now: SimTime) {
        self.born.insert(key, now);
    }

    /// Whether `key`'s data is fresh at `now`. Keys never installed are
    /// treated as fresh (they were never cached, so nothing can be
    /// stale); counting happens only for tracked keys.
    pub fn check(&mut self, key: &K, now: SimTime) -> bool {
        match self.born.get(key) {
            None => true,
            Some(&born) => {
                if now.since(born) <= self.ttl {
                    self.fresh_hits += 1;
                    true
                } else {
                    self.expirations += 1;
                    false
                }
            }
        }
    }

    /// Forget a key (its cache entries were dropped).
    pub fn forget(&mut self, key: &K) {
        self.born.remove(key);
    }

    /// `(fresh_hits, expirations)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.fresh_hits, self.expirations)
    }

    /// Tracked keys.
    pub fn len(&self) -> usize {
        self.born.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.born.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn fresh_until_ttl_elapses() {
        let mut tr = TtlTracker::new(SimDuration::from_millis(10));
        tr.installed("k", t(0));
        assert!(tr.check(&"k", t(5)));
        assert!(tr.check(&"k", t(10)), "boundary is inclusive");
        assert!(!tr.check(&"k", t(11)));
        assert_eq!(tr.stats(), (2, 1));
    }

    #[test]
    fn untracked_keys_are_fresh_and_uncounted() {
        let mut tr: TtlTracker<u64> = TtlTracker::new(SimDuration::from_millis(1));
        assert!(tr.check(&9, t(1_000)));
        assert_eq!(tr.stats(), (0, 0));
    }

    #[test]
    fn reinstall_resets_the_clock() {
        let mut tr = TtlTracker::new(SimDuration::from_millis(10));
        tr.installed(1u32, t(0));
        assert!(!tr.check(&1, t(20)));
        tr.installed(1u32, t(20));
        assert!(tr.check(&1, t(25)));
    }

    #[test]
    fn forget_removes_tracking() {
        let mut tr = TtlTracker::new(SimDuration::from_millis(10));
        tr.installed(1u32, t(0));
        tr.forget(&1);
        assert!(tr.is_empty());
        assert!(tr.check(&1, t(1_000)), "forgotten keys read as fresh");
    }
}
