//! Seeded-corruption tests: each validator must actually *fire*.
//!
//! The equivalence suites prove the validators stay silent on healthy
//! runs; these tests prove the silence means something. Every scenario
//! re-creates one of the paper's consistency hazards through a
//! `#[doc(hidden)]` corruption hook — IREN counter drift against the RB
//! validity bitmap (Sec. VI-C), an out-of-order entry-state transition
//! (free → normal → replaceable cycle, Sec. VI-B), an RB whose geometry
//! breaks the 128 KB aligned-write rule (Sec. VI-A) — and asserts the
//! matching machine-greppable invariant shows up in the report.

use hybridcache::ssd::{EntryState, ListStore, ResultStore, SlotRegion};
use invariant::Validate;
use simclock::SimDuration;
use storagecore::RamDisk;

const ENTRY: u64 = 20_000;
const BLOCK: u64 = 128 * 1024;

fn device() -> RamDisk {
    RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10))
}

/// The invariant names a structure currently violates (empty = clean).
fn fired<T: Validate>(x: &T) -> Vec<&'static str> {
    let mut report = invariant::Report::new();
    x.validate(&mut report);
    report.violations().iter().map(|v| v.invariant).collect()
}

fn result_store(static_frac: f64) -> ResultStore<u32> {
    ResultStore::new(SlotRegion::new(0, BLOCK, 4), 6, ENTRY, true, 2, static_frac)
}

#[test]
fn iren_counter_drift_trips_the_bitmap_check() {
    let mut s = result_store(0.0);
    let mut dev = device();
    for id in 0..6 {
        s.offer(id, id as u32, 1, &mut dev);
    }
    assert!(fired(&s).is_empty(), "healthy store must validate clean");
    // Skew the incrementally maintained IREN without touching the bitmap:
    // exactly the silent counter drift the paper's replacement policy
    // would act on (evicting the wrong RB) if nothing cross-checked it.
    s.debug_corrupt_iren(0, 1);
    let hit = fired(&s);
    assert!(
        hit.contains(&"iren-bitmap-agree"),
        "expected iren-bitmap-agree, got {hit:?}"
    );
}

#[test]
fn forced_state_transition_trips_the_state_machine() {
    let mut s = result_store(0.5); // 2 of 4 slots static
    let mut dev = device();
    let seeds: Vec<(u64, u32, u64)> = (100..112).map(|q| (q, q as u32, 9)).collect();
    s.seed_static(seeds, &mut dev);
    assert!(fired(&s).is_empty(), "healthy store must validate clean");
    // Pinned static entries may never leave Normal; forcing one
    // replaceable reproduces the out-of-order state transition.
    s.debug_force_state(100, EntryState::Replaceable);
    let hit = fired(&s);
    assert!(
        hit.contains(&"state-machine"),
        "expected state-machine, got {hit:?}"
    );
}

#[test]
fn unaligned_rb_geometry_trips_the_alignment_check() {
    let mut s = result_store(0.0);
    let mut dev = device();
    for id in 0..6 {
        s.offer(id, id as u32, 1, &mut dev);
    }
    assert!(fired(&s).is_empty(), "healthy store must validate clean");
    // Grow the per-entry footprint past what packs into one aligned
    // 128 KB slot: every subsequent RB write would straddle a block
    // boundary — the unaligned-write hazard of Sec. VI-A.
    s.debug_corrupt_entry_bytes(BLOCK);
    let hit = fired(&s);
    assert!(
        hit.contains(&"rb-write-alignment"),
        "expected rb-write-alignment, got {hit:?}"
    );
}

#[test]
fn list_store_pinned_entry_transition_fires_too() {
    let mut s: ListStore<u64> = ListStore::new(SlotRegion::new(0, BLOCK, 8), BLOCK, true, 2, 0.5);
    let mut dev = device();
    s.seed_static(vec![(7u64, 2, 2 * BLOCK - 64, 11)], &mut dev);
    assert!(fired(&s).is_empty(), "healthy store must validate clean");
    s.debug_force_state(7, EntryState::Replaceable);
    let hit = fired(&s);
    assert!(
        hit.contains(&"state-machine"),
        "expected state-machine, got {hit:?}"
    );
}
