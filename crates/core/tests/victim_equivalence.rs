//! Indexed-vs-scan victim-selection equivalence.
//!
//! Every store carries two victim-selection paths: the seed's linear
//! scans (`VictimSelection::Scan`, kept verbatim as the reference) and
//! the incremental priority indexes (`VictimSelection::Indexed`, the
//! default). These property tests drive a Scan store and an Indexed
//! store with identical operation sequences — across window sizes,
//! policies and (at the manager level) TTL interleavings — and require
//! *identical observable behaviour at every step*: the same hits, the
//! same evictions in the same order, the same latencies, the same
//! counters. Victim choice is the only thing the two paths could
//! disagree on, so step-wise equality of all outputs proves the indexed
//! path picks the exact same victims as the seed's scans.

use hybridcache::mem::{ListMeta, MemListCache};
use hybridcache::ssd::{ListStore, ResultStore, SlotRegion};
use hybridcache::{CacheManager, CachingScheme, HybridConfig, PolicyKind, VictimSelection};
use invariant::Validate;
use proptest::prelude::*;
use simclock::{SimDuration, SimTime};
use storagecore::RamDisk;

const BLOCK: u64 = 128 * 1024;

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Cblru),
        Just(PolicyKind::Cbslru {
            static_fraction: 0.25
        }),
    ]
}

fn device() -> RamDisk {
    RamDisk::with_capacity_bytes(64 << 20, SimDuration::from_micros(10))
}

// ---------------------------------------------------------------------
// L1 inverted-list cache: lowest-EV-in-window victims (Fig. 12)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum MemOp {
    /// (term, size units, pu percent)
    Insert(u32, u64, u8),
    /// (term, needed units, pu percent)
    Touch(u32, u64, u8),
    Remove(u32),
}

fn mem_ops() -> impl Strategy<Value = Vec<MemOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..12, 1u64..9, any::<u8>()).prop_map(|(t, s, p)| MemOp::Insert(t, s, p)),
            (0u32..12, 0u64..9, any::<u8>()).prop_map(|(t, s, p)| MemOp::Touch(t, s, p)),
            (0u32..12).prop_map(MemOp::Remove),
        ],
        1..150,
    )
}

fn pu(percent: u8) -> f64 {
    (percent % 100 + 1) as f64 / 100.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mem_list_indexed_matches_scan(
        ops in mem_ops(),
        window in 0usize..6,
        policy in policies(),
    ) {
        // Audit every mutation boundary for the whole sequence (debug
        // builds validate inside insert/touch/remove via `audit!`).
        invariant::force_enable();
        let capacity = 6 * 1024; // a handful of entries at 256-byte units
        let mut indexed = MemListCache::new(capacity, policy, window, 1024);
        let mut scan = MemListCache::new(capacity, policy, window, 1024);
        scan.set_victim_selection(VictimSelection::Scan);
        prop_assert_eq!(indexed.victim_selection(), VictimSelection::Indexed);
        prop_assert_eq!(scan.victim_selection(), VictimSelection::Scan);

        for op in ops {
            match op {
                MemOp::Insert(t, units, p) => {
                    if indexed.peek(t).is_some() {
                        continue; // insert asserts on cached keys
                    }
                    let meta = ListMeta {
                        si_bytes: units * 256,
                        pu: pu(p),
                        freq: 1,
                        full_bytes: units * 512,
                    };
                    // Same victims, in the same selection order.
                    prop_assert_eq!(indexed.insert(t, meta), scan.insert(t, meta));
                }
                MemOp::Touch(t, units, p) => {
                    let a = indexed.touch(t, units * 256, pu(p));
                    let b = scan.touch(t, units * 256, pu(p));
                    prop_assert_eq!(a, b);
                    // Prefix growth displaces the same entries.
                    prop_assert_eq!(indexed.drain_evicted(), scan.drain_evicted());
                }
                MemOp::Remove(t) => {
                    prop_assert_eq!(indexed.remove(t), scan.remove(t));
                }
            }
            prop_assert_eq!(indexed.len(), scan.len());
            prop_assert_eq!(indexed.used_bytes(), scan.used_bytes());
            for t in 0u32..12 {
                prop_assert_eq!(indexed.peek(t), scan.peek(t), "meta diverged for term {}", t);
            }
        }
        for (arm, cache) in [("indexed", &indexed), ("scan", &scan)] {
            let report = cache.validation_report();
            prop_assert!(report.is_clean(), "{} arm: {}", arm, report.summary());
        }
    }
}

// ---------------------------------------------------------------------
// L2 result store: max-IREN result-block victims (Fig. 11)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum RcOp {
    Offer(u64, u64),
    Lookup(u64, bool),
    Invalidate(u64),
}

fn rc_ops() -> impl Strategy<Value = Vec<RcOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..16, 1u64..6).prop_map(|(id, f)| RcOp::Offer(id, f)),
            (0u64..16, any::<bool>()).prop_map(|(id, m)| RcOp::Lookup(id, m)),
            (0u64..16).prop_map(RcOp::Invalidate),
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn result_store_indexed_matches_scan(
        ops in rc_ops(),
        slots in 2u32..6,
        entries_per_rb in 2usize..4,
        window in 0usize..4,
        cost_based in any::<bool>(),
    ) {
        invariant::force_enable();
        let entry_bytes = 40_000u64; // 2–3 entries fit a 128 KB RB
        let mk = || {
            ResultStore::<u64>::new(
                SlotRegion::new(0, BLOCK, slots),
                entries_per_rb,
                entry_bytes,
                cost_based,
                window,
                0.0,
            )
        };
        let mut indexed = mk();
        let mut scan = mk();
        scan.set_victim_selection(VictimSelection::Scan);
        let (mut dev_a, mut dev_b) = (device(), device());

        for op in ops {
            match op {
                RcOp::Offer(id, freq) => {
                    let a = indexed.offer(id, id * 10, freq, &mut dev_a);
                    let b = scan.offer(id, id * 10, freq, &mut dev_b);
                    prop_assert_eq!(a, b, "offer latency diverged for {}", id);
                }
                RcOp::Lookup(id, mark) => {
                    let a = indexed.lookup(id, &mut dev_a, mark);
                    let b = scan.lookup(id, &mut dev_b, mark);
                    prop_assert_eq!(a, b, "lookup diverged for {}", id);
                }
                RcOp::Invalidate(id) => {
                    let a = indexed.invalidate(id, &mut dev_a);
                    let b = scan.invalidate(id, &mut dev_b);
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(indexed.len(), scan.len());
            prop_assert_eq!(indexed.stats(), scan.stats());
            for id in 0u64..16 {
                prop_assert_eq!(
                    indexed.contains(id),
                    scan.contains(id),
                    "membership diverged for {}", id
                );
                prop_assert_eq!(indexed.buffered(id), scan.buffered(id));
            }
        }
        for (arm, store) in [("indexed", &indexed), ("scan", &scan)] {
            let report = store.validation_report();
            prop_assert!(report.is_clean(), "{} arm: {}", arm, report.summary());
        }
    }
}

// ---------------------------------------------------------------------
// L2 list store: replaceable-first / size-match victim cascade (Fig. 13)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum IcOp {
    /// (term, blocks, bytes short of full blocks, freq)
    Offer(u32, u64, u64, u64),
    /// (term, needed units, mark replaceable)
    Lookup(u32, u64, bool),
    Invalidate(u32),
}

fn ic_ops() -> impl Strategy<Value = Vec<IcOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..10, 1u64..4, 0u64..BLOCK, 1u64..6)
                .prop_map(|(t, n, d, f)| IcOp::Offer(t, n, d, f)),
            (0u32..10, 1u64..6, any::<bool>()).prop_map(|(t, n, m)| IcOp::Lookup(t, n, m)),
            (0u32..10).prop_map(IcOp::Invalidate),
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn list_store_indexed_matches_scan(
        ops in ic_ops(),
        blocks in 4u32..10,
        window in 0usize..4,
        cost_based in any::<bool>(),
    ) {
        invariant::force_enable();
        let mk = || {
            ListStore::<u32>::new(SlotRegion::new(0, BLOCK, blocks), BLOCK, cost_based, window, 0.0)
        };
        let mut indexed = mk();
        let mut scan = mk();
        scan.set_victim_selection(VictimSelection::Scan);
        let (mut dev_a, mut dev_b) = (device(), device());

        for op in ops {
            match op {
                IcOp::Offer(t, n, short, freq) => {
                    let bytes = n * BLOCK - short.min(BLOCK - 1);
                    let a = indexed.offer(t, n, bytes, freq, &mut dev_a);
                    let b = scan.offer(t, n, bytes, freq, &mut dev_b);
                    prop_assert_eq!(a, b, "offer diverged for term {}", t);
                }
                IcOp::Lookup(t, units, mark) => {
                    let a = indexed.lookup(t, units * 16 * 1024, &mut dev_a, mark);
                    let b = scan.lookup(t, units * 16 * 1024, &mut dev_b, mark);
                    prop_assert_eq!(a, b, "lookup diverged for term {}", t);
                }
                IcOp::Invalidate(t) => {
                    let a = indexed.invalidate(t, &mut dev_a);
                    let b = scan.invalidate(t, &mut dev_b);
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(indexed.len(), scan.len());
            prop_assert_eq!(indexed.stats(), scan.stats());
            for t in 0u32..10 {
                prop_assert_eq!(
                    indexed.cached_bytes(t),
                    scan.cached_bytes(t),
                    "cached bytes diverged for term {}", t
                );
            }
        }
        for (arm, store) in [("indexed", &indexed), ("scan", &scan)] {
            let report = store.validation_report();
            prop_assert!(report.is_clean(), "{} arm: {}", arm, report.summary());
        }
    }
}

// ---------------------------------------------------------------------
// Whole manager under TTL interleavings
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum MgrOp {
    /// (query id, clock advance in µs)
    Result(u64, u64),
    /// (term, needed units, pu percent, clock advance in µs)
    List(u32, u64, u8, u64),
}

fn mgr_ops() -> impl Strategy<Value = Vec<MgrOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..10, 0u64..80).prop_map(|(id, dt)| MgrOp::Result(id, dt)),
            (0u32..10, 1u64..6, any::<u8>(), 0u64..80)
                .prop_map(|(t, n, p, dt)| MgrOp::List(t, n, p, dt)),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn manager_indexed_matches_scan_under_ttl(
        ops in mgr_ops(),
        window in 0usize..4,
        policy in policies(),
        ttl_us in 50u64..400,
        with_ttl in any::<bool>(),
    ) {
        invariant::force_enable();
        let cfg = HybridConfig {
            ttl: with_ttl.then(|| SimDuration::from_micros(ttl_us)),
            mem_result_bytes: 40_000,
            mem_list_bytes: 2 * BLOCK,
            ssd_result_bytes: 4 * BLOCK,
            ssd_list_bytes: 8 * BLOCK,
            block_bytes: BLOCK,
            result_entry_bytes: 20_000,
            window,
            tev: if policy.is_cost_based() { 0.5 } else { 0.0 },
            result_freq_threshold: if policy.is_cost_based() { 2 } else { 0 },
            policy,
            scheme: CachingScheme::Hybrid,
            ssd_base_lba: 0,
            intersections: None,
            admission: hybridcache::AdmissionConfig::static_default(),
        };
        let mut indexed: CacheManager<u64, RamDisk> = CacheManager::new(cfg.clone(), device());
        let mut scan: CacheManager<u64, RamDisk> = CacheManager::new(cfg, device());
        scan.set_victim_selection(VictimSelection::Scan);

        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                MgrOp::Result(id, dt) => {
                    now += SimDuration::from_micros(dt);
                    indexed.set_now(now);
                    scan.set_now(now);
                    let a = indexed.lookup_result(id);
                    let b = scan.lookup_result(id);
                    prop_assert_eq!(&a, &b, "result lookup diverged for {}", id);
                    if a.0.is_none() {
                        // Miss on both: complete the query identically.
                        prop_assert_eq!(
                            indexed.complete_result(id, id * 7),
                            scan.complete_result(id, id * 7)
                        );
                    }
                }
                MgrOp::List(t, units, p, dt) => {
                    now += SimDuration::from_micros(dt);
                    indexed.set_now(now);
                    scan.set_now(now);
                    let needed = units * 16 * 1024;
                    let a = indexed.lookup_list(t as u64, needed, needed * 2, pu(p));
                    let b = scan.lookup_list(t as u64, needed, needed * 2, pu(p));
                    prop_assert_eq!(a, b, "list lookup diverged for term {}", t);
                }
            }
            prop_assert_eq!(indexed.stats(), scan.stats());
        }
        prop_assert_eq!(indexed.store_stats().0, scan.store_stats().0);
        prop_assert_eq!(indexed.store_stats().1, scan.store_stats().1);
        prop_assert_eq!(indexed.ttl_stats(), scan.ttl_stats());
        for (arm, mgr) in [("indexed", &indexed), ("scan", &scan)] {
            let report = mgr.validation_report();
            prop_assert!(report.is_clean(), "{} arm: {}", arm, report.summary());
        }
    }
}
