//! Document-partitioned cluster simulation.
//!
//! The paper's introduction motivates the whole problem with scale:
//! "large search engines need to process hundreds of queries per second
//! on collections of millions of documents", served by many index
//! servers. [`SearchCluster`] simulates that deployment shape: the
//! collection is document-partitioned over `n` shards, each shard is a
//! complete [`SearchEngine`] (own caches, own SSD, own index disk), every
//! query is broadcast to all shards, and the per-query response is the
//! **slowest shard** plus a merge step — the classic scatter-gather
//! latency model. Caching wins on a shard therefore only help the query
//! when *every* shard wins, which is exactly why result/list caching
//! matters more, not less, at cluster scale (tail latency).

use simclock::{RunningStats, SimDuration};
use workload::{Query, QueryLog, QueryLogSpec};

use crate::config::EngineConfig;
use crate::engine::SearchEngine;
use crate::report::RunReport;

/// Cluster-level measurements.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Queries executed.
    pub queries: u64,
    /// Mean scatter-gather response time (max over shards + merge).
    pub mean_response: SimDuration,
    /// Cluster throughput in queries per second of virtual time.
    pub throughput_qps: f64,
    /// Mean of the *fastest* shard per query — the gap to `mean_response`
    /// is the tail-latency cost of fan-out.
    pub mean_fastest_shard: SimDuration,
    /// Per-shard run reports.
    pub shards: Vec<RunReport>,
}

impl ClusterReport {
    /// Mean hit ratio across shards.
    pub fn mean_hit_ratio(&self) -> f64 {
        if self.shards.is_empty() {
            return 0.0;
        }
        self.shards.iter().map(RunReport::hit_ratio).sum::<f64>() / self.shards.len() as f64
    }
}

/// A document-partitioned search cluster.
#[derive(Debug)]
pub struct SearchCluster {
    shards: Vec<SearchEngine>,
    log: QueryLog,
    merge_cost_per_shard: SimDuration,
    response: RunningStats,
    fastest: RunningStats,
    clock: SimDuration,
    queries_run: u64,
}

impl SearchCluster {
    /// Build `n` shards, each holding `config.docs / n` documents with a
    /// shard-specific seed. The query log is shared (vocabulary of the
    /// shard corpus), modelling a front-end broadcasting to its index
    /// servers.
    pub fn new(config: EngineConfig, n: usize) -> Self {
        assert!(n >= 1, "a cluster needs at least one shard");
        let per_shard = (config.docs / n as u64).max(1_000);
        let shards: Vec<SearchEngine> = (0..n)
            .map(|i| {
                let mut c = config.clone();
                c.docs = per_shard;
                c.seed = config.seed.wrapping_add(i as u64 * 0x9E37);
                SearchEngine::new(c)
            })
            .collect();
        // Share one log across shards: use the smallest vocabulary so
        // every term resolves everywhere.
        let vocab = shards
            .iter()
            .map(|s| searchidx::IndexReader::num_terms(s.index()))
            .min()
            .expect("at least one shard");
        let log = QueryLog::new(QueryLogSpec::aol_like(vocab, config.seed ^ 0xC1A5));
        SearchCluster {
            shards,
            log,
            merge_cost_per_shard: SimDuration::from_micros(200),
            response: RunningStats::new(),
            fastest: RunningStats::new(),
            clock: SimDuration::ZERO,
            queries_run: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Broadcast one query; returns the scatter-gather response time.
    pub fn execute(&mut self, query: &Query) -> SimDuration {
        let mut slowest = SimDuration::ZERO;
        let mut fastest = SimDuration::from_nanos(u64::MAX);
        for shard in &mut self.shards {
            let t = shard.execute(query);
            slowest = slowest.max(t);
            fastest = fastest.min(t);
        }
        let response = slowest + self.merge_cost_per_shard * self.shards.len() as u64;
        self.response.push_duration(response);
        self.fastest.push_duration(fastest);
        self.clock += response;
        self.queries_run += 1;
        response
    }

    /// Run `n` queries from the shared log.
    pub fn run(&mut self, n: usize) -> ClusterReport {
        let queries: Vec<Query> = self.log.stream(n);
        let before = self.queries_run;
        let t0 = self.clock;
        for q in &queries {
            self.execute(q);
        }
        let elapsed = self.clock - t0;
        let ran = self.queries_run - before;
        ClusterReport {
            queries: ran,
            mean_response: self.response.mean_duration(),
            throughput_qps: if elapsed == SimDuration::ZERO {
                0.0
            } else {
                ran as f64 / elapsed.as_secs_f64()
            },
            mean_fastest_shard: self.fastest.mean_duration(),
            shards: self
                .shards
                .iter_mut()
                .map(|s| s.run_queries(&[]))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexPlacement;
    use hybridcache::{HybridConfig, PolicyKind};

    const DOCS: u64 = 40_000;

    #[test]
    fn cluster_runs_and_reports() {
        let mut c = SearchCluster::new(
            EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 5),
            4,
        );
        assert_eq!(c.shards(), 4);
        let r = c.run(100);
        assert_eq!(r.queries, 100);
        assert!(r.throughput_qps > 0.0);
        assert_eq!(r.shards.len(), 4);
    }

    #[test]
    fn fanout_response_is_max_plus_merge() {
        // The cluster response must never be faster than its fastest
        // shard, and the fan-out gap must be visible.
        let mut c = SearchCluster::new(
            EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 7),
            4,
        );
        let r = c.run(200);
        assert!(r.mean_response > r.mean_fastest_shard);
    }

    #[test]
    fn sharding_cuts_per_query_latency() {
        // Smaller shards scan less per query: a 4-shard cluster answers
        // faster than a single engine on the whole collection (at the
        // price of 4x hardware). The effect needs a collection big enough
        // that per-query work actually scales with the shard size (above
        // the accumulator-budget floor).
        let big = 400_000;
        let single = {
            let mut c = SearchCluster::new(
                EngineConfig::no_cache(big, IndexPlacement::Hdd, 9),
                1,
            );
            c.run(80).mean_response
        };
        let sharded = {
            let mut c = SearchCluster::new(
                EngineConfig::no_cache(big, IndexPlacement::Hdd, 9),
                4,
            );
            c.run(80).mean_response
        };
        assert!(
            sharded < single,
            "4 shards {sharded} must beat 1 shard {single}"
        );
    }

    #[test]
    fn cached_cluster_hits_on_every_shard() {
        let cache = HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru);
        let mut c = SearchCluster::new(EngineConfig::cached(DOCS, cache, 11), 3);
        let r = c.run(600);
        assert!(r.mean_hit_ratio() > 0.15, "hit {}", r.mean_hit_ratio());
        for shard in &r.shards {
            assert!(shard.cache.is_some());
        }
    }
}
