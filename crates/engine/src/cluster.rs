//! Document-partitioned cluster simulation.
//!
//! The paper's introduction motivates the whole problem with scale:
//! "large search engines need to process hundreds of queries per second
//! on collections of millions of documents", served by many index
//! servers. [`SearchCluster`] simulates that deployment shape: the
//! collection is document-partitioned over `n` shards, each shard is a
//! complete [`SearchEngine`] (own caches, own SSD, own index disk), every
//! query is broadcast to all shards, and the per-query response is the
//! **slowest shard** plus a merge step — the classic scatter-gather
//! latency model. Caching wins on a shard therefore only help the query
//! when *every* shard wins, which is exactly why result/list caching
//! matters more, not less, at cluster scale (tail latency).
//!
//! # Execution arms
//!
//! Shards are fully independent (no shared mutable state), so the
//! cluster offers two execution arms behind [`ClusterExecution`],
//! mirroring the `VictimSelection` pattern: the seed's sequential
//! per-query shard loop stays as the `Sequential` reference, and
//! `Parallel` runs a **persistent worker pool** — long-lived threads fed
//! query batches over channels, each owning a disjoint set of shard
//! engines exclusively (no thread spawn per query, no locking around an
//! engine). Workers return per-query shard latencies and the coordinator
//! performs the scatter-gather merge (max-over-shards + merge cost) in
//! query order, so every simulated figure — [`ClusterReport`], per-shard
//! [`RunReport`]s, the virtual clock — is **bit-identical** across arms
//! and worker counts; only wall-clock moves. The equivalence test in
//! `crates/engine/tests/cluster_equivalence.rs` drives both arms through
//! identical query streams to enforce exactly that.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use simclock::{RunningStats, SimDuration};
use workload::{Query, QueryLog, QueryLogSpec};

use crate::config::EngineConfig;
use crate::engine::SearchEngine;
use crate::report::RunReport;

/// How [`SearchCluster`] visits its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterExecution {
    /// The reference arm: visit every shard in turn on the calling
    /// thread, one query at a time (the seed's loop).
    Sequential,
    /// The optimized arm: a persistent pool of `workers` long-lived
    /// threads (`0` = one per shard), each owning a disjoint set of
    /// shard engines, fed query batches over channels.
    Parallel {
        /// Pool size; clamped to the shard count, `0` means one worker
        /// per shard.
        workers: usize,
    },
}

/// Cluster-level measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Queries executed.
    pub queries: u64,
    /// Mean scatter-gather response time (max over shards + merge).
    pub mean_response: SimDuration,
    /// Cluster throughput in queries per second of virtual time.
    pub throughput_qps: f64,
    /// Mean of the *fastest* shard per query — the gap to `mean_response`
    /// is the tail-latency cost of fan-out.
    pub mean_fastest_shard: SimDuration,
    /// Per-shard run reports.
    pub shards: Vec<RunReport>,
}

impl ClusterReport {
    /// Mean hit ratio across shards.
    pub fn mean_hit_ratio(&self) -> f64 {
        if self.shards.is_empty() {
            return 0.0;
        }
        self.shards.iter().map(RunReport::hit_ratio).sum::<f64>() / self.shards.len() as f64
    }
}

/// A batch job for one worker. The query slice is shared (`Arc`), so a
/// broadcast is `workers` refcount bumps, not `workers` copies.
enum Job {
    /// Execute the batch on every owned shard, in shard order.
    Batch(Arc<Vec<Query>>),
    /// Snapshot every owned shard's cumulative [`RunReport`].
    Report,
    /// Run the structural invariant validators on every owned shard.
    Validate,
}

/// One worker's answer to a [`Job`].
enum Reply {
    /// Per owned shard: `(shard id, per-query latencies)`, plus how long
    /// the worker was busy executing (wall time inside the batch).
    Batch {
        latencies: Vec<(usize, Vec<SimDuration>)>,
        busy: Duration,
    },
    /// Per owned shard: `(shard id, report snapshot)`.
    Report(Vec<(usize, RunReport)>),
    /// Per owned shard: `(shard id, invariant audit findings)`.
    Validate(Vec<(usize, invariant::Report)>),
}

/// Body of one pool thread: owns its engines exclusively for the life of
/// the pool and hands them back (via the join handle) on shutdown.
fn worker_main(
    mut engines: Vec<(usize, SearchEngine)>,
    jobs: Receiver<Job>,
    replies: Sender<Reply>,
) -> Vec<(usize, SearchEngine)> {
    while let Ok(job) = jobs.recv() {
        let reply = match job {
            Job::Batch(queries) => {
                let t0 = Instant::now();
                let latencies = engines
                    .iter_mut()
                    .map(|(id, engine)| (*id, queries.iter().map(|q| engine.execute(q)).collect()))
                    .collect();
                Reply::Batch {
                    latencies,
                    busy: t0.elapsed(),
                }
            }
            Job::Report => Reply::Report(engines.iter().map(|(id, e)| (*id, e.report())).collect()),
            Job::Validate => Reply::Validate(
                engines
                    .iter()
                    .map(|(id, e)| (*id, e.validation_report()))
                    .collect(),
            ),
        };
        if replies.send(reply).is_err() {
            break; // coordinator went away mid-job
        }
    }
    engines
}

/// Handle to one pool thread.
#[derive(Debug)]
struct Worker {
    /// `None` once the shutdown handshake has begun (dropping the sender
    /// is what ends the worker's receive loop).
    jobs: Option<Sender<Job>>,
    replies: Receiver<Reply>,
    handle: Option<JoinHandle<Vec<(usize, SearchEngine)>>>,
}

impl Worker {
    fn send(&self, job: Job) {
        self.jobs
            .as_ref()
            .expect("pool is live")
            .send(job)
            .expect("a cluster worker hung up");
    }

    fn recv(&self) -> Reply {
        self.replies.recv().expect("a cluster worker panicked")
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Disconnect first so the worker's receive loop ends, then join;
        // joining before dropping the sender would deadlock.
        self.jobs.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The persistent worker pool of the `Parallel` arm.
#[derive(Debug)]
struct WorkerPool {
    workers: Vec<Worker>,
    num_shards: usize,
    /// Cumulative busy time per worker across all batches — `max` over
    /// workers is the critical path a fully parallel machine would pay.
    busy: Vec<Duration>,
}

impl WorkerPool {
    /// Move `engines` into `workers` threads (0 = one per shard),
    /// round-robin so every worker owns an (almost) equal share.
    fn new(engines: Vec<SearchEngine>, workers: usize) -> Self {
        let num_shards = engines.len();
        let n = if workers == 0 { num_shards } else { workers }
            .min(num_shards)
            .max(1);
        let mut slots: Vec<Vec<(usize, SearchEngine)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, engine) in engines.into_iter().enumerate() {
            slots[i % n].push((i, engine));
        }
        let workers = slots
            .into_iter()
            .map(|owned| {
                let (job_tx, job_rx) = channel();
                let (reply_tx, reply_rx) = channel();
                let handle = std::thread::Builder::new()
                    .name("cluster-shard-worker".into())
                    .spawn(move || worker_main(owned, job_rx, reply_tx))
                    .expect("spawn cluster worker");
                Worker {
                    jobs: Some(job_tx),
                    replies: reply_rx,
                    handle: Some(handle),
                }
            })
            .collect::<Vec<_>>();
        let busy = vec![Duration::ZERO; workers.len()];
        WorkerPool {
            workers,
            num_shards,
            busy,
        }
    }

    fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Broadcast the batch and gather per-shard latency vectors, indexed
    /// by shard id.
    fn run_batch(&mut self, queries: Arc<Vec<Query>>) -> Vec<Vec<SimDuration>> {
        let n = queries.len();
        for worker in &self.workers {
            worker.send(Job::Batch(Arc::clone(&queries)));
        }
        let mut per_shard: Vec<Vec<SimDuration>> = vec![Vec::new(); self.num_shards];
        for (wi, worker) in self.workers.iter().enumerate() {
            match worker.recv() {
                Reply::Batch { latencies, busy } => {
                    self.busy[wi] += busy;
                    for (shard, lat) in latencies {
                        debug_assert_eq!(lat.len(), n);
                        per_shard[shard] = lat;
                    }
                }
                _ => unreachable!("batch job answered with a different reply"),
            }
        }
        per_shard
    }

    /// Snapshot every shard's cumulative report, in shard order.
    fn reports(&self) -> Vec<RunReport> {
        for worker in &self.workers {
            worker.send(Job::Report);
        }
        let mut out: Vec<Option<RunReport>> = (0..self.num_shards).map(|_| None).collect();
        for worker in &self.workers {
            match worker.recv() {
                Reply::Report(reports) => {
                    for (shard, report) in reports {
                        out[shard] = Some(report);
                    }
                }
                _ => unreachable!("report job answered with a different reply"),
            }
        }
        out.into_iter()
            .map(|r| r.expect("every shard reported"))
            .collect()
    }

    /// Audit every shard in place (the engines never leave their worker
    /// threads) and merge the findings.
    fn validation_report(&self) -> invariant::Report {
        for worker in &self.workers {
            worker.send(Job::Validate);
        }
        let mut merged = invariant::Report::new();
        for worker in &self.workers {
            match worker.recv() {
                Reply::Validate(reports) => {
                    for (_, report) in reports {
                        merged.absorb(report);
                    }
                }
                _ => unreachable!("validate job answered with a different reply"),
            }
        }
        merged
    }

    fn max_busy(&self) -> Duration {
        self.busy.iter().copied().max().unwrap_or_default()
    }

    fn busy(&self) -> &[Duration] {
        &self.busy
    }

    /// End the pool and recover the engines, in shard order.
    fn shutdown(self) -> Vec<SearchEngine> {
        let mut out: Vec<Option<SearchEngine>> = (0..self.num_shards).map(|_| None).collect();
        for mut worker in self.workers {
            worker.jobs.take(); // disconnect → worker loop ends
            let engines = worker
                .handle
                .take()
                .expect("worker joined once")
                .join()
                .unwrap_or_else(|_| panic!("a cluster worker panicked"));
            for (id, engine) in engines {
                out[id] = Some(engine);
            }
        }
        out.into_iter()
            .map(|e| e.expect("every shard came home"))
            .collect()
    }
}

/// Where the shard engines currently live.
#[derive(Debug)]
enum Backend {
    /// Engines on the calling thread (the seed path).
    Sequential(Vec<SearchEngine>),
    /// Engines moved into the persistent pool.
    Parallel(WorkerPool),
}

/// A document-partitioned search cluster.
#[derive(Debug)]
pub struct SearchCluster {
    backend: Backend,
    num_shards: usize,
    log: QueryLog,
    merge_cost_per_shard: SimDuration,
    response: RunningStats,
    fastest: RunningStats,
    clock: SimDuration,
    queries_run: u64,
}

impl SearchCluster {
    /// Build `n` shards, each holding `config.docs / n` documents with a
    /// shard-specific seed. The query log is shared (vocabulary of the
    /// shard corpus), modelling a front-end broadcasting to its index
    /// servers. Starts on the `Sequential` arm.
    pub fn new(config: EngineConfig, n: usize) -> Self {
        assert!(n >= 1, "a cluster needs at least one shard");
        let per_shard = (config.docs / n as u64).max(1_000);
        let shards: Vec<SearchEngine> = (0..n)
            .map(|i| {
                let mut c = config.clone();
                c.docs = per_shard;
                c.seed = config.seed.wrapping_add(i as u64 * 0x9E37);
                SearchEngine::new(c)
            })
            .collect();
        // Share one log across shards: use the smallest vocabulary so
        // every term resolves everywhere.
        let vocab = shards
            .iter()
            .map(|s| searchidx::IndexReader::num_terms(s.index()))
            .min()
            .expect("at least one shard");
        let log = QueryLog::new(QueryLogSpec::aol_like(vocab, config.seed ^ 0xC1A5));
        SearchCluster {
            num_shards: shards.len(),
            backend: Backend::Sequential(shards),
            log,
            merge_cost_per_shard: SimDuration::from_micros(200),
            response: RunningStats::new(),
            fastest: RunningStats::new(),
            clock: SimDuration::ZERO,
            queries_run: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.num_shards
    }

    /// The current execution arm (`Parallel` reports the clamped pool
    /// size actually in use).
    pub fn execution(&self) -> ClusterExecution {
        match &self.backend {
            Backend::Sequential(_) => ClusterExecution::Sequential,
            Backend::Parallel(pool) => ClusterExecution::Parallel {
                workers: pool.workers(),
            },
        }
    }

    /// Switch execution arms. Engines migrate between the calling thread
    /// and the worker pool with all cumulative state intact (caches,
    /// clocks, device wear), so the toggle is safe mid-run and the
    /// simulated figures never depend on when it happens.
    pub fn set_execution(&mut self, exec: ClusterExecution) {
        let engines = match std::mem::replace(&mut self.backend, Backend::Sequential(Vec::new())) {
            Backend::Sequential(engines) => engines,
            Backend::Parallel(pool) => pool.shutdown(),
        };
        self.backend = match exec {
            ClusterExecution::Sequential => Backend::Sequential(engines),
            ClusterExecution::Parallel { workers } => {
                Backend::Parallel(WorkerPool::new(engines, workers))
            }
        };
    }

    /// Cumulative busy time of the busiest pool worker — the wall-clock
    /// a machine with one core per worker would pay for the batches so
    /// far. `None` on the sequential arm.
    pub fn max_worker_busy(&self) -> Option<Duration> {
        match &self.backend {
            Backend::Sequential(_) => None,
            Backend::Parallel(pool) => Some(pool.max_busy()),
        }
    }

    /// Cumulative busy time of *every* pool worker, in worker order —
    /// the per-core utilization picture a serving report records so a
    /// timeshared single-core host is self-describing. `None` on the
    /// sequential arm.
    pub fn worker_busy(&self) -> Option<Vec<Duration>> {
        match &self.backend {
            Backend::Sequential(_) => None,
            Backend::Parallel(pool) => Some(pool.busy().to_vec()),
        }
    }

    /// Draw the next `n` queries from the shared log (the stream the
    /// front-end would broadcast). Public so harnesses can drive two
    /// clusters through one identical stream.
    pub fn stream(&mut self, n: usize) -> Vec<Query> {
        self.log.stream(n)
    }

    /// The shared query log. Arrival-process generators clone this so
    /// the open-loop front-end draws from the exact universe the shards
    /// were built for (every term resolves on every shard).
    pub fn log(&self) -> &QueryLog {
        &self.log
    }

    /// Fold one query's per-shard latencies into the cluster statistics
    /// and advance the virtual clock; returns the scatter-gather
    /// response. Always called in query order, which is what makes the
    /// two arms bit-identical.
    fn finish_query(&mut self, slowest: SimDuration, fastest: SimDuration) -> SimDuration {
        let response = slowest + self.merge_cost_per_shard * self.num_shards as u64;
        self.response.push_duration(response);
        self.fastest.push_duration(fastest);
        self.clock += response;
        self.queries_run += 1;
        response
    }

    /// Broadcast one query; returns the scatter-gather response time.
    pub fn execute(&mut self, query: &Query) -> SimDuration {
        let (slowest, fastest) = match &mut self.backend {
            Backend::Sequential(shards) => {
                let mut slowest = SimDuration::ZERO;
                let mut fastest = SimDuration::from_nanos(u64::MAX);
                for shard in shards.iter_mut() {
                    let t = shard.execute(query);
                    slowest = slowest.max(t);
                    fastest = fastest.min(t);
                }
                (slowest, fastest)
            }
            Backend::Parallel(pool) => {
                let per_shard = pool.run_batch(Arc::new(vec![query.clone()]));
                minmax(per_shard.iter().map(|lat| lat[0]))
            }
        };
        self.finish_query(slowest, fastest)
    }

    /// Broadcast a batch and return every query's scatter-gather
    /// response, in query order. This is [`SearchCluster::execute`] for
    /// a whole batch: the sequential arm replays the seed's query-major
    /// loop, the parallel arm pins the batch to the pool (shard-major)
    /// and merges in query order, so the responses — and every
    /// cumulative statistic they fold into — are bit-identical across
    /// arms. The serving front-end's batching layer dispatches through
    /// this, which is what makes its `OpenLoop` reference configuration
    /// (batch size 1, arrival order) collapse exactly onto the
    /// closed-loop path.
    pub fn execute_batch(&mut self, queries: &[Query]) -> Vec<SimDuration> {
        if matches!(self.backend, Backend::Sequential(_)) {
            return queries.iter().map(|q| self.execute(q)).collect();
        }
        if queries.is_empty() {
            return Vec::new();
        }
        let per_shard = match &mut self.backend {
            Backend::Parallel(pool) => pool.run_batch(Arc::new(queries.to_vec())),
            Backend::Sequential(_) => unreachable!("checked above"),
        };
        (0..queries.len())
            .map(|qi| {
                let (slowest, fastest) = minmax(per_shard.iter().map(|lat| lat[qi]));
                self.finish_query(slowest, fastest)
            })
            .collect()
    }

    /// Execute an explicit query stream and report. The sequential arm
    /// replays the seed's query-major loop; the parallel arm pins the
    /// whole batch to the pool (shard-major) and merges in query order —
    /// same figures either way.
    pub fn run_queries(&mut self, queries: &[Query]) -> ClusterReport {
        let before = self.queries_run;
        let t0 = self.clock;
        self.execute_batch(queries);
        let elapsed = self.clock - t0;
        let ran = self.queries_run - before;
        ClusterReport {
            queries: ran,
            mean_response: self.response.mean_duration(),
            throughput_qps: if elapsed == SimDuration::ZERO {
                0.0
            } else {
                ran as f64 / elapsed.as_secs_f64()
            },
            mean_fastest_shard: self.fastest.mean_duration(),
            shards: self.shard_reports(),
        }
    }

    /// Runs the structural invariant validators over every shard — on the
    /// sequential arm directly, on the parallel arm via a `Validate` job
    /// so the audit happens on the thread that owns each engine — and
    /// merges the findings into one report.
    pub fn validation_report(&self) -> invariant::Report {
        match &self.backend {
            Backend::Sequential(shards) => {
                let mut merged = invariant::Report::new();
                for shard in shards {
                    merged.absorb(shard.validation_report());
                }
                merged
            }
            Backend::Parallel(pool) => pool.validation_report(),
        }
    }

    /// Run `n` queries from the shared log.
    pub fn run(&mut self, n: usize) -> ClusterReport {
        let queries = self.stream(n);
        self.run_queries(&queries)
    }

    /// Snapshot every shard's cumulative report, in shard order.
    fn shard_reports(&mut self) -> Vec<RunReport> {
        match &mut self.backend {
            Backend::Sequential(shards) => shards.iter().map(SearchEngine::report).collect(),
            Backend::Parallel(pool) => pool.reports(),
        }
    }
}

/// `(max, min)` of a latency stream (empty streams keep the identities).
fn minmax(lats: impl Iterator<Item = SimDuration>) -> (SimDuration, SimDuration) {
    let mut slowest = SimDuration::ZERO;
    let mut fastest = SimDuration::from_nanos(u64::MAX);
    for t in lats {
        slowest = slowest.max(t);
        fastest = fastest.min(t);
    }
    (slowest, fastest)
}

/// Model-checked version of the worker-pool handoff protocol, exercised
/// by ci.sh's loom stage (`RUSTFLAGS="--cfg loom" cargo test -p engine
/// --lib loom_pool_model`). The pool's correctness claim is pure
/// ownership transfer: engines ride a channel *into* the worker thread,
/// every job/reply pair orders the worker's unsynchronized engine
/// mutations against the dispatcher, and join hands the engines (and all
/// their state) back. The models mirror those edges with loom's
/// race-checked cells — no `unsafe` needed, the checker validates access
/// *timing*, not memory itself.
#[cfg(all(test, loom))]
mod loom_pool_model {
    use loom::cell::UnsafeCell;
    use loom::sync::mpsc;
    use loom::thread;

    /// One worker owning one "engine" (an unsynchronized cell, exactly
    /// how `SearchEngine` rides the pool): dispatch two jobs, read both
    /// replies, shut down by dropping the job channel, and reclaim the
    /// engine through join. Every engine access must be ordered by those
    /// edges alone, on every schedule.
    #[test]
    fn engine_ownership_handoff_is_race_free() {
        loom::model(|| {
            let engine = UnsafeCell::new(0u64);
            // The dispatcher "warms" the engine before the pool exists
            // (SearchCluster runs sequentially until set_execution).
            engine.with_mut(|_| ());

            let (eng_tx, eng_rx) = mpsc::channel::<UnsafeCell<u64>>();
            let (job_tx, job_rx) = mpsc::channel::<u32>();
            let (reply_tx, reply_rx) = mpsc::channel::<u32>();
            let worker = thread::spawn(move || {
                let engine = eng_rx.recv().expect("pool construction sends the engine");
                let mut processed = 0u32;
                while let Ok(q) = job_rx.recv() {
                    // Unsynchronized engine mutation, ordered only by the
                    // job having arrived.
                    engine.with_mut(|_| ());
                    processed += q;
                    reply_tx.send(processed).unwrap();
                }
                // Disconnect = shutdown: ownership flows back via join.
                engine
            });

            eng_tx.send(engine).unwrap();
            job_tx.send(3).unwrap();
            assert_eq!(reply_rx.recv(), Ok(3));
            job_tx.send(4).unwrap();
            assert_eq!(reply_rx.recv(), Ok(7));
            drop(job_tx);
            let engine = worker.join().unwrap();
            // Reclaimed: the dispatcher may touch the engine again.
            engine.with_mut(|_| ());
        });
    }

    /// Scatter-gather across two workers sharing only the reply channel:
    /// each worker's engine stays private, and gathering both replies is
    /// enough for the dispatcher to proceed (`run_batch` joins nothing).
    #[test]
    fn scatter_gather_replies_are_ordered() {
        loom::model(|| {
            let (reply_tx, reply_rx) = mpsc::channel::<usize>();
            let workers: Vec<_> = (0..2)
                .map(|id| {
                    let reply_tx = reply_tx.clone();
                    let (job_tx, job_rx) = mpsc::channel::<()>();
                    let h = thread::spawn(move || {
                        let engine = UnsafeCell::new(0u64);
                        while job_rx.recv().is_ok() {
                            engine.with_mut(|_| ());
                            reply_tx.send(id).unwrap();
                        }
                    });
                    (job_tx, h)
                })
                .collect();
            drop(reply_tx);
            for (job_tx, _) in &workers {
                job_tx.send(()).unwrap();
            }
            let mut seen = [false; 2];
            for _ in 0..2 {
                seen[reply_rx.recv().expect("both workers reply")] = true;
            }
            assert!(seen[0] && seen[1], "one reply per dispatched job");
            for (job_tx, h) in workers {
                drop(job_tx);
                h.join().unwrap();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexPlacement;
    use hybridcache::{HybridConfig, PolicyKind};

    const DOCS: u64 = 40_000;

    #[test]
    fn cluster_runs_and_reports() {
        let mut c = SearchCluster::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 5), 4);
        assert_eq!(c.shards(), 4);
        assert_eq!(c.execution(), ClusterExecution::Sequential);
        let r = c.run(100);
        assert_eq!(r.queries, 100);
        assert!(r.throughput_qps > 0.0);
        assert_eq!(r.shards.len(), 4);
    }

    #[test]
    fn fanout_response_is_max_plus_merge() {
        // The cluster response must never be faster than its fastest
        // shard, and the fan-out gap must be visible.
        let mut c = SearchCluster::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 7), 4);
        let r = c.run(200);
        assert!(r.mean_response > r.mean_fastest_shard);
    }

    #[test]
    fn sharding_cuts_per_query_latency() {
        // Smaller shards scan less per query: a 4-shard cluster answers
        // faster than a single engine on the whole collection (at the
        // price of 4x hardware). The effect needs a collection big enough
        // that per-query work actually scales with the shard size (above
        // the accumulator-budget floor).
        let big = 400_000;
        let single = {
            let mut c = SearchCluster::new(EngineConfig::no_cache(big, IndexPlacement::Hdd, 9), 1);
            c.run(80).mean_response
        };
        let sharded = {
            let mut c = SearchCluster::new(EngineConfig::no_cache(big, IndexPlacement::Hdd, 9), 4);
            c.run(80).mean_response
        };
        assert!(
            sharded < single,
            "4 shards {sharded} must beat 1 shard {single}"
        );
    }

    #[test]
    fn cached_cluster_hits_on_every_shard() {
        let cache = HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru);
        let mut c = SearchCluster::new(EngineConfig::cached(DOCS, cache, 11), 3);
        let r = c.run(600);
        assert!(r.mean_hit_ratio() > 0.15, "hit {}", r.mean_hit_ratio());
        for shard in &r.shards {
            assert!(shard.cache.is_some());
        }
    }

    #[test]
    fn pool_clamps_worker_count_and_reports_arm() {
        let mut c = SearchCluster::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 5), 2);
        c.set_execution(ClusterExecution::Parallel { workers: 16 });
        assert_eq!(
            c.execution(),
            ClusterExecution::Parallel { workers: 2 },
            "pool never outnumbers the shards"
        );
        c.set_execution(ClusterExecution::Parallel { workers: 0 });
        assert_eq!(c.execution(), ClusterExecution::Parallel { workers: 2 });
        let r = c.run(50);
        assert_eq!(r.queries, 50);
        assert!(c.max_worker_busy().is_some());
    }

    #[test]
    fn engines_survive_a_round_trip_through_the_pool() {
        // Sequential → parallel → sequential: cumulative state (clock,
        // response stats) keeps accumulating across the migrations.
        let mut c = SearchCluster::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 13), 3);
        c.run(40);
        c.set_execution(ClusterExecution::Parallel { workers: 2 });
        c.run(40);
        c.set_execution(ClusterExecution::Sequential);
        let r = c.run(40);
        assert_eq!(r.queries, 40);
        assert_eq!(c.queries_run, 120);
    }
}
