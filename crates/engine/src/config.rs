//! Engine configuration and the CPU cost model.

use flashsim::ComputeParams;
use hybridcache::HybridConfig;
use searchidx::{PostingsBackend, TopKConfig};
use simclock::SimDuration;
use storagecore::{IoPath, SchedulerPolicy};

/// Where the index files live (the paper's "HDD" vs "SSD" index storage
/// variants of Figs. 15, 16(a) and 18(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPlacement {
    /// Index files on the mechanical disk (the usual configuration).
    Hdd,
    /// Index files directly on an SSD (the "replace HDD with SSD"
    /// comparison point).
    Ssd,
}

/// CPU-side costs of query processing. These make "response time" and
/// "throughput" well-defined on the virtual clock; the values are
/// calibrated to a mid-2000s Pentium Dual-Core like the paper's testbed.
#[derive(Debug, Clone, Copy)]
pub struct CpuCostModel {
    /// Fixed per-query cost (parse, dispatch, rank finalization).
    pub per_query: SimDuration,
    /// Cost per posting scored.
    pub per_posting: SimDuration,
    /// Cost per document assembled into the result page (snippets etc.).
    pub per_result_doc: SimDuration,
    /// Cost per byte served from the in-memory cache (bandwidth model).
    pub mem_per_kb: SimDuration,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel {
            per_query: SimDuration::from_micros(500),
            // Calibrated to the paper's testbed: Java Lucene 3.0 scoring
            // on a Pentium E2180 spends microseconds per posting, which
            // is what puts its uncached 5M-doc responses in the 100+ ms
            // band and makes raw SSD index storage "not obvious as
            // expected" (Fig. 15) — the CPU, not the seek, is the floor.
            per_posting: SimDuration::from_micros(8),
            per_result_doc: SimDuration::from_micros(10),
            mem_per_kb: SimDuration::from_nanos(100), // ~10 GB/s
        }
    }
}

impl CpuCostModel {
    /// Memory-service cost for `bytes`.
    pub fn mem_read(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.mem_per_kb.as_nanos() * bytes / 1024)
    }
}

/// How the engine keeps the cache coherent with a compaction merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionMode {
    /// Targeted: invalidate only the `(segment, term)` keys of the
    /// retired input segments, then re-offer the merged survivors under
    /// the output segment's key through the normal admission gate (the
    /// carried frequency is what earns them their slot back).
    #[default]
    Cooperative,
    /// Naive: drop every cached list on every merge. The trivially
    /// correct baseline `perf_regress`'s mutation arm compares against.
    InvalidateAll,
}

/// Knobs of the live (mutable) index arm.
#[derive(Debug, Clone, Default)]
pub struct LiveConfig {
    /// Segment lifecycle policy (seal threshold, compaction fan-in,
    /// write-segment growth strategy).
    pub segments: searchidx::SegmentPolicy,
    /// Cache-coherence strategy for compaction merges.
    pub compaction: CompactionMode,
}

/// Whether the index accepts mutations at run time.
///
/// `Frozen` is the seed behaviour, kept verbatim: one immutable index,
/// cache keys numerically equal to term ids. `Live` wraps the same base
/// corpus in a segmented [`searchidx::LiveIndex`]; until the first
/// mutation it delegates every read to the base, so a zero-ingest live
/// run is bit-identical to the frozen arm by construction (the
/// `mutation_equivalence` suite asserts it on every simulated figure).
#[derive(Debug, Clone, Default)]
pub enum IndexMutability {
    /// The read-only seed path.
    #[default]
    Frozen,
    /// The segmented write path: WAL + write segment + sealed segments +
    /// tombstones + background compaction.
    Live(LiveConfig),
}

impl IndexMutability {
    /// Whether this is the live arm.
    pub fn is_live(&self) -> bool {
        matches!(self, IndexMutability::Live(_))
    }
}

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Documents in the synthetic collection (the paper sweeps 1–5 M).
    pub docs: u64,
    /// Master seed for corpus, log and devices.
    pub seed: u64,
    /// The cache hierarchy; `None` runs the no-cache baseline (Fig. 15).
    pub cache: Option<HybridConfig>,
    /// Where the index files live.
    pub index_placement: IndexPlacement,
    /// Query-processing knobs.
    pub topk: TopKConfig,
    /// Which posting-list representation the processor scans. Both
    /// backends produce bit-identical simulated figures (`perf_regress`
    /// postings arm asserts it); `Blocked` is the fast default.
    pub postings: PostingsBackend,
    /// CPU cost model.
    pub cost: CpuCostModel,
    /// Capture the index-device I/O trace (Fig. 1(b)).
    pub capture_trace: bool,
    /// Stored-field (snippet) records to read from the doc store when a
    /// result is *computed* (S8). 0 disables — the default, matching the
    /// calibration in EXPERIMENTS.md; 10 models a classic first-page
    /// fetch. Result-cache hits skip these reads entirely, which is part
    /// of why result caching pays.
    pub snippet_fetches: usize,
    /// How the engine reaches its devices: the synchronous reference
    /// call-tree (`Direct`) or the explicit submit/complete pipeline
    /// (`Queued { depth }`). `Queued { depth: 1 }` + FIFO is
    /// bit-identical to `Direct` (the `io_path_equivalence` suite proves
    /// it); larger depths overlap independent requests.
    pub io_path: IoPath,
    /// Dispatch-order policy for the queued path (ignored by `Direct`).
    pub io_scheduler: SchedulerPolicy,
    /// Flash channels on the cache SSD (1 = the paper's Table III
    /// device). More channels let queued page operations overlap.
    pub ssd_channels: u32,
    /// Latency/energy model of the cache SSD's per-channel compute
    /// units. The default [`ComputeParams::reference`] is all-zero, so
    /// the `OffloadMode` toggle stays bit-identical on every simulated
    /// figure; [`ComputeParams::active`] charges honest scan/emit costs
    /// for the latency-realism sweeps.
    pub ssd_compute: ComputeParams,
    /// Whether the index accepts run-time mutations. `Frozen` (the
    /// default) is the seed read-only path, untouched.
    pub mutability: IndexMutability,
}

impl EngineConfig {
    /// The default query-processing configuration for a collection of
    /// `docs` documents. The accumulator budget scales with the
    /// collection (Lucene 3.0 scored every matching document; the quit
    /// strategy's budget is what bounds work in our processor), so
    /// response time grows with the collection size the way the paper's
    /// Fig. 15 curves do.
    pub fn default_topk(docs: u64) -> TopKConfig {
        TopKConfig {
            accumulator_limit: (docs / 100).clamp(400, 8_000) as usize,
            ..TopKConfig::default()
        }
    }

    /// A no-cache configuration over `docs` documents.
    pub fn no_cache(docs: u64, placement: IndexPlacement, seed: u64) -> Self {
        EngineConfig {
            docs,
            seed,
            cache: None,
            index_placement: placement,
            topk: Self::default_topk(docs),
            postings: PostingsBackend::default(),
            cost: CpuCostModel::default(),
            capture_trace: false,
            snippet_fetches: 0,
            io_path: IoPath::Direct,
            io_scheduler: SchedulerPolicy::Fifo,
            ssd_channels: 1,
            ssd_compute: ComputeParams::reference(),
            mutability: IndexMutability::default(),
        }
    }

    /// A cached configuration with index files on HDD.
    pub fn cached(docs: u64, cache: HybridConfig, seed: u64) -> Self {
        EngineConfig {
            docs,
            seed,
            cache: Some(cache),
            index_placement: IndexPlacement::Hdd,
            topk: Self::default_topk(docs),
            postings: PostingsBackend::default(),
            cost: CpuCostModel::default(),
            capture_trace: false,
            snippet_fetches: 0,
            io_path: IoPath::Direct,
            io_scheduler: SchedulerPolicy::Fifo,
            ssd_channels: 1,
            ssd_compute: ComputeParams::reference(),
            mutability: IndexMutability::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_read_scales() {
        let c = CpuCostModel::default();
        assert_eq!(c.mem_read(0), SimDuration::ZERO);
        assert_eq!(c.mem_read(1024), SimDuration::from_nanos(100));
        assert_eq!(c.mem_read(10 * 1024), SimDuration::from_nanos(1000));
    }

    #[test]
    fn constructors() {
        let c = EngineConfig::no_cache(100_000, IndexPlacement::Hdd, 1);
        assert!(c.cache.is_none());
        let cached = EngineConfig::cached(
            100_000,
            HybridConfig::paper(1 << 20, 16 << 20, hybridcache::PolicyKind::Cblru),
            1,
        );
        assert!(cached.cache.is_some());
        assert_eq!(cached.index_placement, IndexPlacement::Hdd);
    }
}
