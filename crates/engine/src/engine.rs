//! The simulated search engine.

use cachekit::FreqCounter;
use flashsim::{PageMapFtl, SsdDisk};
use hddsim::{HddDisk, HddParams};
use hybridcache::{CacheManager, Tier};
use searchidx::{
    CorpusSpec, DocStore, IndexLayout, IndexReader, QueryOutcome, SyntheticIndex, TopKProcessor,
};
use simclock::{Clock, Histogram, RunningStats, SimDuration, SimTime};
use storagecore::{
    BlockDevice, BusStats, Extent, Geometry, IoError, IoEvent, IoPath, IoRequest, IoStats, Lba,
    OffloadDescriptor, OffloadMode, PipelinedDevice, QueueDepthStats, SchedulerPolicy, TraceSink,
};
use workload::{Query, QueryLog, QueryLogSpec};

use crate::config::{CompactionMode, CpuCostModel, EngineConfig, IndexMutability, IndexPlacement};
use crate::mutation::{IndexArm, SegLayout, SegmentArena};
use crate::payload::CachedResult;
use crate::report::{FlashReport, RunReport};
use crate::situations::{classify_list, Situation, SituationTable};

/// The device holding the index files.
#[derive(Debug)]
pub enum IndexDevice {
    /// Mechanical disk (the paper's WD3200AAJS).
    Hdd(Box<HddDisk>),
    /// Flash SSD with the paper's page-mapped FTL.
    Ssd(Box<SsdDisk<PageMapFtl>>),
}

impl BlockDevice for IndexDevice {
    fn geometry(&self) -> Geometry {
        match self {
            IndexDevice::Hdd(d) => d.geometry(),
            IndexDevice::Ssd(d) => d.geometry(),
        }
    }

    fn read(&mut self, extent: Extent) -> Result<SimDuration, IoError> {
        match self {
            IndexDevice::Hdd(d) => d.read(extent),
            IndexDevice::Ssd(d) => d.read(extent),
        }
    }

    fn write(&mut self, extent: Extent) -> Result<SimDuration, IoError> {
        match self {
            IndexDevice::Hdd(d) => d.write(extent),
            IndexDevice::Ssd(d) => d.write(extent),
        }
    }

    fn stats(&self) -> &IoStats {
        match self {
            IndexDevice::Hdd(d) => d.stats(),
            IndexDevice::Ssd(d) => d.stats(),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            IndexDevice::Hdd(d) => d.reset_stats(),
            IndexDevice::Ssd(d) => d.reset_stats(),
        }
    }

    fn lanes(&self) -> u32 {
        match self {
            IndexDevice::Hdd(d) => d.lanes(),
            IndexDevice::Ssd(d) => d.lanes(),
        }
    }

    fn lane_of(&self, extent: Extent) -> Option<u32> {
        match self {
            IndexDevice::Hdd(d) => d.lane_of(extent),
            IndexDevice::Ssd(d) => d.lane_of(extent),
        }
    }

    fn head_position(&self) -> Lba {
        match self {
            IndexDevice::Hdd(d) => d.head_position(),
            IndexDevice::Ssd(d) => d.head_position(),
        }
    }

    fn last_op_barrier(&self) -> bool {
        match self {
            IndexDevice::Hdd(d) => d.last_op_barrier(),
            IndexDevice::Ssd(d) => d.last_op_barrier(),
        }
    }
}

/// Trace sink that buffers only when enabled.
#[derive(Debug, Default)]
struct ToggleSink {
    events: Option<Vec<IoEvent>>,
}

impl TraceSink for ToggleSink {
    fn record(&mut self, event: IoEvent) {
        if let Some(events) = &mut self.events {
            events.push(event);
        }
    }
}

// The cluster's worker pool moves whole engines into long-lived threads;
// this keeps the `Send` obligation explicit so a future non-`Send` field
// (an `Rc`, a raw pointer) fails here, at the definition, rather than in
// a distant spawn.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SearchEngine>();
};

/// The end-to-end engine.
#[derive(Debug)]
pub struct SearchEngine {
    config: EngineConfig,
    index: IndexArm,
    layout: IndexLayout,
    docstore: DocStore,
    /// Per-sealed-segment on-device layouts (live arm only; empty while
    /// frozen or pristine).
    seg_layouts: std::collections::HashMap<searchidx::SegmentId, SegLayout>,
    /// Ring allocator for WAL appends and segment images in the free
    /// region past the doc store (live arm only).
    arena: Option<SegmentArena>,
    /// Cache-coherence strategy for compaction merges.
    compaction_mode: CompactionMode,
    /// Virtual time spent in background mutation I/O (WAL appends, seal
    /// images, merge traffic). Not added to query response times — the
    /// background flag on the device is what models the overlap — but
    /// reported so ingest cost stays visible.
    mutation_io_time: SimDuration,
    /// Order-insensitive digest over every served result (computed or
    /// cache-hit): equal digests ⇒ equal match sets, the equal-correctness
    /// gate of the compaction-mode comparison. Accounting only.
    result_digest: u64,
    /// Index device behind the explicit I/O pipeline. In
    /// [`IoPath::Direct`] the wrapper is a synchronous pass-through with
    /// the legacy trace-timestamp semantics; in `Queued` mode the engine
    /// batches deferred reads through submit/wait.
    index_dev: PipelinedDevice<IndexDevice, ToggleSink>,
    /// Payloads are [`CachedResult`] — one shared buffer per entry, so
    /// the manager's admit/flush clones are refcount bumps, not copies.
    cache: Option<CacheManager<CachedResult, PipelinedDevice<SsdDisk<PageMapFtl>>>>,
    /// The active I/O path, mirrored onto both pipelined devices.
    io_path: IoPath,
    /// Where SSD-tier postings predicates are evaluated: `Host` is the
    /// seed path verbatim; `InFlash` attaches an [`OffloadDescriptor`]
    /// to cache-SSD list reads whose per-block cost rule says pushing
    /// the filter down pays.
    offload_mode: OffloadMode,
    processor: TopKProcessor,
    /// Run the straight-line reference paths (linear victim scans,
    /// `HashMap` top-K) instead of the indexed/pooled ones.
    reference_mode: bool,
    log: QueryLog,
    clock: Clock,
    situations: SituationTable,
    response: RunningStats,
    response_hist: Histogram,
    queries_run: u64,
    postings_scanned: u64,
    /// Aggregated block-max accounting from the blocked postings backend
    /// (all zeros on the reference backends). Diagnostic only — kept out
    /// of [`RunReport`], which must stay bit-identical across backends.
    block_skips: searchidx::SkipStats,
    /// Three-level mode: co-occurrence counts of (heaviest) term pairs.
    pair_freq: FreqCounter<(u32, u32)>,
    /// Intersection serves (hits) and installs, for reporting.
    intersection_hits: u64,
    intersection_installs: u64,
}

impl SearchEngine {
    /// Build the whole testbed from a configuration. Construction is O(vocabulary).
    pub fn new(config: EngineConfig) -> Self {
        let base = SyntheticIndex::new(CorpusSpec::enwiki_like(config.docs, config.seed));
        let index = match &config.mutability {
            IndexMutability::Frozen => IndexArm::Frozen(base),
            IndexMutability::Live(live) => {
                // The three-level intersection family has no segment
                // story (pair keys carry no segment identity), so it
                // cannot be kept coherent across merges.
                assert!(
                    config
                        .cache
                        .as_ref()
                        .is_none_or(|c| c.intersections.is_none()),
                    "intersection caching is incompatible with IndexMutability::Live"
                );
                IndexArm::Live(Box::new(searchidx::LiveIndex::new(base, live.segments)))
            }
        };
        let compaction_mode = match &config.mutability {
            IndexMutability::Live(live) => live.compaction,
            IndexMutability::Frozen => CompactionMode::default(),
        };
        let layout = IndexLayout::build(index.base(), 0);
        // Stored fields live right after the posting lists.
        let docstore = DocStore::new(layout.end(), config.docs);
        let index_dev = match config.index_placement {
            IndexPlacement::Hdd => {
                // The index occupies the low LBAs of a realistically-sized
                // disk, so seek distances within the index stay honest.
                let capacity = ((layout.bytes() + docstore.sectors() * 512) * 4).max(4 << 30);
                IndexDevice::Hdd(Box::new(HddDisk::new(HddParams::small_test_disk(capacity))))
            }
            IndexPlacement::Ssd => IndexDevice::Ssd(Box::new(SsdDisk::paper(
                layout.bytes() + docstore.sectors() * 512 + (64 << 20),
            ))),
        };
        let sink = ToggleSink {
            events: config.capture_trace.then(Vec::new),
        };
        let cache = config.cache.clone().map(|hc| {
            let footprint = (hc.ssd_base_lba + hc.ssd_sectors()) * storagecore::SECTOR_SIZE as u64;
            // The paper's SSD widened to the configured channel count,
            // with per-channel compute units behind the offload toggle
            // (the reference compute model is timing-neutral, so this is
            // `paper_channels` exactly unless `ssd_compute` is active).
            let mut params = flashsim::FlashParams::paper(footprint.max(4 << 20));
            params.channels = config.ssd_channels.max(1);
            params.compute = config.ssd_compute;
            let device = SsdDisk::with_ftl(PageMapFtl::new(params));
            let mut piped = PipelinedDevice::direct(device);
            piped.set_path(config.io_path);
            piped.set_policy(config.io_scheduler);
            CacheManager::new(hc, piped)
        });
        let log = QueryLog::new(QueryLogSpec::aol_like(
            index.num_terms(),
            config.seed ^ 0xBEEF,
        ));
        let mut processor = TopKProcessor::new(config.topk);
        processor.set_backend(config.postings);
        // The live arm rings its WAL and segment images through the free
        // region past the doc store; the device capacity formulas above
        // are *unchanged* so the frozen geometry (and thus seek timing)
        // is preserved bit-for-bit.
        let arena = config.mutability.is_live().then(|| {
            let used = docstore.end();
            let capacity = index_dev.geometry().sectors;
            SegmentArena::new(used, capacity.saturating_sub(used))
        });
        SearchEngine {
            processor,
            reference_mode: false,
            index,
            layout,
            docstore,
            seg_layouts: std::collections::HashMap::new(),
            arena,
            compaction_mode,
            mutation_io_time: SimDuration::ZERO,
            result_digest: 0xcbf2_9ce4_8422_2325,
            index_dev: {
                let mut piped = PipelinedDevice::new(index_dev, sink);
                piped.set_path(config.io_path);
                piped.set_policy(config.io_scheduler);
                piped
            },
            cache,
            io_path: config.io_path,
            offload_mode: OffloadMode::Host,
            log,
            clock: Clock::new(),
            situations: SituationTable::new(),
            response: RunningStats::new(),
            response_hist: Histogram::new(),
            queries_run: 0,
            postings_scanned: 0,
            block_skips: searchidx::SkipStats::default(),
            pair_freq: FreqCounter::new(),
            intersection_hits: 0,
            intersection_installs: 0,
            config,
        }
    }

    /// `(hits, installs)` of the intersection family (three-level mode).
    pub fn intersection_stats(&self) -> (u64, u64) {
        (self.intersection_hits, self.intersection_installs)
    }

    /// Expected size in bytes of the materialized intersection of two
    /// terms, under the independence approximation
    /// `|A∩B| ≈ df(A)·df(B)/N` (12 B per entry: doc + two tfs).
    fn expected_intersection_bytes(&self, a: u32, b: u32) -> u64 {
        let docs = self.index.num_docs().max(1);
        let expect =
            (self.index.doc_freq(a) as u128 * self.index.doc_freq(b) as u128 / docs as u128) as u64;
        (expect * 12).max(64)
    }

    /// The base (frozen) synthetic index. Both arms share it; the live
    /// arm's segments layer on top without renumbering its documents.
    pub fn index(&self) -> &SyntheticIndex {
        self.index.base()
    }

    /// The live index, when `mutability` is [`IndexMutability::Live`].
    pub fn live_index(&self) -> Option<&searchidx::LiveIndex<SyntheticIndex>> {
        self.index.live()
    }

    /// Mutation-lifecycle counters of the live arm (zero-default when
    /// frozen).
    pub fn mutation_stats(&self) -> searchidx::MutationStats {
        self.index.live().map(|l| l.stats()).unwrap_or_default()
    }

    /// Virtual time spent in background mutation I/O (WAL appends, seal
    /// images, merge traffic).
    pub fn mutation_io_time(&self) -> SimDuration {
        self.mutation_io_time
    }

    /// Order-insensitive digest over every result served so far. Two
    /// runs that served the same match sets (same docs, same scores, in
    /// any interleaving) have equal digests — the equal-correctness gate
    /// the compaction-mode benchmark relies on.
    pub fn result_digest(&self) -> u64 {
        self.result_digest
    }

    /// The response-time quantile `q` over all queries so far.
    pub fn response_quantile(&self, q: f64) -> SimDuration {
        SimDuration::from_nanos(self.response_hist.quantile(q))
    }

    /// The on-device index layout.
    pub fn layout(&self) -> &IndexLayout {
        &self.layout
    }

    /// The query log generator.
    pub fn log(&self) -> &QueryLog {
        &self.log
    }

    /// The cache manager, when configured.
    pub fn cache(
        &self,
    ) -> Option<&CacheManager<CachedResult, PipelinedDevice<SsdDisk<PageMapFtl>>>> {
        self.cache.as_ref()
    }

    /// Mutable cache access for the corruption-seeding audit tests (the
    /// offload suite plants inconsistencies in the device ledgers to
    /// prove the validators fire). Not part of the public surface.
    #[doc(hidden)]
    pub fn debug_cache_mut(
        &mut self,
    ) -> Option<&mut CacheManager<CachedResult, PipelinedDevice<SsdDisk<PageMapFtl>>>> {
        self.cache.as_mut()
    }

    /// Mutable live-index access for the corruption-seeding audit tests
    /// (`mutation_audit` plants WAL/segment/tombstone inconsistencies to
    /// prove the validators fire). Not part of the public surface.
    #[doc(hidden)]
    pub fn debug_live_mut(&mut self) -> Option<&mut searchidx::LiveIndex<SyntheticIndex>> {
        self.index.live_mut()
    }

    /// Full I/O statistics of the index device, submission-queue section
    /// included (what the equivalence suites compare bit-for-bit).
    pub fn index_io_stats(&self) -> &IoStats {
        self.index_dev.stats()
    }

    /// Runs the structural invariant validators over every audited piece
    /// of engine state: the two-level cache (memory caches, SSD stores),
    /// the cache SSD's pipeline queue and FTL, and the index device's
    /// pipeline queue. Equivalence suites call this at the end of a run
    /// to prove a full simulation leaves every structure coherent.
    pub fn validation_report(&self) -> invariant::Report {
        use invariant::Validate;
        let mut report = invariant::Report::new();
        if let Some(cache) = &self.cache {
            cache.validate(&mut report);
            cache.device().validate(&mut report);
            cache.device().inner().validate(&mut report);
        }
        self.index_dev.validate(&mut report);
        if let Some(live) = self.index.live() {
            // The segment stack's own validators (WAL monotonicity,
            // doc-range disjointness, tombstone conservation).
            live.validate(&mut report);
            // Cache/segment coherence: no tier may hold a key whose
            // segment has been retired by compaction — a stale prefix
            // there could alias a freshly merged list.
            if let Some(cache) = &self.cache {
                let retired = live.retired_ids();
                for key in cache.cached_list_keys() {
                    let seg = hybridcache::key_segment(key);
                    report.check(
                        !retired.contains(&seg),
                        "SearchEngine",
                        "no-cached-prefix-for-dead-segment",
                        || {
                            format!(
                                "cache holds key (segment {seg}, term {}) but segment {seg} is retired",
                                hybridcache::key_term(key)
                            )
                        },
                    );
                }
            }
        }
        report
    }

    /// Switch the I/O path at runtime (devices are idle between
    /// queries, so the toggle is always legal there). `Direct` and
    /// `Queued { depth: 1 }` + FIFO produce bit-identical figures.
    pub fn set_io_path(&mut self, path: IoPath) {
        self.io_path = path;
        self.index_dev.set_path(path);
        if let Some(cache) = self.cache.as_mut() {
            cache.device_mut().set_path(path);
        }
    }

    /// The active I/O path.
    pub fn io_path(&self) -> IoPath {
        self.io_path
    }

    /// Switch the submission-queue scheduler (FIFO reference, NCQ-style
    /// elevator, or deadline-bounded elevator).
    pub fn set_io_scheduler(&mut self, policy: SchedulerPolicy) {
        self.index_dev.set_policy(policy);
        if let Some(cache) = self.cache.as_mut() {
            cache.device_mut().set_policy(policy);
        }
    }

    /// The active scheduler policy.
    pub fn io_scheduler(&self) -> SchedulerPolicy {
        self.index_dev.policy()
    }

    /// Switch where SSD-tier postings predicates are evaluated. `Host`
    /// is the seed path verbatim; `InFlash` serializes each traversed
    /// term's predicate into an offload descriptor and attaches it to
    /// the cache-SSD reads where the per-block cost rule says the
    /// descriptor pays. Under the reference compute model the two arms
    /// are bit-identical on every simulated figure (the
    /// `offload_equivalence` suite proves it; `divergence_probe --offload`
    /// bisects); only the bus-byte ledger differs. Devices are idle
    /// between queries, so mid-run toggles are always legal.
    pub fn set_offload_mode(&mut self, mode: OffloadMode) {
        self.offload_mode = mode;
    }

    /// The active offload mode.
    pub fn offload_mode(&self) -> OffloadMode {
        self.offload_mode
    }

    /// Host-bus transfer ledger of the cache SSD (zeros when uncached):
    /// page bytes moved by plain reads, descriptor/emitted bytes moved
    /// by offload reads, and the net bytes the offloads saved.
    pub fn cache_bus_stats(&self) -> BusStats {
        self.cache
            .as_ref()
            .map(|c| *c.device().inner().stats().bus())
            .unwrap_or_default()
    }

    /// Per-channel compute-unit accounting of the cache SSD (zeros when
    /// uncached): offloads serviced, pages scanned, entries emitted, and
    /// the energy the latency/energy model charged.
    pub fn cache_compute_stats(&self) -> flashsim::ComputeStats {
        self.cache
            .as_ref()
            .map(|c| *c.device().inner().compute_stats())
            .unwrap_or_default()
    }

    /// Queue-depth accounting of the index device.
    pub fn index_queue_stats(&self) -> QueueDepthStats {
        *self.index_dev.stats().queue()
    }

    /// Queue-depth accounting of the cache SSD (zeros when uncached).
    pub fn cache_queue_stats(&self) -> QueueDepthStats {
        self.cache
            .as_ref()
            .map(|c| *c.device().stats().queue())
            .unwrap_or_default()
    }

    /// Switch both hot paths to their reference implementations: linear
    /// victim scans in the cache and the `HashMap` top-K accumulator
    /// (which always traverses uncompressed postings, regardless of the
    /// postings backend). Simulated figures are identical either way (the
    /// victim-equivalence property tests in `hybridcache` prove the
    /// victim choices match); only wall-clock differs. The `perf_regress`
    /// harness uses this to measure the optimized paths against the
    /// originals. The postings backend is a separate, orthogonal axis —
    /// see [`SearchEngine::set_postings_backend`].
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference_mode = on;
        let selection = if on {
            hybridcache::VictimSelection::Scan
        } else {
            hybridcache::VictimSelection::Indexed
        };
        if let Some(cache) = self.cache.as_mut() {
            cache.set_victim_selection(selection);
        }
    }

    /// Switch the cache's SSD admission gate at runtime (a no-op when
    /// uncached). `Static` is the paper's EV/TEV threshold verbatim — the
    /// reference arm, bit-identical to the seed on every simulated
    /// figure; `Sketch` consults the frequency-sketch admission tier
    /// (`divergence_probe --admission` bisects the two).
    pub fn set_admission_policy(&mut self, policy: hybridcache::AdmissionPolicy) {
        if let Some(cache) = self.cache.as_mut() {
            cache.set_admission_policy(policy);
        }
    }

    /// The active admission gate (`Static` when uncached).
    pub fn admission_policy(&self) -> hybridcache::AdmissionPolicy {
        self.cache
            .as_ref()
            .map_or(hybridcache::AdmissionPolicy::Static, |c| {
                c.admission_policy()
            })
    }

    /// Select which posting-list representation the processor scans.
    /// Both produce bit-identical simulated figures; the `perf_regress`
    /// postings arm measures the wall-clock gap.
    pub fn set_postings_backend(&mut self, backend: searchidx::PostingsBackend) {
        self.processor.set_backend(backend);
    }

    /// The active postings backend.
    pub fn postings_backend(&self) -> searchidx::PostingsBackend {
        self.processor.backend()
    }

    /// Aggregated block-max skip accounting since the last measurement
    /// reset (all zeros unless the blocked backend ran): `skip_probes`
    /// block-max bounds consulted, `skipped` postings pruned without
    /// decode, `visited` postings decoded and scored.
    pub fn postings_skip_stats(&self) -> searchidx::SkipStats {
        self.block_skips
    }

    /// Footprint of the processor's block-compressed store.
    pub fn postings_store_stats(&self) -> searchidx::BlockStoreStats {
        self.processor.store_stats()
    }

    /// Serialize one term's traversal into the wire predicate for the
    /// in-flash path, or `None` when the Host arm is active (or there is
    /// nothing to push down). The scanned prefix of a frequency-sorted
    /// list is bounded below by the last-visited posting's tf, so the
    /// template carries that tf bound plus the full doc-id range; the
    /// storage layer fills the per-block scan/emit counts where its cost
    /// rule fires.
    fn offload_template(&self, u: &searchidx::TermUsage) -> Option<OffloadDescriptor> {
        if self.offload_mode != OffloadMode::InFlash || self.cache.is_none() || u.scanned == 0 {
            return None;
        }
        // Once the live index has mutated, a cached list is one segment's
        // share of a term, not the frequency-sorted prefix the descriptor
        // describes — the push-down predicate no longer applies.
        if self.index.live().is_some_and(|l| !l.is_pristine()) {
            return None;
        }
        let tf_bound = self
            .index
            .postings_range(u.term, u.scanned - 1, u.scanned)
            .first()
            .map_or(0, |p| p.tf);
        let last_doc = self.index.num_docs().saturating_sub(1) as u32;
        Some(OffloadDescriptor::new(
            0,
            last_doc,
            tf_bound,
            searchidx::types::POSTING_BYTES as u32,
        ))
    }

    fn topk(&mut self, terms: &[u32]) -> QueryOutcome {
        let outcome = if self.reference_mode {
            self.processor.process_reference(&self.index, terms)
        } else {
            self.processor.process(&self.index, terms)
        };
        self.block_skips.absorb(outcome.skip_stats);
        outcome
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.index_dev_now()
    }

    fn index_dev_now(&self) -> SimTime {
        self.clock.now()
    }

    /// Take the captured index-device trace (empty unless
    /// `capture_trace` was set; capturing continues afterwards).
    pub fn take_trace(&mut self) -> Vec<IoEvent> {
        match &mut self.index_dev.sink_mut().events {
            Some(events) => std::mem::take(events),
            None => Vec::new(),
        }
    }

    /// Execute the next `n` queries of the log.
    pub fn run(&mut self, n: usize) -> RunReport {
        let queries: Vec<Query> = self.log.stream(n);
        self.run_queries(&queries)
    }

    /// Execute an explicit query stream.
    pub fn run_queries(&mut self, queries: &[Query]) -> RunReport {
        let t0 = self.clock.now();
        let before = self.queries_run;
        for q in queries {
            self.execute(q);
        }
        let elapsed = self.clock.now() - t0;
        let ran = self.queries_run - before;
        self.window_report(ran, elapsed)
    }

    /// Snapshot the cumulative report without executing anything — the
    /// per-shard rows of a `ClusterReport`, and the accessor both
    /// cluster execution arms share. The window fields (`queries`,
    /// `elapsed`, `throughput_qps`) are zero: a snapshot has no
    /// measurement window, only cumulative statistics (mean/p99
    /// response, cache and flash counters, situation table).
    pub fn report(&self) -> RunReport {
        self.window_report(0, SimDuration::ZERO)
    }

    /// Execute one query on the virtual clock, returning its response
    /// time.
    pub fn execute(&mut self, query: &Query) -> SimDuration {
        match self.io_path {
            IoPath::Direct => self.execute_direct(query),
            IoPath::Queued { depth } => self.execute_queued(query, depth.max(1)),
        }
    }

    /// The synchronous reference arm: every device call returns its
    /// latency and the clock advances in place. Kept verbatim as the
    /// `Direct` half of the [`IoPath`] toggle.
    fn execute_direct(&mut self, query: &Query) -> SimDuration {
        let start = self.clock.now();
        let cost = self.config.cost;
        self.clock.advance(cost.per_query);
        if let Some(cache) = self.cache.as_mut() {
            // Feed the clock through for TTL expiry (dynamic scenario).
            cache.set_now(start);
        }

        // Query management: the result cache first.
        if let Some(cache) = self.cache.as_mut() {
            let lookup_start = self.clock.now();
            let (result, tier, latency) = cache.lookup_result(query.id);
            self.clock.advance(latency);
            if let Some(result) = result {
                self.clock.advance(cost.mem_read(result.bytes()));
                let service = self.clock.now() - lookup_start;
                let situation = match tier {
                    Tier::Mem => Situation::S1ResultMem,
                    _ => Situation::S3ResultSsd,
                };
                self.situations.record(situation, service);
                self.digest_result(&result.decode());
                return self.finish(start);
            }
        }

        // Compute from the index, charging list I/O per visited prefix.
        let outcome = self.topk(&query.terms);
        self.postings_scanned += outcome.postings_scanned();
        self.digest_result(&outcome.result);

        // Three-level mode: the two heaviest lists may be replaced by a
        // cached intersection (Long & Suel's intermediate level).
        let mut paired: Option<(u32, u32)> = None;
        if self
            .cache
            .as_ref()
            .is_some_and(|c| c.intersections_enabled())
        {
            let mut heavy: Vec<(u64, u32)> = outcome
                .usage
                .iter()
                .filter(|u| u.scanned > 0)
                .map(|u| (u.bytes_scanned(), u.term))
                .collect();
            if heavy.len() >= 2 {
                heavy.sort_unstable_by_key(|&(bytes, _)| std::cmp::Reverse(bytes));
                let pair = (heavy[0].1.min(heavy[1].1), heavy[0].1.max(heavy[1].1));
                let est = self.expected_intersection_bytes(pair.0, pair.1);
                let threshold = self
                    .cache
                    .as_ref()
                    .and_then(|c| c.config().intersections)
                    .map_or(u64::MAX, |x| x.pair_threshold);
                let cache = self.cache.as_mut().expect("checked above");
                if let Some(serve) = cache.lookup_intersection((pair.0 as u64, pair.1 as u64), est)
                {
                    // Served: the two lists' storage I/O is replaced by
                    // reading the (much smaller) intersection.
                    self.intersection_hits += 1;
                    self.clock.advance(serve.ssd_latency);
                    self.clock.advance(cost.mem_read(serve.from_mem));
                    let situation = if serve.from_ssd > 0 {
                        Situation::S4ListSsd
                    } else {
                        Situation::S2ListMem
                    };
                    self.situations
                        .record(situation, serve.ssd_latency + cost.mem_read(serve.from_mem));
                    paired = Some(pair);
                } else if self.pair_freq.record(&pair) >= threshold {
                    // Materialize it for next time (built from postings
                    // already in hand this query — no extra storage I/O).
                    let cache = self.cache.as_mut().expect("checked above");
                    cache.install_intersection((pair.0 as u64, pair.1 as u64), est);
                    self.intersection_installs += 1;
                }
            }
        }

        for u in &outcome.usage {
            if u.scanned == 0 {
                // "…or are not traversed at all" — no storage touched.
                continue;
            }
            if let Some((a, b)) = paired {
                if u.term == a || u.term == b {
                    continue; // served by the cached intersection
                }
            }
            // Once the live index has mutated, a scanned prefix splits
            // into per-layer shares; while frozen (or pristine) the
            // split is `None` and the seed path below runs verbatim.
            let split = self
                .index
                .live()
                .and_then(|l| l.split_usage(u.term, u.scanned));
            if let Some(parts) = split {
                self.charge_parts_direct(u.term, &parts, cost);
                continue;
            }
            let needed = u.bytes_scanned();
            let pu = u.utilization();
            let full = self.index.list_bytes(u.term);
            let offload = self.offload_template(u);
            let list_start = self.clock.now();
            if let Some(cache) = self.cache.as_mut() {
                let serve = cache.lookup_list_offload(u.term as u64, needed, full, pu, offload);
                self.clock.advance(serve.ssd_latency);
                self.clock.advance(cost.mem_read(serve.from_mem));
                if serve.from_hdd + serve.fill_from_hdd > 0 {
                    // The request's own tail, plus whatever extra the
                    // policy decided to fill (whole-list reads under the
                    // traditional LRU baseline).
                    let from = serve.from_mem + serve.from_ssd;
                    let to = needed + serve.fill_from_hdd;
                    let extent = self.layout.range_extent(u.term, from.min(to - 1), to);
                    let t = self
                        .index_dev
                        .read(extent)
                        .expect("index extents are on-device");
                    self.clock.advance(t);
                }
                self.situations.record(
                    classify_list(serve.from_mem, serve.from_ssd, serve.from_hdd),
                    self.clock.now() - list_start,
                );
            } else {
                let extent = self.layout.prefix_extent(u.term, needed);
                let t = self
                    .index_dev
                    .read(extent)
                    .expect("index extents are on-device");
                self.clock.advance(t);
                self.situations
                    .record(Situation::S9ListHdd, self.clock.now() - list_start);
            }
        }

        // Stored-field (snippet) fetches for the assembled page — small
        // random reads the result cache exists to avoid.
        let fetches = self.config.snippet_fetches.min(outcome.result.docs.len());
        for d in &outcome.result.docs[..fetches] {
            let t = self
                .index_dev
                .read(self.docstore.extent(self.doc_slot(d.doc)))
                .expect("doc store is on-device");
            self.clock.advance(t);
        }

        // Scoring + result-page assembly CPU.
        self.clock
            .advance(cost.per_posting * outcome.postings_scanned());
        self.clock
            .advance(cost.per_result_doc * outcome.result.docs.len() as u64);

        if let Some(cache) = self.cache.as_mut() {
            let t = cache.complete_result(query.id, CachedResult::encode(&outcome.result));
            self.clock.advance(t);
        }
        self.situations
            .record(Situation::S8ResultHdd, self.clock.now() - start);
        self.finish(start)
    }

    /// The event-driven arm: foreground index reads become explicit
    /// submissions in windows of `depth`, and the response derives from
    /// completion timestamps (`finish − submit`) rather than summed call
    /// latencies. Per-device request order matches the direct arm
    /// exactly — the cache SSD is driven term-by-term and the index
    /// device FIFO at depth 1 degenerates to the synchronous call-tree,
    /// which is what makes `Queued { depth: 1 }` bit-identical to
    /// `Direct` (the `io_path_equivalence` suite proves it). At larger
    /// depths the batch finishes when its last completion lands, so
    /// independent requests on different lanes overlap.
    fn execute_queued(&mut self, query: &Query, depth: usize) -> SimDuration {
        let start = self.clock.now();
        let cost = self.config.cost;
        self.clock.advance(cost.per_query);
        if let Some(cache) = self.cache.as_mut() {
            // Feed the clock through for TTL expiry (dynamic scenario).
            cache.set_now(start);
            cache.device_mut().set_now(start);
        }

        // Query management: the result cache first.
        if let Some(cache) = self.cache.as_mut() {
            let lookup_start = self.clock.now();
            cache.device_mut().set_now(lookup_start);
            let (result, tier, latency) = cache.lookup_result(query.id);
            self.clock.advance(latency);
            if let Some(result) = result {
                self.clock.advance(cost.mem_read(result.bytes()));
                let service = self.clock.now() - lookup_start;
                let situation = match tier {
                    Tier::Mem => Situation::S1ResultMem,
                    _ => Situation::S3ResultSsd,
                };
                self.situations.record(situation, service);
                self.digest_result(&result.decode());
                return self.finish(start);
            }
        }

        // Compute from the index, charging list I/O per visited prefix.
        let outcome = self.topk(&query.terms);
        self.postings_scanned += outcome.postings_scanned();
        self.digest_result(&outcome.result);

        // Three-level mode (identical to the direct arm: intersection
        // serves are cache-device work, dispatched inline).
        let mut paired: Option<(u32, u32)> = None;
        if self
            .cache
            .as_ref()
            .is_some_and(|c| c.intersections_enabled())
        {
            let mut heavy: Vec<(u64, u32)> = outcome
                .usage
                .iter()
                .filter(|u| u.scanned > 0)
                .map(|u| (u.bytes_scanned(), u.term))
                .collect();
            if heavy.len() >= 2 {
                heavy.sort_unstable_by_key(|&(bytes, _)| std::cmp::Reverse(bytes));
                let pair = (heavy[0].1.min(heavy[1].1), heavy[0].1.max(heavy[1].1));
                let est = self.expected_intersection_bytes(pair.0, pair.1);
                let threshold = self
                    .cache
                    .as_ref()
                    .and_then(|c| c.config().intersections)
                    .map_or(u64::MAX, |x| x.pair_threshold);
                let now = self.clock.now();
                let cache = self.cache.as_mut().expect("checked above");
                cache.device_mut().set_now(now);
                if let Some(serve) = cache.lookup_intersection((pair.0 as u64, pair.1 as u64), est)
                {
                    self.intersection_hits += 1;
                    self.clock.advance(serve.ssd_latency);
                    self.clock.advance(cost.mem_read(serve.from_mem));
                    let situation = if serve.from_ssd > 0 {
                        Situation::S4ListSsd
                    } else {
                        Situation::S2ListMem
                    };
                    self.situations
                        .record(situation, serve.ssd_latency + cost.mem_read(serve.from_mem));
                    paired = Some(pair);
                } else if self.pair_freq.record(&pair) >= threshold {
                    let cache = self.cache.as_mut().expect("checked above");
                    cache.install_intersection((pair.0 as u64, pair.1 as u64), est);
                    self.intersection_installs += 1;
                }
            }
        }

        // Phase 1: cache lookups in term order. HDD/index reads are
        // deferred as (record slot, extent) pairs; the situation records
        // are buffered in term order and completed after phase 2, so the
        // `SituationTable` sees the exact record sequence of the direct
        // arm (its running stats are float-order-sensitive).
        let mut records: Vec<(Situation, SimDuration)> = Vec::new();
        let mut deferred: Vec<(usize, Extent)> = Vec::new();
        for u in &outcome.usage {
            if u.scanned == 0 {
                continue;
            }
            if let Some((a, b)) = paired {
                if u.term == a || u.term == b {
                    continue; // served by the cached intersection
                }
            }
            // Per-layer split once the live index has mutated (same
            // branch as the direct arm; `None` keeps the seed path).
            let split = self
                .index
                .live()
                .and_then(|l| l.split_usage(u.term, u.scanned));
            if let Some(parts) = split {
                self.charge_parts_queued(u.term, &parts, cost, &mut records, &mut deferred);
                continue;
            }
            let needed = u.bytes_scanned();
            let pu = u.utilization();
            let full = self.index.list_bytes(u.term);
            let offload = self.offload_template(u);
            if let Some(cache) = self.cache.as_mut() {
                cache.device_mut().set_now(self.clock.now());
                let serve = cache.lookup_list_offload(u.term as u64, needed, full, pu, offload);
                self.clock.advance(serve.ssd_latency);
                self.clock.advance(cost.mem_read(serve.from_mem));
                let slot = records.len();
                records.push((
                    classify_list(serve.from_mem, serve.from_ssd, serve.from_hdd),
                    serve.ssd_latency + cost.mem_read(serve.from_mem),
                ));
                if serve.from_hdd + serve.fill_from_hdd > 0 {
                    let from = serve.from_mem + serve.from_ssd;
                    let to = needed + serve.fill_from_hdd;
                    deferred.push((slot, self.layout.range_extent(u.term, from.min(to - 1), to)));
                }
            } else {
                let slot = records.len();
                records.push((Situation::S9ListHdd, SimDuration::ZERO));
                deferred.push((slot, self.layout.prefix_extent(u.term, needed)));
            }
        }

        // Phase 2: submit the deferred reads in windows of `depth`; the
        // window costs wall-clock until its last completion, and each
        // term's situation charge is its own response time.
        for window in deferred.chunks(depth) {
            let base = self.clock.now();
            self.index_dev.set_now(base);
            let ids: Vec<(usize, u64)> = window
                .iter()
                .map(|&(slot, extent)| {
                    let id = self
                        .index_dev
                        .submit(IoRequest::read(extent))
                        .expect("index extents are on-device");
                    (slot, id)
                })
                .collect();
            let mut batch_end = base;
            for (slot, id) in ids {
                let c = self
                    .index_dev
                    .wait(id)
                    .expect("index extents are on-device");
                records[slot].1 += c.response();
                batch_end = batch_end.max(c.finish_at);
            }
            self.clock.advance(batch_end.since(base));
        }
        for (situation, duration) in records {
            self.situations.record(situation, duration);
        }

        // Stored-field (snippet) fetches, batched through the same queue.
        let fetches = self.config.snippet_fetches.min(outcome.result.docs.len());
        let extents: Vec<Extent> = outcome.result.docs[..fetches]
            .iter()
            .map(|d| self.docstore.extent(self.doc_slot(d.doc)))
            .collect();
        for window in extents.chunks(depth) {
            let base = self.clock.now();
            self.index_dev.set_now(base);
            let ids: Vec<u64> = window
                .iter()
                .map(|&extent| {
                    self.index_dev
                        .submit(IoRequest::read(extent))
                        .expect("doc store is on-device")
                })
                .collect();
            let mut batch_end = base;
            for id in ids {
                let c = self.index_dev.wait(id).expect("doc store is on-device");
                batch_end = batch_end.max(c.finish_at);
            }
            self.clock.advance(batch_end.since(base));
        }

        // Scoring + result-page assembly CPU.
        self.clock
            .advance(cost.per_posting * outcome.postings_scanned());
        self.clock
            .advance(cost.per_result_doc * outcome.result.docs.len() as u64);

        if let Some(cache) = self.cache.as_mut() {
            cache.device_mut().set_now(self.clock.now());
            let t = cache.complete_result(query.id, CachedResult::encode(&outcome.result));
            self.clock.advance(t);
        }
        self.situations
            .record(Situation::S8ResultHdd, self.clock.now() - start);
        self.finish(start)
    }

    fn finish(&mut self, start: SimTime) -> SimDuration {
        let response = self.clock.now() - start;
        self.response.push_duration(response);
        self.response_hist.record_duration(response);
        self.queries_run += 1;
        response
    }

    /// CBSLRU warm start: analyze the first `analysis_len` log entries
    /// offline (uncharged — the paper's "by analyzing the query log") and
    /// seed the static partitions with the hottest results and the most
    /// efficient lists.
    pub fn seed_static_from_log(&mut self, analysis_len: usize) {
        use std::collections::BTreeMap;
        let Some(cache) = self.cache.as_ref() else {
            return;
        };
        if cache.config().policy.static_fraction() == 0.0 {
            return;
        }
        let sb = cache.config().block_bytes;

        let mut query_freq: BTreeMap<u64, u64> = BTreeMap::new();
        for q in self.log.stream_iter(analysis_len) {
            *query_freq.entry(q.id).or_insert(0) += 1;
        }
        let mut ranked: Vec<(u64, u64)> = query_freq.into_iter().collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // Process the hottest distinct queries once to learn term usage
        // and produce the result payloads.
        let analyze = ranked.len().min(512);
        let mut term_stats: BTreeMap<u32, (u64, u64, f64)> = BTreeMap::new(); // freq, max bytes, pu sum
        let mut result_seeds = Vec::new();
        for &(qid, freq) in ranked.iter().take(analyze) {
            let terms = self.log.terms_of(qid);
            let outcome = self.topk(&terms);
            for u in &outcome.usage {
                if u.scanned == 0 {
                    continue;
                }
                let e = term_stats.entry(u.term).or_insert((0, 0, 0.0));
                e.0 += freq;
                e.1 = e.1.max(u.bytes_scanned());
                e.2 += u.utilization() * freq as f64;
            }
            result_seeds.push((qid, CachedResult::encode(&outcome.result), freq));
        }

        let mut list_seeds: Vec<(u64, u64, f64, u64)> = term_stats
            .into_iter()
            .map(|(term, (freq, si, pu_sum))| {
                (term as u64, si, (pu_sum / freq as f64).min(1.0), freq)
            })
            .collect();
        // Rank lists by efficiency value; ties break on the term id so
        // the seeded set is reproducible independent of map order.
        list_seeds.sort_by(|a, b| {
            let ev = |x: &(u64, u64, f64, u64)| {
                hybridcache::efficiency_value(x.3, hybridcache::sc_blocks(x.1, x.2, sb))
            };
            ev(b)
                .partial_cmp(&ev(a))
                .expect("EV is finite")
                .then(a.0.cmp(&b.0))
        });

        let cache = self.cache.as_mut().expect("checked above");
        cache.seed_static_results(result_seeds);
        cache.seed_static_lists(list_seeds);
    }

    /// Assemble the report for the queries run so far in this window.
    fn window_report(&self, queries: u64, elapsed: SimDuration) -> RunReport {
        let flash = self.cache.as_ref().map(|c| {
            use flashsim::Ftl as _;
            let dev = c.device();
            let ftl = dev.inner().ftl();
            let nand = ftl.nand().stats();
            let fstats = ftl.stats();
            let io = dev.stats();
            let spp = ftl.params().sectors_per_page().max(1);
            let host_pages = (io.kind(storagecore::IoKind::Read).sectors()
                + io.kind(storagecore::IoKind::Write).sectors())
                / spp;
            FlashReport {
                block_erases: nand.block_erases,
                page_reads: nand.page_reads,
                page_programs: nand.page_programs,
                host_writes: fstats.host_writes,
                gc_runs: fstats.gc_runs,
                pages_moved: fstats.pages_moved,
                write_amplification: fstats.write_amplification(nand.page_programs),
                mean_access: if host_pages == 0 {
                    SimDuration::ZERO
                } else {
                    io.total_busy() / host_pages
                },
            }
        });
        let idx_stats = self.index_dev.stats();
        RunReport {
            queries,
            elapsed,
            mean_response: self.response.mean_duration(),
            p99_response: SimDuration::from_nanos(self.response_hist.quantile(0.99)),
            throughput_qps: if elapsed == SimDuration::ZERO {
                0.0
            } else {
                queries as f64 / elapsed.as_secs_f64()
            },
            postings_scanned: self.postings_scanned,
            cache: self.cache.as_ref().map(|c| *c.stats()),
            flash,
            index_ops: idx_stats.total_ops(),
            index_mean_latency: idx_stats.mean_latency(),
            situations: self.situations,
        }
    }

    // ------------------------------------------------------------------
    // Live-index mutation path
    // ------------------------------------------------------------------

    /// Whether the live (mutable) arm is active.
    pub fn is_live(&self) -> bool {
        self.index.live().is_some()
    }

    /// Ingest one document into the live index: WAL append (background
    /// write), in-memory postings growth, and — at the seal/compaction
    /// thresholds — the background segment lifecycle. Returns the
    /// assigned document slot, or `None` on the frozen arm.
    ///
    /// `terms` must be distinct, ascending, in-vocabulary `(term, tf)`
    /// pairs with `tf > 0`.
    pub fn ingest_document(&mut self, terms: &[(u32, u32)]) -> Option<u32> {
        let at = self.clock.now();
        let live = self.index.live_mut()?;
        let out = live.add_document(at, terms);
        self.charge_wal(out.wal_bytes);
        self.sync_processor();
        self.run_segment_lifecycle();
        Some(out.doc)
    }

    /// Tombstone-delete a document from the live index. Returns whether
    /// it was alive (always `false` on the frozen arm).
    pub fn delete_document(&mut self, doc: u32) -> bool {
        let at = self.clock.now();
        let Some(live) = self.index.live_mut() else {
            return false;
        };
        let out = live.delete_document(at, doc);
        self.charge_wal(out.wal_bytes);
        self.sync_processor();
        self.run_segment_lifecycle();
        out.deleted
    }

    /// Force a seal of the current write segment regardless of the
    /// threshold (tests and shutdown paths).
    pub fn force_seal(&mut self) -> Option<searchidx::SealOutcome> {
        let at = self.clock.now();
        let out = self.index.live_mut()?.seal(at)?;
        self.on_seal(&out);
        Some(out)
    }

    /// Force a compaction round regardless of the fan-in threshold
    /// (needs at least two sealed segments).
    pub fn force_compact(&mut self) -> Option<searchidx::CompactOutcome> {
        let at = self.clock.now();
        let out = self.index.live_mut()?.compact(at)?;
        self.on_compact(&out);
        Some(out)
    }

    /// The deterministic background lifecycle: seal at the policy
    /// threshold, then compact at the fan-in threshold.
    fn run_segment_lifecycle(&mut self) {
        let at = self.clock.now();
        let sealed = {
            let Some(live) = self.index.live_mut() else {
                return;
            };
            if live.seal_due() {
                live.seal(at)
            } else {
                None
            }
        };
        if let Some(out) = sealed {
            self.on_seal(&out);
        }
        let compacted = {
            let live = self.index.live_mut().expect("checked above");
            if live.compaction_due() {
                live.compact(at)
            } else {
                None
            }
        };
        if let Some(out) = compacted {
            self.on_compact(&out);
        }
    }

    /// Charge a WAL append as a background write into the WAL ring.
    fn charge_wal(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let Some(arena) = self.arena.as_mut() else {
            return;
        };
        let extent = arena.wal_extent(bytes);
        self.index_dev.set_now(self.clock.now());
        self.index_dev.set_background(true);
        let t = self.index_dev.write(extent).expect("WAL ring is on-device");
        self.index_dev.set_background(false);
        self.mutation_io_time += t;
    }

    /// A freshly sealed segment: lay it out in the arena and charge the
    /// image write as background I/O.
    fn on_seal(&mut self, out: &searchidx::SealOutcome) {
        self.charge_wal(out.wal_bytes);
        let (layout, image) = {
            let live = self.index.live().expect("seal implies live");
            let seg = live
                .sealed_segment(out.segment)
                .expect("sealed segment exists");
            let arena = self.arena.as_mut().expect("live arm has an arena");
            // Build at 0 first to learn the footprint, then place.
            let probe = SegLayout::build(seg, 0);
            let base = arena.alloc_segment(probe.sectors());
            let layout = SegLayout::build(seg, base);
            let image = layout.image_extent();
            (layout, image)
        };
        self.index_dev.set_now(self.clock.now());
        self.index_dev.set_background(true);
        let t = self
            .index_dev
            .write(image)
            .expect("segment arena is on-device");
        self.index_dev.set_background(false);
        self.mutation_io_time += t;
        self.seg_layouts.insert(out.segment, layout);
        self.audit_mutation("SearchEngine::on_seal");
    }

    /// A compaction merge: charge input reads + output write as
    /// background I/O, retire the input layouts, and reconcile the
    /// cache under the configured [`CompactionMode`].
    fn on_compact(&mut self, out: &searchidx::CompactOutcome) {
        self.charge_wal(out.wal_bytes);
        self.index_dev.set_now(self.clock.now());
        self.index_dev.set_background(true);
        let mut t = SimDuration::ZERO;
        for id in &out.inputs {
            if let Some(l) = self.seg_layouts.get(id) {
                t += self
                    .index_dev
                    .read(l.image_extent())
                    .expect("segment arena is on-device");
            }
        }
        let layout = {
            let live = self.index.live().expect("compact implies live");
            let seg = live
                .sealed_segment(out.output)
                .expect("merge output exists");
            let arena = self.arena.as_mut().expect("live arm has an arena");
            let probe = SegLayout::build(seg, 0);
            let base = arena.alloc_segment(probe.sectors());
            SegLayout::build(seg, base)
        };
        t += self
            .index_dev
            .write(layout.image_extent())
            .expect("segment arena is on-device");
        self.index_dev.set_background(false);
        self.mutation_io_time += t;
        for id in &out.inputs {
            self.seg_layouts.remove(id);
        }
        self.seg_layouts.insert(out.output, layout);
        self.reconcile_cache(out);
        if out.content_changed {
            self.processor.invalidate_all_terms();
        }
        self.sync_processor();
        self.audit_mutation("SearchEngine::on_compact");
    }

    /// Merge-driven cache coherence. Both modes leave zero cached keys
    /// on retired segments (the `no-cached-prefix-for-dead-segment`
    /// audit); they differ in what happens to everything else.
    fn reconcile_cache(&mut self, out: &searchidx::CompactOutcome) {
        if self.cache.is_none() {
            return;
        }
        let now = self.clock.now();
        match self.compaction_mode {
            CompactionMode::InvalidateAll => {
                let cache = self.cache.as_mut().expect("checked above");
                cache.set_now(now);
                cache.device_mut().set_now(now);
                cache.invalidate_all_lists();
            }
            CompactionMode::Cooperative => {
                // Pass 1: invalidate exactly the retired segments' keys,
                // carrying each term's cached profile.
                let mut carried: Vec<(u32, u64, f64, u64)> = Vec::new();
                {
                    let cache = self.cache.as_mut().expect("checked above");
                    cache.set_now(now);
                    cache.device_mut().set_now(now);
                    let mut by_term: std::collections::BTreeMap<u32, (u64, f64, u64)> =
                        std::collections::BTreeMap::new();
                    for key in cache.cached_list_keys() {
                        let seg = hybridcache::key_segment(key);
                        if !out.inputs.contains(&seg) {
                            continue;
                        }
                        if let Some((si, pu, freq, _full)) = cache.list_profile(key) {
                            let e = by_term
                                .entry(hybridcache::key_term(key))
                                .or_insert((0, 0.0, 0));
                            e.0 += si;
                            e.1 = e.1.max(pu);
                            e.2 += freq;
                        }
                        cache.invalidate_list(key);
                    }
                    carried.extend(by_term.into_iter().map(|(t, (si, pu, f))| (t, si, pu, f)));
                }
                // Pass 2: the merged survivor's footprint per term.
                let full_bytes: Vec<u64> = {
                    let live = self.index.live().expect("compact implies live");
                    let seg = live.sealed_segment(out.output);
                    carried
                        .iter()
                        .map(|&(t, ..)| seg.map_or(0, |s| s.doc_freq(t) * 8))
                        .collect()
                };
                // Pass 3: readmit under the output segment's key, through
                // the normal admission gate.
                let cache = self.cache.as_mut().expect("checked above");
                for (&(term, si, pu, freq), &full) in carried.iter().zip(&full_bytes) {
                    if full == 0 {
                        continue; // every posting of the term was dropped
                    }
                    let key = hybridcache::list_key(out.output, term);
                    cache.readmit_list(key, si.min(full), pu, freq, full);
                }
            }
        }
    }

    /// Drain the live index's dirty-term set into the processor's
    /// per-term caches (block postings + weight scratch are keyed by
    /// term only, so stale entries must go before the next query).
    fn sync_processor(&mut self) {
        let Some(live) = self.index.live_mut() else {
            return;
        };
        let dirty = live.take_dirty();
        if dirty.all {
            self.processor.invalidate_all_terms();
        } else {
            for t in dirty.terms {
                self.processor.invalidate_term(t);
            }
        }
    }

    /// Debug-gated full-state audit after a lifecycle step (includes the
    /// segment validators and the dead-segment cache sweep).
    fn audit_mutation(&mut self, context: &str) {
        #[cfg(debug_assertions)]
        {
            if invariant::audit_enabled() {
                let report = self.validation_report();
                if !report.is_clean() {
                    panic!(
                        "invariant audit failed at {context} ({} violation(s)):\n{}",
                        report.violations().len(),
                        report.summary()
                    );
                }
            }
        }
        let _ = context;
    }

    /// The on-device extent for bytes `[from, to)` of one segment's share
    /// of a term (base layer uses the frozen layout; sealed segments use
    /// their compact arena layouts). `None` only if a sealed segment has
    /// no image yet, which cannot happen after `on_seal` — kept total so
    /// a charging miss degrades to "no HDD read" instead of a panic.
    fn live_range_extent(
        &self,
        segment: searchidx::SegmentId,
        term: u32,
        from: u64,
        to: u64,
    ) -> Option<Extent> {
        if segment == searchidx::BASE_SEGMENT {
            Some(self.layout.range_extent(term, from, to))
        } else {
            self.seg_layouts.get(&segment)?.range_extent(term, from, to)
        }
    }

    /// The extent of the first `bytes` of one segment's share of a term.
    fn live_prefix_extent(
        &self,
        segment: searchidx::SegmentId,
        term: u32,
        bytes: u64,
    ) -> Option<Extent> {
        if segment == searchidx::BASE_SEGMENT {
            Some(self.layout.prefix_extent(term, bytes))
        } else {
            self.seg_layouts.get(&segment)?.prefix_extent(term, bytes)
        }
    }

    /// Charge one term's traversal across the live layers, direct arm.
    /// Each non-empty part is an independent cacheable unit keyed by
    /// `(segment, term)`; the write-segment share is RAM-resident and
    /// never cached.
    fn charge_parts_direct(
        &mut self,
        term: u32,
        parts: &[searchidx::UsagePart],
        cost: CpuCostModel,
    ) {
        for p in parts {
            let needed = p.scanned * searchidx::POSTING_BYTES;
            let list_start = self.clock.now();
            if p.segment == searchidx::WRITE_SEGMENT {
                self.clock.advance(cost.mem_read(needed));
                self.situations
                    .record(Situation::S2ListMem, self.clock.now() - list_start);
                continue;
            }
            let full = p.df * searchidx::POSTING_BYTES;
            let pu = if p.df == 0 {
                0.0
            } else {
                (p.scanned as f64 / p.df as f64).min(1.0)
            };
            let key = hybridcache::list_key(p.segment, term);
            if let Some(cache) = self.cache.as_mut() {
                let serve = cache.lookup_list_offload(key, needed, full, pu, None);
                self.clock.advance(serve.ssd_latency);
                self.clock.advance(cost.mem_read(serve.from_mem));
                if serve.from_hdd + serve.fill_from_hdd > 0 {
                    let from = serve.from_mem + serve.from_ssd;
                    let to = needed + serve.fill_from_hdd;
                    if let Some(extent) =
                        self.live_range_extent(p.segment, term, from.min(to - 1), to)
                    {
                        let t = self
                            .index_dev
                            .read(extent)
                            .expect("segment extents are on-device");
                        self.clock.advance(t);
                    }
                }
                self.situations.record(
                    classify_list(serve.from_mem, serve.from_ssd, serve.from_hdd),
                    self.clock.now() - list_start,
                );
            } else {
                if let Some(extent) = self.live_prefix_extent(p.segment, term, needed) {
                    let t = self
                        .index_dev
                        .read(extent)
                        .expect("segment extents are on-device");
                    self.clock.advance(t);
                }
                self.situations
                    .record(Situation::S9ListHdd, self.clock.now() - list_start);
            }
        }
    }

    /// Charge one term's traversal across the live layers, queued arm:
    /// cache serves happen inline, HDD tails are deferred into the
    /// caller's `(record slot, extent)` batch like the seed path.
    fn charge_parts_queued(
        &mut self,
        term: u32,
        parts: &[searchidx::UsagePart],
        cost: CpuCostModel,
        records: &mut Vec<(Situation, SimDuration)>,
        deferred: &mut Vec<(usize, Extent)>,
    ) {
        for p in parts {
            let needed = p.scanned * searchidx::POSTING_BYTES;
            if p.segment == searchidx::WRITE_SEGMENT {
                let t = cost.mem_read(needed);
                self.clock.advance(t);
                records.push((Situation::S2ListMem, t));
                continue;
            }
            let full = p.df * searchidx::POSTING_BYTES;
            let pu = if p.df == 0 {
                0.0
            } else {
                (p.scanned as f64 / p.df as f64).min(1.0)
            };
            let key = hybridcache::list_key(p.segment, term);
            if let Some(cache) = self.cache.as_mut() {
                cache.device_mut().set_now(self.clock.now());
                let serve = cache.lookup_list_offload(key, needed, full, pu, None);
                self.clock.advance(serve.ssd_latency);
                self.clock.advance(cost.mem_read(serve.from_mem));
                let slot = records.len();
                records.push((
                    classify_list(serve.from_mem, serve.from_ssd, serve.from_hdd),
                    serve.ssd_latency + cost.mem_read(serve.from_mem),
                ));
                if serve.from_hdd + serve.fill_from_hdd > 0 {
                    let from = serve.from_mem + serve.from_ssd;
                    let to = needed + serve.fill_from_hdd;
                    if let Some(extent) =
                        self.live_range_extent(p.segment, term, from.min(to - 1), to)
                    {
                        deferred.push((slot, extent));
                    }
                }
            } else {
                let slot = records.len();
                records.push((Situation::S9ListHdd, SimDuration::ZERO));
                if let Some(extent) = self.live_prefix_extent(p.segment, term, needed) {
                    deferred.push((slot, extent));
                }
            }
        }
    }

    /// The document slot whose stored-fields record backs `doc`.
    /// Identity for the frozen corpus; ingested documents ring over the
    /// fixed doc-store region (slot reuse is fine — the simulation
    /// charges the read, it never stores data).
    fn doc_slot(&self, doc: u32) -> u32 {
        (doc as u64 % self.docstore.docs().max(1)) as u32
    }

    /// Fold one served result into the order-insensitive digest.
    fn digest_result(&mut self, result: &searchidx::ResultEntry) {
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for d in &result.docs {
            h = (h ^ (d.doc as u64)).wrapping_mul(0x100_0000_01b3);
            h = (h ^ (d.score.to_bits() as u64)).wrapping_mul(0x100_0000_01b3);
        }
        // Commutative fold: arrival order must not matter when two runs
        // interleave ingest differently between the same queries.
        self.result_digest = self.result_digest.wrapping_add(h | 1);
    }

    /// Reset measurement windows (cache contents and device wear persist —
    /// use this to measure steady state after a warm-up run).
    pub fn reset_measurements(&mut self) {
        self.situations = SituationTable::new();
        self.response = RunningStats::new();
        self.response_hist = Histogram::new();
        self.postings_scanned = 0;
        self.block_skips = searchidx::SkipStats::default();
        self.index_dev.reset_stats();
        if let Some(cache) = self.cache.as_mut() {
            cache.reset_stats();
            cache.device_mut().reset_stats();
        }
    }
}
