//! The end-to-end simulated search engine.
//!
//! Wires every substrate together the way the paper's testbed does:
//! a [`searchidx::SyntheticIndex`] laid out on a simulated disk
//! ([`hddsim::HddDisk`] or a [`flashsim::SsdDisk`]), a
//! [`workload::QueryLog`] for the request stream, and — in the cached
//! configurations — a [`hybridcache::CacheManager`] whose second level
//! lives on a flash-simulated SSD, so erase counts and flash access times
//! are *measured* outputs, not inputs.
//!
//! [`SearchEngine::run`] executes a query stream on the virtual clock and
//! produces a [`RunReport`] with the exact quantities the paper's figures
//! plot: average response time, throughput, hit ratios, SSD block-erase
//! counts and flash average access time, plus the measured Table-I
//! situation breakdown.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod engine;
pub mod model;
pub mod mutation;
pub mod payload;
pub mod report;
pub mod serving;
pub mod situations;

pub use cluster::{ClusterExecution, ClusterReport, SearchCluster};
pub use config::{
    CompactionMode, CpuCostModel, EngineConfig, IndexMutability, IndexPlacement, LiveConfig,
};
pub use engine::SearchEngine;
pub use flashsim::{ComputeParams, ComputeStats};
pub use model::{predict, FixedCosts, ModelCheck};
pub use mutation::IndexArm;
pub use payload::CachedResult;
pub use report::{FlashReport, RunReport};
pub use searchidx::PostingsBackend;
pub use serving::{
    detect_knee, FrontQueue, LoadPoint, OpenLoopConfig, Outcome, OutcomeLedger, QueryRecord,
    ServingMode, ServingOutcome, ServingReport, ServingSim, ShedPolicy,
};
pub use situations::{Situation, SituationTable};
pub use storagecore::{BusStats, OffloadDescriptor, OffloadMode};
