//! The analytic response-time model behind the paper's Table I.
//!
//! Table I decomposes retrieval into nine situations with probabilities
//! `P₁..P₉` and time costs `T₁..T₉`; the implied mean response time is the
//! expectation `Σ Pᵢ·Tᵢ` over the situations a query traverses. The
//! engine *measures* both factors — so the model's prediction can be
//! checked against the measured mean, which validates that the situation
//! accounting actually explains where the time goes (if the two diverge,
//! some cost escapes the Table-I decomposition).

use simclock::SimDuration;

use crate::report::RunReport;
use crate::situations::Situation;

/// Per-query cost components the Table-I decomposition does not attribute
/// to a storage situation (fixed CPU work).
#[derive(Debug, Clone, Copy)]
pub struct FixedCosts {
    /// Per-query overhead (parse/dispatch).
    pub per_query: SimDuration,
}

/// The model's prediction alongside what was measured.
#[derive(Debug, Clone, Copy)]
pub struct ModelCheck {
    /// Σ over situations of (events per query) × (mean time), plus fixed
    /// costs.
    pub predicted: SimDuration,
    /// The engine's measured mean response.
    pub measured: SimDuration,
}

impl ModelCheck {
    /// |predicted − measured| / measured.
    pub fn relative_error(&self) -> f64 {
        let m = self.measured.as_nanos() as f64;
        if m == 0.0 {
            return 0.0;
        }
        (self.predicted.as_nanos() as f64 - m).abs() / m
    }
}

/// Predict the mean response time of a run from its Table-I breakdown.
///
/// Situations are recorded per *event* (one result lookup per query,
/// one list lookup per scanned term), so the expectation uses events per
/// query rather than raw probabilities:
/// `E[response] ≈ fixed + Σᵢ (countᵢ / queries) · meanᵢ` — with one
/// subtlety: S8 (computed result) *includes* the whole query's time in
/// our accounting, so the list situations inside computed queries must
/// not be double counted. The model therefore uses S1/S3/S8 only, whose
/// recorded times already cover the full query-path each.
pub fn predict(report: &RunReport, fixed: FixedCosts) -> ModelCheck {
    let queries = report.queries.max(1);
    let t = &report.situations;
    let mut total_ns: f64 = 0.0;
    for s in [
        Situation::S1ResultMem,
        Situation::S3ResultSsd,
        Situation::S8ResultHdd,
    ] {
        let count = t.count(s) as f64;
        let mean = t.mean_time(s).as_nanos() as f64;
        total_ns += count * mean;
    }
    // S1/S3 events don't include the per-query fixed cost (their timing
    // starts at the cache lookup); S8 does (it spans the whole query).
    let uncovered = (t.count(Situation::S1ResultMem) + t.count(Situation::S3ResultSsd)) as f64;
    total_ns += uncovered * fixed.per_query.as_nanos() as f64;
    ModelCheck {
        predicted: SimDuration::from_nanos((total_ns / queries as f64).round() as u64),
        measured: report.mean_response,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, IndexPlacement};
    use crate::engine::SearchEngine;
    use hybridcache::{HybridConfig, PolicyKind};

    fn fixed(e: &EngineConfig) -> FixedCosts {
        FixedCosts {
            per_query: e.cost.per_query,
        }
    }

    #[test]
    fn model_explains_cached_run_within_ten_percent() {
        let cfg = EngineConfig::cached(
            60_000,
            HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru),
            3,
        );
        let fx = fixed(&cfg);
        let mut e = SearchEngine::new(cfg);
        let report = e.run(1_500);
        let check = predict(&report, fx);
        assert!(
            check.relative_error() < 0.10,
            "Table-I decomposition must explain the response time: \
             predicted {} vs measured {}",
            check.predicted,
            check.measured
        );
    }

    #[test]
    fn model_explains_uncached_run() {
        let cfg = EngineConfig::no_cache(60_000, IndexPlacement::Hdd, 5);
        let fx = fixed(&cfg);
        let mut e = SearchEngine::new(cfg);
        let report = e.run(400);
        let check = predict(&report, fx);
        // Uncached: every query is S8, so the model is near-exact.
        assert!(
            check.relative_error() < 0.02,
            "predicted {} vs measured {}",
            check.predicted,
            check.measured
        );
    }

    #[test]
    fn relative_error_arithmetic() {
        let c = ModelCheck {
            predicted: SimDuration::from_millis(11),
            measured: SimDuration::from_millis(10),
        };
        assert!((c.relative_error() - 0.1).abs() < 1e-9);
        let zero = ModelCheck {
            predicted: SimDuration::ZERO,
            measured: SimDuration::ZERO,
        };
        assert_eq!(zero.relative_error(), 0.0);
    }
}
