//! Live-index plumbing for the engine: the frozen/live index arm, the
//! on-device layout of sealed segments, and the ring arena that places
//! WAL appends and segment images after the base index.
//!
//! The base index image and the [`searchidx::IndexLayout`] over it are
//! untouched by mutation — document slots are never renumbered, so the
//! frozen extents stay valid for the base layer forever. Everything the
//! live arm adds (WAL records, sealed-segment images, merge outputs)
//! lives in the free region between the end of the doc store and the
//! device's capacity, allocated ring-wise: the simulation charges honest
//! seeks/programs for the background writes without ever growing the
//! device.

use std::collections::HashMap;

use searchidx::{
    IndexReader, LiveIndex, Posting, PostingList, SealedSegment, SyntheticIndex, TermId,
    POSTING_BYTES,
};
use storagecore::{Extent, Lba, SECTOR_SIZE};

/// The engine's index: the seed read-only path, or the segmented
/// mutable stack over the same base corpus.
#[derive(Debug)]
pub enum IndexArm {
    /// One immutable [`SyntheticIndex`] — the seed behaviour verbatim.
    Frozen(SyntheticIndex),
    /// The segmented write path. Until the first mutation it delegates
    /// every read to the base, so a zero-ingest live run is
    /// bit-identical to the frozen arm by construction.
    Live(Box<LiveIndex<SyntheticIndex>>),
}

impl IndexArm {
    /// The base (frozen) index both arms share.
    pub fn base(&self) -> &SyntheticIndex {
        match self {
            IndexArm::Frozen(i) => i,
            IndexArm::Live(l) => l.base(),
        }
    }

    /// The live index, when this is the live arm.
    pub fn live(&self) -> Option<&LiveIndex<SyntheticIndex>> {
        match self {
            IndexArm::Frozen(_) => None,
            IndexArm::Live(l) => Some(l),
        }
    }

    /// Mutable live access.
    pub fn live_mut(&mut self) -> Option<&mut LiveIndex<SyntheticIndex>> {
        match self {
            IndexArm::Frozen(_) => None,
            IndexArm::Live(l) => Some(l),
        }
    }
}

impl IndexReader for IndexArm {
    fn num_docs(&self) -> u64 {
        match self {
            IndexArm::Frozen(i) => i.num_docs(),
            IndexArm::Live(l) => l.num_docs(),
        }
    }

    fn num_terms(&self) -> u64 {
        match self {
            IndexArm::Frozen(i) => i.num_terms(),
            IndexArm::Live(l) => l.num_terms(),
        }
    }

    fn doc_freq(&self, term: TermId) -> u64 {
        match self {
            IndexArm::Frozen(i) => i.doc_freq(term),
            IndexArm::Live(l) => l.doc_freq(term),
        }
    }

    fn postings(&self, term: TermId) -> PostingList {
        match self {
            IndexArm::Frozen(i) => i.postings(term),
            IndexArm::Live(l) => l.postings(term),
        }
    }

    fn postings_range(&self, term: TermId, start: u64, end: u64) -> Vec<Posting> {
        match self {
            IndexArm::Frozen(i) => i.postings_range(term, start, end),
            IndexArm::Live(l) => l.postings_range(term, start, end),
        }
    }

    fn list_bytes(&self, term: TermId) -> u64 {
        match self {
            IndexArm::Frozen(i) => i.list_bytes(term),
            IndexArm::Live(l) => l.list_bytes(term),
        }
    }

    fn idf(&self, term: TermId) -> f64 {
        match self {
            IndexArm::Frozen(i) => i.idf(term),
            IndexArm::Live(l) => l.idf(term),
        }
    }
}

/// Compact on-device layout of one sealed segment: only the terms the
/// segment actually holds get extents (a full [`searchidx::IndexLayout`]
/// would burn a sector per vocabulary term). Extent semantics mirror the
/// base layout — sector-aligned contiguous runs per term, prefix reads
/// rounded up to whole sectors.
#[derive(Debug, Clone)]
pub struct SegLayout {
    base: Lba,
    sectors: u64,
    /// `term -> (first sector, sectors, list bytes)`, extents laid out
    /// in ascending-term order.
    by_term: HashMap<TermId, (Lba, u64, u64)>,
}

impl SegLayout {
    /// Lay the segment's lists out starting at sector `base`.
    pub fn build(seg: &SealedSegment, base: Lba) -> Self {
        let mut by_term = HashMap::new();
        let mut cursor = base;
        for term in seg.terms() {
            let bytes = seg.doc_freq(term) * POSTING_BYTES;
            let sectors = bytes.div_ceil(SECTOR_SIZE as u64).max(1);
            by_term.insert(term, (cursor, sectors, bytes));
            cursor += sectors;
        }
        SegLayout {
            base,
            sectors: cursor - base,
            by_term,
        }
    }

    /// Total sectors occupied.
    pub fn sectors(&self) -> u64 {
        self.sectors
    }

    /// The whole image as one extent (what seal/merge I/O moves).
    pub fn image_extent(&self) -> Extent {
        Extent::new(self.base, self.sectors.max(1))
    }

    /// The full extent of one term's list.
    pub fn extent(&self, term: TermId) -> Option<Extent> {
        self.by_term
            .get(&term)
            .map(|&(lba, sectors, _)| Extent::new(lba, sectors))
    }

    /// The extent covering the first `bytes` of a term's list (whole
    /// sectors, clamped, at least one).
    pub fn prefix_extent(&self, term: TermId, bytes: u64) -> Option<Extent> {
        let full = self.extent(term)?;
        let sectors = bytes.div_ceil(SECTOR_SIZE as u64).clamp(1, full.sectors);
        Some(Extent::new(full.lba, sectors))
    }

    /// The extent covering bytes `[from, to)` of a term's list, rounded
    /// outward to whole sectors and clamped.
    pub fn range_extent(&self, term: TermId, from: u64, to: u64) -> Option<Extent> {
        debug_assert!(from < to, "empty range [{from}, {to})");
        let full = self.extent(term)?;
        let first = (from / SECTOR_SIZE as u64).min(full.sectors - 1);
        let last = to
            .div_ceil(SECTOR_SIZE as u64)
            .clamp(first + 1, full.sectors);
        Some(Extent::new(full.lba + first, last - first))
    }
}

/// Ring allocator over the free device region past the doc store: a
/// small WAL ring up front, segment images behind it. Purely an
/// accounting structure — retired segments' extents are simply reused
/// once the cursor laps, which is safe because the simulation never
/// stores data, only charges the I/O.
#[derive(Debug)]
pub struct SegmentArena {
    wal_base: Lba,
    wal_sectors: u64,
    wal_cursor: u64,
    seg_base: Lba,
    seg_sectors: u64,
    seg_cursor: u64,
}

impl SegmentArena {
    /// Carve the region `[base, base + sectors)`: one eighth (at least
    /// one sector) for the WAL ring, the rest for segment images.
    pub fn new(base: Lba, sectors: u64) -> Self {
        assert!(sectors >= 8, "arena too small: {sectors} sectors");
        let wal_sectors = (sectors / 8).max(1);
        SegmentArena {
            wal_base: base,
            wal_sectors,
            wal_cursor: 0,
            seg_base: base + wal_sectors,
            seg_sectors: sectors - wal_sectors,
            seg_cursor: 0,
        }
    }

    /// The next WAL append's extent (ring of whole sectors).
    pub fn wal_extent(&mut self, bytes: u64) -> Extent {
        let sectors = bytes
            .div_ceil(SECTOR_SIZE as u64)
            .clamp(1, self.wal_sectors);
        if self.wal_cursor + sectors > self.wal_sectors {
            self.wal_cursor = 0;
        }
        let e = Extent::new(self.wal_base + self.wal_cursor, sectors);
        self.wal_cursor += sectors;
        e
    }

    /// A contiguous run of `sectors` for a segment image (wraps to the
    /// start when the tail is too short; images larger than the whole
    /// region are clamped — the charge stays honest enough and extents
    /// stay on-device).
    pub fn alloc_segment(&mut self, sectors: u64) -> Lba {
        let sectors = sectors.clamp(1, self.seg_sectors);
        if self.seg_cursor + sectors > self.seg_sectors {
            self.seg_cursor = 0;
        }
        let lba = self.seg_base + self.seg_cursor;
        self.seg_cursor += sectors;
        lba
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use searchidx::{GrowthPolicy, SegmentPolicy, WriteSegment};
    use simclock::SimTime;

    fn sealed() -> SealedSegment {
        let mut ws = WriteSegment::new(100, GrowthPolicy::Contiguous);
        for d in 0..20u32 {
            ws.add_doc(&[(d % 5, 1 + d % 3), (7, 2)]);
        }
        SealedSegment::from_write(3, &ws, 1_000)
    }

    #[test]
    fn seg_layout_covers_every_list_without_vocab_padding() {
        let seg = sealed();
        let l = SegLayout::build(&seg, 5_000);
        // Only present terms are laid out; extents are disjoint and
        // back-to-back in ascending term order.
        let mut terms: Vec<TermId> = seg.terms().collect();
        terms.sort_unstable();
        let mut cursor = 5_000;
        for &t in &terms {
            let e = l.extent(t).expect("present term laid out");
            assert_eq!(e.lba, cursor);
            assert!(e.bytes() >= seg.doc_freq(t) * POSTING_BYTES);
            cursor = e.end();
        }
        assert_eq!(l.image_extent(), Extent::new(5_000, l.sectors()));
        assert_eq!(l.extent(999), None, "absent term has no extent");
        // Prefix/range clamp like the base layout.
        let t = terms[0];
        assert_eq!(l.prefix_extent(t, 1).unwrap().sectors, 1);
        let full = l.extent(t).unwrap();
        assert!(full.contains(&l.range_extent(t, 0, u64::MAX).unwrap()));
    }

    #[test]
    fn arena_rings_wal_and_segments_in_bounds() {
        let mut a = SegmentArena::new(1_000, 80);
        let region = Extent::new(1_000, 80);
        let mut seen_wrap = false;
        let mut last = 0;
        for i in 0..50 {
            let e = a.wal_extent(100 + i * 37);
            assert!(region.contains(&e), "wal extent {e} escaped the arena");
            if e.lba < last {
                seen_wrap = true;
            }
            last = e.lba;
        }
        assert!(seen_wrap, "wal ring never wrapped");
        for sectors in [5u64, 30, 64, 200] {
            let lba = a.alloc_segment(sectors);
            let clamped = sectors.min(80 - 10);
            assert!(
                lba >= a.seg_base && lba + clamped <= 1_000 + 80,
                "segment run escaped the arena"
            );
        }
    }

    #[test]
    fn index_arm_pristine_live_reads_equal_frozen() {
        let spec = searchidx::CorpusSpec::tiny(11);
        let frozen = IndexArm::Frozen(SyntheticIndex::new(spec.clone()));
        let live = IndexArm::Live(Box::new(LiveIndex::new(
            SyntheticIndex::new(spec),
            SegmentPolicy::default(),
        )));
        assert_eq!(frozen.num_docs(), live.num_docs());
        assert_eq!(frozen.num_terms(), live.num_terms());
        for t in [0u32, 5, 100, 1_999] {
            assert_eq!(frozen.doc_freq(t), live.doc_freq(t));
            assert_eq!(frozen.postings(t), live.postings(t));
            assert_eq!(frozen.list_bytes(t), live.list_bytes(t));
            assert!((frozen.idf(t) - live.idf(t)).abs() == 0.0, "idf bit-equal");
        }
        let mut arm = live;
        let l = arm.live_mut().expect("live arm");
        l.add_document(SimTime::ZERO, &[(0, 1)]);
        assert_eq!(arm.num_docs(), arm.base().num_docs() + 1);
    }
}
