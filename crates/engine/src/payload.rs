//! Zero-copy cached result payloads.
//!
//! The cache manager clones result payloads on every admit, demote and
//! flush (memory → write buffer → result block). With a plain
//! [`ResultEntry`] each clone copies the whole doc vector; wrapping the
//! encoded entry in a [`bytes::Bytes`] buffer makes every clone a
//! refcount bump — the payload is materialized once per query and shared
//! by all cache levels. Simulated sizes are unchanged:
//! [`CachedResult::bytes`] reports the same ~400 B/doc footprint as
//! [`ResultEntry::bytes`], so hit ratios and response times stay
//! bit-identical.

use bytes::Bytes;
use searchidx::{ResultEntry, ScoredDoc, RESULT_DOC_BYTES};

/// Encoded bytes per document: u32 doc id + f32 score, little-endian.
const ENCODED_DOC_BYTES: usize = 8;

/// A result entry encoded into one shared, immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult(Bytes);

impl CachedResult {
    /// Encode the top-K documents into a shared buffer.
    pub fn encode(entry: &ResultEntry) -> Self {
        let mut buf = Vec::with_capacity(entry.docs.len() * ENCODED_DOC_BYTES);
        for d in &entry.docs {
            buf.extend_from_slice(&d.doc.to_le_bytes());
            buf.extend_from_slice(&d.score.to_le_bytes());
        }
        CachedResult(Bytes::from(buf))
    }

    /// Decode back into the document list.
    pub fn decode(&self) -> ResultEntry {
        let docs = self
            .0
            .as_slice()
            .chunks_exact(ENCODED_DOC_BYTES)
            .map(|c| ScoredDoc {
                doc: u32::from_le_bytes(c[..4].try_into().expect("4-byte chunk half")),
                score: f32::from_le_bytes(c[4..].try_into().expect("4-byte chunk half")),
            })
            .collect();
        ResultEntry { docs }
    }

    /// Documents in the entry.
    pub fn doc_count(&self) -> usize {
        self.0.len() / ENCODED_DOC_BYTES
    }

    /// Simulated cache footprint — the paper's ~400 B per document,
    /// identical to [`ResultEntry::bytes`] for the same doc count.
    pub fn bytes(&self) -> u64 {
        self.doc_count() as u64 * RESULT_DOC_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u32) -> ResultEntry {
        ResultEntry {
            docs: (0..n)
                .map(|d| ScoredDoc {
                    doc: d * 3,
                    score: d as f32 * 0.5 - 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn round_trips() {
        for n in [0, 1, 7, 50] {
            let e = entry(n);
            assert_eq!(CachedResult::encode(&e).decode(), e);
        }
    }

    #[test]
    fn simulated_footprint_matches_result_entry() {
        for n in [0, 1, 50] {
            let e = entry(n);
            assert_eq!(CachedResult::encode(&e).bytes(), e.bytes());
        }
    }

    #[test]
    fn clone_shares_the_buffer() {
        let a = CachedResult::encode(&entry(50));
        let b = a.clone();
        assert!(std::ptr::eq(
            a.0.as_slice().as_ptr(),
            b.0.as_slice().as_ptr()
        ));
        assert_eq!(a, b);
    }
}
