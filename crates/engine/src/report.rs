//! Run reports: the measured quantities every figure plots.

use hybridcache::CacheStats;
use simclock::SimDuration;

use crate::situations::SituationTable;

/// Flash-internal measurements (Fig. 19's quantities).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlashReport {
    /// Block erasures performed by the cache SSD's FTL.
    pub block_erases: u64,
    /// NAND page reads (host + GC).
    pub page_reads: u64,
    /// NAND page programs (host + GC).
    pub page_programs: u64,
    /// Host page writes.
    pub host_writes: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Pages migrated by GC.
    pub pages_moved: u64,
    /// Write amplification (programs / host writes).
    pub write_amplification: f64,
    /// Mean *per-page* service time at the SSD: device busy time divided
    /// by host pages transferred ("flash average access time",
    /// Fig. 19(b)). Per-page rather than per-request, so policies with
    /// different request sizes (one 128 KB RB vs six 20 KB entries)
    /// compare on the work actually delivered; GC stalls folded into the
    /// triggering write raise it, which is the Fig. 19(b) effect.
    pub mean_access: SimDuration,
}

/// Summary of one engine run. `PartialEq` compares every simulated
/// figure bit-for-bit — the equality the cluster equivalence tests and
/// the `perf_regress` arms assert.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Queries executed.
    pub queries: u64,
    /// Virtual time elapsed.
    pub elapsed: SimDuration,
    /// Mean per-query response time.
    pub mean_response: SimDuration,
    /// 99th-percentile response time (log₂-bucket upper bound).
    pub p99_response: SimDuration,
    /// Sustained throughput, queries per second of virtual time.
    pub throughput_qps: f64,
    /// Postings scored (CPU work proxy).
    pub postings_scanned: u64,
    /// Cache statistics, when a cache was configured.
    pub cache: Option<CacheStats>,
    /// Flash-internal statistics of the cache SSD, when one existed.
    pub flash: Option<FlashReport>,
    /// Index-device requests and mean latency.
    pub index_ops: u64,
    /// Mean index-device request latency.
    pub index_mean_latency: SimDuration,
    /// Measured Table-I situation breakdown.
    pub situations: SituationTable,
}

impl RunReport {
    /// Overall hit ratio (0 when uncached).
    pub fn hit_ratio(&self) -> f64 {
        self.cache
            .as_ref()
            .map_or(0.0, CacheStats::overall_hit_ratio)
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{} queries in {} | mean {} | {:.2} q/s | hit {:.2}% | erases {}",
            self.queries,
            self.elapsed,
            self.mean_response,
            self.throughput_qps,
            self.hit_ratio() * 100.0,
            self.flash.map_or(0, |f| f.block_erases),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders() {
        let r = RunReport {
            queries: 10,
            elapsed: SimDuration::from_secs(1),
            mean_response: SimDuration::from_millis(100),
            p99_response: SimDuration::from_millis(200),
            throughput_qps: 10.0,
            postings_scanned: 1234,
            cache: None,
            flash: None,
            index_ops: 42,
            index_mean_latency: SimDuration::from_millis(9),
            situations: SituationTable::new(),
        };
        let s = r.summary();
        assert!(s.contains("10 queries"));
        assert!(s.contains("10.00 q/s"));
        assert_eq!(r.hit_ratio(), 0.0);
    }
}
