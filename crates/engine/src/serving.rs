//! Open-loop serving front-end.
//!
//! The closed-loop harness ([`SearchCluster::run_queries`]) issues the
//! next query the instant the previous one finishes, so the system is
//! never offered more load than it can absorb and the latency figures
//! say nothing about behaviour near saturation. Real search front-ends
//! are *open loop*: queries arrive on their own schedule (see
//! [`workload::arrival`]), queue when the index servers are busy, and
//! blow through their deadlines when the offered load exceeds capacity.
//!
//! [`ServingSim`] puts that front-end in front of a replicated
//! [`SearchCluster`]: a deadline-classed FIFO queue ([`FrontQueue`]),
//! queue-aware admission (shed or degrade queries that are predicted to
//! miss), batching into [`SearchCluster::execute_batch`] dispatches, and
//! hedged re-issues to a second replica for queries whose primary is
//! slow. Everything runs on virtual time: arrivals carry [`SimTime`]
//! stamps, service times come from the simulated engines, and the whole
//! schedule is a deterministic function of the seed.
//!
//! The closed-loop path is kept verbatim behind [`ServingMode`]:
//! `ServingMode::ClosedLoop` delegates to `run_queries` untouched, and
//! `ServingMode::OpenLoop` with [`OpenLoopConfig::reference`] (infinite
//! deadline, batch size 1, no shedding, no hedging, zero dispatch
//! overhead) drives the cluster through the exact same sequence of
//! `execute_batch` calls as the closed loop, so the per-query service
//! times and every cumulative shard statistic are bit-identical —
//! `divergence_probe --serving` bisects any regression of this contract.

use std::collections::VecDeque;

use invariant::{audit, Report, Validate};
use simclock::{quantile_exact, SimDuration, SimTime};
use workload::{Arrival, Query};

use crate::cluster::{ClusterReport, SearchCluster};
use crate::config::EngineConfig;

/// Marks a degraded (term-truncated) rewrite of a query so its result
/// cache entry never aliases the full query's.
const DEGRADED_ID_BIT: u64 = 1 << 62;

/// Smoothing factor for the front-end's EWMA service-time estimate.
const SERVICE_EWMA_ALPHA: f64 = 0.2;

/// A load point is "efficient" when goodput is at least this fraction
/// of the offered load; the saturation knee is the highest efficient
/// offered load before the first inefficient one (see [`detect_knee`]).
pub const KNEE_EFFICIENCY: f64 = 0.97;

/// How the serving harness drives the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServingMode {
    /// The reference arm: closed-loop replay through
    /// [`SearchCluster::run_queries`], verbatim. Arrival timestamps are
    /// ignored; the next query starts when the previous one completes.
    ClosedLoop,
    /// Open-loop serving: queries arrive on the workload's schedule and
    /// flow through the front-end queue under this configuration.
    OpenLoop(OpenLoopConfig),
}

/// What the admission gate does with a query predicted to miss its
/// deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Never shed: every arrival is enqueued (the naive FIFO arm).
    Admit,
    /// Drop the query at arrival; it is never dispatched.
    Drop,
    /// Rewrite the query to its first term (a cheaper approximation)
    /// and enqueue the degraded form instead of dropping it.
    Degrade,
}

/// Front-end configuration for [`ServingMode::OpenLoop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopConfig {
    /// Relative deadline applied to every arrival; `None` = infinite
    /// (nothing sheds, nothing counts as a miss).
    pub deadline: Option<SimDuration>,
    /// Every `bulk_period`-th arrival is a "bulk" query whose deadline
    /// is stretched by [`OpenLoopConfig::bulk_factor`], exercising the
    /// second deadline class in [`FrontQueue`]. `0` disables bulk
    /// traffic.
    pub bulk_period: u64,
    /// Deadline multiplier for bulk queries.
    pub bulk_factor: u32,
    /// Maximum queries drained into one [`SearchCluster::execute_batch`]
    /// dispatch; batching amortizes `dispatch_overhead`.
    pub batch_max: usize,
    /// Admission policy for queries predicted to miss their deadline.
    pub shed: ShedPolicy,
    /// Issue a duplicate to a second replica once a query has been
    /// executing for this long without completing (the classic
    /// tail-tolerant hedge: the trigger is the query's own slowness,
    /// not queueing delay ahead of it); `None` disables hedging.
    pub hedge_after: Option<SimDuration>,
    /// Fixed per-dispatch cost (RPC fan-out, batch assembly) paid once
    /// per batch — the quantity batching amortizes.
    pub dispatch_overhead: SimDuration,
}

impl OpenLoopConfig {
    /// The equivalence anchor: infinite deadline, batch size 1, no
    /// shedding, no hedging, zero overhead. Under this configuration the
    /// open loop issues the same `execute_batch` calls, in the same
    /// order, as the closed loop, and the per-query service times are
    /// bit-identical to [`SearchCluster::run_queries`].
    pub fn reference() -> Self {
        OpenLoopConfig {
            deadline: None,
            bulk_period: 0,
            bulk_factor: 1,
            batch_max: 1,
            shed: ShedPolicy::Admit,
            hedge_after: None,
            dispatch_overhead: SimDuration::ZERO,
        }
    }

    /// The naive baseline the paper-style load sweep compares against:
    /// FIFO, one query per dispatch, no shedding, no hedging.
    pub fn naive_fifo(deadline: SimDuration, dispatch_overhead: SimDuration) -> Self {
        OpenLoopConfig {
            deadline: Some(deadline),
            dispatch_overhead,
            ..OpenLoopConfig::reference()
        }
    }

    /// The optimized arm: batching plus queue-aware shedding (hedging is
    /// opted into separately via [`OpenLoopConfig::hedge_after`]).
    pub fn batched(
        deadline: SimDuration,
        dispatch_overhead: SimDuration,
        batch_max: usize,
    ) -> Self {
        OpenLoopConfig {
            deadline: Some(deadline),
            dispatch_overhead,
            batch_max,
            shed: ShedPolicy::Drop,
            ..OpenLoopConfig::reference()
        }
    }
}

/// One query waiting in the front-end queue.
#[derive(Debug, Clone)]
struct Pending {
    /// Arrival sequence number (index into the arrival stream).
    seq: u64,
    /// Arrival timestamp.
    arrived: SimTime,
    /// Absolute deadline; `None` = infinite.
    deadline: Option<SimTime>,
    /// Relative deadline in nanoseconds (`u64::MAX` = infinite) — the
    /// deadline class this query files under.
    class_key: u64,
    /// Whether the admission gate rewrote this query to its degraded
    /// form.
    degraded: bool,
    query: Query,
}

/// One deadline class: queries sharing a relative deadline, in FIFO
/// order.
#[derive(Debug)]
struct ClassQueue {
    key: u64,
    items: VecDeque<Pending>,
}

/// The front-end queue: a small set of deadline classes (ascending by
/// relative deadline), FIFO within each class, earliest absolute
/// deadline first across classes. Carries redundant length and
/// enqueue/dequeue counters precisely so the [`Validate`] impl can
/// cross-check them against the ground truth.
#[derive(Debug, Default)]
pub struct FrontQueue {
    classes: Vec<ClassQueue>,
    len: usize,
    enqueued: u64,
    dequeued: u64,
}

impl FrontQueue {
    fn push(&mut self, p: Pending) {
        match self.classes.binary_search_by_key(&p.class_key, |c| c.key) {
            Ok(i) => self.classes[i].items.push_back(p),
            Err(i) => {
                let mut items = VecDeque::new();
                let key = p.class_key;
                items.push_back(p);
                self.classes.insert(i, ClassQueue { key, items });
            }
        }
        self.len += 1;
        self.enqueued += 1;
    }

    /// Pop the query with the earliest absolute deadline (EDF across
    /// classes; FIFO within a class already yields ascending absolute
    /// deadlines). Ties break toward the tighter class, then FIFO.
    fn pop_front(&mut self) -> Option<Pending> {
        let mut best: Option<(usize, u64, u64)> = None; // (class idx, abs deadline, seq)
        for (i, class) in self.classes.iter().enumerate() {
            if let Some(front) = class.items.front() {
                let abs = front.deadline.map_or(u64::MAX, SimTime::as_nanos);
                let cand = (i, abs, front.seq);
                let better = match best {
                    None => true,
                    Some((_, b_abs, b_seq)) => (abs, front.seq) < (b_abs, b_seq),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let (i, _, _) = best?;
        let p = self.classes[i].items.pop_front()?;
        self.len -= 1;
        self.dequeued += 1;
        Some(p)
    }

    /// Queries that would be served no later than a new arrival of the
    /// given class (every queued query in a class at least as tight,
    /// plus FIFO order within the class itself) — the `queue_ahead` term
    /// of the admission predicate.
    fn work_ahead_of(&self, class_key: u64) -> usize {
        self.classes
            .iter()
            .filter(|c| c.key <= class_key)
            .map(|c| c.items.len())
            .sum()
    }

    /// Queued queries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Corruption hook for the audit tests: swap the first two entries
    /// of the first class holding at least two, breaking FIFO order.
    #[doc(hidden)]
    pub fn corrupt_swap_front(&mut self) {
        for class in &mut self.classes {
            if class.items.len() >= 2 {
                class.items.swap(0, 1);
                return;
            }
        }
    }

    /// Corruption hook for the audit tests: desynchronize the redundant
    /// length counter from the class contents.
    #[doc(hidden)]
    pub fn corrupt_len(&mut self) {
        self.len += 1;
        self.enqueued += 1;
    }

    /// Corruption hook for the audit tests: misfile the first queued
    /// query under a class whose key disagrees with the entry.
    #[doc(hidden)]
    pub fn corrupt_class_key(&mut self) {
        for class in &mut self.classes {
            if let Some(front) = class.items.front_mut() {
                front.class_key ^= 1;
                return;
            }
        }
    }
}

impl Validate for FrontQueue {
    fn validate(&self, report: &mut Report) {
        let mut prev_key: Option<u64> = None;
        let mut total = 0usize;
        for class in &self.classes {
            if let Some(pk) = prev_key {
                report.check(pk < class.key, "FrontQueue", "classes-ascending", || {
                    format!("class key {} follows {}", class.key, pk)
                });
            }
            prev_key = Some(class.key);
            total += class.items.len();
            let mut prev_seq: Option<u64> = None;
            for item in &class.items {
                report.check(
                    item.class_key == class.key,
                    "FrontQueue",
                    "class-key-agrees",
                    || {
                        format!(
                            "seq {} filed under class {} but carries key {}",
                            item.seq, class.key, item.class_key
                        )
                    },
                );
                if let Some(ps) = prev_seq {
                    report.check(ps < item.seq, "FrontQueue", "fifo-within-class", || {
                        format!(
                            "seq {} queued behind seq {} in class {}",
                            item.seq, ps, class.key
                        )
                    });
                }
                prev_seq = Some(item.seq);
            }
        }
        report.check(
            self.len == total,
            "FrontQueue",
            "queue-length-agrees",
            || format!("len counter {} but classes hold {}", self.len, total),
        );
        report.check(
            self.enqueued - self.dequeued == self.len as u64,
            "FrontQueue",
            "flow-conservation",
            || {
                format!(
                    "enqueued {} - dequeued {} != len {}",
                    self.enqueued, self.dequeued, self.len
                )
            },
        );
    }
}

/// Terminal bookkeeping: which arrivals were answered and which were
/// shed. A query must end up in exactly one set; the [`Validate`] impl
/// proves disjointness and that the counters match the sets.
#[derive(Debug, Default)]
pub struct OutcomeLedger {
    arrivals: u64,
    answered: Vec<u64>,
    shed: Vec<u64>,
    answered_count: u64,
    shed_count: u64,
}

impl OutcomeLedger {
    fn arrive(&mut self) {
        self.arrivals += 1;
    }

    fn answer(&mut self, seq: u64) {
        self.answered.push(seq);
        self.answered_count += 1;
    }

    fn shed(&mut self, seq: u64) {
        self.shed.push(seq);
        self.shed_count += 1;
    }

    /// Corruption hook for the audit tests: record the first answered
    /// query as also shed.
    #[doc(hidden)]
    pub fn corrupt_double_outcome(&mut self) {
        if let Some(&seq) = self.answered.first() {
            self.shed.push(seq);
            self.shed_count += 1;
        }
    }

    /// Corruption hook for the audit tests: bump the answered counter
    /// without a matching outcome.
    #[doc(hidden)]
    pub fn corrupt_counter(&mut self) {
        self.answered_count += 1;
    }
}

impl Validate for OutcomeLedger {
    fn validate(&self, report: &mut Report) {
        report.check(
            self.answered_count == self.answered.len() as u64,
            "OutcomeLedger",
            "answered-counter-agrees",
            || {
                format!(
                    "counter {} but {} answered outcomes",
                    self.answered_count,
                    self.answered.len()
                )
            },
        );
        report.check(
            self.shed_count == self.shed.len() as u64,
            "OutcomeLedger",
            "shed-counter-agrees",
            || {
                format!(
                    "counter {} but {} shed outcomes",
                    self.shed_count,
                    self.shed.len()
                )
            },
        );
        report.check(
            self.answered.len() as u64 + self.shed.len() as u64 <= self.arrivals,
            "OutcomeLedger",
            "outcomes-bounded-by-arrivals",
            || {
                format!(
                    "{} answered + {} shed > {} arrivals",
                    self.answered.len(),
                    self.shed.len(),
                    self.arrivals
                )
            },
        );
        let mut seen = vec![0u8; self.arrivals as usize];
        for (which, set) in [("answered", &self.answered), ("shed", &self.shed)] {
            for &seq in set {
                let in_range = (seq as usize) < seen.len();
                report.check(in_range, "OutcomeLedger", "seq-in-range", || {
                    format!("{which} seq {seq} >= {} arrivals", self.arrivals)
                });
                if in_range {
                    seen[seq as usize] += 1;
                    report.check(
                        seen[seq as usize] <= 1,
                        "OutcomeLedger",
                        "exactly-one-outcome",
                        || format!("seq {seq} recorded more than once (latest: {which})"),
                    );
                }
            }
        }
    }
}

/// Terminal outcome of one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The admission gate dropped the query at arrival time.
    Shed,
    /// The query was dispatched and answered.
    Answered {
        /// When its batch was dispatched to a replica.
        dispatched: SimTime,
        /// When its response completed (hedge winner if hedged).
        completed: SimTime,
        /// The primary replica's service time for this query.
        service: SimDuration,
        /// Whether a duplicate was issued to a second replica.
        hedged: bool,
        /// Whether the duplicate finished first.
        hedge_won: bool,
        /// Whether the admission gate rewrote the query to its degraded
        /// form before dispatch.
        degraded: bool,
    },
}

/// Per-arrival record emitted by [`ServingSim::run_open_loop`], in
/// arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Arrival sequence number.
    pub seq: u64,
    /// Arrival timestamp.
    pub arrived: SimTime,
    /// Absolute deadline (`None` = infinite).
    pub deadline: Option<SimTime>,
    /// What happened to it.
    pub outcome: Outcome,
}

impl QueryRecord {
    /// Response time for answered queries (completion minus arrival),
    /// `None` for shed ones.
    pub fn response(&self) -> Option<SimDuration> {
        match self.outcome {
            Outcome::Shed => None,
            Outcome::Answered { completed, .. } => Some(completed.since(self.arrived)),
        }
    }

    /// Whether the query was answered within its deadline (infinite
    /// deadlines always count; shed queries never do).
    pub fn in_deadline(&self) -> bool {
        match self.outcome {
            Outcome::Shed => false,
            Outcome::Answered { completed, .. } => self.deadline.is_none_or(|d| completed <= d),
        }
    }
}

/// Aggregate figures for one open-loop run — the row a load sweep plots.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Queries offered by the arrival process.
    pub arrivals: u64,
    /// Queries dispatched and answered.
    pub answered: u64,
    /// Queries dropped by the admission gate.
    pub shed: u64,
    /// Queries answered in degraded (term-truncated) form.
    pub degraded: u64,
    /// Answered queries that finished past their deadline.
    pub deadline_misses: u64,
    /// `execute_batch` dispatches issued.
    pub batches: u64,
    /// Mean queries per dispatch.
    pub mean_batch: f64,
    /// Duplicates issued to a second replica.
    pub hedges_issued: u64,
    /// Duplicates that finished before their primary.
    pub hedges_won: u64,
    /// Replica busy time spent on duplicates that lost (the price of
    /// hedging; winners' time is useful work).
    pub hedge_wasted: SimDuration,
    /// Offered load: arrivals over the arrival horizon.
    pub offered_qps: f64,
    /// Goodput: queries answered within deadline over the makespan.
    pub goodput_qps: f64,
    /// Mean response (answered queries; completion minus arrival).
    pub mean_response: SimDuration,
    /// Median response.
    pub p50_response: SimDuration,
    /// 99th-percentile response (exact order statistic).
    pub p99_response: SimDuration,
    /// 99.9th-percentile response (exact order statistic).
    pub p999_response: SimDuration,
    /// Worst response.
    pub max_response: SimDuration,
    /// Mean time answered queries waited before dispatch.
    pub mean_queue_wait: SimDuration,
    /// Virtual time from zero to the last completion (or last arrival
    /// if later).
    pub makespan: SimDuration,
}

/// What [`ServingSim::run`] returns — the closed-loop arm keeps its
/// native report type untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingOutcome {
    /// Closed-loop replay: the verbatim [`ClusterReport`].
    Closed(ClusterReport),
    /// Open-loop run: the front-end's [`ServingReport`].
    Open(ServingReport),
}

/// One point on a latency-vs-offered-load curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load of the run.
    pub offered_qps: f64,
    /// Goodput achieved at that load.
    pub goodput_qps: f64,
}

/// Find the saturation knee of a load sweep: the highest offered load
/// (scanning in ascending offered order) whose goodput is at least
/// [`KNEE_EFFICIENCY`] of the offer, stopping at the first inefficient
/// point. Returns `0.0` if the very first point is already saturated.
pub fn detect_knee(points: &[LoadPoint]) -> f64 {
    let mut sorted: Vec<&LoadPoint> = points.iter().collect();
    sorted.sort_by(|a, b| a.offered_qps.total_cmp(&b.offered_qps));
    let mut knee = 0.0;
    for p in sorted {
        if p.goodput_qps >= KNEE_EFFICIENCY * p.offered_qps {
            knee = p.offered_qps;
        } else {
            break;
        }
    }
    knee
}

/// A replicated cluster behind an open-loop front-end.
///
/// All replicas are built from the same [`EngineConfig`] and shard
/// count, so their corpora, logs and initial cache states are
/// bit-identical; under hedging their caches legitimately diverge
/// (duplicates warm whichever replica served them).
#[derive(Debug)]
pub struct ServingSim {
    replicas: Vec<SearchCluster>,
    mode: ServingMode,
    records: Vec<QueryRecord>,
    ledger: OutcomeLedger,
}

impl ServingSim {
    /// Build `replicas` identical `shards`-way clusters.
    pub fn new(config: EngineConfig, shards: usize, replicas: usize, mode: ServingMode) -> Self {
        assert!(replicas >= 1, "a serving tier needs at least one replica");
        let replicas = (0..replicas)
            .map(|_| SearchCluster::new(config.clone(), shards))
            .collect();
        ServingSim {
            replicas,
            mode,
            records: Vec::new(),
            ledger: OutcomeLedger::default(),
        }
    }

    /// The configured serving mode.
    pub fn mode(&self) -> ServingMode {
        self.mode
    }

    /// Replica count.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Borrow one replica (e.g. to compare shard reports against a
    /// stand-alone closed-loop cluster).
    pub fn replica(&self, i: usize) -> &SearchCluster {
        &self.replicas[i]
    }

    /// Mutably borrow one replica (e.g. to snapshot its cumulative
    /// [`ClusterReport`] via `run_queries(&[])`).
    pub fn replica_mut(&mut self, i: usize) -> &mut SearchCluster {
        &mut self.replicas[i]
    }

    /// Switch every replica's shard-execution arm.
    pub fn set_execution(&mut self, exec: crate::cluster::ClusterExecution) {
        for r in &mut self.replicas {
            r.set_execution(exec);
        }
    }

    /// Per-arrival records of the last open-loop run, in arrival order.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Corruption surface for the audit tests: the last run's outcome
    /// ledger, mutable so planted corruption can prove the validators
    /// fire on real run state.
    #[doc(hidden)]
    pub fn ledger_mut(&mut self) -> &mut OutcomeLedger {
        &mut self.ledger
    }

    /// Run the structural validators over the front-end ledger and every
    /// replica's shards.
    pub fn validation_report(&self) -> Report {
        let mut merged = self.ledger.validation_report();
        for r in &self.replicas {
            merged.absorb(r.validation_report());
        }
        merged
    }

    /// Drive the configured mode over an arrival stream.
    pub fn run(&mut self, arrivals: &[Arrival]) -> ServingOutcome {
        match self.mode {
            ServingMode::ClosedLoop => {
                let queries: Vec<Query> = arrivals.iter().map(|a| a.query.clone()).collect();
                ServingOutcome::Closed(self.replicas[0].run_queries(&queries))
            }
            ServingMode::OpenLoop(cfg) => ServingOutcome::Open(self.run_open_loop(arrivals, cfg)),
        }
    }

    /// The open-loop event loop: alternate between the next arrival and
    /// the next dispatch opportunity, whichever comes first in virtual
    /// time, until the stream is exhausted and the queue drains.
    fn run_open_loop(&mut self, arrivals: &[Arrival], cfg: OpenLoopConfig) -> ServingReport {
        assert!(cfg.batch_max >= 1, "batches hold at least one query");
        assert!(cfg.bulk_factor >= 1, "bulk factor stretches deadlines");
        let n = arrivals.len();
        let mut queue = FrontQueue::default();
        let mut ledger = OutcomeLedger::default();
        let mut records: Vec<Option<QueryRecord>> = vec![None; n];
        let mut free_at = vec![SimTime::ZERO; self.replicas.len()];
        // EWMA of observed per-query dispatch cost (service + amortized
        // overhead), in ns. Updated when a batch is dispatched, i.e.
        // slightly ahead of when a real front-end would observe the
        // completion — a deliberate simplification that keeps the
        // estimator deterministic and replica-order independent.
        let mut est_ns = 0.0f64;
        let mut hedges_issued = 0u64;
        let mut hedges_won = 0u64;
        let mut hedge_wasted = SimDuration::ZERO;
        let mut batches = 0u64;
        let mut batched_queries = 0u64;

        let mut next = 0usize; // next arrival index
        let mut now = SimTime::ZERO;
        while next < n || !queue.is_empty() {
            let arrival_at = arrivals
                .get(next)
                .map_or(SimTime::from_nanos(u64::MAX), |a| a.at);
            let dispatch_at = if queue.is_empty() {
                SimTime::from_nanos(u64::MAX)
            } else {
                // The least-loaded replica can start the next batch as
                // soon as it is free (or immediately if already idle).
                let min_free = free_at.iter().copied().min().expect(">=1 replica");
                min_free.max(now)
            };
            if arrival_at <= dispatch_at {
                now = arrival_at;
                let seq = next as u64;
                let a = &arrivals[next];
                next += 1;
                ledger.arrive();
                self.admit(
                    seq,
                    a,
                    now,
                    &cfg,
                    &mut queue,
                    &mut ledger,
                    &mut records,
                    &free_at,
                    est_ns,
                );
                audit!(&queue, "ServingSim::admit");
            } else {
                now = dispatch_at;
                let replica = Self::least_loaded(&free_at);
                let (size, batch_est) = self.dispatch(
                    now,
                    replica,
                    &cfg,
                    &mut queue,
                    &mut ledger,
                    &mut records,
                    &mut free_at,
                    &mut hedges_issued,
                    &mut hedges_won,
                    &mut hedge_wasted,
                );
                batches += 1;
                batched_queries += size as u64;
                est_ns = if est_ns == 0.0 {
                    batch_est
                } else {
                    (1.0 - SERVICE_EWMA_ALPHA) * est_ns + SERVICE_EWMA_ALPHA * batch_est
                };
                audit!(&queue, "ServingSim::dispatch");
                audit!(&ledger, "ServingSim::dispatch");
            }
        }

        let records: Vec<QueryRecord> = records
            .into_iter()
            .map(|r| r.expect("every arrival reaches a terminal outcome"))
            .collect();
        audit!(&ledger, "ServingSim::run_open_loop(done)");
        self.records = records;
        self.ledger = ledger;
        self.summarize(
            arrivals,
            batches,
            batched_queries,
            hedges_issued,
            hedges_won,
            hedge_wasted,
        )
    }

    /// Index of the replica that frees up first (ties toward the lowest
    /// index, keeping the schedule deterministic).
    fn least_loaded(free_at: &[SimTime]) -> usize {
        let mut best = 0;
        for (i, &t) in free_at.iter().enumerate().skip(1) {
            if t < free_at[best] {
                best = i;
            }
        }
        best
    }

    /// Admission gate: classify the arrival, predict its finish from the
    /// queue state and the service estimate, and enqueue / shed /
    /// degrade accordingly.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        seq: u64,
        arrival: &Arrival,
        now: SimTime,
        cfg: &OpenLoopConfig,
        queue: &mut FrontQueue,
        ledger: &mut OutcomeLedger,
        records: &mut [Option<QueryRecord>],
        free_at: &[SimTime],
        est_ns: f64,
    ) -> bool {
        let bulk = cfg.bulk_period > 0 && seq % cfg.bulk_period == cfg.bulk_period - 1;
        let rel = cfg
            .deadline
            .map(|d| if bulk { d * cfg.bulk_factor as u64 } else { d });
        let class_key = rel.map_or(u64::MAX, |d| d.as_nanos());
        let deadline = rel.map(|d| now + d);

        let predicted_miss = match (cfg.shed, rel) {
            (ShedPolicy::Admit, _) | (_, None) => false,
            (_, Some(rel)) => {
                if est_ns == 0.0 {
                    // Optimistic until the first dispatch calibrates the
                    // estimator.
                    false
                } else {
                    let min_free = free_at.iter().copied().min().expect(">=1 replica");
                    let backlog_ns = min_free.since(now).as_nanos() as f64;
                    let ahead = queue.work_ahead_of(class_key) as f64;
                    let wait_ns = backlog_ns + ahead * est_ns / free_at.len() as f64;
                    wait_ns + est_ns > rel.as_nanos() as f64
                }
            }
        };

        let (query, degraded) = if predicted_miss {
            match cfg.shed {
                ShedPolicy::Drop => {
                    ledger.shed(seq);
                    records[seq as usize] = Some(QueryRecord {
                        seq,
                        arrived: now,
                        deadline,
                        outcome: Outcome::Shed,
                    });
                    return false;
                }
                ShedPolicy::Degrade => {
                    let mut q = arrival.query.clone();
                    q.terms.truncate(1);
                    q.id |= DEGRADED_ID_BIT;
                    (q, true)
                }
                ShedPolicy::Admit => unreachable!("Admit never predicts a miss"),
            }
        } else {
            (arrival.query.clone(), false)
        };

        queue.push(Pending {
            seq,
            arrived: now,
            deadline,
            class_key,
            degraded,
            query,
        });
        true
    }

    /// Drain up to `batch_max` queries into one `execute_batch` dispatch
    /// on `replica`, then hedge any query whose primary completion lands
    /// past the hedge delay. Returns the batch size and the observed
    /// per-query cost (service + amortized overhead, ns) for the
    /// estimator.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        at: SimTime,
        replica: usize,
        cfg: &OpenLoopConfig,
        queue: &mut FrontQueue,
        ledger: &mut OutcomeLedger,
        records: &mut [Option<QueryRecord>],
        free_at: &mut [SimTime],
        hedges_issued: &mut u64,
        hedges_won: &mut u64,
        hedge_wasted: &mut SimDuration,
    ) -> (usize, f64) {
        let mut batch = Vec::with_capacity(cfg.batch_max);
        while batch.len() < cfg.batch_max {
            match queue.pop_front() {
                Some(p) => batch.push(p),
                None => break,
            }
        }
        debug_assert!(!batch.is_empty(), "dispatch fires only when queued");
        let queries: Vec<Query> = batch.iter().map(|p| p.query.clone()).collect();
        let services = self.replicas[replica].execute_batch(&queries);

        // Completions are sequential within the batch: the replica works
        // the queries in order after the one-off dispatch overhead.
        let mut t = at + cfg.dispatch_overhead;
        let span_ns =
            cfg.dispatch_overhead.as_nanos() + services.iter().map(|s| s.as_nanos()).sum::<u64>();
        for (p, &service) in batch.iter().zip(&services) {
            let started = t;
            t += service;
            let c_primary = t;
            let mut completed = c_primary;
            let mut hedged = false;
            let mut hedge_won = false;
            if let Some(h) = cfg.hedge_after {
                if self.replicas.len() >= 2 && service > h {
                    let r2 = Self::hedge_target(free_at, replica);
                    let s_h = (started + h).max(free_at[r2]);
                    let c_h_floor = s_h + cfg.dispatch_overhead;
                    if c_primary > c_h_floor {
                        let service_h =
                            self.replicas[r2].execute_batch(std::slice::from_ref(&p.query))[0];
                        let c_h = c_h_floor + service_h;
                        hedged = true;
                        *hedges_issued += 1;
                        if c_h < c_primary {
                            completed = c_h;
                            hedge_won = true;
                            *hedges_won += 1;
                        } else {
                            // The duplicate lost; it is cancelled the
                            // moment the primary answers, and the time
                            // it burned until then was pure waste.
                            *hedge_wasted += c_primary.min(c_h).since(s_h);
                        }
                        // First response wins; the loser is cancelled at
                        // the winner's completion, freeing its replica.
                        free_at[r2] = c_h.min(c_primary);
                    }
                }
            }
            ledger.answer(p.seq);
            records[p.seq as usize] = Some(QueryRecord {
                seq: p.seq,
                arrived: p.arrived,
                deadline: p.deadline,
                outcome: Outcome::Answered {
                    dispatched: at,
                    completed,
                    service,
                    hedged,
                    hedge_won,
                    degraded: p.degraded,
                },
            });
        }
        free_at[replica] = t;
        (batch.len(), span_ns as f64 / batch.len() as f64)
    }

    /// The replica a hedge duplicates onto: the least-loaded replica
    /// other than the primary (ties toward the lowest index).
    fn hedge_target(free_at: &[SimTime], primary: usize) -> usize {
        let mut best = usize::MAX;
        for (i, &t) in free_at.iter().enumerate() {
            if i == primary {
                continue;
            }
            if best == usize::MAX || t < free_at[best] {
                best = i;
            }
        }
        best
    }

    /// Fold the per-arrival records into a [`ServingReport`].
    fn summarize(
        &self,
        arrivals: &[Arrival],
        batches: u64,
        batched_queries: u64,
        hedges_issued: u64,
        hedges_won: u64,
        hedge_wasted: SimDuration,
    ) -> ServingReport {
        let mut responses: Vec<u64> = Vec::new();
        let mut waits_ns = 0u128;
        let mut answered = 0u64;
        let mut shed = 0u64;
        let mut degraded_n = 0u64;
        let mut misses = 0u64;
        let mut good = 0u64;
        let mut last_completion = SimTime::ZERO;
        for r in &self.records {
            match r.outcome {
                Outcome::Shed => shed += 1,
                Outcome::Answered {
                    dispatched,
                    completed,
                    degraded,
                    ..
                } => {
                    answered += 1;
                    responses.push(completed.since(r.arrived).as_nanos());
                    waits_ns += dispatched.since(r.arrived).as_nanos() as u128;
                    if degraded {
                        degraded_n += 1;
                    }
                    if r.in_deadline() {
                        good += 1;
                    } else {
                        misses += 1;
                    }
                    last_completion = last_completion.max(completed);
                }
            }
        }
        let last_arrival = arrivals.last().map_or(SimTime::ZERO, |a| a.at);
        let makespan_end = last_completion.max(last_arrival);
        let makespan = makespan_end - SimTime::ZERO;
        let makespan_secs = makespan.as_secs_f64();
        let mean_ns = if responses.is_empty() {
            0
        } else {
            (responses.iter().map(|&v| v as u128).sum::<u128>() / responses.len() as u128) as u64
        };
        let mean_wait_ns = if answered == 0 {
            0
        } else {
            (waits_ns / answered as u128) as u64
        };
        ServingReport {
            arrivals: self.records.len() as u64,
            answered,
            shed,
            degraded: degraded_n,
            deadline_misses: misses,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_queries as f64 / batches as f64
            },
            hedges_issued,
            hedges_won,
            hedge_wasted,
            offered_qps: workload::offered_qps(arrivals),
            goodput_qps: if makespan_secs == 0.0 {
                0.0
            } else {
                good as f64 / makespan_secs
            },
            mean_response: SimDuration::from_nanos(mean_ns),
            p50_response: SimDuration::from_nanos(quantile_exact(&mut responses, 0.50)),
            p99_response: SimDuration::from_nanos(quantile_exact(&mut responses, 0.99)),
            p999_response: SimDuration::from_nanos(quantile_exact(&mut responses, 0.999)),
            max_response: SimDuration::from_nanos(responses.iter().copied().max().unwrap_or(0)),
            mean_queue_wait: SimDuration::from_nanos(mean_wait_ns),
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use workload::{ArrivalKind, ArrivalProcess};

    fn pending(seq: u64, at_ns: u64, rel_ns: u64) -> Pending {
        Pending {
            seq,
            arrived: SimTime::from_nanos(at_ns),
            deadline: (rel_ns != u64::MAX).then(|| SimTime::from_nanos(at_ns + rel_ns)),
            class_key: rel_ns,
            degraded: false,
            query: Query {
                id: seq,
                terms: vec![0],
            },
        }
    }

    #[test]
    fn the_front_queue_is_edf_across_classes_and_fifo_within() {
        let mut q = FrontQueue::default();
        q.push(pending(0, 0, 1_000)); // deadline 1000
        q.push(pending(1, 10, 5_000)); // deadline 5010
        q.push(pending(2, 20, 1_000)); // deadline 1020
        q.push(pending(3, 30, 100)); // deadline 130
        assert_eq!(q.len(), 4);
        assert_eq!(q.work_ahead_of(1_000), 3); // classes 100 and 1000
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_front())
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![3, 0, 2, 1]);
        assert!(q.is_empty());
        assert!(q.validation_report().is_clean());
    }

    #[test]
    fn the_queue_validators_catch_planted_corruption() {
        let mut q = FrontQueue::default();
        for seq in 0..4 {
            q.push(pending(seq, seq * 10, 1_000));
        }
        assert!(q.validation_report().is_clean());
        q.corrupt_swap_front();
        let report = q.validation_report();
        assert!(report
            .violations()
            .iter()
            .any(|v| v.invariant == "fifo-within-class"));

        let mut q = FrontQueue::default();
        q.push(pending(0, 0, 1_000));
        q.corrupt_len();
        let report = q.validation_report();
        assert!(report
            .violations()
            .iter()
            .any(|v| v.invariant == "queue-length-agrees"));

        let mut q = FrontQueue::default();
        q.push(pending(0, 0, 1_000));
        q.corrupt_class_key();
        let report = q.validation_report();
        assert!(report
            .violations()
            .iter()
            .any(|v| v.invariant == "class-key-agrees"));
    }

    #[test]
    fn the_ledger_validators_catch_double_outcomes() {
        let mut l = OutcomeLedger::default();
        for seq in 0..4 {
            l.arrive();
            if seq < 3 {
                l.answer(seq);
            } else {
                l.shed(seq);
            }
        }
        assert!(l.validation_report().is_clean());
        l.corrupt_double_outcome();
        let report = l.validation_report();
        assert!(report
            .violations()
            .iter()
            .any(|v| v.invariant == "exactly-one-outcome"));

        let mut l = OutcomeLedger::default();
        l.arrive();
        l.answer(0);
        l.corrupt_counter();
        assert!(!l.validation_report().is_clean());
    }

    #[test]
    fn knee_detection_finds_the_last_efficient_load() {
        let points = [
            LoadPoint {
                offered_qps: 100.0,
                goodput_qps: 100.0,
            },
            LoadPoint {
                offered_qps: 200.0,
                goodput_qps: 199.0,
            },
            LoadPoint {
                offered_qps: 400.0,
                goodput_qps: 396.0,
            },
            LoadPoint {
                offered_qps: 800.0,
                goodput_qps: 540.0,
            },
            LoadPoint {
                offered_qps: 1_600.0,
                goodput_qps: 560.0,
            },
        ];
        assert_eq!(detect_knee(&points), 400.0);
        // Order independence: the sweep may run points in any order.
        let mut shuffled = points;
        shuffled.reverse();
        assert_eq!(detect_knee(&shuffled), 400.0);
        // A sweep saturated from the start has no efficient region.
        assert_eq!(
            detect_knee(&[LoadPoint {
                offered_qps: 100.0,
                goodput_qps: 10.0
            }]),
            0.0
        );
        assert_eq!(detect_knee(&[]), 0.0);
    }

    fn tiny_config() -> EngineConfig {
        EngineConfig::cached(
            20_000,
            hybridcache::HybridConfig::paper(1 << 20, 8 << 20, hybridcache::PolicyKind::Cblru),
            7,
        )
    }

    #[test]
    fn the_reference_open_loop_matches_the_closed_loop_bit_for_bit() {
        let mut open = ServingSim::new(
            tiny_config(),
            2,
            1,
            ServingMode::OpenLoop(OpenLoopConfig::reference()),
        );
        let mut closed = SearchCluster::new(tiny_config(), 2);
        let arrivals = ArrivalProcess::new(
            closed.log().clone(),
            ArrivalKind::Poisson { rate_qps: 50.0 },
        )
        .generate(200);
        let report = match open.run(&arrivals) {
            ServingOutcome::Open(r) => r,
            ServingOutcome::Closed(_) => unreachable!("mode is OpenLoop"),
        };
        // Per-query services are the closed loop's responses, in lockstep.
        for (i, (rec, a)) in open.records().iter().zip(&arrivals).enumerate() {
            let closed_response = closed.execute(&a.query);
            match rec.outcome {
                Outcome::Answered { service, .. } => {
                    assert_eq!(service, closed_response, "query {i} (id {})", a.query.id);
                }
                Outcome::Shed => panic!("reference config never sheds"),
            }
        }
        assert_eq!(report.arrivals, 200);
        assert_eq!(report.answered, 200);
        assert_eq!(report.shed, 0);
        assert_eq!(report.deadline_misses, 0);
        // The cumulative shard state is bit-identical to the closed loop.
        let open_snapshot = open.replica_mut(0).run_queries(&[]);
        let closed_snapshot = closed.run_queries(&[]);
        assert_eq!(open_snapshot, closed_snapshot);
    }
}
