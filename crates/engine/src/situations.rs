//! The measured counterpart of the paper's Table I: nine retrieval
//! situations, their observed probabilities and mean service times.

use simclock::{RunningStats, SimDuration};

/// The nine situations of Table I. "R" is a result lookup, "I" an
/// inverted-list lookup; the suffix names the device combination that
/// served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Situation {
    /// S1 — result served from memory.
    S1ResultMem,
    /// S2 — list served entirely from memory.
    S2ListMem,
    /// S3 — result served from SSD.
    S3ResultSsd,
    /// S4 — list served entirely from SSD.
    S4ListSsd,
    /// S5 — list served from memory + SSD.
    S5ListMemSsd,
    /// S6 — list served from memory + HDD.
    S6ListMemHdd,
    /// S7 — list served from SSD + HDD (possibly with a memory prefix).
    S7ListSsdHdd,
    /// S8 — result not cached: computed from the index (HDD path).
    S8ResultHdd,
    /// S9 — list read entirely from HDD.
    S9ListHdd,
}

impl Situation {
    /// All situations, in table order.
    pub const ALL: [Situation; 9] = [
        Situation::S1ResultMem,
        Situation::S2ListMem,
        Situation::S3ResultSsd,
        Situation::S4ListSsd,
        Situation::S5ListMemSsd,
        Situation::S6ListMemHdd,
        Situation::S7ListSsdHdd,
        Situation::S8ResultHdd,
        Situation::S9ListHdd,
    ];

    /// Row label ("S1" … "S9").
    pub fn label(&self) -> &'static str {
        match self {
            Situation::S1ResultMem => "S1",
            Situation::S2ListMem => "S2",
            Situation::S3ResultSsd => "S3",
            Situation::S4ListSsd => "S4",
            Situation::S5ListMemSsd => "S5",
            Situation::S6ListMemHdd => "S6",
            Situation::S7ListSsdHdd => "S7",
            Situation::S8ResultHdd => "S8",
            Situation::S9ListHdd => "S9",
        }
    }

    /// Human description matching the table's columns.
    pub fn description(&self) -> &'static str {
        match self {
            Situation::S1ResultMem => "R from memory",
            Situation::S2ListMem => "I from memory",
            Situation::S3ResultSsd => "R from SSD",
            Situation::S4ListSsd => "I from SSD",
            Situation::S5ListMemSsd => "I from memory+SSD",
            Situation::S6ListMemHdd => "I from memory+HDD",
            Situation::S7ListSsdHdd => "I from SSD+HDD",
            Situation::S8ResultHdd => "R computed (HDD)",
            Situation::S9ListHdd => "I from HDD",
        }
    }

    fn index(&self) -> usize {
        Situation::ALL
            .iter()
            .position(|s| s == self)
            .expect("ALL is exhaustive")
    }
}

/// Classify an inverted-list byte split into its situation.
pub fn classify_list(from_mem: u64, from_ssd: u64, from_hdd: u64) -> Situation {
    match (from_mem > 0, from_ssd > 0, from_hdd > 0) {
        (true, false, false) => Situation::S2ListMem,
        (false, true, false) => Situation::S4ListSsd,
        (true, true, false) => Situation::S5ListMemSsd,
        (true, false, true) => Situation::S6ListMemHdd,
        (_, true, true) => Situation::S7ListSsdHdd,
        _ => Situation::S9ListHdd,
    }
}

/// Occurrence counts and service-time statistics per situation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SituationTable {
    stats: [RunningStats; 9],
}

impl SituationTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(&mut self, situation: Situation, time: SimDuration) {
        self.stats[situation.index()].push_duration(time);
    }

    /// Occurrences of a situation.
    pub fn count(&self, situation: Situation) -> u64 {
        self.stats[situation.index()].count()
    }

    /// Total recorded events.
    pub fn total(&self) -> u64 {
        self.stats.iter().map(RunningStats::count).sum()
    }

    /// Observed probability of a situation.
    pub fn probability(&self, situation: Situation) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(situation) as f64 / total as f64
        }
    }

    /// Mean service time of a situation.
    pub fn mean_time(&self, situation: Situation) -> SimDuration {
        self.stats[situation.index()].mean_duration()
    }

    /// Render the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::from("Situation  Description           Probability  Mean time\n");
        for s in Situation::ALL {
            out.push_str(&format!(
                "{:<10} {:<21} {:>10.4}%  {}\n",
                s.label(),
                s.description(),
                self.probability(s) * 100.0,
                self.mean_time(s),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_combinations() {
        assert_eq!(classify_list(1, 0, 0), Situation::S2ListMem);
        assert_eq!(classify_list(0, 1, 0), Situation::S4ListSsd);
        assert_eq!(classify_list(1, 1, 0), Situation::S5ListMemSsd);
        assert_eq!(classify_list(1, 0, 1), Situation::S6ListMemHdd);
        assert_eq!(classify_list(0, 1, 1), Situation::S7ListSsdHdd);
        assert_eq!(classify_list(1, 1, 1), Situation::S7ListSsdHdd);
        assert_eq!(classify_list(0, 0, 1), Situation::S9ListHdd);
        assert_eq!(classify_list(0, 0, 0), Situation::S9ListHdd);
    }

    #[test]
    fn table_accumulates() {
        let mut t = SituationTable::new();
        t.record(Situation::S1ResultMem, SimDuration::from_micros(1));
        t.record(Situation::S1ResultMem, SimDuration::from_micros(3));
        t.record(Situation::S8ResultHdd, SimDuration::from_millis(10));
        assert_eq!(t.count(Situation::S1ResultMem), 2);
        assert_eq!(t.total(), 3);
        assert!((t.probability(Situation::S1ResultMem) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            t.mean_time(Situation::S1ResultMem),
            SimDuration::from_micros(2)
        );
    }

    #[test]
    fn render_mentions_every_row() {
        let t = SituationTable::new();
        let s = t.render();
        for row in Situation::ALL {
            assert!(s.contains(row.label()));
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Situation::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 9);
    }
}
