//! The admission tier's audit coverage, in its own process: these
//! tests flip the process-global audit switch ([`invariant::force_enable`]),
//! which must not leak per-mutation validation cost into the
//! equivalence suite's seeded lockstep runs.

use engine::{EngineConfig, SearchEngine};
use hybridcache::{AdmissionConfig, HybridConfig, PolicyKind};
use workload::{Query, TopicChurnLog};

const DOCS: u64 = 40_000;
const QUERIES: usize = 600;

fn cfg_with(policy: PolicyKind, admission: AdmissionConfig) -> EngineConfig {
    let mut cache = HybridConfig::paper(1 << 20, 8 << 20, policy);
    cache.admission = admission;
    EngineConfig::cached(DOCS, cache, 9)
}

/// Sketch parameters sized for the small test corpus (mirrors the
/// equivalence suite).
fn small_sketch() -> AdmissionConfig {
    let mut a = AdmissionConfig::sketch_default();
    a.sketch_width = 1 << 12;
    a.reset_window = 4_096;
    a.ghost_capacity = 512;
    a.epoch = 128;
    a.write_budget_blocks = 64;
    a
}

#[test]
fn sketch_run_audits_clean_and_reports_controller_activity() {
    invariant::force_enable();
    let mut e = SearchEngine::new(cfg_with(PolicyKind::Cblru, small_sketch()));
    let stream: Vec<Query> = TopicChurnLog::new(e.log().clone(), 150)
        .stream_iter(QUERIES)
        .collect();
    e.run_queries(&stream);
    assert!(e.validation_report().is_clean());
    let stats = e.cache().unwrap().admission_stats();
    assert!(stats.epochs > 0, "controller never completed an epoch");
    assert!(
        stats.list_filtered + stats.result_filtered > 0,
        "sketch gate never filtered anything on a churn stream"
    );
}
