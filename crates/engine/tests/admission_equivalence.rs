//! The admission tier's equivalence and efficiency contracts.
//!
//! **Inertness** (the equivalence half): an engine whose cache config
//! carries the full sketch parameter block pinned to
//! `AdmissionPolicy::Static` must be indistinguishable — the entire
//! [`RunReport`], the store counters, every simulated figure — from one
//! built with the bare static default. The sketch tier being *present*
//! may never move a paper number; only flipping the policy to `Sketch`
//! may.
//!
//! **Efficiency** (the perf half, small-scale witnesses of the
//! `BENCH_5.json` claim): on scan-heavy and topic-churn streams the
//! sketch gate must spend fewer SSD bytes than the static paper gate
//! without giving up hit ratio.

use engine::{EngineConfig, RunReport, SearchEngine};
use hybridcache::{AdmissionConfig, AdmissionPolicy, HybridConfig, PolicyKind};
use workload::{Query, ScanHeavyLog, TopicChurnLog};

const DOCS: u64 = 40_000;
const QUERIES: usize = 600;

/// The efficiency witnesses need the sketch's cold-start (every key
/// must earn `min_freq` before the SSD admits it) to amortize; they run
/// longer streams and are release-only — under debug audits they take
/// minutes, and `ci.sh` runs this suite explicitly in release.
const EFF_QUERIES: usize = 2_000;

fn cfg_with(policy: PolicyKind, admission: AdmissionConfig) -> EngineConfig {
    let mut cache = HybridConfig::paper(1 << 20, 8 << 20, policy);
    cache.admission = admission;
    EngineConfig::cached(DOCS, cache, 9)
}

fn run_with(policy: PolicyKind, admission: AdmissionConfig, seed_static: bool) -> RunReport {
    let mut e = SearchEngine::new(cfg_with(policy, admission));
    if seed_static {
        e.seed_static_from_log(QUERIES);
    }
    e.run(QUERIES)
}

/// Sketch parameters sized for the small test corpus: short reset
/// window and epoch so the controller actually cycles within the test
/// stream.
fn small_sketch() -> AdmissionConfig {
    let mut a = AdmissionConfig::sketch_default();
    a.sketch_width = 1 << 12;
    a.reset_window = 4_096;
    a.ghost_capacity = 512;
    a.epoch = 128;
    a.write_budget_blocks = 64;
    a
}

#[test]
fn static_arm_is_bit_identical_with_sketch_params_present() {
    let mut pinned = small_sketch();
    pinned.policy = AdmissionPolicy::Static;
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Cblru,
        PolicyKind::Cbslru {
            static_fraction: 0.3,
        },
    ] {
        let seeded = matches!(policy, PolicyKind::Cbslru { .. });
        let bare = run_with(policy, AdmissionConfig::static_default(), seeded);
        let inert = run_with(policy, pinned, seeded);
        assert_eq!(bare, inert, "sketch params moved a figure under {policy:?}");
    }
}

#[test]
fn static_arm_is_bit_identical_in_lockstep() {
    // Per-query lockstep (the divergence_probe shape): responses, cache
    // stats, and store stats agree after *every* query, not just at the
    // end — so a transient divergence cannot cancel out.
    let mut a = SearchEngine::new(cfg_with(
        PolicyKind::Cblru,
        AdmissionConfig::static_default(),
    ));
    let mut pinned = small_sketch();
    pinned.policy = AdmissionPolicy::Static;
    let mut b = SearchEngine::new(cfg_with(PolicyKind::Cblru, pinned));
    let stream: Vec<Query> = a.log().stream(QUERIES);
    for (i, q) in stream.iter().enumerate() {
        let ta = a.execute(q);
        let tb = b.execute(q);
        assert_eq!(ta, tb, "response diverged at query {i}");
        let (ma, mb) = (a.cache().unwrap(), b.cache().unwrap());
        assert_eq!(ma.stats(), mb.stats(), "cache stats diverged at query {i}");
        assert_eq!(
            ma.store_stats(),
            mb.store_stats(),
            "store stats diverged at query {i}"
        );
    }
    assert!(a.validation_report().is_clean());
    assert!(b.validation_report().is_clean());
}

#[test]
fn policy_toggle_round_trips_and_sketch_diverges() {
    let mut e = SearchEngine::new(cfg_with(PolicyKind::Cblru, small_sketch()));
    assert_eq!(e.admission_policy(), AdmissionPolicy::Sketch);
    e.set_admission_policy(AdmissionPolicy::Static);
    assert_eq!(e.admission_policy(), AdmissionPolicy::Static);
    e.set_admission_policy(AdmissionPolicy::Sketch);
    assert_eq!(e.admission_policy(), AdmissionPolicy::Sketch);

    // Sanity that the toggle is live: Sketch must actually change SSD
    // admission behavior somewhere in the run.
    let sketch = run_with(PolicyKind::Cblru, small_sketch(), false);
    let stat = run_with(PolicyKind::Cblru, AdmissionConfig::static_default(), false);
    let (cs, cst) = (sketch.cache.unwrap(), stat.cache.unwrap());
    assert_ne!(
        cs.ssd_bytes_written, cst.ssd_bytes_written,
        "Sketch policy never disagreed with the static gate"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: debug audits make the long stream crawl"
)]
fn sketch_beats_static_on_scan_heavy_stream() {
    let run = |admission: AdmissionConfig| {
        let mut e = SearchEngine::new(cfg_with(PolicyKind::Cblru, admission));
        let stream: Vec<Query> = ScanHeavyLog::new(e.log().clone(), 4, 2)
            .stream_iter(EFF_QUERIES)
            .collect();
        let r = e.run_queries(&stream);
        assert!(e.validation_report().is_clean());
        r
    };
    let stat = run(AdmissionConfig::static_default());
    let sketch = run(small_sketch());
    let (bs, bst) = (
        sketch.cache.unwrap().ssd_bytes_written,
        stat.cache.unwrap().ssd_bytes_written,
    );
    assert!(
        bs < bst,
        "sketch must write less on scans ({bs} vs {bst} bytes)"
    );
    assert!(
        sketch.hit_ratio() >= stat.hit_ratio(),
        "sketch gave up hit ratio ({} vs {})",
        sketch.hit_ratio(),
        stat.hit_ratio()
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: debug audits make the long stream crawl"
)]
fn sketch_beats_static_on_topic_churn_stream() {
    let run = |admission: AdmissionConfig| {
        let mut e = SearchEngine::new(cfg_with(PolicyKind::Cblru, admission));
        let stream: Vec<Query> = TopicChurnLog::new(e.log().clone(), EFF_QUERIES as u64 / 8)
            .stream_iter(EFF_QUERIES)
            .collect();
        let r = e.run_queries(&stream);
        assert!(e.validation_report().is_clean());
        r
    };
    let stat = run(AdmissionConfig::static_default());
    let sketch = run(small_sketch());
    let (bs, bst) = (
        sketch.cache.unwrap().ssd_bytes_written,
        stat.cache.unwrap().ssd_bytes_written,
    );
    assert!(
        bs < bst,
        "sketch must write less under churn ({bs} vs {bst} bytes)"
    );
    assert!(
        sketch.hit_ratio() >= stat.hit_ratio(),
        "sketch gave up hit ratio ({} vs {})",
        sketch.hit_ratio(),
        stat.hit_ratio()
    );
}
