//! The cluster's two execution arms must be indistinguishable in every
//! simulated figure: the `Parallel` worker pool may only move
//! wall-clock, never a number a paper figure plots. These tests drive
//! both arms through identical query streams and compare the full
//! [`ClusterReport`] (per-query statistics, virtual clock, per-shard
//! cache/flash counters, situation tables) bit-for-bit, at every worker
//! count, plus determinism across repeated runs and the scatter-gather
//! dominance property.

use engine::{ClusterExecution, ClusterReport, EngineConfig, IndexPlacement, SearchCluster};
use hybridcache::{HybridConfig, PolicyKind};
use proptest::prelude::*;

const DOCS: u64 = 40_000;
const QUERIES: usize = 300;

fn cached_cfg(seed: u64) -> EngineConfig {
    EngineConfig::cached(
        DOCS,
        HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru),
        seed,
    )
}

fn run_arm(
    cfg: EngineConfig,
    shards: usize,
    exec: ClusterExecution,
    queries: usize,
) -> ClusterReport {
    let mut c = SearchCluster::new(cfg, shards);
    c.set_execution(exec);
    c.run(queries)
}

#[test]
fn parallel_matches_sequential_at_every_worker_count() {
    // Audit every cache/queue/FTL mutation during the runs (debug builds).
    invariant::force_enable();
    let seq = run_arm(cached_cfg(3), 4, ClusterExecution::Sequential, QUERIES);
    // 1 worker (pure dispatch overhead), an uneven split, one per shard
    // explicitly, and one per shard via the 0 default.
    for workers in [1usize, 2, 4, 0] {
        let par = run_arm(
            cached_cfg(3),
            4,
            ClusterExecution::Parallel { workers },
            QUERIES,
        );
        assert_eq!(seq, par, "parallel arm diverged at workers={workers}");
    }
}

#[test]
fn uncached_arms_match_too() {
    // No cache manager in the loop: the equivalence must hold for the
    // bare index/device path as well (3 shards so the worker split is
    // uneven at 2 workers).
    let cfg = || EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 17);
    let seq = run_arm(cfg(), 3, ClusterExecution::Sequential, QUERIES);
    for workers in [2usize, 3] {
        let par = run_arm(cfg(), 3, ClusterExecution::Parallel { workers }, QUERIES);
        assert_eq!(
            seq, par,
            "uncached parallel arm diverged at workers={workers}"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    let exec = ClusterExecution::Parallel { workers: 2 };
    let a = run_arm(cached_cfg(5), 2, exec, QUERIES);
    let b = run_arm(cached_cfg(5), 2, exec, QUERIES);
    assert_eq!(a, b, "same configuration, same stream, same report");
}

#[test]
fn both_arms_stay_structurally_coherent() {
    // End-of-run invariant audit on each arm: sequential validates on the
    // calling thread, parallel ships a Validate job to the worker threads
    // that own the engines.
    invariant::force_enable();
    let mut seq = SearchCluster::new(cached_cfg(21), 3);
    seq.run(QUERIES);
    let rs = seq.validation_report();
    assert!(rs.is_clean(), "sequential arm: {}", rs.summary());

    let mut par = SearchCluster::new(cached_cfg(21), 3);
    par.set_execution(ClusterExecution::Parallel { workers: 2 });
    par.run(QUERIES);
    let rp = par.validation_report();
    assert!(rp.is_clean(), "parallel arm: {}", rp.summary());
}

#[test]
fn per_query_responses_match_across_arms() {
    // Lockstep single-query execution (what `divergence_probe --cluster`
    // automates): every individual response time must agree, not just
    // the aggregate report.
    let mut seq = SearchCluster::new(cached_cfg(7), 3);
    let mut par = SearchCluster::new(cached_cfg(7), 3);
    par.set_execution(ClusterExecution::Parallel { workers: 3 });
    let stream = seq.stream(120);
    for (i, q) in stream.iter().enumerate() {
        let ts = seq.execute(q);
        let tp = par.execute(q);
        assert_eq!(ts, tp, "response diverged at query {i}");
    }
    assert_eq!(seq.run_queries(&[]), par.run_queries(&[]));
}

#[test]
fn mid_run_toggle_changes_nothing() {
    // First half sequential, second half parallel — the virtual-time
    // trajectory must equal an all-sequential run, because engines
    // migrate into the pool with their cumulative state intact.
    let mut toggled = SearchCluster::new(cached_cfg(9), 3);
    toggled.run(QUERIES / 2);
    toggled.set_execution(ClusterExecution::Parallel { workers: 3 });
    let toggled_report = toggled.run(QUERIES / 2);

    let mut straight = SearchCluster::new(cached_cfg(9), 3);
    straight.run(QUERIES / 2);
    let straight_report = straight.run(QUERIES / 2);
    assert_eq!(toggled_report, straight_report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scatter-gather dominance: the cluster's mean response (max over
    /// shards + merge cost) can never undercut any single shard's mean
    /// response, whatever the shard count, seed or arm.
    #[test]
    fn cluster_mean_response_dominates_every_shard(
        seed in 0u64..1_000,
        shards in 1usize..=4,
        parallel: bool,
    ) {
        let mut c = SearchCluster::new(cached_cfg(seed), shards);
        if parallel {
            c.set_execution(ClusterExecution::Parallel { workers: 0 });
        }
        let r = c.run(120);
        for (i, shard) in r.shards.iter().enumerate() {
            prop_assert!(
                r.mean_response >= shard.mean_response,
                "cluster mean {} undercuts shard {i} mean {}",
                r.mean_response,
                shard.mean_response
            );
        }
    }
}
