//! End-to-end behavioural tests of the simulated search engine: the
//! qualitative claims of the paper must emerge from the model.

use engine::{EngineConfig, IndexPlacement, SearchEngine};
use hybridcache::{HybridConfig, PolicyKind};

const DOCS: u64 = 50_000;
const SEED: u64 = 20120901;

fn small_cache(policy: PolicyKind) -> HybridConfig {
    // 1 MB memory / 8 MB SSD with the paper's 20/80 split.
    HybridConfig::paper(1 << 20, 8 << 20, policy)
}

#[test]
fn no_cache_run_reads_the_index() {
    let mut e = SearchEngine::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, SEED));
    let report = e.run(300);
    assert_eq!(report.queries, 300);
    assert!(
        report.index_ops > 0,
        "every query must touch the index device"
    );
    assert!(report.mean_response > simclock::SimDuration::from_micros(100));
    assert!(report.throughput_qps > 0.0);
    assert!(report.hit_ratio() == 0.0);
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut e = SearchEngine::new(EngineConfig::cached(
            DOCS,
            small_cache(PolicyKind::Cblru),
            SEED,
        ));
        let r = e.run(400);
        (
            r.mean_response,
            r.postings_scanned,
            r.hit_ratio().to_bits(),
            r.flash.map(|f| f.block_erases),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn caching_raises_hit_ratio_and_cuts_response_time() {
    let mut plain = SearchEngine::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, SEED));
    let uncached = plain.run(800);
    let mut cached = SearchEngine::new(EngineConfig::cached(
        DOCS,
        small_cache(PolicyKind::Cblru),
        SEED,
    ));
    let with_cache = cached.run(800);
    assert!(
        with_cache.hit_ratio() > 0.2,
        "hit ratio {}",
        with_cache.hit_ratio()
    );
    assert!(
        with_cache.mean_response < uncached.mean_response,
        "cached {} vs uncached {}",
        with_cache.mean_response,
        uncached.mean_response
    );
    assert!(with_cache.throughput_qps > uncached.throughput_qps);
}

#[test]
fn repeated_query_hits_memory() {
    let mut e = SearchEngine::new(EngineConfig::cached(
        DOCS,
        small_cache(PolicyKind::Cblru),
        SEED,
    ));
    let q = workload::Query {
        id: 3,
        terms: e.log().terms_of(3),
    };
    e.execute(&q);
    e.execute(&q);
    let stats = *e.cache().expect("cached config").stats();
    assert_eq!(stats.results.mem_hits, 1);
    assert_eq!(stats.results.misses, 1);
}

#[test]
fn two_level_cache_beats_one_level_at_same_memory() {
    let one_level = {
        let mut cfg = small_cache(PolicyKind::Cblru);
        cfg.ssd_result_bytes = 0;
        cfg.ssd_list_bytes = 0;
        let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
        e.run(1500)
    };
    let two_level = {
        let mut e = SearchEngine::new(EngineConfig::cached(
            DOCS,
            small_cache(PolicyKind::Cblru),
            SEED,
        ));
        e.run(1500)
    };
    assert!(
        two_level.hit_ratio() > one_level.hit_ratio(),
        "2LC {} vs 1LC {}",
        two_level.hit_ratio(),
        one_level.hit_ratio()
    );
    assert!(
        two_level.mean_response < one_level.mean_response,
        "2LC {} vs 1LC {}",
        two_level.mean_response,
        one_level.mean_response
    );
}

#[test]
fn cost_based_policies_reduce_erasures() {
    let erases = |policy| {
        let mut e = SearchEngine::new(EngineConfig::cached(DOCS, small_cache(policy), SEED));
        let r = e.run(2500);
        r.flash.expect("cache SSD present").block_erases
    };
    let lru = erases(PolicyKind::Lru);
    let cblru = erases(PolicyKind::Cblru);
    assert!(
        cblru < lru,
        "CBLRU must erase less than LRU ({cblru} vs {lru})"
    );
}

#[test]
fn cost_based_policies_raise_hit_ratio() {
    let hit = |policy| {
        let mut e = SearchEngine::new(EngineConfig::cached(DOCS, small_cache(policy), SEED));
        e.run(2500).hit_ratio()
    };
    let lru = hit(PolicyKind::Lru);
    let cblru = hit(PolicyKind::Cblru);
    assert!(cblru > lru, "CBLRU hit ratio {cblru} must beat LRU {lru}");
}

#[test]
fn cbslru_seeding_works() {
    let mut e = SearchEngine::new(EngineConfig::cached(
        DOCS,
        small_cache(PolicyKind::Cbslru {
            static_fraction: 0.3,
        }),
        SEED,
    ));
    e.seed_static_from_log(2_000);
    let r = e.run(1500);
    assert!(r.hit_ratio() > 0.2);
    // Static seeding must have produced SSD hits (queries served from the
    // static partition before ever being computed).
    let stats = r.cache.expect("cached");
    assert!(
        stats.results.ssd_hits + stats.lists.ssd_hits > 0,
        "static partition must serve hits"
    );
}

#[test]
fn ssd_index_beats_hdd_index_without_cache() {
    let mean = |placement| {
        let mut e = SearchEngine::new(EngineConfig::no_cache(DOCS, placement, SEED));
        e.run(300).mean_response
    };
    let hdd = mean(IndexPlacement::Hdd);
    let ssd = mean(IndexPlacement::Ssd);
    assert!(ssd < hdd, "SSD index {ssd} must beat HDD index {hdd}");
}

#[test]
fn trace_capture_records_read_dominant_io() {
    let mut cfg = EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, SEED);
    cfg.capture_trace = true;
    let mut e = SearchEngine::new(cfg);
    e.run(200);
    let trace = e.take_trace();
    assert!(!trace.is_empty());
    let profile = tracetools::TraceProfile::from_events(&trace);
    assert!(
        profile.read_fraction > 0.99,
        "search I/O is read-dominant ({})",
        profile.read_fraction
    );
    // Taking the trace drains it but capture continues.
    e.run(50);
    assert!(!e.take_trace().is_empty());
}

#[test]
fn situations_cover_the_table() {
    use engine::Situation;
    let mut e = SearchEngine::new(EngineConfig::cached(
        DOCS,
        small_cache(PolicyKind::Cblru),
        SEED,
    ));
    let r = e.run(2000);
    let t = &r.situations;
    assert!(t.count(Situation::S1ResultMem) > 0, "memory result hits");
    assert!(t.count(Situation::S8ResultHdd) > 0, "computed results");
    assert!(t.count(Situation::S2ListMem) > 0, "memory list hits");
    assert!(t.total() > 2000);
    let p_sum: f64 = Situation::ALL.iter().map(|&s| t.probability(s)).sum();
    assert!((p_sum - 1.0).abs() < 1e-9, "probabilities sum to 1");
}

#[test]
fn three_level_mode_serves_intersections() {
    let mut cfg = small_cache(PolicyKind::Cblru);
    cfg.intersections = Some(hybridcache::IntersectionConfig {
        mem_bytes: 256 << 10,
        ssd_bytes: 2 << 20,
        pair_threshold: 2,
    });
    let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
    let r = e.run(4_000);
    let (hits, installs) = e.intersection_stats();
    assert!(installs > 0, "recurring pairs must be materialized");
    assert!(hits > 0, "materialized intersections must serve hits");
    let stats = r.cache.expect("cached");
    assert_eq!(
        stats.intersections.mem_hits + stats.intersections.ssd_hits,
        hits
    );
}

#[test]
fn ttl_degrades_hit_ratio_gracefully() {
    let run = |ttl: Option<simclock::SimDuration>| {
        let mut cfg = small_cache(PolicyKind::Cblru);
        cfg.ttl = ttl;
        let mut e = SearchEngine::new(EngineConfig::cached(DOCS, cfg, SEED));
        e.run(2_000).hit_ratio()
    };
    let static_hit = run(None);
    let generous = run(Some(simclock::SimDuration::from_secs(3_600)));
    let harsh = run(Some(simclock::SimDuration::from_millis(1)));
    assert!(
        (generous - static_hit).abs() < 0.05,
        "generous TTL ≈ static ({generous} vs {static_hit})"
    );
    assert!(
        harsh < static_hit * 0.7,
        "1 ms TTL must hurt ({harsh} vs {static_hit})"
    );
}

#[test]
fn snippet_fetches_cost_io_and_result_caching_avoids_them() {
    let run = |snippets: usize| {
        let mut cfg = EngineConfig::cached(DOCS, small_cache(PolicyKind::Cblru), SEED);
        cfg.snippet_fetches = snippets;
        let mut e = SearchEngine::new(cfg);
        let r = e.run(800);
        (r.mean_response, r.index_ops)
    };
    let (resp_off, ops_off) = run(0);
    let (resp_on, ops_on) = run(10);
    assert!(ops_on > ops_off, "snippet fetches must add index reads");
    assert!(resp_on > resp_off, "and cost response time");
    // Result-cache hits skip the fetches: a second identical window on a
    // warm cache does fewer doc-store reads per query.
    let mut cfg = EngineConfig::cached(DOCS, small_cache(PolicyKind::Cblru), SEED);
    cfg.snippet_fetches = 10;
    let mut e = SearchEngine::new(cfg);
    e.run(800);
    let cold_ops = {
        let r = e.run(0);
        r.index_ops
    };
    e.reset_measurements();
    e.run(800);
    let warm_ops = e.run(0).index_ops;
    assert!(
        warm_ops < cold_ops,
        "warm result cache must cut doc-store traffic ({warm_ops} vs {cold_ops})"
    );
}

#[test]
fn measurement_reset_preserves_cache_warmth() {
    let mut e = SearchEngine::new(EngineConfig::cached(
        DOCS,
        small_cache(PolicyKind::Cblru),
        SEED,
    ));
    e.run(1000);
    e.reset_measurements();
    let steady = e.run(1000);
    assert_eq!(steady.queries, 1000);
    // A warm cache hits immediately in the new window.
    assert!(steady.hit_ratio() > 0.2, "hit {}", steady.hit_ratio());
}
