//! The I/O-path toggle's two arms must be indistinguishable at the
//! reference point: `Queued { depth: 1 }` with a FIFO scheduler
//! degenerates to the synchronous `Direct` call tree, so every
//! simulated figure — the full [`RunReport`], the device [`IoStats`]
//! including the submission-queue section, flash wear, and the
//! per-request trace — must agree bit-for-bit. Deeper queues are then
//! free to reorder and overlap without silently shifting the paper's
//! numbers.

use engine::{EngineConfig, IndexPlacement, RunReport, SearchEngine};
use hybridcache::{HybridConfig, PolicyKind};
use proptest::prelude::*;
use storagecore::{BlockDevice, IoPath, SchedulerPolicy};

const DOCS: u64 = 40_000;
const QUERIES: usize = 300;

fn cached_cfg(seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::cached(
        DOCS,
        HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru),
        seed,
    );
    cfg.capture_trace = true;
    cfg
}

fn engine_with(cfg: EngineConfig, path: IoPath, policy: SchedulerPolicy) -> SearchEngine {
    let mut e = SearchEngine::new(cfg);
    e.set_io_path(path);
    e.set_io_scheduler(policy);
    e
}

/// Everything the two arms must agree on, beyond the `RunReport`.
fn assert_devices_identical(a: &mut SearchEngine, b: &mut SearchEngine) {
    // A full run must leave every audited structure coherent on both arms.
    for (arm, e) in [("direct", &*a), ("queued", &*b)] {
        let report = e.validation_report();
        assert!(report.is_clean(), "{arm} arm: {}", report.summary());
    }
    // Full device stats, submission-queue section included.
    assert_eq!(a.index_queue_stats(), b.index_queue_stats());
    assert_eq!(a.cache_queue_stats(), b.cache_queue_stats());
    if let (Some(ca), Some(cb)) = (a.cache(), b.cache()) {
        assert_eq!(ca.device().stats(), cb.device().stats());
    }
    // Per-request dispatch order: same kinds, extents and service
    // latencies in the same sequence (trace timestamps may differ — the
    // direct wrapper self-advances while the queued arm syncs to the
    // engine clock — but the I/O itself may not).
    let ta = a.take_trace();
    let tb = b.take_trace();
    assert_eq!(ta.len(), tb.len());
    for (x, y) in ta.iter().zip(tb.iter()) {
        assert_eq!((x.kind, x.extent, x.latency), (y.kind, y.extent, y.latency));
    }
}

#[test]
fn depth_one_fifo_matches_direct_bit_for_bit() {
    // Audit every cache/queue/FTL mutation during the runs (debug builds).
    invariant::force_enable();
    let mut direct = engine_with(cached_cfg(3), IoPath::Direct, SchedulerPolicy::Fifo);
    let mut queued = engine_with(
        cached_cfg(3),
        IoPath::Queued { depth: 1 },
        SchedulerPolicy::Fifo,
    );
    let rd = direct.run(QUERIES);
    let rq = queued.run(QUERIES);
    assert_eq!(rd, rq, "depth-1 FIFO must be the synchronous reference");
    assert_devices_identical(&mut direct, &mut queued);
}

#[test]
fn depth_one_is_reference_under_every_scheduler() {
    // With at most one pending request every policy picks the same
    // (only) candidate, so the scheduler knob cannot matter at depth 1.
    let direct = engine_with(cached_cfg(5), IoPath::Direct, SchedulerPolicy::Fifo).run(QUERIES);
    for policy in [SchedulerPolicy::Elevator, SchedulerPolicy::Deadline] {
        let r = engine_with(cached_cfg(5), IoPath::Queued { depth: 1 }, policy).run(QUERIES);
        assert_eq!(direct, r, "depth-1 diverged under {policy:?}");
    }
}

#[test]
fn uncached_arms_match_on_both_placements() {
    for placement in [IndexPlacement::Hdd, IndexPlacement::Ssd] {
        let cfg = || EngineConfig::no_cache(DOCS, placement, 17);
        let rd = engine_with(cfg(), IoPath::Direct, SchedulerPolicy::Fifo).run(QUERIES);
        let rq =
            engine_with(cfg(), IoPath::Queued { depth: 1 }, SchedulerPolicy::Fifo).run(QUERIES);
        assert_eq!(rd, rq, "uncached {placement:?} arm diverged");
    }
}

#[test]
fn mid_run_toggle_changes_nothing() {
    // Switch arms halfway through: the second-half window must equal an
    // all-direct run's, because the queued arm carries the cumulative
    // cache/device state forward unchanged.
    let mut toggled = engine_with(cached_cfg(9), IoPath::Direct, SchedulerPolicy::Fifo);
    toggled.run(QUERIES / 2);
    toggled.set_io_path(IoPath::Queued { depth: 1 });
    let toggled_report = toggled.run(QUERIES / 2);

    let mut straight = engine_with(cached_cfg(9), IoPath::Direct, SchedulerPolicy::Fifo);
    straight.run(QUERIES / 2);
    let straight_report = straight.run(QUERIES / 2);
    assert_eq!(toggled_report, straight_report);

    // And back again: queued → direct mid-run is equally invisible.
    let mut back = engine_with(
        cached_cfg(9),
        IoPath::Queued { depth: 1 },
        SchedulerPolicy::Fifo,
    );
    back.run(QUERIES / 2);
    back.set_io_path(IoPath::Direct);
    assert_eq!(back.run(QUERIES / 2), straight_report);
}

#[test]
fn lockstep_responses_match_per_query() {
    // What `divergence_probe --iopath` automates: every individual
    // response time must agree, not just the aggregates.
    let mut direct = engine_with(cached_cfg(7), IoPath::Direct, SchedulerPolicy::Fifo);
    let mut queued = engine_with(
        cached_cfg(7),
        IoPath::Queued { depth: 1 },
        SchedulerPolicy::Fifo,
    );
    let stream = direct.log().clone().stream(120);
    for (i, q) in stream.iter().enumerate() {
        let td = direct.execute(q);
        let tq = queued.execute(q);
        assert_eq!(td, tq, "response diverged at query {i}");
    }
}

#[test]
fn deep_queue_measures_real_occupancy() {
    // Sanity for the BENCH_4 arm: at depth 4 the uncached-HDD engine
    // batches its index reads, so the device queue must actually fill.
    invariant::force_enable();
    let cfg = EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 23);
    let mut e = engine_with(cfg, IoPath::Queued { depth: 4 }, SchedulerPolicy::Elevator);
    let r: RunReport = e.run(QUERIES);
    assert!(r.queries > 0);
    let audit = e.validation_report();
    assert!(audit.is_clean(), "{}", audit.summary());
    let q = e.index_queue_stats();
    assert!(
        q.max_occupancy() > 1,
        "depth-4 run never filled the queue (max occupancy {})",
        q.max_occupancy()
    );
    assert!(q.mean_occupancy() >= 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Depth-1 FIFO equivalence across seeds, cached and uncached.
    #[test]
    fn depth_one_fifo_is_reference_for_every_seed(seed in 0u64..1_000, cached: bool) {
        let cfg = || if cached {
            EngineConfig::cached(
                DOCS,
                HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru),
                seed,
            )
        } else {
            EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, seed)
        };
        let rd = engine_with(cfg(), IoPath::Direct, SchedulerPolicy::Fifo).run(120);
        let rq = engine_with(cfg(), IoPath::Queued { depth: 1 }, SchedulerPolicy::Fifo).run(120);
        prop_assert_eq!(rd, rq);
    }
}
