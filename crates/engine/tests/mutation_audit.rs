//! Seeded-corruption coverage for the live-index validators, in its own
//! process (it flips the process-global audit switch).
//!
//! A validator that has never fired is indistinguishable from one that
//! cannot fire. Each test drives a real mutation history, plants one
//! specific inconsistency through the `#[doc(hidden)]` corruption hooks,
//! and proves exactly the right rule reports it — including the engine's
//! own `no-cached-prefix-for-dead-segment` sweep, which catches a cache
//! entry aliasing a compacted-away segment.

use engine::{CompactionMode, EngineConfig, IndexMutability, LiveConfig, SearchEngine};
use hybridcache::{HybridConfig, PolicyKind};
use searchidx::{GrowthPolicy, SegmentPolicy};

const DOCS: u64 = 40_000;

fn live_cfg(seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::cached(
        DOCS,
        HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru),
        seed,
    );
    cfg.mutability = IndexMutability::Live(LiveConfig {
        segments: SegmentPolicy {
            seal_threshold_docs: 16,
            compact_fanin: 3,
            growth: GrowthPolicy::Contiguous,
        },
        compaction: CompactionMode::Cooperative,
    });
    cfg
}

/// A live engine with real history: enough ingest for several seals and
/// at least one compaction, at least one delete, plus a query window so
/// the cache holds live-segment keys.
fn exercised_engine() -> SearchEngine {
    let mut e = SearchEngine::new(live_cfg(41));
    let mut docs = Vec::new();
    for i in 0..120u32 {
        let t = (i % 50) * 3;
        docs.push(
            e.ingest_document(&[(t, 1 + i % 3), (t + 1, 1)])
                .expect("live arm"),
        );
    }
    assert!(e.delete_document(docs[5]));
    assert!(e.delete_document(docs[40]));
    let s = e.mutation_stats();
    assert!(
        s.seals >= 3 && s.compactions >= 1,
        "history too shallow: {s:?}"
    );
    e.run(200);
    e
}

fn violated_rules(e: &SearchEngine) -> Vec<String> {
    e.validation_report()
        .violations()
        .iter()
        .map(|v| v.to_string())
        .collect()
}

#[test]
fn exercised_history_audits_clean() {
    invariant::force_enable();
    let e = exercised_engine();
    let report = e.validation_report();
    assert!(report.is_clean(), "{}", report.summary());
}

#[test]
fn broken_wal_lsn_trips_wal_monotonic() {
    let mut e = exercised_engine();
    assert!(e.validation_report().is_clean());
    e.debug_live_mut().unwrap().debug_break_wal();
    let rules = violated_rules(&e);
    assert!(
        rules.iter().any(|r| r.contains("wal-monotonic")),
        "{rules:?}"
    );
}

#[test]
fn overlapping_segments_trip_segment_doc_range() {
    let mut e = exercised_engine();
    e.debug_live_mut().unwrap().debug_overlap_segments();
    let rules = violated_rules(&e);
    assert!(
        rules.iter().any(|r| r.contains("segment-doc-range")),
        "{rules:?}"
    );
}

#[test]
fn leaked_tombstone_trips_tombstone_conservation() {
    let mut e = exercised_engine();
    e.debug_live_mut().unwrap().debug_leak_tombstone();
    let rules = violated_rules(&e);
    assert!(
        rules.iter().any(|r| r.contains("tombstone-conservation")),
        "{rules:?}"
    );
}

#[test]
fn cached_key_on_a_retired_segment_trips_the_dead_segment_sweep() {
    let mut e = exercised_engine();
    let retired = e
        .live_index()
        .unwrap()
        .retired_ids()
        .first()
        .copied()
        .expect("at least one compaction retired a segment");
    // Plant a cache entry under the dead segment's key — exactly the
    // stale-prefix aliasing the cooperative reconcile must prevent.
    let key = hybridcache::list_key(retired, 7);
    assert!(
        e.debug_cache_mut()
            .unwrap()
            .readmit_list(key, 4_096, 0.5, 50, 8_192),
        "planted readmission was rejected by the gate"
    );
    let rules = violated_rules(&e);
    assert!(
        rules
            .iter()
            .any(|r| r.contains("no-cached-prefix-for-dead-segment")),
        "{rules:?}"
    );
}

/// The audit must fire *at the lifecycle site*, not only on explicit
/// `validation_report` calls: with auditing enabled, the first
/// seal/compact after a planted corruption panics inside the engine.
/// `audit!`-style site checks compile away in release builds, so this
/// is debug-only (tier-1 runs debug).
#[cfg(debug_assertions)]
#[test]
fn corruption_panics_at_the_next_lifecycle_site() {
    invariant::force_enable();
    let mut e = exercised_engine();
    e.debug_live_mut().unwrap().debug_leak_tombstone();
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Enough adds to cross the seal threshold and trigger on_seal's
        // audit.
        for i in 0..32u32 {
            e.ingest_document(&[(i % 10, 1)]);
        }
    }))
    .is_err();
    assert!(panicked, "lifecycle audit did not fire on corrupted state");
}
