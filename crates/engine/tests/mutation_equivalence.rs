//! The mutability toggle against its oracle.
//!
//! Three layers of evidence:
//! * **Zero-ingest bit-identity** — a `Live` engine that never receives
//!   a mutation must be indistinguishable from the `Frozen` seed arm on
//!   every simulated figure: the full [`engine::RunReport`], the cache
//!   stats, both devices' `IoStats`, the result digest, and every
//!   individual response time, across seeds, cache configs and I/O
//!   paths. The pristine `LiveIndex` delegates every read to its base,
//!   so this holds by construction — these tests pin it.
//! * **Segmentation invisibility** — the same mutation history applied
//!   under an aggressive seal/compact policy and under a
//!   never-seal policy must yield the same match sets for the same
//!   queries (segments and merges change *where* postings live, never
//!   *what* matches).
//! * **Coherence-mode correctness** — `Cooperative` and `InvalidateAll`
//!   compaction handling must agree on every result (equal digests,
//!   equal postings scanned); they may only differ on cache hit ratios
//!   and I/O, which is `perf_regress`'s business (BENCH_8), not
//!   correctness.

use engine::{
    CompactionMode, EngineConfig, IndexMutability, IndexPlacement, LiveConfig, SearchEngine,
};
use hybridcache::{HybridConfig, PolicyKind};
use proptest::prelude::*;
use searchidx::{GrowthPolicy, IndexReader, SegmentPolicy};
use storagecore::{BlockDevice, IoPath, SchedulerPolicy};
use workload::{IngestSpec, IngestStream, MutationOp, Query};

const DOCS: u64 = 40_000;
const QUERIES: usize = 250;

fn cached_cfg(seed: u64) -> EngineConfig {
    EngineConfig::cached(
        DOCS,
        HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru),
        seed,
    )
}

fn live(mut cfg: EngineConfig) -> EngineConfig {
    cfg.mutability = IndexMutability::Live(LiveConfig::default());
    cfg
}

fn live_with(
    mut cfg: EngineConfig,
    segments: SegmentPolicy,
    compaction: CompactionMode,
) -> EngineConfig {
    cfg.mutability = IndexMutability::Live(LiveConfig {
        segments,
        compaction,
    });
    cfg
}

/// An eager lifecycle so a few hundred mutations exercise many seals
/// and several compactions.
fn eager() -> SegmentPolicy {
    SegmentPolicy {
        seal_threshold_docs: 16,
        compact_fanin: 3,
        growth: GrowthPolicy::Contiguous,
    }
}

/// Apply a generated mutation stream, resolving `DeleteDoc` picks
/// against the currently-alive ingested docs. Returns the ops applied.
fn apply_ops(e: &mut SearchEngine, ops: &[workload::TimedMutation]) -> usize {
    let mut alive: Vec<u32> = Vec::new();
    let mut applied = 0;
    for m in ops {
        match &m.op {
            MutationOp::AddDoc { terms } => {
                let doc = e.ingest_document(terms).expect("live arm ingests");
                alive.push(doc);
                applied += 1;
            }
            MutationOp::DeleteDoc { pick } => {
                if alive.is_empty() {
                    continue;
                }
                let idx = (*pick % alive.len() as u64) as usize;
                let doc = alive.swap_remove(idx);
                assert!(e.delete_document(doc), "picked doc was alive");
                applied += 1;
            }
        }
    }
    applied
}

/// In-vocabulary ops for the test corpus (the synthetic vocabulary is
/// `(docs/10).clamp(10_000, 2_000_000)` terms; stay well inside it).
fn ops(seed: u64, n: usize) -> Vec<workload::TimedMutation> {
    IngestStream::new(IngestSpec::small(4_000, seed)).generate(n)
}

fn assert_engines_identical(frozen: &SearchEngine, live: &SearchEngine) {
    assert_eq!(
        frozen.index_io_stats(),
        live.index_io_stats(),
        "index-device I/O diverged"
    );
    assert_eq!(frozen.result_digest(), live.result_digest());
    match (frozen.cache(), live.cache()) {
        (Some(cf), Some(cl)) => {
            assert_eq!(cf.stats(), cl.stats(), "cache stats diverged");
            assert_eq!(
                cf.device().stats(),
                cl.device().stats(),
                "cache-SSD I/O diverged"
            );
        }
        (None, None) => {}
        _ => panic!("one arm lost its cache"),
    }
}

#[test]
fn zero_ingest_live_is_bit_identical_to_frozen() {
    for (name, cfg) in [
        ("cached", cached_cfg(3)),
        (
            "uncached",
            EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 3),
        ),
    ] {
        let mut frozen = SearchEngine::new(cfg.clone());
        let mut arm = SearchEngine::new(live(cfg));
        assert!(arm.is_live() && !frozen.is_live());
        let rf = frozen.run(QUERIES);
        let rl = arm.run(QUERIES);
        assert_eq!(rf, rl, "{name}: RunReport diverged");
        assert_engines_identical(&frozen, &arm);
        assert!(
            arm.live_index().unwrap().is_pristine(),
            "{name}: queries must not mutate"
        );
        assert_eq!(arm.mutation_io_time(), simclock::SimDuration::ZERO);
    }
}

#[test]
fn zero_ingest_lockstep_responses_match_on_both_io_paths() {
    for (path, policy) in [
        (IoPath::Direct, SchedulerPolicy::Fifo),
        (IoPath::Queued { depth: 4 }, SchedulerPolicy::Elevator),
    ] {
        let mut frozen = SearchEngine::new(cached_cfg(7));
        let mut arm = SearchEngine::new(live(cached_cfg(7)));
        for e in [&mut frozen, &mut arm] {
            e.set_io_path(path);
            e.set_io_scheduler(policy);
        }
        let stream: Vec<Query> = frozen.log().clone().stream(120);
        for (i, q) in stream.iter().enumerate() {
            let tf = frozen.execute(q);
            let tl = arm.execute(q);
            assert_eq!(tf, tl, "response diverged at query {i} under {path:?}");
        }
        assert_engines_identical(&frozen, &arm);
    }
}

#[test]
fn ingested_documents_are_visible_and_deletes_hide() {
    let mut e = SearchEngine::new(live(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 11)));
    let before = e.live_index().unwrap().num_docs();
    let doc = e.ingest_document(&[(3, 2), (9, 1)]).expect("live ingests");
    let l = e.live_index().unwrap();
    assert_eq!(l.num_docs(), before + 1);
    assert!(l
        .postings(3)
        .postings()
        .iter()
        .any(|p| p.doc == doc && p.tf == 2));
    assert!(l.postings(9).postings().iter().any(|p| p.doc == doc));

    assert!(e.delete_document(doc), "was alive");
    assert!(!e.delete_document(doc), "idempotent");
    let l = e.live_index().unwrap();
    assert!(!l.doc_alive(doc));
    assert!(l.postings(3).postings().iter().all(|p| p.doc != doc));

    // The frozen arm refuses mutations.
    let mut f = SearchEngine::new(EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 11));
    assert_eq!(f.ingest_document(&[(3, 1)]), None);
    assert!(!f.delete_document(0));
}

#[test]
fn segmented_history_matches_unsegmented_history_on_match_sets() {
    // Arm A seals every 16 docs and compacts at fan-in 3; arm B never
    // seals (threshold beyond the stream). Same mutations, same queries,
    // same matches — segmentation must be invisible to correctness.
    let base = EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, 19);
    let never = SegmentPolicy {
        seal_threshold_docs: u64::MAX,
        compact_fanin: usize::MAX,
        growth: GrowthPolicy::Chained,
    };
    let mut a = SearchEngine::new(live_with(
        base.clone(),
        eager(),
        CompactionMode::Cooperative,
    ));
    let mut b = SearchEngine::new(live_with(base, never, CompactionMode::Cooperative));
    let stream = ops(5, 300);
    assert_eq!(apply_ops(&mut a, &stream), apply_ops(&mut b, &stream));
    assert!(
        a.mutation_stats().compactions > 0,
        "eager arm never compacted — the test lost its point"
    );
    assert_eq!(b.mutation_stats().seals, 0, "lazy arm must never seal");

    let queries: Vec<Query> = a.log().clone().stream(QUERIES);
    let ra = a.run_queries(&queries);
    let rb = b.run_queries(&queries);
    assert_eq!(
        a.result_digest(),
        b.result_digest(),
        "match sets diverged between segmentation histories"
    );
    assert_eq!(ra.postings_scanned, rb.postings_scanned);
    for e in [&a, &b] {
        let audit = e.validation_report();
        assert!(audit.is_clean(), "{}", audit.summary());
    }
}

#[test]
fn cooperative_and_invalidate_all_agree_on_every_result() {
    let mut coop = SearchEngine::new(live_with(
        cached_cfg(23),
        eager(),
        CompactionMode::Cooperative,
    ));
    let mut naive = SearchEngine::new(live_with(
        cached_cfg(23),
        eager(),
        CompactionMode::InvalidateAll,
    ));
    let stream: Vec<Query> = coop.log().clone().stream(400);
    let muts = ops(31, 240);
    let mut next = muts.iter();
    let mut alive_c: Vec<u32> = Vec::new();
    let mut alive_n: Vec<u32> = Vec::new();
    for (i, q) in stream.iter().enumerate() {
        if i % 2 == 0 {
            if let Some(m) = next.next() {
                for (e, alive) in [(&mut coop, &mut alive_c), (&mut naive, &mut alive_n)] {
                    match &m.op {
                        MutationOp::AddDoc { terms } => {
                            alive.push(e.ingest_document(terms).unwrap());
                        }
                        MutationOp::DeleteDoc { pick } => {
                            if !alive.is_empty() {
                                let idx = (*pick % alive.len() as u64) as usize;
                                let doc = alive.swap_remove(idx);
                                e.delete_document(doc);
                            }
                        }
                    }
                }
            }
        }
        coop.execute(q);
        naive.execute(q);
    }
    assert_eq!(alive_c, alive_n, "mutation histories diverged");
    assert!(
        coop.mutation_stats().compactions > 0,
        "no compaction — the coherence modes were never exercised"
    );
    assert_eq!(
        coop.result_digest(),
        naive.result_digest(),
        "compaction coherence changed a result"
    );
    assert_eq!(
        coop.report().postings_scanned,
        naive.report().postings_scanned
    );
    for (arm, e) in [("cooperative", &coop), ("invalidate-all", &naive)] {
        let audit = e.validation_report();
        assert!(audit.is_clean(), "{arm}: {}", audit.summary());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Zero-ingest bit-identity across seeds, cache configs and both
    /// I/O paths.
    #[test]
    fn zero_ingest_equivalence_for_every_seed(seed in 0u64..1_000, cached: bool, queued: bool) {
        let cfg = || if cached {
            cached_cfg(seed)
        } else {
            EngineConfig::no_cache(DOCS, IndexPlacement::Hdd, seed)
        };
        let path = if queued { IoPath::Queued { depth: 2 } } else { IoPath::Direct };
        let mut frozen = SearchEngine::new(cfg());
        let mut arm = SearchEngine::new(live(cfg()));
        frozen.set_io_path(path);
        arm.set_io_path(path);
        let rf = frozen.run(120);
        let rl = arm.run(120);
        prop_assert_eq!(rf, rl);
        prop_assert_eq!(frozen.result_digest(), arm.result_digest());
        prop_assert_eq!(frozen.index_io_stats(), arm.index_io_stats());
    }
}
