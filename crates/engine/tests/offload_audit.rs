//! The offload path's audit coverage, in its own process: a clean
//! in-flash run must leave every offload validator satisfied, and a
//! seeded corruption in any of the three ledgers the validators tie
//! together (compute-unit counters, bus accounting, per-channel compute
//! horizons) must be caught by `validation_report`. The first test also
//! flips the process-global audit switch ([`invariant::force_enable`]),
//! so every FTL/queue mutation of its run validates in place.

use engine::{EngineConfig, OffloadMode, SearchEngine};
use hybridcache::{HybridConfig, PolicyKind};
use simclock::SimDuration;

const DOCS: u64 = 40_000;

fn in_flash_engine(queries: usize) -> SearchEngine {
    // Mirrors the equivalence suite: a small memory tier so the SSD
    // list store warms inside the run, and a small SSD so per-mutation
    // audits stay cheap.
    let mut cfg = EngineConfig::cached(
        DOCS,
        HybridConfig::paper(256 << 10, 2 << 20, PolicyKind::Cblru),
        3,
    );
    cfg.ssd_channels = 4;
    let mut e = SearchEngine::new(cfg);
    e.set_offload_mode(OffloadMode::InFlash);
    e.run(queries);
    e
}

fn has_violation(e: &SearchEngine, invariant: &str) -> bool {
    e.validation_report()
        .violations()
        .iter()
        .any(|v| v.invariant == invariant)
}

#[test]
fn in_flash_run_audits_clean_and_engages_the_offload() {
    invariant::force_enable();
    let e = in_flash_engine(400);
    let report = e.validation_report();
    assert!(report.is_clean(), "{}", report.summary());
    let bus = e.cache_bus_stats();
    assert!(bus.offload_ops() > 0, "run never pushed a predicate down");
    // The two ledgers the validators tie together really were active.
    let comp = e.cache_compute_stats();
    assert_eq!(comp.offload_ops, bus.offload_ops());
    assert!(comp.pages_scanned > 0);
}

#[test]
fn corrupted_compute_horizon_trips_the_lane_validator() {
    // A compute horizon ahead of its lane claims the compute unit kept
    // working after the channel went idle — impossible, since offload
    // completions return on the lane that carried them.
    let mut e = in_flash_engine(100);
    assert!(!has_violation(&e, "compute-lane-agree"));
    e.debug_cache_mut()
        .expect("cached config")
        .device_mut()
        .debug_corrupt_compute_horizon(0, SimDuration::from_micros(50));
    assert!(has_violation(&e, "compute-lane-agree"));
}

#[test]
fn corrupted_emitted_counter_trips_the_compute_bus_validator() {
    // Compute units claiming more emitted entries than the bus ledger
    // shipped breaks the compute/bus agreement invariant.
    let mut e = in_flash_engine(100);
    assert!(!has_violation(&e, "compute-bus-agree"));
    e.debug_cache_mut()
        .expect("cached config")
        .device_mut()
        .inner_mut()
        .debug_corrupt_emitted_entries(1_000_000);
    assert!(has_violation(&e, "compute-bus-agree"));
    // The bus-side ledger is untouched, so emitted ⊆ scanned still holds
    // there — the disagreement between the views is the whole signal.
    assert!(!has_violation(&e, "emitted-within-scanned"));
}

#[test]
fn corrupted_bus_ledger_trips_conservation() {
    // saved_bytes must equal scanned − (descriptors + emitted), exactly.
    let mut e = in_flash_engine(100);
    assert!(!has_violation(&e, "bus-conservation"));
    e.debug_cache_mut()
        .expect("cached config")
        .device_mut()
        .inner_mut()
        .debug_stats_mut()
        .debug_corrupt_bus_saved(512);
    assert!(has_violation(&e, "bus-conservation"));
}
