//! The offload toggle's two arms must be indistinguishable on every
//! simulated figure: under the reference compute model, `InFlash`
//! evaluates each pushed-down predicate in timing-neutral per-channel
//! compute units, so the full [`engine::RunReport`] (responses, match
//! sets via `postings_scanned`, cache hit/eviction counters), both
//! submission-queue sections, the pipeline wrapper's whole `IoStats`
//! mirror, NAND wear, and the inner SSD's per-kind I/O figures must
//! agree bit-for-bit with the `Host` galloping arm. The only thing
//! allowed to move is the bus-byte ledger — which is the entire point
//! of the offload.

use engine::{EngineConfig, OffloadMode, SearchEngine};
use hybridcache::{HybridConfig, PolicyKind};
use proptest::prelude::*;
use storagecore::{BlockDevice, IoKind, IoPath, SchedulerPolicy};

const DOCS: u64 = 40_000;
const QUERIES: usize = 400;

fn cached_cfg(seed: u64, channels: u32) -> EngineConfig {
    // A small memory tier flushes lists to the SSD early, so runs of a
    // few hundred queries actually serve SSD-tier list hits — the reads
    // the offload toggle routes. The SSD stays small too: these runs
    // execute under forced invariant audits (every FTL mutation
    // re-validates the whole page map), so FTL size is the suite's
    // debug-build wall-clock.
    let mut cfg = EngineConfig::cached(
        DOCS,
        HybridConfig::paper(256 << 10, 2 << 20, PolicyKind::Cblru),
        seed,
    );
    cfg.ssd_channels = channels;
    cfg
}

fn engine_with(cfg: EngineConfig, path: IoPath, mode: OffloadMode) -> SearchEngine {
    let mut e = SearchEngine::new(cfg);
    e.set_io_path(path);
    e.set_offload_mode(mode);
    e
}

/// Everything the two arms must agree on, beyond the `RunReport`.
fn assert_arms_identical(host: &mut SearchEngine, flash: &mut SearchEngine) {
    // A full run must leave every audited structure coherent on both
    // arms — including the offload validators (emitted ⊆ scanned, bus
    // conservation, compute/bus agreement, compute-lane horizons).
    for (arm, e) in [("host", &*host), ("in-flash", &*flash)] {
        let report = e.validation_report();
        assert!(report.is_clean(), "{arm} arm: {}", report.summary());
    }
    assert_eq!(host.index_queue_stats(), flash.index_queue_stats());
    assert_eq!(host.cache_queue_stats(), flash.cache_queue_stats());
    let (ch, cf) = (
        host.cache().expect("cached config"),
        flash.cache().expect("cached config"),
    );
    // The pipeline wrapper's stats mirror is bus-free by design, so the
    // whole struct must agree.
    assert_eq!(ch.device().stats(), cf.device().stats());
    // The inner SSD agrees on wear and every per-kind I/O figure; only
    // its bus ledger may differ.
    use flashsim::Ftl as _;
    assert_eq!(
        ch.device().inner().ftl().nand().stats(),
        cf.device().inner().ftl().nand().stats()
    );
    for kind in [IoKind::Read, IoKind::Write, IoKind::Trim] {
        assert_eq!(
            ch.device().inner().stats().kind(kind),
            cf.device().inner().stats().kind(kind),
            "inner SSD {kind:?} section diverged"
        );
    }
}

#[test]
fn in_flash_matches_host_bit_for_bit_and_saves_bus_bytes() {
    // Audit every cache/queue/FTL mutation during the runs (debug builds).
    invariant::force_enable();
    let mut host = engine_with(cached_cfg(3, 4), IoPath::Direct, OffloadMode::Host);
    let mut flash = engine_with(cached_cfg(3, 4), IoPath::Direct, OffloadMode::InFlash);
    let rh = host.run(QUERIES);
    let rf = flash.run(QUERIES);
    assert_eq!(rh, rf, "reference compute must be timing-neutral");
    assert_arms_identical(&mut host, &mut flash);

    // The offload path actually engaged, and its cost rule only fires
    // where it pays: the in-flash arm never crosses more bus bytes than
    // the host arm, and the gap is exactly the ledger's saved_bytes.
    let bh = host.cache_bus_stats();
    let bf = flash.cache_bus_stats();
    assert_eq!(bh.offload_ops(), 0, "host arm must stay descriptor-free");
    assert!(
        bf.offload_ops() > 0,
        "in-flash arm never pushed a predicate"
    );
    assert!(
        bf.saved_bytes() >= 0,
        "cost rule attached a losing descriptor"
    );
    assert_eq!(
        bh.host_crossed_bytes() as i64 - bf.host_crossed_bytes() as i64,
        bf.saved_bytes(),
        "bus ledger does not reconcile against the host arm"
    );
    // Compute accounting mirrors the bus ledger.
    let comp = flash.cache_compute_stats();
    assert_eq!(comp.offload_ops, bf.offload_ops());
    assert_eq!(comp.entries_emitted, bf.offload_emitted_entries());
}

#[test]
fn arms_match_across_depths_channels_and_schedulers() {
    for channels in [1u32, 8] {
        for depth in [1usize, 8] {
            let path = IoPath::Queued { depth };
            let mk = |mode| {
                let mut e = engine_with(cached_cfg(11, channels), path, mode);
                e.set_io_scheduler(SchedulerPolicy::Elevator);
                e
            };
            let mut host = mk(OffloadMode::Host);
            let mut flash = mk(OffloadMode::InFlash);
            let rh = host.run(120);
            let rf = flash.run(120);
            assert_eq!(rh, rf, "diverged at depth {depth}, channels {channels}");
            assert_arms_identical(&mut host, &mut flash);
        }
    }
}

#[test]
fn mid_run_toggle_changes_nothing() {
    // Flip to in-flash halfway through: the second-half window must
    // equal an all-host run's, because the offload carries the
    // cumulative cache/device state forward unchanged.
    let mut toggled = engine_with(cached_cfg(9, 4), IoPath::Direct, OffloadMode::Host);
    toggled.run(QUERIES / 2);
    toggled.set_offload_mode(OffloadMode::InFlash);
    let toggled_report = toggled.run(QUERIES / 2);

    let mut straight = engine_with(cached_cfg(9, 4), IoPath::Direct, OffloadMode::Host);
    straight.run(QUERIES / 2);
    let straight_report = straight.run(QUERIES / 2);
    assert_eq!(toggled_report, straight_report);

    // And back again: in-flash → host mid-run is equally invisible.
    let mut back = engine_with(cached_cfg(9, 4), IoPath::Direct, OffloadMode::InFlash);
    back.run(QUERIES / 2);
    back.set_offload_mode(OffloadMode::Host);
    assert_eq!(back.run(QUERIES / 2), straight_report);
}

#[test]
fn lockstep_responses_match_per_query() {
    // What `divergence_probe --offload` automates: every individual
    // response time must agree, not just the aggregates.
    let mut host = engine_with(cached_cfg(7, 4), IoPath::Direct, OffloadMode::Host);
    let mut flash = engine_with(cached_cfg(7, 4), IoPath::Direct, OffloadMode::InFlash);
    let stream = host.log().clone().stream(120);
    for (i, q) in stream.iter().enumerate() {
        let th = host.execute(q);
        let tf = flash.execute(q);
        assert_eq!(th, tf, "response diverged at query {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Host/in-flash equivalence across seeds, queue depths and channel
    /// counts: match sets (`postings_scanned`), cache hit and eviction
    /// counters, and every device figure ride in the compared reports
    /// and stats.
    #[test]
    fn arms_match_for_every_seed(seed in 0u64..1_000, depth in 1usize..8, wide: bool) {
        let channels = if wide { 4 } else { 1 };
        let path = IoPath::Queued { depth };
        let mut host = engine_with(cached_cfg(seed, channels), path, OffloadMode::Host);
        let mut flash = engine_with(cached_cfg(seed, channels), path, OffloadMode::InFlash);
        let rh = host.run(100);
        let rf = flash.run(100);
        prop_assert_eq!(rh, rf);
        assert_arms_identical(&mut host, &mut flash);
    }
}
