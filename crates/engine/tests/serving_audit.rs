//! The serving front-end's audit coverage, in its own process: these
//! tests flip the process-global audit switch
//! ([`invariant::force_enable`]), which must not leak per-mutation
//! validation cost into the equivalence suite's seeded lockstep runs.
//!
//! Three layers are proven: a fully-featured open-loop run under forced
//! auditing (`audit!` fires on every enqueue and dispatch) comes back
//! clean; planted corruption through the `#[doc(hidden)]` hooks trips
//! the owning validator on *real run state*; and a corrupted structure
//! reaching an `audit!` site panics the process the way the in-run
//! audits would. (Corruption cases that need queued entries — FIFO
//! swaps, class-key misfiles, double outcomes on populated ledgers —
//! live in the `serving` module's unit tests, which can reach the
//! private mutators.)

use engine::{
    EngineConfig, FrontQueue, OpenLoopConfig, OutcomeLedger, SearchCluster, ServingMode,
    ServingOutcome, ServingSim, ShedPolicy,
};
use hybridcache::{HybridConfig, PolicyKind};
use invariant::Validate;
use simclock::SimDuration;
use workload::{ArrivalKind, ArrivalProcess};

fn cfg() -> EngineConfig {
    EngineConfig::cached(
        20_000,
        HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru),
        43,
    )
}

fn run_featured() -> ServingSim {
    let mean = {
        let mut c = SearchCluster::new(cfg(), 2);
        c.run(200).mean_response
    };
    let oc = OpenLoopConfig {
        deadline: Some(mean * 5),
        bulk_period: 5,
        bulk_factor: 3,
        batch_max: 8,
        shed: ShedPolicy::Drop,
        hedge_after: Some(mean * 2),
        dispatch_overhead: SimDuration::from_micros(300),
    };
    let mut sim = ServingSim::new(cfg(), 2, 2, ServingMode::OpenLoop(oc));
    let arr = ArrivalProcess::new(
        sim.replica(0).log().clone(),
        ArrivalKind::Bursty {
            base_qps: 0.6 / mean.as_secs_f64(),
            burst_qps: 2.5 / mean.as_secs_f64(),
            mean_dwell_secs: 0.5,
        },
    )
    .generate(500);
    let report = match sim.run(&arr) {
        ServingOutcome::Open(r) => r,
        ServingOutcome::Closed(_) => unreachable!("mode is OpenLoop"),
    };
    assert_eq!(report.answered + report.shed, report.arrivals);
    sim
}

#[test]
fn a_fully_featured_run_audits_clean_under_forced_validation() {
    invariant::force_enable();
    let sim = run_featured();
    assert!(
        sim.validation_report().is_clean(),
        "audited run left violations:\n{}",
        sim.validation_report().summary()
    );
}

#[test]
fn corrupting_a_real_runs_ledger_trips_the_outcome_validator() {
    invariant::force_enable();
    let mut sim = run_featured();
    assert!(sim.validation_report().is_clean());
    sim.ledger_mut().corrupt_double_outcome();
    let report = sim.validation_report();
    assert!(
        report
            .violations()
            .iter()
            .any(|v| v.invariant == "exactly-one-outcome"),
        "double outcome went undetected:\n{}",
        report.summary()
    );
}

#[test]
fn a_corrupted_structure_panics_at_the_audit_site() {
    invariant::force_enable();

    let queue_hit = std::panic::catch_unwind(|| {
        let mut q = FrontQueue::default();
        q.corrupt_len();
        invariant::audit!(&q, "serving_audit::queue");
    });
    assert!(queue_hit.is_err(), "audit! let a corrupted queue pass");

    let ledger_hit = std::panic::catch_unwind(|| {
        let mut l = OutcomeLedger::default();
        l.corrupt_counter();
        invariant::audit!(&l, "serving_audit::ledger");
    });
    assert!(ledger_hit.is_err(), "audit! let a corrupted ledger pass");

    // Clean structures sail through the same sites.
    invariant::audit!(&FrontQueue::default(), "serving_audit::clean-queue");
    invariant::audit!(&OutcomeLedger::default(), "serving_audit::clean-ledger");
    let _ = OutcomeLedger::default().validation_report();
}
