//! Contracts of the open-loop serving front-end.
//!
//! Three things must hold or the latency-vs-load curves are fiction:
//! the whole serving schedule is a deterministic function of the seed
//! (bit-reproducible across runs *and* across worker-pool sizes, which
//! may only move wall-clock); the closed-loop path behind
//! [`engine::ServingMode::ClosedLoop`] is the seed's harness verbatim;
//! and the open loop at its reference configuration (infinite deadline,
//! batch 1, no shed, no hedge, zero overhead) produces per-query
//! service times bit-identical to the closed loop. On top of those,
//! conservation properties: offered load bounds goodput, every arrival
//! gets exactly one outcome, and below the saturation knee a generous
//! deadline sheds nothing.

use engine::{
    ClusterExecution, EngineConfig, OpenLoopConfig, Outcome, SearchCluster, ServingMode,
    ServingOutcome, ServingReport, ServingSim, ShedPolicy,
};
use hybridcache::{HybridConfig, PolicyKind};
use proptest::prelude::*;
use simclock::SimDuration;
use workload::{Arrival, ArrivalKind, ArrivalProcess};

const DOCS: u64 = 20_000;
const SHARDS: usize = 2;

fn cfg(seed: u64) -> EngineConfig {
    EngineConfig::cached(
        DOCS,
        HybridConfig::paper(1 << 20, 8 << 20, PolicyKind::Cblru),
        seed,
    )
}

/// Mean closed-loop response of this configuration — the capacity
/// anchor the load factors below are expressed against.
fn mean_service(seed: u64) -> SimDuration {
    let mut c = SearchCluster::new(cfg(seed), SHARDS);
    c.run(300).mean_response
}

fn arrivals(seed: u64, rate_qps: f64, n: usize) -> Vec<Arrival> {
    let c = SearchCluster::new(cfg(seed), SHARDS);
    ArrivalProcess::new(c.log().clone(), ArrivalKind::Poisson { rate_qps }).generate(n)
}

fn run_open(
    seed: u64,
    replicas: usize,
    exec: ClusterExecution,
    oc: OpenLoopConfig,
    arr: &[Arrival],
) -> (ServingReport, Vec<engine::QueryRecord>) {
    let mut sim = ServingSim::new(cfg(seed), SHARDS, replicas, ServingMode::OpenLoop(oc));
    sim.set_execution(exec);
    let report = match sim.run(arr) {
        ServingOutcome::Open(r) => r,
        ServingOutcome::Closed(_) => unreachable!("mode is OpenLoop"),
    };
    assert!(
        sim.validation_report().is_clean(),
        "serving run left structural violations:\n{}",
        sim.validation_report().summary()
    );
    (report, sim.records().to_vec())
}

/// A loaded configuration exercising every front-end feature at once:
/// tight deadlines, a bulk class, batching, shedding and hedging.
fn full_featured(mean: SimDuration) -> OpenLoopConfig {
    OpenLoopConfig {
        deadline: Some(mean * 6),
        bulk_period: 7,
        bulk_factor: 4,
        batch_max: 8,
        shed: ShedPolicy::Drop,
        hedge_after: Some(mean * 2),
        dispatch_overhead: SimDuration::from_micros(200),
    }
}

#[test]
fn seeded_serving_runs_are_bit_reproducible() {
    invariant::force_enable();
    let mean = mean_service(11);
    let rate = 1.2 / mean.as_secs_f64(); // 20% past naive capacity
    let arr = arrivals(11, rate, 600);
    let oc = full_featured(mean);
    let (r1, rec1) = run_open(11, 2, ClusterExecution::Sequential, oc, &arr);
    let (r2, rec2) = run_open(11, 2, ClusterExecution::Sequential, oc, &arr);
    assert_eq!(r1, r2, "same seed, same stream, same report");
    assert_eq!(rec1, rec2, "same seed, same stream, same records");
}

#[test]
fn worker_pools_only_move_wall_clock_never_the_schedule() {
    let mean = mean_service(13);
    let rate = 1.1 / mean.as_secs_f64();
    let arr = arrivals(13, rate, 500);
    let oc = full_featured(mean);
    let (seq_report, seq_records) = run_open(13, 2, ClusterExecution::Sequential, oc, &arr);
    for workers in [1usize, 2, 0] {
        let (par_report, par_records) =
            run_open(13, 2, ClusterExecution::Parallel { workers }, oc, &arr);
        assert_eq!(
            seq_report, par_report,
            "report diverged at workers={workers}"
        );
        assert_eq!(
            seq_records, par_records,
            "records diverged at workers={workers}"
        );
    }
}

#[test]
fn closed_loop_mode_is_the_reference_harness_verbatim() {
    let arr = arrivals(17, 40.0, 400);
    let mut sim = ServingSim::new(cfg(17), SHARDS, 1, ServingMode::ClosedLoop);
    let closed_via_serving = match sim.run(&arr) {
        ServingOutcome::Closed(r) => r,
        ServingOutcome::Open(_) => unreachable!("mode is ClosedLoop"),
    };
    let mut bare = SearchCluster::new(cfg(17), SHARDS);
    let queries: Vec<_> = arr.iter().map(|a| a.query.clone()).collect();
    let direct = bare.run_queries(&queries);
    assert_eq!(closed_via_serving, direct);
}

#[test]
fn reference_open_loop_services_match_closed_loop_responses() {
    let arr = arrivals(19, 60.0, 400);
    let (_, records) = run_open(
        19,
        1,
        ClusterExecution::Sequential,
        OpenLoopConfig::reference(),
        &arr,
    );
    let mut closed = SearchCluster::new(cfg(19), SHARDS);
    for (i, (rec, a)) in records.iter().zip(&arr).enumerate() {
        let response = closed.execute(&a.query);
        match rec.outcome {
            Outcome::Answered {
                service,
                hedged,
                degraded,
                ..
            } => {
                assert_eq!(service, response, "service diverged at query {i}");
                assert!(!hedged && !degraded, "reference config is plain FIFO");
            }
            Outcome::Shed => panic!("reference config never sheds (query {i})"),
        }
    }
}

#[test]
fn shedding_is_deterministic_and_only_fires_under_overload() {
    let mean = mean_service(23);
    let oc = OpenLoopConfig::batched(mean * 4, SimDuration::from_micros(200), 8);

    // Well under capacity: nothing sheds, nothing misses.
    let calm = arrivals(23, 0.3 / mean.as_secs_f64(), 400);
    let (calm_report, _) = run_open(23, 2, ClusterExecution::Sequential, oc, &calm);
    assert_eq!(calm_report.shed, 0, "no shedding below the knee");
    assert_eq!(calm_report.answered, 400);

    // Far past capacity: the gate sheds, and identically on every run.
    let hot = arrivals(23, 3.0 / mean.as_secs_f64(), 600);
    let (hot1, recs1) = run_open(23, 2, ClusterExecution::Sequential, oc, &hot);
    let (hot2, recs2) = run_open(23, 2, ClusterExecution::Sequential, oc, &hot);
    assert!(hot1.shed > 0, "overload must shed (got {:?})", hot1.shed);
    assert_eq!(hot1, hot2);
    assert_eq!(recs1, recs2);
    assert_eq!(
        hot1.answered + hot1.shed,
        hot1.arrivals,
        "every arrival gets one outcome"
    );
}

#[test]
fn degrade_answers_everything_in_cheaper_form_instead_of_dropping() {
    let mean = mean_service(29);
    let mut oc = OpenLoopConfig::batched(mean * 4, SimDuration::from_micros(200), 8);
    oc.shed = ShedPolicy::Degrade;
    let hot = arrivals(29, 3.0 / mean.as_secs_f64(), 500);
    let (report, records) = run_open(29, 2, ClusterExecution::Sequential, oc, &hot);
    assert_eq!(report.shed, 0, "degrade never drops");
    assert_eq!(report.answered, 500);
    assert!(report.degraded > 0, "overload must degrade");
    let flagged = records
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Answered { degraded: true, .. }))
        .count() as u64;
    assert_eq!(flagged, report.degraded);
}

#[test]
fn hedges_are_accounted_and_bounded() {
    let mean = mean_service(31);
    let mut oc = full_featured(mean);
    oc.shed = ShedPolicy::Admit; // keep every query so hedges get chances
    oc.hedge_after = Some(mean); // aggressive hedging
    let arr = arrivals(31, 1.3 / mean.as_secs_f64(), 500);
    let (report, records) = run_open(31, 2, ClusterExecution::Sequential, oc, &arr);
    assert!(
        report.hedges_issued > 0,
        "an overloaded 2-replica tier must hedge"
    );
    assert!(report.hedges_won <= report.hedges_issued);
    assert!(report.hedges_issued <= report.answered);
    let (issued, won) = records
        .iter()
        .fold((0u64, 0u64), |(i, w), r| match r.outcome {
            Outcome::Answered {
                hedged, hedge_won, ..
            } => (i + hedged as u64, w + hedge_won as u64),
            Outcome::Shed => (i, w),
        });
    assert_eq!(issued, report.hedges_issued);
    assert_eq!(won, report.hedges_won);
    if report.hedges_won < report.hedges_issued {
        assert!(
            report.hedge_wasted > SimDuration::ZERO,
            "losing duplicates burn replica time"
        );
    }
}

#[test]
fn batching_beats_naive_fifo_past_the_naive_knee() {
    // Deterministic head-to-head at a load the naive arm cannot absorb
    // (per-dispatch overhead is the dominant cost at batch size 1).
    let mean = mean_service(37);
    let overhead = SimDuration::from_micros(500);
    let deadline = (mean + overhead) * 6;
    // Aggregate capacity of the 2-replica tier at batch size 1.
    let naive_capacity = 2.0 / (mean + overhead).as_secs_f64();
    let arr = arrivals(37, 1.3 * naive_capacity, 600);
    let naive = OpenLoopConfig::naive_fifo(deadline, overhead);
    let batched = OpenLoopConfig::batched(deadline, overhead, 16);
    let (naive_r, _) = run_open(37, 2, ClusterExecution::Sequential, naive, &arr);
    let (batched_r, _) = run_open(37, 2, ClusterExecution::Sequential, batched, &arr);
    assert!(
        batched_r.p99_response < naive_r.p99_response,
        "batched p99 {} !< naive p99 {}",
        batched_r.p99_response,
        naive_r.p99_response
    );
    assert!(
        batched_r.goodput_qps > naive_r.goodput_qps,
        "batched goodput {:.1} !> naive {:.1}",
        batched_r.goodput_qps,
        naive_r.goodput_qps
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation: goodput never exceeds offered load, outcomes
    /// partition the arrivals, and a lightly-loaded tier with a
    /// generous deadline sheds nothing.
    #[test]
    fn goodput_is_bounded_by_offered_load(seed in 1u64..1_000, load in 0.1f64..0.5) {
        let mean = mean_service(seed);
        let oc = OpenLoopConfig::batched(mean * 20, SimDuration::from_micros(200), 8);
        let arr = arrivals(seed, load / mean.as_secs_f64(), 250);
        let (report, _) = run_open(seed, 2, ClusterExecution::Sequential, oc, &arr);
        prop_assert!(report.goodput_qps <= report.offered_qps * 1.000_001,
            "goodput {} > offered {}", report.goodput_qps, report.offered_qps);
        prop_assert_eq!(report.shed, 0);
        prop_assert_eq!(report.answered + report.shed, report.arrivals);
        prop_assert_eq!(report.deadline_misses, 0);
    }
}
