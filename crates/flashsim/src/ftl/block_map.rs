//! Block-level mapping FTL.
//!
//! The space-efficient scheme of Kim et al. (Compactflash): the map has one
//! entry per *logical block*, and a page's offset inside the physical block
//! is fixed. In-order first writes are cheap; any update behind the
//! program frontier forces a **copy-merge**: copy the block's live pages
//! into a fresh block (substituting the new data), remap, erase the old
//! block. This is the scheme whose random-write pathology motivates
//! log-based designs — it serves as the lower baseline in the FTL
//! ablation.

use simclock::SimDuration;

use crate::ftl::{FreePool, Ftl, FtlError, FtlStats};
use crate::nand::{BlockId, Lpn, Nand, PageContent};
use crate::params::FlashParams;

/// Block-mapped FTL with copy-merge updates.
#[derive(Debug, Clone)]
pub struct BlockMapFtl {
    nand: Nand,
    /// logical block → physical block.
    map: Vec<Option<BlockId>>,
    free: FreePool,
    stats: FtlStats,
}

impl BlockMapFtl {
    /// Fresh device.
    pub fn new(params: FlashParams) -> Self {
        let nand = Nand::new(params);
        let logical_blocks = nand.params().logical_blocks();
        let blocks = nand.params().blocks;
        BlockMapFtl {
            nand,
            map: vec![None; logical_blocks as usize],
            free: FreePool::new(0..blocks),
            stats: FtlStats::default(),
        }
    }

    #[inline]
    fn split(&self, lpn: Lpn) -> (u64, u32) {
        let ppb = self.nand.params().pages_per_block as u64;
        (lpn / ppb, (lpn % ppb) as u32)
    }

    /// Physical page holding `lpn`, if mapped and valid.
    fn ppn_of(&self, lpn: Lpn) -> Option<u64> {
        let (lblock, offset) = self.split(lpn);
        let pblock = self.map[lblock as usize]?;
        let ppn = pblock * self.nand.params().pages_per_block as u64 + offset as u64;
        match self.nand.page(ppn) {
            PageContent::Valid(owner) => {
                debug_assert_eq!(owner, lpn);
                Some(ppn)
            }
            _ => None,
        }
    }

    /// Copy-merge `lblock` into a fresh physical block, writing `new_lpn`
    /// in place of its stale copy.
    fn copy_merge(&mut self, lblock: u64, new_lpn: Lpn) -> Result<SimDuration, FtlError> {
        let ppb = self.nand.params().pages_per_block as u64;
        let old = self.map[lblock as usize].expect("merge of unmapped block");
        let fresh = self.free.pop().ok_or(FtlError::DeviceFull)?;
        let mut t = SimDuration::ZERO;
        let (_, new_offset) = self.split(new_lpn);
        for offset in 0..ppb as u32 {
            let lpn = lblock * ppb + offset as u64;
            if offset == new_offset {
                // The updated page: program new data directly.
                let (_, tw) = self.nand.program_at(fresh, offset, lpn);
                t += tw;
                continue;
            }
            let ppn = old * ppb + offset as u64;
            if let PageContent::Valid(owner) = self.nand.page(ppn) {
                debug_assert_eq!(owner, lpn);
                t += self.nand.read(ppn);
                let (_, tw) = self.nand.program_at(fresh, offset, lpn);
                t += tw;
                self.nand.invalidate(ppn);
                self.stats.pages_moved += 1;
            }
        }
        // Invalidate the stale copy of the updated page, if any, then
        // erase the old block wholesale.
        let old_ppn = old * ppb + new_offset as u64;
        if let PageContent::Valid(_) = self.nand.page(old_ppn) {
            self.nand.invalidate(old_ppn);
        }
        t += self.nand.erase(old);
        self.free.push(old);
        self.map[lblock as usize] = Some(fresh);
        self.stats.merges += 1;
        Ok(t)
    }
}

impl Ftl for BlockMapFtl {
    fn params(&self) -> &FlashParams {
        self.nand.params()
    }

    fn nand(&self) -> &Nand {
        &self.nand
    }

    fn read(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_reads += 1;
        let mut t = self.params().controller_overhead;
        if let Some(ppn) = self.ppn_of(lpn) {
            t += self.nand.read(ppn);
        }
        Ok(t)
    }

    fn write(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_writes += 1;
        let mut t = self.params().controller_overhead;
        let (lblock, offset) = self.split(lpn);
        match self.map[lblock as usize] {
            None => {
                let fresh = self.free.pop().ok_or(FtlError::DeviceFull)?;
                self.map[lblock as usize] = Some(fresh);
                let (_, tw) = self.nand.program_at(fresh, offset, lpn);
                t += tw;
            }
            Some(pblock) => {
                if offset >= self.nand.block_frontier(pblock) {
                    // Ahead of the frontier: in-place append (possibly
                    // burning skipped pages, as real block-mapped FTLs do).
                    let (_, tw) = self.nand.program_at(pblock, offset, lpn);
                    t += tw;
                } else {
                    // Behind the frontier: the expensive path.
                    t += self.copy_merge(lblock, lpn)?;
                }
            }
        }
        Ok(t)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_trims += 1;
        if let Some(ppn) = self.ppn_of(lpn) {
            self.nand.invalidate(ppn);
            // If the whole block is now garbage, reclaim it eagerly.
            let (lblock, _) = self.split(lpn);
            let pblock = self.map[lblock as usize].expect("checked mapped");
            if self.nand.block_valid(pblock) == 0 {
                self.nand.erase(pblock);
                self.free.push(pblock);
                self.map[lblock as usize] = None;
            }
        }
        Ok(self.params().controller_overhead)
    }

    fn stats(&self) -> FtlStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = FtlStats::default();
        self.nand.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftl::PageMapFtl;

    fn ftl() -> BlockMapFtl {
        BlockMapFtl::new(FlashParams::tiny(8))
    }

    #[test]
    fn first_fill_is_cheap() {
        let mut f = ftl();
        let logical = f.logical_pages();
        for lpn in 0..logical {
            let t = f.write(lpn).unwrap();
            assert_eq!(t, f.params().page_write, "sequential fill must not merge");
        }
        assert_eq!(f.stats().merges, 0);
        for lpn in 0..logical {
            assert_eq!(f.read(lpn).unwrap(), f.params().page_read);
        }
    }

    #[test]
    fn update_behind_frontier_copy_merges() {
        let mut f = ftl();
        let ppb = f.params().pages_per_block as u64;
        for lpn in 0..ppb {
            f.write(lpn).unwrap();
        }
        let t = f.write(0).unwrap();
        assert_eq!(f.stats().merges, 1);
        // Merge = program new + copy (ppb-1) pages + erase.
        assert!(t >= f.params().block_erase, "t = {t}");
        // All pages still readable.
        for lpn in 0..ppb {
            assert_eq!(f.read(lpn).unwrap(), f.params().page_read);
        }
    }

    #[test]
    fn forward_skip_write_avoids_merge() {
        let mut f = ftl();
        f.write(0).unwrap();
        // Offset 2 of the same block: ahead of the frontier.
        let t = f.write(2).unwrap();
        assert_eq!(t, f.params().page_write);
        assert_eq!(f.stats().merges, 0);
        // Offset 1 was burned: it now needs a merge.
        f.write(1).unwrap();
        assert_eq!(f.stats().merges, 1);
        for lpn in 0..3 {
            assert_eq!(f.read(lpn).unwrap(), f.params().page_read);
        }
    }

    #[test]
    fn random_overwrites_are_much_worse_than_page_map() {
        let run_block = {
            let mut f = ftl();
            let logical = f.logical_pages();
            let mut rng = simclock::Rng::new(11);
            let mut total = SimDuration::ZERO;
            for _ in 0..200 {
                total += f.write(rng.next_below(logical)).unwrap();
            }
            total
        };
        let run_page = {
            let mut f = PageMapFtl::new(FlashParams::tiny(8));
            let logical = f.logical_pages();
            let mut rng = simclock::Rng::new(11);
            let mut total = SimDuration::ZERO;
            for _ in 0..200 {
                total += f.write(rng.next_below(logical)).unwrap();
            }
            total
        };
        // Page-map also pays GC under this much pressure (only 2 spare
        // blocks), so the gap narrows — but block-map must still lose.
        assert!(
            run_block > run_page + run_page / 2,
            "block-map {run_block} vs page-map {run_page}"
        );
    }

    #[test]
    fn trim_of_whole_block_reclaims_it() {
        let mut f = ftl();
        let ppb = f.params().pages_per_block as u64;
        for lpn in 0..ppb {
            f.write(lpn).unwrap();
        }
        let free_before = f.free.len();
        let erases_before = f.nand().stats().block_erases;
        for lpn in 0..ppb {
            f.trim(lpn).unwrap();
        }
        assert_eq!(f.free.len(), free_before + 1);
        assert_eq!(f.nand().stats().block_erases, erases_before + 1);
        assert_eq!(f.read(0).unwrap(), SimDuration::ZERO);
    }

    #[test]
    fn unmapped_read_is_free() {
        let mut f = ftl();
        assert_eq!(f.read(7).unwrap(), SimDuration::ZERO);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut f = ftl();
        let lim = f.logical_pages();
        assert!(f.write(lim).is_err());
    }

    #[test]
    fn repeated_single_page_update_storm() {
        // Hammer one page: every write after the block fills is a merge,
        // but data must stay intact.
        let mut f = ftl();
        let ppb = f.params().pages_per_block as u64;
        for lpn in 0..ppb {
            f.write(lpn).unwrap();
        }
        for _ in 0..20 {
            f.write(1).unwrap();
        }
        assert_eq!(f.stats().merges, 20);
        for lpn in 0..ppb {
            assert_eq!(f.read(lpn).unwrap(), f.params().page_read);
        }
        // The logical block's pages remain exactly ppb valid pages.
        assert_eq!(f.nand().valid_pages(), ppb);
    }
}
