//! DFTL — demand-paged page-level mapping (Gupta, Kim & Urgaonkar,
//! ASPLOS'09).
//!
//! DFTL keeps the full page-level map *on flash* and caches only the hot
//! entries in controller SRAM (the **Cached Mapping Table**, CMT). A host
//! request whose entry misses the CMT pays a translation-page read; a
//! dirty CMT eviction pays a translation-page write.
//!
//! Faithfulness note (also recorded in DESIGN.md): the authoritative
//! lpn→ppn map here lives in the inner [`PageMapFtl`]'s RAM table — what
//! DFTL adds in this model is the *cost* of the mapping traffic, realized
//! as real page reads/writes against a reserved translation region of the
//! same NAND (so translation traffic competes with data traffic for GC,
//! exactly the DFTL trade-off). The data-path placement and GC behaviour
//! are the inner page-mapped scheme's.

use std::collections::HashMap;

use simclock::SimDuration;

use crate::ftl::{Ftl, FtlError, FtlStats, PageMapFtl};
use crate::nand::{Lpn, Nand};
use crate::params::FlashParams;

/// Bytes per mapping entry on flash (4 B ppn + 4 B lpn tag, as in the
/// DFTL paper's accounting).
const ENTRY_BYTES: u64 = 8;

/// CMT bookkeeping: a doubly-linked LRU over the cached lpn entries with
/// dirty bits, stored in a slab so moves are O(1) and allocation-free
/// after warm-up.
#[derive(Debug, Clone)]
struct CmtNode {
    lpn: Lpn,
    dirty: bool,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Cmt {
    nodes: Vec<CmtNode>,
    index: HashMap<Lpn, u32>,
    head: u32, // MRU
    tail: u32, // LRU
    free: Vec<u32>,
    capacity: usize,
}

impl Cmt {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CMT needs at least one entry");
        Cmt {
            nodes: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Touch `lpn`, returning whether it was present (and now MRU).
    fn touch(&mut self, lpn: Lpn) -> bool {
        if let Some(&i) = self.index.get(&lpn) {
            self.unlink(i);
            self.push_front(i);
            true
        } else {
            false
        }
    }

    /// Mark a present entry dirty.
    fn mark_dirty(&mut self, lpn: Lpn) {
        let i = self.index[&lpn];
        self.nodes[i as usize].dirty = true;
    }

    /// Insert a clean entry, evicting the LRU if full. Returns the evicted
    /// `(lpn, dirty)` if any.
    fn insert(&mut self, lpn: Lpn) -> Option<(Lpn, bool)> {
        debug_assert!(!self.index.contains_key(&lpn));
        let mut evicted = None;
        if self.len() == self.capacity {
            let t = self.tail;
            let node = &self.nodes[t as usize];
            evicted = Some((node.lpn, node.dirty));
            let old_lpn = node.lpn;
            self.unlink(t);
            self.index.remove(&old_lpn);
            self.free.push(t);
        }
        let i = if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = CmtNode {
                lpn,
                dirty: false,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(CmtNode {
                lpn,
                dirty: false,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        self.index.insert(lpn, i);
        self.push_front(i);
        evicted
    }
}

/// DFTL: page-mapped data path plus demand-paged mapping traffic.
#[derive(Debug, Clone)]
pub struct Dftl {
    inner: PageMapFtl,
    cmt: Cmt,
    /// Host-visible pages (inner capacity minus the translation region).
    host_pages: u64,
    /// Mapping entries per translation page.
    entries_per_tpage: u64,
    /// Whether each translation page has ever been written to flash.
    tpage_on_flash: Vec<bool>,
    /// CMT counters.
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Dftl {
    /// Create with a CMT of `cmt_entries` cached mapping entries.
    pub fn new(params: FlashParams, cmt_entries: usize) -> Self {
        let inner = PageMapFtl::new(params);
        let total = inner.logical_pages();
        let entries_per_tpage = inner.params().page_bytes as u64 / ENTRY_BYTES;
        // Carve the translation region out of the top of the logical space:
        // t pages must map the remaining (total - t) pages.
        let mut tpages = total.div_ceil(entries_per_tpage);
        while (total - tpages).div_ceil(entries_per_tpage) < tpages && tpages > 1 {
            tpages -= 1;
        }
        let host_pages = total - tpages;
        Dftl {
            inner,
            cmt: Cmt::new(cmt_entries),
            host_pages,
            entries_per_tpage,
            tpage_on_flash: vec![false; tpages as usize],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// CMT (hits, misses, dirty write-backs).
    pub fn cmt_stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }

    /// The translation-page lpn (in the inner FTL's space) covering `lpn`.
    fn tpage_lpn(&self, lpn: Lpn) -> Lpn {
        self.host_pages + lpn / self.entries_per_tpage
    }

    /// Ensure `lpn`'s mapping entry is in the CMT, charging translation
    /// traffic as needed.
    fn ensure_cached(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        if self.cmt.touch(lpn) {
            self.hits += 1;
            return Ok(SimDuration::ZERO);
        }
        self.misses += 1;
        let mut t = SimDuration::ZERO;
        // Fetch the translation page (a real flash read if it exists).
        let tp = self.tpage_lpn(lpn);
        t += self.inner.read(tp)?;
        // Make room; a dirty victim must be written back to its
        // translation page first.
        if let Some((victim, dirty)) = self.cmt.insert(lpn) {
            if dirty {
                self.writebacks += 1;
                let vtp = self.tpage_lpn(victim);
                // Read-modify-write of the victim's translation page (the
                // read is skipped when it is the same page we just
                // fetched).
                if vtp != tp {
                    t += self.inner.read(vtp)?;
                }
                t += self.inner.write(vtp)?;
                self.tpage_on_flash[(vtp - self.host_pages) as usize] = true;
            }
        }
        Ok(t)
    }
}

impl Ftl for Dftl {
    fn params(&self) -> &FlashParams {
        self.inner.params()
    }

    fn nand(&self) -> &Nand {
        self.inner.nand()
    }

    fn logical_pages(&self) -> u64 {
        self.host_pages
    }

    fn read(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        let mut t = self.ensure_cached(lpn)?;
        t += self.inner.read(lpn)?;
        Ok(t)
    }

    fn write(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        let mut t = self.ensure_cached(lpn)?;
        t += self.inner.write(lpn)?;
        self.cmt.mark_dirty(lpn);
        Ok(t)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        let mut t = self.ensure_cached(lpn)?;
        t += self.inner.trim(lpn)?;
        self.cmt.mark_dirty(lpn);
        Ok(t)
    }

    fn stats(&self) -> FtlStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl(cmt: usize) -> Dftl {
        Dftl::new(FlashParams::tiny(16), cmt)
    }

    #[test]
    fn translation_region_is_carved_out() {
        let f = ftl(8);
        let inner_total = f.inner.logical_pages();
        assert!(f.logical_pages() < inner_total);
        assert!(f.logical_pages() > 0);
        // Every host page maps into the translation region.
        let last_tp = f.tpage_lpn(f.logical_pages() - 1);
        assert!(last_tp < inner_total);
    }

    #[test]
    fn cmt_hit_avoids_translation_traffic() {
        let mut f = ftl(8);
        f.write(0).unwrap();
        let reads_before = f.nand().stats().page_reads;
        let t = f.write(0).unwrap(); // entry now cached
        assert_eq!(t, f.params().page_write);
        assert_eq!(f.nand().stats().page_reads, reads_before);
        let (hits, _, _) = f.cmt_stats();
        assert!(hits >= 1);
    }

    #[test]
    fn cmt_miss_on_cold_entry() {
        let mut f = ftl(2);
        f.write(0).unwrap();
        f.write(10).unwrap();
        f.write(20).unwrap(); // evicts lpn 0 (dirty -> writeback)
        let (_, misses, writebacks) = f.cmt_stats();
        assert_eq!(misses, 3);
        assert!(writebacks >= 1, "dirty eviction must write back");
        // Re-touching lpn 0 is a miss again.
        f.read(0).unwrap();
        let (_, misses2, _) = f.cmt_stats();
        assert_eq!(misses2, 4);
    }

    #[test]
    fn dirty_writeback_costs_flash_writes() {
        let mut small = ftl(1);
        // Alternate between two entries: every access misses and every
        // eviction is dirty.
        let programs_0 = small.nand().stats().page_programs;
        for i in 0..10 {
            small.write(if i % 2 == 0 { 0 } else { 40 }).unwrap();
        }
        let programs = small.nand().stats().page_programs - programs_0;
        assert!(
            programs > 10,
            "translation write-backs must add programs (got {programs})"
        );
    }

    #[test]
    fn data_survives_thrashing_cmt() {
        let mut f = ftl(4);
        let host = f.logical_pages();
        let n = host.min(200);
        for lpn in 0..n {
            f.write(lpn).unwrap();
        }
        for lpn in 0..n {
            let t = f.read(lpn).unwrap();
            assert!(t >= f.params().page_read, "lpn {lpn} lost");
        }
    }

    #[test]
    fn larger_cmt_means_less_translation_traffic() {
        let run = |cmt: usize| {
            let mut f = ftl(cmt);
            let host = f.logical_pages();
            let mut rng = simclock::Rng::new(77);
            // Zipf-skewed accesses: a big CMT holds the hot set.
            let zipf = simclock::Zipf::new(host.min(500), 1.0);
            for _ in 0..2000 {
                let lpn = zipf.sample(&mut rng) - 1;
                f.read(lpn).unwrap();
            }
            let (_, misses, _) = f.cmt_stats();
            misses
        };
        let small = run(4);
        let large = run(256);
        assert!(large < small / 2, "large CMT {large} vs small {small}");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut f = ftl(4);
        let lim = f.logical_pages();
        assert_eq!(f.read(lim), Err(FtlError::OutOfRange(lim)));
    }
}
