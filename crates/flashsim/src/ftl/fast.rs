//! FAST-style hybrid log-block FTL.
//!
//! Data blocks are block-mapped; a small pool of **log blocks** absorbs
//! updates with fully-associative page mapping (Lee et al.'s FAST). When
//! the log pool is exhausted the oldest log block is reclaimed:
//!
//! * **switch merge** — the log block happens to contain exactly one
//!   logical block written in order; it simply *becomes* the data block.
//! * **full merge** — for every logical block with live pages in the
//!   victim, gather the newest copy of each page (log pool first, then the
//!   data block) into a fresh block, remap, erase the sources.
//!
//! In-order first writes go straight to the data block (the "in-place
//! append" fast path), so sequential fills behave like the block-mapped
//! scheme while random updates enjoy log-buffered writes.
//!
//! Invariant maintained throughout: a NAND page is `Valid` **iff** it is
//! the newest copy of its logical page — superseded copies are invalidated
//! at write time, which keeps erase-safety checkable by the medium.

use std::collections::{HashMap, VecDeque};

use simclock::SimDuration;

use crate::ftl::{FreePool, Ftl, FtlError, FtlStats};
use crate::nand::{BlockId, Lpn, Nand, PageContent, Ppn};
use crate::params::FlashParams;

/// Hybrid log-block FTL.
#[derive(Debug, Clone)]
pub struct FastFtl {
    nand: Nand,
    /// logical block → physical data block.
    data_map: Vec<Option<BlockId>>,
    /// Newest copy of a logical page living in the log pool.
    log_map: HashMap<Lpn, Ppn>,
    /// Log blocks, oldest first. The back one is the write frontier.
    log_blocks: VecDeque<BlockId>,
    /// Maximum log blocks before a merge is forced.
    log_capacity: usize,
    free: FreePool,
    stats: FtlStats,
    /// Switch merges performed (subset of `stats.merges`).
    switch_merges: u64,
}

impl FastFtl {
    /// Fresh device. The log pool gets the over-provisioned blocks minus
    /// one merge-scratch block per the GC watermark.
    pub fn new(params: FlashParams) -> Self {
        let nand = Nand::new(params);
        let p = nand.params();
        let reserved = p.blocks - p.logical_blocks();
        let log_capacity = (reserved.saturating_sub(p.gc_low_watermark)).max(1) as usize;
        let logical_blocks = p.logical_blocks();
        let blocks = p.blocks;
        FastFtl {
            nand,
            data_map: vec![None; logical_blocks as usize],
            log_map: HashMap::new(),
            log_blocks: VecDeque::new(),
            log_capacity,
            free: FreePool::new(0..blocks),
            stats: FtlStats::default(),
            switch_merges: 0,
        }
    }

    /// Log blocks currently in use.
    pub fn log_blocks_in_use(&self) -> usize {
        self.log_blocks.len()
    }

    /// Switch merges performed.
    pub fn switch_merges(&self) -> u64 {
        self.switch_merges
    }

    #[inline]
    fn split(&self, lpn: Lpn) -> (u64, u32) {
        let ppb = self.nand.params().pages_per_block as u64;
        (lpn / ppb, (lpn % ppb) as u32)
    }

    /// The valid data-block page for `lpn`, if any.
    fn data_ppn(&self, lpn: Lpn) -> Option<Ppn> {
        let (lblock, offset) = self.split(lpn);
        let pblock = self.data_map[lblock as usize]?;
        let ppn = pblock * self.nand.params().pages_per_block as u64 + offset as u64;
        matches!(self.nand.page(ppn), PageContent::Valid(_)).then_some(ppn)
    }

    /// Invalidate every live copy of `lpn` (log first, then data block).
    fn supersede(&mut self, lpn: Lpn) {
        if let Some(ppn) = self.log_map.remove(&lpn) {
            self.nand.invalidate(ppn);
        } else if let Some(ppn) = self.data_ppn(lpn) {
            self.nand.invalidate(ppn);
        }
    }

    /// A log block with room, allocating (and merging) as needed.
    fn log_frontier(&mut self, latency: &mut SimDuration) -> Result<BlockId, FtlError> {
        if let Some(&back) = self.log_blocks.back() {
            if self.nand.block_has_room(back) {
                return Ok(back);
            }
        }
        let watermark = self.nand.params().gc_low_watermark;
        if (self.log_blocks.len() >= self.log_capacity || (self.free.len() as u64) <= watermark)
            && !self.log_blocks.is_empty()
        {
            *latency += self.merge_oldest()?;
        }
        let fresh = self.free.pop().ok_or(FtlError::DeviceFull)?;
        self.log_blocks.push_back(fresh);
        Ok(fresh)
    }

    /// Whether `block` is a perfect in-order image of a single logical
    /// block (the switch-merge condition).
    fn switchable(&self, block: BlockId) -> Option<u64> {
        let ppb = self.nand.params().pages_per_block;
        let pages = self.nand.block_valid_pages(block);
        if pages.len() != ppb as usize {
            return None;
        }
        let (first_lblock, _) = self.split(pages[0].1);
        for &(offset, lpn) in &pages {
            let (lblock, loffset) = self.split(lpn);
            if lblock != first_lblock || loffset != offset {
                return None;
            }
        }
        Some(first_lblock)
    }

    /// Reclaim the oldest log block.
    fn merge_oldest(&mut self) -> Result<SimDuration, FtlError> {
        let victim = self.log_blocks.pop_front().expect("log pool not empty");
        self.stats.gc_runs += 1;
        let mut t = SimDuration::ZERO;

        if let Some(lblock) = self.switchable(victim) {
            // Switch merge: the log block becomes the data block outright.
            for (offset, lpn) in self.nand.block_valid_pages(victim) {
                self.log_map.remove(&lpn);
                let _ = offset;
            }
            if let Some(old) = self.data_map[lblock as usize].replace(victim) {
                debug_assert_eq!(self.nand.block_valid(old), 0, "all pages were superseded");
                t += self.nand.erase(old);
                self.free.push(old);
            }
            self.stats.merges += 1;
            self.switch_merges += 1;
            return Ok(t);
        }

        // Full merge of every logical block with live pages in the victim.
        while let Some((_, lpn)) = self.nand.block_valid_pages(victim).into_iter().next() {
            let (lblock, _) = self.split(lpn);
            t += self.full_merge(lblock)?;
        }
        t += self.nand.erase(victim);
        self.free.push(victim);
        Ok(t)
    }

    /// Gather the newest copy of every page of `lblock` into a fresh block.
    fn full_merge(&mut self, lblock: u64) -> Result<SimDuration, FtlError> {
        let ppb = self.nand.params().pages_per_block as u64;
        let fresh = self.free.pop().ok_or(FtlError::DeviceFull)?;
        let mut t = SimDuration::ZERO;
        for offset in 0..ppb as u32 {
            let lpn = lblock * ppb + offset as u64;
            let src = self
                .log_map
                .get(&lpn)
                .copied()
                .or_else(|| self.data_ppn(lpn));
            if let Some(ppn) = src {
                t += self.nand.read(ppn);
                let (_, tw) = self.nand.program_at(fresh, offset, lpn);
                t += tw;
                self.nand.invalidate(ppn);
                self.log_map.remove(&lpn);
                self.stats.pages_moved += 1;
            }
        }
        if let Some(old) = self.data_map[lblock as usize].replace(fresh) {
            debug_assert_eq!(self.nand.block_valid(old), 0);
            t += self.nand.erase(old);
            self.free.push(old);
        }
        self.stats.merges += 1;
        Ok(t)
    }
}

impl Ftl for FastFtl {
    fn params(&self) -> &FlashParams {
        self.nand.params()
    }

    fn nand(&self) -> &Nand {
        &self.nand
    }

    fn read(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_reads += 1;
        let mut t = self.params().controller_overhead;
        let src = self
            .log_map
            .get(&lpn)
            .copied()
            .or_else(|| self.data_ppn(lpn));
        if let Some(ppn) = src {
            t += self.nand.read(ppn);
        }
        Ok(t)
    }

    fn write(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_writes += 1;
        let mut t = self.params().controller_overhead;
        let (lblock, offset) = self.split(lpn);

        // Every logical block gets a data block at first touch (merging a
        // log block first if the pool is tight). This keeps the invariant
        // that log pages always have a data block behind them, so a full
        // merge never consumes free blocks on net.
        if self.data_map[lblock as usize].is_none() {
            let watermark = self.nand.params().gc_low_watermark;
            if (self.free.len() as u64) <= watermark && !self.log_blocks.is_empty() {
                t += self.merge_oldest()?;
            }
            let fresh = self.free.pop().ok_or(FtlError::DeviceFull)?;
            self.data_map[lblock as usize] = Some(fresh);
        }
        let pblock = self.data_map[lblock as usize].expect("just ensured");

        self.supersede(lpn);
        if offset >= self.nand.block_frontier(pblock) {
            // In-order append into the data block.
            let (_, tw) = self.nand.program_at(pblock, offset, lpn);
            t += tw;
        } else {
            let log = self.log_frontier(&mut t)?;
            let (ppn, tw) = self.nand.program(log, lpn);
            t += tw;
            self.log_map.insert(lpn, ppn);
        }
        Ok(t)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_trims += 1;
        self.supersede(lpn);
        Ok(self.params().controller_overhead)
    }

    fn stats(&self) -> FtlStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = FtlStats::default();
        self.nand.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> FastFtl {
        // 12 blocks × 4 pages, 25% OP → 3 reserved: 9 logical blocks,
        // watermark 1 → log capacity 2.
        FastFtl::new(FlashParams::tiny(12))
    }

    #[test]
    fn sequential_fill_goes_in_place() {
        let mut f = ftl();
        let logical = f.logical_pages();
        for lpn in 0..logical {
            let t = f.write(lpn).unwrap();
            assert_eq!(t, f.params().page_write);
        }
        assert_eq!(f.log_blocks_in_use(), 0, "no log traffic on a fill");
        assert_eq!(f.stats().merges, 0);
        for lpn in 0..logical {
            assert_eq!(f.read(lpn).unwrap(), f.params().page_read);
        }
    }

    #[test]
    fn update_lands_in_log_block() {
        let mut f = ftl();
        let ppb = f.params().pages_per_block as u64;
        for lpn in 0..ppb {
            f.write(lpn).unwrap();
        }
        let t = f.write(0).unwrap();
        assert_eq!(t, f.params().page_write, "one log write, no merge yet");
        assert_eq!(f.log_blocks_in_use(), 1);
        // Read must see the log copy.
        assert_eq!(f.read(0).unwrap(), f.params().page_read);
        assert_eq!(
            f.nand().valid_pages(),
            ppb,
            "exactly one live copy per page"
        );
    }

    #[test]
    fn log_exhaustion_triggers_merge() {
        let mut f = ftl();
        let logical = f.logical_pages();
        for lpn in 0..logical {
            f.write(lpn).unwrap();
        }
        // Random-update storm far exceeding the log capacity.
        let mut rng = simclock::Rng::new(5);
        for _ in 0..100 {
            f.write(rng.next_below(logical)).unwrap();
        }
        assert!(f.stats().merges > 0);
        // Data still correct: every page readable, one live copy each.
        for lpn in 0..logical {
            assert_eq!(f.read(lpn).unwrap(), f.params().page_read);
        }
        assert_eq!(f.nand().valid_pages(), logical);
    }

    #[test]
    fn switch_merge_detected_for_in_order_rewrite() {
        let mut f = ftl();
        let ppb = f.params().pages_per_block as u64;
        let logical = f.logical_pages();
        // Fill everything so updates can't go in-place.
        for lpn in 0..logical {
            f.write(lpn).unwrap();
        }
        // Rewrite logical block 0 in order: fills one log block perfectly.
        for lpn in 0..ppb {
            f.write(lpn).unwrap();
        }
        // Force reclamation of that log block by rewriting another block
        // in order, repeatedly, until merges happen.
        for lpn in ppb..2 * ppb {
            f.write(lpn).unwrap();
        }
        for lpn in 2 * ppb..3 * ppb {
            f.write(lpn).unwrap();
        }
        assert!(
            f.switch_merges() > 0,
            "in-order log blocks must switch-merge (merges = {})",
            f.stats().merges
        );
    }

    #[test]
    fn trim_drops_both_copies() {
        let mut f = ftl();
        let ppb = f.params().pages_per_block as u64;
        for lpn in 0..ppb {
            f.write(lpn).unwrap();
        }
        f.write(0).unwrap(); // log copy supersedes data copy
        f.trim(0).unwrap();
        assert_eq!(f.read(0).unwrap(), SimDuration::ZERO);
        assert_eq!(f.nand().valid_pages(), ppb - 1);
    }

    #[test]
    fn sustained_random_writes_never_corrupt() {
        let mut f = ftl();
        let logical = f.logical_pages();
        let mut rng = simclock::Rng::new(23);
        let mut live = vec![false; logical as usize];
        for _ in 0..500 {
            let lpn = rng.next_below(logical);
            f.write(lpn).unwrap();
            live[lpn as usize] = true;
        }
        for lpn in 0..logical {
            let t = f.read(lpn).unwrap();
            if live[lpn as usize] {
                assert_eq!(t, f.params().page_read, "lpn {lpn} must be mapped");
            }
        }
        let mapped = live.iter().filter(|&&l| l).count() as u64;
        assert_eq!(f.nand().valid_pages(), mapped);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut f = ftl();
        let lim = f.logical_pages();
        assert_eq!(f.write(lim), Err(FtlError::OutOfRange(lim)));
    }
}
