//! Flash translation layers.
//!
//! Four schemes, spanning the design space the paper's related-work section
//! surveys:
//!
//! * [`PageMapFtl`] — the ideal page-level mapping the paper adopts as its
//!   baseline ("we take the ideal page-based FTL as the base line").
//! * [`BlockMapFtl`] — block-level mapping with copy-merge on in-place
//!   updates; cheap RAM, terrible random writes.
//! * [`FastFtl`] — a FAST-style hybrid: block-mapped data blocks plus a
//!   pool of fully-associative page-mapped log blocks, reclaimed by
//!   switch/full merges.
//! * [`Dftl`] — page-level mapping with a cached mapping table; misses and
//!   dirty evictions pay translation-page traffic through the same NAND.
//!
//! All schemes run **foreground GC**: reclamation work is charged to the
//! host request that triggered it.

mod block_map;
mod dftl;
mod fast;
mod page_map;

pub use block_map::BlockMapFtl;
pub use dftl::Dftl;
pub use fast::FastFtl;
pub use page_map::PageMapFtl;

use core::fmt;

use simclock::SimDuration;

use crate::nand::{Lpn, Nand};
use crate::params::FlashParams;

/// FTL-level request errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page is beyond the exported capacity.
    OutOfRange(Lpn),
    /// Garbage collection could not reclaim space (the host wrote more
    /// than the exported capacity, or over-provisioning is mis-sized).
    DeviceFull,
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::OutOfRange(lpn) => write!(f, "logical page {lpn} out of range"),
            FtlError::DeviceFull => write!(f, "no reclaimable space"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Counters an FTL maintains above the raw medium.
#[derive(Debug, Clone, Copy, Default)]
pub struct FtlStats {
    /// Host-issued page reads.
    pub host_reads: u64,
    /// Host-issued page writes.
    pub host_writes: u64,
    /// Host-issued page trims.
    pub host_trims: u64,
    /// Garbage-collection invocations.
    pub gc_runs: u64,
    /// Valid pages migrated by GC / merges.
    pub pages_moved: u64,
    /// Merge operations (block-map copy-merges, FAST full/switch merges).
    pub merges: u64,
}

impl FtlStats {
    /// Write amplification: medium programs per host write (1.0 is ideal).
    /// Needs the medium's program counter, which the caller reads from
    /// [`Nand::stats`].
    pub fn write_amplification(&self, nand_programs: u64) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            nand_programs as f64 / self.host_writes as f64
        }
    }
}

/// The logical-page interface every translation scheme implements.
pub trait Ftl {
    /// Device parameters.
    fn params(&self) -> &FlashParams;

    /// The underlying medium (for wear / erase statistics).
    fn nand(&self) -> &Nand;

    /// Host-visible pages.
    fn logical_pages(&self) -> u64 {
        self.params().logical_pages()
    }

    /// Read one logical page. Unmapped pages cost controller overhead only
    /// (the drive returns zeros without touching the medium).
    fn read(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError>;

    /// Write one logical page.
    fn write(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError>;

    /// Trim one logical page: drop the mapping, invalidate the flash copy.
    fn trim(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError>;

    /// FTL-level counters.
    fn stats(&self) -> FtlStats;

    /// Zero FTL and medium counters (wear state persists).
    fn reset_stats(&mut self);

    /// Bounds check helper.
    fn check_lpn(&self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn < self.logical_pages() {
            Ok(())
        } else {
            Err(FtlError::OutOfRange(lpn))
        }
    }
}

/// Free-block pool shared by the schemes: a FIFO of erased blocks.
///
/// Keeping allocation order FIFO (rather than LIFO) spreads wear across
/// the pool — a crude but effective dynamic wear-leveling.
#[derive(Debug, Clone, Default)]
pub(crate) struct FreePool {
    blocks: std::collections::VecDeque<u64>,
}

impl FreePool {
    pub fn new<I: IntoIterator<Item = u64>>(blocks: I) -> Self {
        FreePool {
            blocks: blocks.into_iter().collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn pop(&mut self) -> Option<u64> {
        self.blocks.pop_front()
    }

    pub fn push(&mut self, block: u64) {
        self.blocks.push_back(block);
    }

    /// The pooled blocks in allocation order (for validators).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.blocks.iter().copied()
    }
}
