//! The ideal page-mapped FTL — the paper's baseline (Intel's 1998
//! page-mapped scheme with the full map held in controller RAM).

use invariant::{audit, Report, Validate};
use simclock::SimDuration;

use crate::ftl::{FreePool, Ftl, FtlError, FtlStats};
use crate::nand::{BlockId, Lpn, Nand, PageContent, Ppn};
use crate::params::FlashParams;

/// Page-level mapping with log-structured writes and greedy garbage
/// collection.
///
/// * Host writes stream into the **host active block**; GC migrations
///   stream into a separate **GC active block** (hot/cold separation, so a
///   migrated cold page does not re-pollute the hot frontier).
/// * GC runs when the free pool drops below the watermark and picks the
///   block with the most invalid pages (ties: least-worn) — the classic
///   greedy policy, which is near-optimal for the skewed workloads search
///   engines generate.
#[derive(Debug, Clone)]
pub struct PageMapFtl {
    nand: Nand,
    /// lpn → ppn, `None` when unmapped.
    map: Vec<Option<Ppn>>,
    free: FreePool,
    active_host: Option<BlockId>,
    active_gc: Option<BlockId>,
    stats: FtlStats,
    /// Static wear-leveling threshold: when the erase-count spread
    /// (max − min) exceeds this, cold data is migrated off the
    /// least-worn block so it rejoins the rotation. 0 disables.
    wear_threshold: u64,
    /// Static wear-leveling migrations performed.
    wl_migrations: u64,
}

impl PageMapFtl {
    /// Fresh device.
    pub fn new(params: FlashParams) -> Self {
        let nand = Nand::new(params);
        let logical = nand.params().logical_pages();
        let blocks = nand.params().blocks;
        PageMapFtl {
            nand,
            map: vec![None; logical as usize],
            free: FreePool::new(0..blocks),
            active_host: None,
            active_gc: None,
            stats: FtlStats::default(),
            wear_threshold: 0,
            wl_migrations: 0,
        }
    }

    /// Enable static wear leveling: when the erase-count spread exceeds
    /// `threshold`, the least-worn block's (cold) data is migrated so the
    /// block rejoins the write rotation. Pass 0 to disable.
    pub fn with_wear_leveling(params: FlashParams, threshold: u64) -> Self {
        let mut ftl = Self::new(params);
        ftl.wear_threshold = threshold;
        ftl
    }

    /// Static wear-leveling migrations performed.
    pub fn wear_migrations(&self) -> u64 {
        self.wl_migrations
    }

    /// Static wear leveling (invoked after GC): if wear spread exceeds
    /// the threshold, evacuate the least-worn non-free block — its pages
    /// are cold (the block hasn't been erased while others cycled), and
    /// moving them frees the young block for hot writes.
    fn level_wear(&mut self) -> Result<SimDuration, FtlError> {
        if self.wear_threshold == 0 {
            return Ok(SimDuration::ZERO);
        }
        let (min, max, _) = self.nand.wear();
        if max - min <= self.wear_threshold {
            return Ok(SimDuration::ZERO);
        }
        // The least-worn block holding data (skip frontiers and free
        // blocks: a block in the pool will naturally rotate).
        let mut coldest: Option<(BlockId, u64)> = None;
        for b in 0..self.nand.params().blocks {
            if Some(b) == self.active_host || Some(b) == self.active_gc {
                continue;
            }
            if self.nand.block_valid(b) == 0 {
                continue;
            }
            let wear = self.nand.block_erase_count(b);
            if coldest.is_none_or(|(_, w)| wear < w) {
                coldest = Some((b, wear));
            }
        }
        let Some((victim, wear)) = coldest else {
            return Ok(SimDuration::ZERO);
        };
        if max - wear <= self.wear_threshold {
            return Ok(SimDuration::ZERO);
        }
        self.wl_migrations += 1;
        self.reclaim(victim)
    }

    /// Whether `lpn` currently has a flash copy.
    pub fn is_mapped(&self, lpn: Lpn) -> bool {
        self.map.get(lpn as usize).is_some_and(Option::is_some)
    }

    /// Test hook: overwrite a mapping-table entry without touching the
    /// medium, desynchronizing the map from the validity state so the
    /// invariant auditor can prove it notices.
    #[doc(hidden)]
    pub fn debug_corrupt_map(&mut self, lpn: Lpn, ppn: Option<Ppn>) {
        self.map[lpn as usize] = ppn;
    }

    /// Number of free blocks in the pool.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Allocate a block for a write frontier, running GC first if the pool
    /// is at or below the watermark, then levelling wear if enabled.
    fn alloc_block(&mut self, latency: &mut SimDuration) -> Result<BlockId, FtlError> {
        if (self.free.len() as u64) <= self.nand.params().gc_low_watermark {
            *latency += self.collect_garbage()?;
            *latency += self.level_wear()?;
        }
        self.free.pop().ok_or(FtlError::DeviceFull)
    }

    /// Greedy GC: reclaim until the pool exceeds the watermark. Returns the
    /// time spent. Charged to the request that triggered it.
    fn collect_garbage(&mut self) -> Result<SimDuration, FtlError> {
        let watermark = self.nand.params().gc_low_watermark;
        let mut spent = SimDuration::ZERO;
        let mut ran = false;
        while (self.free.len() as u64) <= watermark {
            let Some(victim) = self.pick_victim() else {
                // Nothing reclaimable. Fine if we already hold a block.
                break;
            };
            ran = true;
            spent += self.reclaim(victim)?;
        }
        if ran {
            self.stats.gc_runs += 1;
        }
        if self.free.len() == 0 {
            return Err(FtlError::DeviceFull);
        }
        Ok(spent)
    }

    /// The block with the most invalid pages; ties broken by erase count.
    /// Active frontiers and free blocks are never victims. Returns `None`
    /// when no block has any invalid page.
    fn pick_victim(&self) -> Option<BlockId> {
        let mut best: Option<(BlockId, u32, u64)> = None;
        for b in 0..self.nand.params().blocks {
            if Some(b) == self.active_host || Some(b) == self.active_gc {
                continue;
            }
            let invalid = self.nand.block_invalid(b);
            if invalid == 0 {
                continue;
            }
            let wear = self.nand.block_erase_count(b);
            let better = match best {
                None => true,
                Some((_, bi, bw)) => invalid > bi || (invalid == bi && wear < bw),
            };
            if better {
                best = Some((b, invalid, wear));
            }
        }
        best.map(|(b, _, _)| b)
    }

    /// Migrate the victim's valid pages to the GC frontier and erase it.
    fn reclaim(&mut self, victim: BlockId) -> Result<SimDuration, FtlError> {
        let mut spent = SimDuration::ZERO;
        for (offset, lpn) in self.nand.block_valid_pages(victim) {
            let old_ppn = victim * self.nand.params().pages_per_block as u64 + offset as u64;
            spent += self.nand.read(old_ppn);
            // Ensure a GC frontier with room. The pool is guaranteed
            // non-empty here because the watermark keeps at least one
            // block back for exactly this migration.
            let gc_block = match self.active_gc {
                Some(b) if self.nand.block_has_room(b) => b,
                _ => {
                    let b = self.free.pop().ok_or(FtlError::DeviceFull)?;
                    self.active_gc = Some(b);
                    b
                }
            };
            let (new_ppn, t) = self.nand.program(gc_block, lpn);
            spent += t;
            self.nand.invalidate(old_ppn);
            self.map[lpn as usize] = Some(new_ppn);
            self.stats.pages_moved += 1;
        }
        spent += self.nand.erase(victim);
        self.free.push(victim);
        Ok(spent)
    }
}

impl Ftl for PageMapFtl {
    fn params(&self) -> &FlashParams {
        self.nand.params()
    }

    fn nand(&self) -> &Nand {
        &self.nand
    }

    fn read(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_reads += 1;
        let mut t = self.params().controller_overhead;
        if let Some(ppn) = self.map[lpn as usize] {
            t += self.nand.read(ppn);
        }
        audit!(self, "PageMapFtl::read");
        Ok(t)
    }

    fn write(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_writes += 1;
        let mut t = self.params().controller_overhead;
        // Invalidate the stale copy first so the old page is reclaimable
        // by the GC this very write may trigger.
        if let Some(old) = self.map[lpn as usize].take() {
            self.nand.invalidate(old);
        }
        let host_block = match self.active_host {
            Some(b) if self.nand.block_has_room(b) => b,
            _ => {
                let b = self.alloc_block(&mut t)?;
                self.active_host = Some(b);
                b
            }
        };
        let (ppn, tw) = self.nand.program(host_block, lpn);
        t += tw;
        self.map[lpn as usize] = Some(ppn);
        audit!(self, "PageMapFtl::write");
        Ok(t)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<SimDuration, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_trims += 1;
        if let Some(ppn) = self.map[lpn as usize].take() {
            self.nand.invalidate(ppn);
        }
        audit!(self, "PageMapFtl::trim");
        Ok(self.params().controller_overhead)
    }

    fn stats(&self) -> FtlStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = FtlStats::default();
        self.nand.reset_stats();
    }
}

impl Validate for PageMapFtl {
    fn validate(&self, report: &mut Report) {
        let subject = "PageMapFtl";
        self.nand.validate(report);
        // Forward map: every mapped LPN points at a page the medium
        // considers live for exactly that LPN, and no physical page is
        // claimed twice. Together with the count check below this makes
        // map and validity bitmap mutually consistent: mapped == valid.
        let mut mapped = 0u64;
        let mut claimed = std::collections::HashSet::new();
        for (lpn, slot) in self.map.iter().enumerate() {
            let Some(ppn) = slot else { continue };
            mapped += 1;
            report.check(
                self.nand.page(*ppn) == PageContent::Valid(lpn as Lpn),
                subject,
                "map-valid-agree",
                || {
                    format!(
                        "lpn {lpn} maps to ppn {ppn} holding {:?}",
                        self.nand.page(*ppn)
                    )
                },
            );
            report.check(claimed.insert(*ppn), subject, "map-injective", || {
                format!("ppn {ppn} mapped by more than one logical page")
            });
        }
        report.check(
            self.nand.valid_pages() == mapped,
            subject,
            "valid-count-agree",
            || {
                format!(
                    "{} valid pages on the medium but {} mapped logical pages",
                    self.nand.valid_pages(),
                    mapped
                )
            },
        );
        // The free pool holds fully-erased, unique, non-frontier blocks.
        let mut pooled = std::collections::HashSet::new();
        for b in self.free.iter() {
            report.check(pooled.insert(b), subject, "free-pool-unique", || {
                format!("block {b} pooled twice")
            });
            report.check(
                self.nand.block_frontier(b) == 0 && self.nand.block_valid(b) == 0,
                subject,
                "free-pool-erased",
                || {
                    format!(
                        "pooled block {b} has frontier {} / {} valid pages",
                        self.nand.block_frontier(b),
                        self.nand.block_valid(b)
                    )
                },
            );
            report.check(
                Some(b) != self.active_host && Some(b) != self.active_gc,
                subject,
                "free-pool-active",
                || format!("block {b} pooled while serving as a write frontier"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> PageMapFtl {
        PageMapFtl::new(FlashParams::tiny(8)) // 8 blocks × 4 pages, 6 logical blocks
    }

    #[test]
    fn write_then_read_charges_page_costs() {
        let mut f = ftl();
        let tw = f.write(0).unwrap();
        assert_eq!(tw, f.params().page_write);
        let tr = f.read(0).unwrap();
        assert_eq!(tr, f.params().page_read);
        assert!(f.is_mapped(0));
    }

    #[test]
    fn unmapped_read_is_controller_only() {
        let mut f = ftl();
        assert_eq!(f.read(5).unwrap(), SimDuration::ZERO);
        assert_eq!(f.nand().stats().page_reads, 0);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut f = ftl();
        let lim = f.logical_pages();
        assert_eq!(f.read(lim), Err(FtlError::OutOfRange(lim)));
        assert_eq!(f.write(lim), Err(FtlError::OutOfRange(lim)));
        assert_eq!(f.trim(lim), Err(FtlError::OutOfRange(lim)));
    }

    #[test]
    fn overwrite_invalidates_old_copy() {
        let mut f = ftl();
        f.write(3).unwrap();
        f.write(3).unwrap();
        assert_eq!(f.nand().valid_pages(), 1);
        assert_eq!(f.nand().stats().page_programs, 2);
    }

    #[test]
    fn trim_unmaps_without_media_write() {
        let mut f = ftl();
        f.write(1).unwrap();
        let programs_before = f.nand().stats().page_programs;
        f.trim(1).unwrap();
        assert!(!f.is_mapped(1));
        assert_eq!(f.nand().valid_pages(), 0);
        assert_eq!(f.nand().stats().page_programs, programs_before);
        // Reading after trim is a zero-fill.
        assert_eq!(f.read(1).unwrap(), SimDuration::ZERO);
        // Trimming an unmapped page is a no-op.
        f.trim(1).unwrap();
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_stay_correct() {
        let mut f = ftl();
        let logical = f.logical_pages();
        // Fill the device, then overwrite everything several times over.
        for round in 0..6 {
            for lpn in 0..logical {
                f.write(lpn).unwrap();
                let _ = round;
            }
        }
        assert!(f.stats().gc_runs > 0, "GC must have run");
        assert!(f.nand().stats().block_erases > 0);
        // Every logical page still mapped and readable.
        for lpn in 0..logical {
            assert!(f.is_mapped(lpn));
            assert!(f.read(lpn).unwrap() >= f.params().page_read);
        }
        // Valid pages == logical pages exactly.
        assert_eq!(f.nand().valid_pages(), logical);
    }

    #[test]
    fn gc_cost_lands_on_the_triggering_write() {
        let mut f = ftl();
        let logical = f.logical_pages();
        let plain = f.params().page_write;
        let mut spikes = 0;
        for _ in 0..4 {
            for lpn in 0..logical {
                let t = f.write(lpn).unwrap();
                if t > plain {
                    spikes += 1;
                    // A GC-carrying write includes at least one erase.
                    assert!(t >= plain + f.params().block_erase);
                }
            }
        }
        assert!(spikes > 0, "some writes must carry GC cost");
    }

    #[test]
    fn write_amplification_exceeds_one_under_pressure() {
        let mut f = ftl();
        let logical = f.logical_pages();
        let mut rng = simclock::Rng::new(7);
        for _ in 0..(logical * 10) {
            f.write(rng.next_below(logical)).unwrap();
        }
        let wa = f
            .stats()
            .write_amplification(f.nand().stats().page_programs);
        assert!(wa > 1.0, "WA = {wa}");
        assert!(wa < 4.0, "WA = {wa} unreasonably high for 25% OP");
    }

    #[test]
    fn sequential_writes_have_unit_amplification() {
        let mut f = ftl();
        let logical = f.logical_pages();
        for lpn in 0..logical {
            f.write(lpn).unwrap();
        }
        let wa = f
            .stats()
            .write_amplification(f.nand().stats().page_programs);
        assert!((wa - 1.0).abs() < 1e-12, "first fill must not amplify");
    }

    #[test]
    fn trim_reduces_gc_pressure() {
        // Write the whole device, trim half, then overwrite the other
        // half repeatedly: with the trims, GC victims are mostly garbage,
        // so migration work drops and erases don't grow.
        let run = |trim: bool| {
            let mut f = ftl();
            let logical = f.logical_pages();
            for lpn in 0..logical {
                f.write(lpn).unwrap();
            }
            // Hot set = even pages, cold set = odd pages, so hot and cold
            // interleave within physical blocks and GC must migrate the
            // cold neighbours — unless they were trimmed.
            if trim {
                for lpn in (1..logical).step_by(2) {
                    f.trim(lpn).unwrap();
                }
            }
            for _ in 0..8 {
                for lpn in (0..logical).step_by(2) {
                    f.write(lpn).unwrap();
                }
            }
            (f.stats().pages_moved, f.nand().stats().block_erases)
        };
        let (moved_t, erases_t) = run(true);
        let (moved_n, erases_n) = run(false);
        assert!(
            moved_t < moved_n,
            "trim must reduce GC migration ({moved_t} vs {moved_n})"
        );
        assert!(erases_t <= erases_n, "trim must not add erases");
    }

    #[test]
    fn wear_is_spread_across_blocks() {
        let mut f = ftl();
        let logical = f.logical_pages();
        let mut rng = simclock::Rng::new(3);
        for _ in 0..(logical * 30) {
            f.write(rng.next_below(logical)).unwrap();
        }
        let (min, max, _) = f.nand().wear();
        assert!(max > 0);
        // FIFO pooling keeps the spread loose but bounded.
        assert!(max - min <= max, "sanity");
        assert!(min > 0 || max < 10, "no block may monopolize erases");
    }

    #[test]
    fn wear_leveling_tightens_the_spread() {
        // A pathological workload: a block-aligned cold region that is
        // written once, plus a hot region overwritten constantly. Without
        // static WL the cold blocks never cycle.
        let run = |threshold: u64| {
            let mut f = PageMapFtl::with_wear_leveling(FlashParams::tiny(16), threshold);
            let logical = f.logical_pages();
            let ppb = f.params().pages_per_block as u64;
            for lpn in 0..logical {
                f.write(lpn).unwrap();
            }
            // Hot set: the last block's worth of pages only.
            let hot_start = logical - ppb;
            for _ in 0..600 {
                for lpn in hot_start..logical {
                    f.write(lpn).unwrap();
                }
            }
            let (min, max, mean) = f.nand().wear();
            (
                min,
                (max - min) as f64 / mean.max(1e-9),
                f.wear_migrations(),
            )
        };
        let (min_off, imbalance_off, mig_off) = run(0);
        let (min_on, imbalance_on, mig_on) = run(8);
        assert_eq!(mig_off, 0);
        assert!(mig_on > 0, "WL must have migrated cold blocks");
        assert_eq!(min_off, 0, "without WL the cold blocks never cycle");
        assert!(min_on > 0, "WL must bring cold blocks into rotation");
        // Migration churn adds erases, so compare *normalized* imbalance
        // (spread over mean), which is what bounds device lifetime.
        assert!(
            imbalance_on < imbalance_off * 0.6,
            "WL must tighten normalized wear ({imbalance_on:.2} vs {imbalance_off:.2})"
        );
    }

    #[test]
    fn wear_leveling_preserves_data() {
        let mut f = PageMapFtl::with_wear_leveling(FlashParams::tiny(12), 4);
        let logical = f.logical_pages();
        let mut rng = simclock::Rng::new(5);
        let zipf = simclock::Zipf::new(logical, 1.2);
        for _ in 0..logical * 40 {
            f.write(zipf.sample(&mut rng) - 1).unwrap();
        }
        // Everything ever written is still readable.
        for lpn in 0..logical {
            if f.is_mapped(lpn) {
                assert!(f.read(lpn).unwrap() >= f.params().page_read);
            }
        }
        assert_eq!(
            f.nand().valid_pages(),
            (0..logical).filter(|&l| f.is_mapped(l)).count() as u64
        );
    }

    #[test]
    fn validation_clean_through_gc_and_wear_leveling() {
        let mut f = PageMapFtl::with_wear_leveling(FlashParams::tiny(12), 4);
        let logical = f.logical_pages();
        let mut rng = simclock::Rng::new(11);
        for i in 0..logical * 25 {
            let lpn = rng.next_below(logical);
            if i % 7 == 0 {
                f.trim(lpn).unwrap();
            } else {
                f.write(lpn).unwrap();
            }
            if f.is_mapped(lpn) {
                f.read(lpn).unwrap();
            }
        }
        let report = f.validation_report();
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn corrupted_map_entry_trips_the_validator() {
        let mut f = ftl();
        f.write(0).unwrap();
        f.write(1).unwrap();
        // Point lpn 1 at lpn 0's physical page: the page is valid but for
        // the wrong LPN, and two logical pages now claim one PPN.
        let ppn0 = (0..f.nand().params().physical_pages())
            .find(|&p| f.nand().page(p) == PageContent::Valid(0))
            .unwrap();
        f.debug_corrupt_map(1, Some(ppn0));
        let report = f.validation_report();
        let hit: Vec<_> = report.violations().iter().map(|v| v.invariant).collect();
        assert!(hit.contains(&"map-valid-agree"), "{}", report.summary());
        assert!(hit.contains(&"map-injective"), "{}", report.summary());
    }

    #[test]
    fn reset_stats_preserves_state() {
        let mut f = ftl();
        f.write(0).unwrap();
        f.reset_stats();
        assert_eq!(f.stats().host_writes, 0);
        assert_eq!(f.nand().stats().page_programs, 0);
        assert!(f.is_mapped(0), "mapping survives stats reset");
    }
}
