//! NAND flash + FTL simulator.
//!
//! A re-implementation of the parts of PSU's FlashSim the paper uses
//! (Table III): 2 KB pages, 64-page (128 KB) blocks, page read 32.725 µs,
//! page program 101.475 µs, block erase 1.5 ms, and an ideal **page-mapped
//! FTL** as the baseline. Beyond the paper's baseline we also implement the
//! other classic FTL families its related-work section surveys — a
//! **block-mapped** FTL, a **FAST-style hybrid log-block** FTL, and
//! **DFTL** — so the FTL choice can be ablated under identical cache
//! workloads.
//!
//! Layering:
//!
//! * [`nand::Nand`] — the raw medium: blocks of pages with the three NAND
//!   hard rules (erase-before-write, program-once, program pages in order),
//!   per-block wear counters, and operation timing.
//! * [`ftl::Ftl`] — logical-page interface; each scheme owns a [`Nand`] and
//!   decides placement, garbage collection and the cost of a host request.
//! * [`ssd::SsdDisk`] — adapts an FTL to the sector-addressed
//!   [`storagecore::BlockDevice`], so the cache layers can treat the SSD
//!   exactly like any other disk; this is where Trim enters from above.
//!
//! Everything is deterministic; GC work is charged to the host request
//! that triggered it (foreground GC), which is what produces the paper's
//! Fig. 19(b) effect of background operations hurting read latency.

#![forbid(unsafe_code)]

pub mod ftl;
pub mod nand;
pub mod params;
pub mod ssd;

pub use ftl::{BlockMapFtl, Dftl, FastFtl, Ftl, FtlError, PageMapFtl};
pub use nand::{Nand, NandStats, PageContent};
pub use params::{ComputeParams, FlashParams, PAPER_BLOCK_BYTES, PAPER_PAGE_BYTES};
pub use ssd::{ComputeStats, SsdDisk};
