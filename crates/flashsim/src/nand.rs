//! The raw NAND medium.
//!
//! [`Nand`] enforces the three hard rules of NAND flash and charges the
//! datasheet timing for each primitive:
//!
//! 1. **Erase-before-write** — a page can be programmed only when free;
//! 2. **Program-once** — a programmed page stays programmed until the
//!    whole block is erased;
//! 3. **In-order programming** — pages within a block must be programmed
//!    at increasing page offsets (the NAND "sequential program" rule that
//!    makes log-structured FTLs the natural design).
//!
//! Violations are driver bugs, so they panic rather than return errors —
//! an FTL that breaks the medium's rules must fail tests loudly.

use invariant::{Report, Validate};
use simclock::SimDuration;

use crate::params::FlashParams;

/// Logical page number (host-visible page index).
pub type Lpn = u64;

/// Physical page number: `block * pages_per_block + offset`.
pub type Ppn = u64;

/// Physical block index.
pub type BlockId = u64;

/// What a physical page currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageContent {
    /// Erased, programmable.
    Free,
    /// Holds live data for this logical page.
    Valid(Lpn),
    /// Holds stale data awaiting erase.
    Invalid,
}

/// Per-block state.
#[derive(Debug, Clone)]
struct Block {
    pages: Vec<PageContent>,
    /// Program frontier: next page offset that may be programmed.
    next_page: u32,
    valid: u32,
    erase_count: u64,
}

impl Block {
    fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![PageContent::Free; pages_per_block as usize],
            next_page: 0,
            valid: 0,
            erase_count: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.next_page as usize == self.pages.len()
    }
}

/// Medium-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NandStats {
    /// Pages read from the medium (host + GC).
    pub page_reads: u64,
    /// Pages programmed (host + GC).
    pub page_programs: u64,
    /// Blocks erased.
    pub block_erases: u64,
}

/// The NAND array.
#[derive(Debug, Clone)]
pub struct Nand {
    params: FlashParams,
    blocks: Vec<Block>,
    stats: NandStats,
    free_pages: u64,
    valid_pages: u64,
}

impl Nand {
    /// A freshly erased die.
    pub fn new(params: FlashParams) -> Self {
        params.validate().expect("invalid flash parameters");
        let blocks = (0..params.blocks)
            .map(|_| Block::new(params.pages_per_block))
            .collect();
        let free_pages = params.physical_pages();
        Nand {
            params,
            blocks,
            stats: NandStats::default(),
            free_pages,
            valid_pages: 0,
        }
    }

    /// Device parameters.
    pub fn params(&self) -> &FlashParams {
        &self.params
    }

    /// Medium counters.
    pub fn stats(&self) -> NandStats {
        self.stats
    }

    /// Zero the medium counters (not the wear state).
    pub fn reset_stats(&mut self) {
        self.stats = NandStats::default();
    }

    #[inline]
    fn ppn(&self, block: BlockId, offset: u32) -> Ppn {
        block * self.params.pages_per_block as u64 + offset as u64
    }

    /// Split a PPN into (block, offset).
    #[inline]
    pub fn locate(&self, ppn: Ppn) -> (BlockId, u32) {
        (
            ppn / self.params.pages_per_block as u64,
            (ppn % self.params.pages_per_block as u64) as u32,
        )
    }

    /// Content of a physical page.
    pub fn page(&self, ppn: Ppn) -> PageContent {
        let (b, o) = self.locate(ppn);
        self.blocks[b as usize].pages[o as usize]
    }

    /// Read a page. Reading free or invalid pages is a driver bug.
    pub fn read(&mut self, ppn: Ppn) -> SimDuration {
        let content = self.page(ppn);
        assert!(
            matches!(content, PageContent::Valid(_)),
            "read of non-valid page {ppn}: {content:?}"
        );
        self.stats.page_reads += 1;
        self.params.page_read
    }

    /// Program the next free page of `block` with data for `lpn`.
    /// Returns the PPN programmed and the latency. Panics if the block is
    /// full — callers track frontiers via [`Nand::block_has_room`].
    pub fn program(&mut self, block: BlockId, lpn: Lpn) -> (Ppn, SimDuration) {
        let frontier = self.blocks[block as usize].next_page;
        self.program_at(block, frontier, lpn)
    }

    /// Program `block` at `offset`, which must be at or past the program
    /// frontier (NAND allows skipping forward, never back). Skipped pages
    /// are burned: they stay `Free` but become unprogrammable until the
    /// next erase, and are accounted as consumed.
    pub fn program_at(&mut self, block: BlockId, offset: u32, lpn: Lpn) -> (Ppn, SimDuration) {
        let pages_per_block = self.params.pages_per_block;
        let b = &mut self.blocks[block as usize];
        assert!(
            offset < pages_per_block,
            "program offset {offset} beyond block of {pages_per_block} pages"
        );
        assert!(
            offset >= b.next_page,
            "program into full block {block} or behind its frontier ({offset} < {})",
            b.next_page
        );
        debug_assert_eq!(b.pages[offset as usize], PageContent::Free);
        b.pages[offset as usize] = PageContent::Valid(lpn);
        let consumed = (offset - b.next_page + 1) as u64;
        b.next_page = offset + 1;
        b.valid += 1;
        self.free_pages -= consumed;
        self.valid_pages += 1;
        self.stats.page_programs += 1;
        (self.ppn(block, offset), self.params.page_write)
    }

    /// Mark a previously valid page invalid (its logical page was
    /// overwritten or trimmed).
    pub fn invalidate(&mut self, ppn: Ppn) {
        let (block, offset) = self.locate(ppn);
        let b = &mut self.blocks[block as usize];
        let p = &mut b.pages[offset as usize];
        assert!(
            matches!(p, PageContent::Valid(_)),
            "invalidate of non-valid page {ppn}: {p:?}"
        );
        *p = PageContent::Invalid;
        b.valid -= 1;
        self.valid_pages -= 1;
    }

    /// Erase a block. All its pages become free. Erasing a block that
    /// still holds valid pages is a driver bug (the FTL must migrate
    /// first).
    pub fn erase(&mut self, block: BlockId) -> SimDuration {
        let pages_per_block = self.params.pages_per_block as u64;
        let b = &mut self.blocks[block as usize];
        assert_eq!(b.valid, 0, "erase of block {block} with valid pages");
        let reclaimed = b.next_page as u64;
        b.pages.fill(PageContent::Free);
        b.next_page = 0;
        b.erase_count += 1;
        self.free_pages += reclaimed;
        debug_assert!(self.free_pages <= self.params.physical_pages());
        let _ = pages_per_block;
        self.stats.block_erases += 1;
        self.params.block_erase
    }

    /// Whether `block` still has unprogrammed pages.
    pub fn block_has_room(&self, block: BlockId) -> bool {
        !self.blocks[block as usize].is_full()
    }

    /// Next programmable offset of `block` (== pages_per_block when full).
    pub fn block_frontier(&self, block: BlockId) -> u32 {
        self.blocks[block as usize].next_page
    }

    /// Valid pages in `block`.
    pub fn block_valid(&self, block: BlockId) -> u32 {
        self.blocks[block as usize].valid
    }

    /// Invalid (reclaimable) pages in `block`: programmed minus valid.
    pub fn block_invalid(&self, block: BlockId) -> u32 {
        let b = &self.blocks[block as usize];
        b.next_page - b.valid
    }

    /// Erase count of `block`.
    pub fn block_erase_count(&self, block: BlockId) -> u64 {
        self.blocks[block as usize].erase_count
    }

    /// The LPNs of the valid pages in `block`, with their offsets.
    pub fn block_valid_pages(&self, block: BlockId) -> Vec<(u32, Lpn)> {
        self.blocks[block as usize]
            .pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                PageContent::Valid(lpn) => Some((i as u32, *lpn)),
                _ => None,
            })
            .collect()
    }

    /// Total free (programmable) pages on the die.
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Total valid pages on the die.
    pub fn valid_pages(&self) -> u64 {
        self.valid_pages
    }

    /// (min, max, mean) erase count across blocks — wear-leveling summary.
    pub fn wear(&self) -> (u64, u64, f64) {
        let mut min = u64::MAX;
        let mut max = 0;
        let mut sum = 0u64;
        for b in &self.blocks {
            min = min.min(b.erase_count);
            max = max.max(b.erase_count);
            sum += b.erase_count;
        }
        (min, max, sum as f64 / self.blocks.len() as f64)
    }
}

impl Validate for Nand {
    fn validate(&self, report: &mut Report) {
        let subject = "Nand";
        let mut free_scan = 0u64;
        let mut valid_scan = 0u64;
        let mut erase_scan = 0u64;
        for (id, b) in self.blocks.iter().enumerate() {
            // The per-block valid counter is maintained incrementally by
            // program/invalidate/erase; the page array is ground truth.
            let valid = b
                .pages
                .iter()
                .filter(|p| matches!(p, PageContent::Valid(_)))
                .count() as u32;
            report.check(b.valid == valid, subject, "block-valid-agree", || {
                format!(
                    "block {id}: valid counter {} but {} Valid pages on the medium",
                    b.valid, valid
                )
            });
            // Pages at or past the program frontier are untouched since the
            // last erase — in-order programming never leaves data there.
            let frontier_clean = b.pages[b.next_page as usize..]
                .iter()
                .all(|p| matches!(p, PageContent::Free));
            report.check(frontier_clean, subject, "frontier-free", || {
                format!(
                    "block {id}: programmed page at or past frontier {}",
                    b.next_page
                )
            });
            report.check(
                b.next_page as usize <= b.pages.len(),
                subject,
                "frontier-range",
                || format!("block {id}: frontier {} beyond block", b.next_page),
            );
            free_scan += (b.pages.len() - b.next_page as usize) as u64;
            valid_scan += b.valid as u64;
            erase_scan += b.erase_count;
        }
        report.check(
            self.free_pages == free_scan,
            subject,
            "free-accounting",
            || {
                format!(
                    "free-page counter {} but {} programmable pages behind frontiers",
                    self.free_pages, free_scan
                )
            },
        );
        report.check(
            self.valid_pages == valid_scan,
            subject,
            "valid-accounting",
            || {
                format!(
                    "valid-page counter {} but {} per-block valid pages",
                    self.valid_pages, valid_scan
                )
            },
        );
        // Medium counters can be reset, per-block wear never is, so the
        // erase counter can only lag the cumulative wear.
        report.check(
            self.stats.block_erases <= erase_scan,
            subject,
            "erase-wear-agree",
            || {
                format!(
                    "{} erases counted since reset exceed lifetime wear {}",
                    self.stats.block_erases, erase_scan
                )
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand() -> Nand {
        Nand::new(FlashParams::tiny(4)) // 4 blocks × 4 pages
    }

    #[test]
    fn fresh_die_is_all_free() {
        let n = nand();
        assert_eq!(n.free_pages(), 16);
        assert_eq!(n.valid_pages(), 0);
        assert_eq!(n.page(0), PageContent::Free);
    }

    #[test]
    fn program_read_invalidate_cycle() {
        let mut n = nand();
        let (ppn, t) = n.program(1, 42);
        assert_eq!(ppn, 4); // block 1, offset 0
        assert_eq!(t, n.params().page_write);
        assert_eq!(n.page(ppn), PageContent::Valid(42));
        assert_eq!(n.read(ppn), n.params().page_read);
        n.invalidate(ppn);
        assert_eq!(n.page(ppn), PageContent::Invalid);
        assert_eq!(n.block_invalid(1), 1);
    }

    #[test]
    fn programming_is_in_order() {
        let mut n = nand();
        let (p0, _) = n.program(2, 1);
        let (p1, _) = n.program(2, 2);
        let (p2, _) = n.program(2, 3);
        assert_eq!((p0, p1, p2), (8, 9, 10));
        assert_eq!(n.block_frontier(2), 3);
    }

    #[test]
    #[should_panic(expected = "beyond block")]
    fn program_past_end_panics() {
        let mut n = nand();
        for i in 0..5 {
            n.program(0, i);
        }
    }

    #[test]
    #[should_panic(expected = "non-valid page")]
    fn read_of_free_page_panics() {
        let mut n = nand();
        n.read(0);
    }

    #[test]
    #[should_panic(expected = "valid pages")]
    fn erase_with_valid_pages_panics() {
        let mut n = nand();
        n.program(0, 7);
        n.erase(0);
    }

    #[test]
    fn erase_reclaims_and_counts_wear() {
        let mut n = nand();
        for i in 0..4 {
            let (ppn, _) = n.program(0, i);
            n.invalidate(ppn);
        }
        assert_eq!(n.free_pages(), 12);
        let t = n.erase(0);
        assert_eq!(t, n.params().block_erase);
        assert_eq!(n.free_pages(), 16);
        assert_eq!(n.block_erase_count(0), 1);
        assert_eq!(n.block_frontier(0), 0);
        // Reprogram after erase is legal.
        n.program(0, 99);
    }

    #[test]
    fn valid_page_listing() {
        let mut n = nand();
        let (p0, _) = n.program(3, 10);
        n.program(3, 11);
        n.invalidate(p0);
        assert_eq!(n.block_valid_pages(3), vec![(1, 11)]);
        assert_eq!(n.block_valid(3), 1);
        assert_eq!(n.block_invalid(3), 1);
    }

    #[test]
    fn stats_count_everything() {
        let mut n = nand();
        let (ppn, _) = n.program(0, 5);
        n.read(ppn);
        n.read(ppn);
        n.invalidate(ppn);
        n.erase(0);
        let s = n.stats();
        assert_eq!(s.page_programs, 1);
        assert_eq!(s.page_reads, 2);
        assert_eq!(s.block_erases, 1);
        n.reset_stats();
        assert_eq!(n.stats().page_programs, 0);
        // Wear survives the reset.
        assert_eq!(n.block_erase_count(0), 1);
    }

    #[test]
    fn wear_summary() {
        let mut n = nand();
        n.erase(0);
        n.erase(0);
        n.erase(1);
        let (min, max, mean) = n.wear();
        assert_eq!(min, 0);
        assert_eq!(max, 2);
        assert!((mean - 0.75).abs() < 1e-12);
    }

    #[test]
    fn program_at_skips_forward_and_burns_pages() {
        let mut n = nand();
        let (ppn, _) = n.program_at(0, 2, 9);
        assert_eq!(ppn, 2);
        assert_eq!(n.block_frontier(0), 3);
        // Offsets 0 and 1 were skipped: consumed but still Free.
        assert_eq!(n.free_pages(), 16 - 3);
        assert_eq!(n.page(0), PageContent::Free);
        // Erase restores the full block.
        n.invalidate(ppn);
        n.erase(0);
        assert_eq!(n.free_pages(), 16);
    }

    #[test]
    #[should_panic(expected = "behind its frontier")]
    fn program_at_rejects_backwards() {
        let mut n = nand();
        n.program_at(0, 2, 1);
        n.program_at(0, 1, 2);
    }

    #[test]
    fn locate_roundtrip() {
        let n = nand();
        for ppn in 0..16 {
            let (b, o) = n.locate(ppn);
            assert_eq!(b * 4 + o as u64, ppn);
        }
    }
}
