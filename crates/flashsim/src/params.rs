//! Flash device parameters (the paper's Table III, plus knobs the paper
//! holds fixed).

use simclock::SimDuration;

/// Page size used throughout the paper: 2 KB.
pub const PAPER_PAGE_BYTES: u32 = 2048;

/// Block size used throughout the paper: 64 pages × 2 KB = 128 KB.
pub const PAPER_BLOCK_BYTES: u32 = 128 * 1024;

/// Per-channel in-flash compute-unit parameters: the latency/energy
/// model for near-data postings matching ("Search-in-Memory" style).
///
/// Each flash channel owns one compute unit that can scan pages as they
/// come off the NAND and emit only the matching entries to the host.
/// Scanning parallelizes across channels exactly like page transfers
/// (the scan cost joins the per-page pool divided by `min(channels,
/// pages)`); emitting serializes at the controller, so the per-match
/// cost is charged once per emitted entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeParams {
    /// Time the compute unit spends scanning one page.
    pub per_page_scan: SimDuration,
    /// Time to emit one matching entry through the controller.
    pub per_entry_emit: SimDuration,
    /// Energy to scan one page, in nanojoules.
    pub page_scan_energy_nj: u64,
    /// Energy to emit one matching entry, in nanojoules.
    pub entry_emit_energy_nj: u64,
}

impl ComputeParams {
    /// The reference preset: zero-cost compute. In-flash execution is
    /// then timing-neutral, which is what the Host↔InFlash bit-identity
    /// gate runs under — the arms differ only in bus accounting.
    pub fn reference() -> Self {
        ComputeParams::default()
    }

    /// A plausible active preset for the offload sweeps: a streaming
    /// comparator keeps up with roughly a quarter of the NAND page-read
    /// time per page, each emitted entry costs 50 ns at the controller,
    /// and energy follows published in-storage-scan estimates (order of
    /// 100 nJ per 2 KB page scanned, 1 nJ per entry emitted).
    pub fn active() -> Self {
        ComputeParams {
            per_page_scan: SimDuration::from_micros(8),
            per_entry_emit: SimDuration::from_nanos(50),
            page_scan_energy_nj: 100,
            entry_emit_energy_nj: 1,
        }
    }
}

/// NAND + controller parameters.
#[derive(Debug, Clone)]
pub struct FlashParams {
    /// Bytes per page.
    pub page_bytes: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Physical blocks on the die (including over-provisioned ones).
    pub blocks: u64,
    /// Fraction of physical blocks *not* exported as logical capacity.
    /// 0.07 ≈ the 7 % over-provisioning typical of consumer drives like
    /// the Intel 320 the paper lists.
    pub overprovision: f64,
    /// Page read latency (cell-to-register + transfer).
    pub page_read: SimDuration,
    /// Page program latency.
    pub page_write: SimDuration,
    /// Block erase latency.
    pub block_erase: SimDuration,
    /// Fixed controller overhead added to every host request.
    pub controller_overhead: SimDuration,
    /// Independent flash channels; multi-page host requests are spread
    /// across channels (latency divided by `min(channels, pages)`).
    pub channels: u32,
    /// GC is triggered when free blocks drop to this count, and runs until
    /// it exceeds it.
    pub gc_low_watermark: u64,
    /// Per-channel in-flash compute units. Defaults to
    /// [`ComputeParams::reference`] (zero-cost, timing-neutral).
    pub compute: ComputeParams,
}

impl FlashParams {
    /// The paper's simulated SSD (Table III): page-mapping FTL, 2 KB pages,
    /// 128 KB blocks, read 32.725 µs, write 101.475 µs, erase 1.5 ms.
    /// Capacity is a parameter; the paper's cache experiments use a few GB.
    pub fn paper(logical_bytes: u64) -> Self {
        let overprovision = 0.07;
        let block_bytes = PAPER_BLOCK_BYTES as u64;
        // Enough physical blocks that the logical capacity fits under the
        // over-provisioning reserve.
        let logical_blocks = logical_bytes.div_ceil(block_bytes);
        let blocks =
            ((logical_blocks as f64 / (1.0 - overprovision)).ceil() as u64).max(logical_blocks + 2);
        FlashParams {
            page_bytes: PAPER_PAGE_BYTES,
            pages_per_block: 64,
            blocks,
            overprovision,
            page_read: SimDuration::from_micros_f64(32.725),
            page_write: SimDuration::from_micros_f64(101.475),
            block_erase: SimDuration::from_micros(1500),
            controller_overhead: SimDuration::ZERO,
            channels: 1,
            gc_low_watermark: 2,
            compute: ComputeParams::reference(),
        }
    }

    /// A tiny device for unit tests: `blocks` physical blocks of 4 pages,
    /// fast timing, watermark 1.
    pub fn tiny(blocks: u64) -> Self {
        FlashParams {
            page_bytes: 2048,
            pages_per_block: 4,
            blocks,
            overprovision: 0.25,
            page_read: SimDuration::from_micros(25),
            page_write: SimDuration::from_micros(200),
            block_erase: SimDuration::from_micros(1500),
            controller_overhead: SimDuration::ZERO,
            channels: 1,
            gc_low_watermark: 1,
            compute: ComputeParams::reference(),
        }
    }

    /// Bytes per block.
    pub fn block_bytes(&self) -> u64 {
        self.page_bytes as u64 * self.pages_per_block as u64
    }

    /// Total physical pages.
    pub fn physical_pages(&self) -> u64 {
        self.blocks * self.pages_per_block as u64
    }

    /// Physical capacity in bytes.
    pub fn physical_bytes(&self) -> u64 {
        self.blocks * self.block_bytes()
    }

    /// Logical (host-visible) blocks after the over-provisioning reserve.
    pub fn logical_blocks(&self) -> u64 {
        let reserved = ((self.blocks as f64 * self.overprovision).ceil() as u64)
            .max(self.gc_low_watermark + 1);
        self.blocks.saturating_sub(reserved)
    }

    /// Logical pages exported to the host.
    pub fn logical_pages(&self) -> u64 {
        self.logical_blocks() * self.pages_per_block as u64
    }

    /// Logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_blocks() * self.block_bytes()
    }

    /// Sectors (512 B) per page.
    pub fn sectors_per_page(&self) -> u64 {
        self.page_bytes as u64 / storagecore::SECTOR_SIZE as u64
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_bytes == 0 || self.page_bytes % storagecore::SECTOR_SIZE as u32 != 0 {
            return Err("page size must be a positive multiple of the sector size".into());
        }
        if self.pages_per_block == 0 {
            return Err("pages_per_block must be positive".into());
        }
        if self.blocks < 2 {
            return Err("need at least 2 physical blocks".into());
        }
        if !(0.0..1.0).contains(&self.overprovision) {
            return Err("overprovision must be in [0, 1)".into());
        }
        if self.logical_blocks() == 0 {
            return Err("no logical capacity left after over-provisioning".into());
        }
        if self.channels == 0 {
            return Err("need at least one channel".into());
        }
        if self.gc_low_watermark == 0 {
            return Err("gc_low_watermark must be >= 1".into());
        }
        if self.blocks <= self.gc_low_watermark + self.logical_blocks() {
            return Err("over-provisioning too small for the GC watermark".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_table_iii() {
        let p = FlashParams::paper(2 * 1024 * 1024 * 1024);
        p.validate().unwrap();
        assert_eq!(p.page_bytes, 2048);
        assert_eq!(p.pages_per_block, 64);
        assert_eq!(p.block_bytes(), 128 * 1024);
        assert_eq!(p.page_read.as_nanos(), 32_725);
        assert_eq!(p.page_write.as_nanos(), 101_475);
        assert_eq!(p.block_erase.as_nanos(), 1_500_000);
    }

    #[test]
    fn paper_preset_exports_requested_capacity() {
        let want = 2u64 * 1024 * 1024 * 1024;
        let p = FlashParams::paper(want);
        assert!(
            p.logical_bytes() >= want,
            "logical {} < requested {want}",
            p.logical_bytes()
        );
        // And not wildly more.
        assert!(p.logical_bytes() < want + want / 4);
    }

    #[test]
    fn tiny_preset_is_valid() {
        FlashParams::tiny(8).validate().unwrap();
    }

    #[test]
    fn geometry_arithmetic() {
        let p = FlashParams::tiny(8);
        assert_eq!(p.block_bytes(), 8192);
        assert_eq!(p.physical_pages(), 32);
        assert_eq!(p.physical_bytes(), 64 * 1024);
        assert_eq!(p.sectors_per_page(), 4);
        // 25% OP on 8 blocks reserves 2; watermark floor is also satisfied.
        assert_eq!(p.logical_blocks(), 6);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut p = FlashParams::tiny(8);
        p.page_bytes = 100;
        assert!(p.validate().is_err());

        // Zero OP is tolerated: logical_blocks() floors the reserve at
        // watermark + 1. Full OP is not.
        let mut p = FlashParams::tiny(8);
        p.overprovision = 0.0;
        assert!(p.validate().is_ok());
        p.overprovision = 1.0;
        assert!(p.validate().is_err());

        let mut p = FlashParams::tiny(8);
        p.channels = 0;
        assert!(p.validate().is_err());

        let mut p = FlashParams::tiny(1);
        p.blocks = 1;
        assert!(p.validate().is_err());
    }
}
