//! Sector-level adapter: an FTL behind the [`BlockDevice`] interface.

use simclock::SimDuration;
use storagecore::{BlockDevice, Extent, Geometry, IoError, IoKind, IoStats};

use crate::ftl::{Ftl, FtlError, PageMapFtl};
use crate::params::FlashParams;

/// A complete SSD: an FTL exposed as a sector-addressed block device.
///
/// Sector extents are widened to whole flash pages (a partial-page read
/// touches the whole page, as on real hardware). Multi-page requests are
/// spread over the configured channel count: the pure page latencies
/// divide by `min(channels, pages)` while GC work (already folded into the
/// per-page costs by the FTL) is preserved — a deliberate, documented
/// approximation.
#[derive(Debug, Clone)]
pub struct SsdDisk<F = PageMapFtl> {
    ftl: F,
    geometry: Geometry,
    stats: IoStats,
    /// Whether the most recent request triggered a NAND erase (GC or
    /// host trim): such work serializes the package, so the I/O pipeline
    /// must treat the request as a barrier across all channels.
    last_barrier: bool,
}

impl SsdDisk<PageMapFtl> {
    /// The paper's SSD: page-mapped FTL with Table III timing and the
    /// requested logical capacity.
    pub fn paper(logical_bytes: u64) -> Self {
        Self::with_ftl(PageMapFtl::new(FlashParams::paper(logical_bytes)))
    }

    /// The paper's SSD with a wider channel count — the knob the queued
    /// I/O path uses to overlap independent page operations.
    pub fn paper_channels(logical_bytes: u64, channels: u32) -> Self {
        let mut params = FlashParams::paper(logical_bytes);
        params.channels = channels;
        Self::with_ftl(PageMapFtl::new(params))
    }
}

impl<F: Ftl> SsdDisk<F> {
    /// Wrap an FTL.
    pub fn with_ftl(ftl: F) -> Self {
        let sectors = ftl.logical_pages() * ftl.params().sectors_per_page();
        SsdDisk {
            geometry: Geometry {
                sector_size: storagecore::SECTOR_SIZE as u32,
                sectors,
            },
            ftl,
            stats: IoStats::new(),
            last_barrier: false,
        }
    }

    /// The FTL, for scheme-specific statistics.
    pub fn ftl(&self) -> &F {
        &self.ftl
    }

    /// Mutable FTL access.
    pub fn ftl_mut(&mut self) -> &mut F {
        &mut self.ftl
    }

    /// Logical pages spanned by a sector extent.
    fn page_range(&self, extent: Extent) -> (u64, u64) {
        let spp = self.ftl.params().sectors_per_page();
        let first = extent.lba / spp;
        let last = (extent.end() - 1) / spp;
        (first, last + 1)
    }

    fn run<OP>(&mut self, kind: IoKind, extent: Extent, mut op: OP) -> Result<SimDuration, IoError>
    where
        OP: FnMut(&mut F, u64) -> Result<SimDuration, FtlError>,
    {
        self.check(extent)?;
        let (first, end) = self.page_range(extent);
        let pages = end - first;
        let erases_before = self.ftl.nand().stats().block_erases;
        let mut total = SimDuration::ZERO;
        for lpn in first..end {
            total += op(&mut self.ftl, lpn).map_err(|e| match e {
                FtlError::OutOfRange(_) => IoError::OutOfRange {
                    extent,
                    sectors: self.geometry.sectors,
                },
                FtlError::DeviceFull => IoError::DeviceFull,
            })?;
        }
        self.last_barrier = self.ftl.nand().stats().block_erases > erases_before;
        let lanes = (self.ftl.params().channels as u64).min(pages).max(1);
        let latency = total / lanes;
        self.stats.record(kind, extent.sectors, latency);
        Ok(latency)
    }
}

impl<F: Ftl> BlockDevice for SsdDisk<F> {
    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read(&mut self, extent: Extent) -> Result<SimDuration, IoError> {
        self.run(IoKind::Read, extent, |ftl, lpn| ftl.read(lpn))
    }

    fn write(&mut self, extent: Extent) -> Result<SimDuration, IoError> {
        self.run(IoKind::Write, extent, |ftl, lpn| ftl.write(lpn))
    }

    fn trim(&mut self, extent: Extent) -> Result<SimDuration, IoError> {
        // Only trim pages *fully* covered by the extent — trimming a
        // partially-covered page would discard live neighbouring sectors.
        self.check(extent)?;
        let spp = self.ftl.params().sectors_per_page();
        let first = extent.lba.div_ceil(spp);
        let end = extent.end() / spp;
        let erases_before = self.ftl.nand().stats().block_erases;
        let mut total = SimDuration::ZERO;
        for lpn in first..end {
            total += self.ftl.trim(lpn).map_err(|_| IoError::DeviceFull)?;
        }
        self.last_barrier = self.ftl.nand().stats().block_erases > erases_before;
        self.stats.record(IoKind::Trim, extent.sectors, total);
        Ok(total)
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.ftl.reset_stats();
    }

    fn lanes(&self) -> u32 {
        self.ftl.params().channels.max(1)
    }

    /// Page-interleaved channel striping: a request entirely within one
    /// channel's stripe reports that lane; a request spanning at least a
    /// full stripe width occupies every channel (`None`). Requests
    /// touching a few pages across channels are approximated by their
    /// first page's lane — exact per-lane splitting is below the fidelity
    /// of the single-latency request model.
    fn lane_of(&self, extent: Extent) -> Option<u32> {
        let channels = self.ftl.params().channels.max(1);
        if channels == 1 || extent.sectors == 0 {
            return Some(0);
        }
        let (first, end) = self.page_range(extent);
        if end - first >= channels as u64 {
            None
        } else {
            Some((first % channels as u64) as u32)
        }
    }

    fn last_op_barrier(&self) -> bool {
        self.last_barrier
    }
}

impl<F: invariant::Validate> invariant::Validate for SsdDisk<F> {
    fn validate(&self, report: &mut invariant::Report) {
        self.ftl.validate(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftl::{BlockMapFtl, Dftl, FastFtl};

    fn ssd() -> SsdDisk {
        SsdDisk::with_ftl(PageMapFtl::new(FlashParams::tiny(8)))
    }

    #[test]
    fn geometry_matches_logical_capacity() {
        let d = ssd();
        // 6 logical blocks × 4 pages × 4 sectors.
        assert_eq!(d.geometry().sectors, 96);
    }

    #[test]
    fn single_sector_read_touches_whole_page() {
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap(); // one full page
        let t = d.read(Extent::new(1, 1)).unwrap();
        assert_eq!(t, d.ftl().params().page_read);
        assert_eq!(d.ftl().nand().stats().page_reads, 1);
    }

    #[test]
    fn unaligned_extent_spans_two_pages() {
        let mut d = ssd();
        // Sectors 2..6 straddle pages 0 and 1.
        let t = d.write(Extent::new(2, 4)).unwrap();
        assert_eq!(t, d.ftl().params().page_write * 2);
        assert_eq!(d.ftl().nand().stats().page_programs, 2);
    }

    #[test]
    fn paper_ssd_block_write_programs_64_pages() {
        let mut d = SsdDisk::paper(16 * 1024 * 1024);
        // One 128 KB block = 256 sectors = 64 pages.
        let t = d.write(Extent::new(0, 256)).unwrap();
        assert_eq!(d.ftl().nand().stats().page_programs, 64);
        assert_eq!(t, d.ftl().params().page_write * 64);
    }

    #[test]
    fn channels_divide_multi_page_latency() {
        let mut params = FlashParams::tiny(8);
        params.channels = 4;
        let mut d = SsdDisk::with_ftl(PageMapFtl::new(params));
        // 4 pages over 4 channels: one page-time total.
        let t = d.write(Extent::new(0, 16)).unwrap();
        assert_eq!(t, d.ftl().params().page_write);
        // A single-page request cannot go faster than one page.
        let t1 = d.read(Extent::new(0, 1)).unwrap();
        assert_eq!(t1, d.ftl().params().page_read);
    }

    #[test]
    fn lane_mapping_interleaves_pages_across_channels() {
        let mut params = FlashParams::tiny(8);
        params.channels = 2;
        let d = SsdDisk::with_ftl(PageMapFtl::new(params));
        assert_eq!(d.lanes(), 2);
        assert_eq!(d.lane_of(Extent::new(0, 4)), Some(0)); // page 0
        assert_eq!(d.lane_of(Extent::new(4, 4)), Some(1)); // page 1
        assert_eq!(d.lane_of(Extent::new(8, 4)), Some(0)); // page 2
        assert_eq!(d.lane_of(Extent::new(0, 8)), None); // full stripe
                                                        // Single-channel devices always report lane 0.
        let d1 = ssd();
        assert_eq!(d1.lanes(), 1);
        assert_eq!(d1.lane_of(Extent::new(4, 4)), Some(0));
    }

    #[test]
    fn queued_reads_overlap_on_distinct_channels() {
        use storagecore::{IoPath, PipelinedDevice};
        let mut params = FlashParams::tiny(8);
        params.channels = 2;
        let mut d = PipelinedDevice::direct(SsdDisk::with_ftl(PageMapFtl::new(params)));
        d.write(Extent::new(0, 16)).unwrap(); // prime pages 0..4
        d.set_path(IoPath::Queued { depth: 2 });
        let a = d.submit_read(Extent::new(0, 4)).unwrap(); // page 0 → lane 0
        let b = d.submit_read(Extent::new(4, 4)).unwrap(); // page 1 → lane 1
        let ca = d.wait(a).unwrap();
        let cb = d.wait(b).unwrap();
        assert_eq!(ca.wait(), SimDuration::ZERO);
        assert_eq!(cb.wait(), SimDuration::ZERO, "distinct channels overlap");
        // Pages 0 and 2 share lane 0: the second read queues behind the
        // first (and behind lane 0's earlier completion).
        let c = d.submit_read(Extent::new(0, 4)).unwrap();
        let e = d.submit_read(Extent::new(8, 4)).unwrap();
        let (cc, ce) = (d.wait(c).unwrap(), d.wait(e).unwrap());
        assert!(ce.start_at > cc.start_at, "same lane serializes");
        assert_eq!(ce.start_at, cc.finish_at);
    }

    #[test]
    fn gc_erase_flags_a_barrier() {
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap();
        assert!(!d.last_op_barrier());
        let mut saw_barrier = false;
        for _ in 0..2000 {
            d.write(Extent::new(0, 4)).unwrap();
            if d.ftl().nand().stats().block_erases > 0 {
                saw_barrier = d.last_op_barrier();
                break;
            }
        }
        assert!(saw_barrier, "GC erase must surface as a pipeline barrier");
    }

    #[test]
    fn trim_only_covers_whole_pages() {
        let mut d = ssd();
        d.write(Extent::new(0, 8)).unwrap(); // pages 0 and 1
                                             // Trim sectors 1..7: only page... none fully covered? sectors 1-6.
                                             // Page 0 = sectors 0-3 (not fully covered), page 1 = 4-7 (missing 7).
        d.trim(Extent::new(1, 6)).unwrap();
        assert_eq!(d.ftl().stats().host_trims, 0);
        // Trim sectors 0..8 covers both pages.
        d.trim(Extent::new(0, 8)).unwrap();
        assert_eq!(d.ftl().stats().host_trims, 2);
    }

    #[test]
    fn out_of_range_is_io_error() {
        let mut d = ssd();
        let sectors = d.geometry().sectors;
        assert!(matches!(
            d.read(Extent::new(sectors, 1)),
            Err(IoError::OutOfRange { .. })
        ));
    }

    #[test]
    fn works_with_every_ftl_scheme() {
        fn exercise<F: Ftl>(mut d: SsdDisk<F>) {
            let sectors = d.geometry().sectors;
            d.write(Extent::new(0, 8)).unwrap();
            d.read(Extent::new(0, 8)).unwrap();
            d.write(Extent::new(sectors - 8, 8)).unwrap();
            assert_eq!(d.stats().ops(IoKind::Write), 2);
        }
        exercise(SsdDisk::with_ftl(PageMapFtl::new(FlashParams::tiny(8))));
        exercise(SsdDisk::with_ftl(BlockMapFtl::new(FlashParams::tiny(8))));
        exercise(SsdDisk::with_ftl(FastFtl::new(FlashParams::tiny(12))));
        exercise(SsdDisk::with_ftl(Dftl::new(FlashParams::tiny(16), 64)));
    }

    #[test]
    fn stats_reset_cascades_to_ftl() {
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap();
        d.reset_stats();
        assert_eq!(d.stats().total_ops(), 0);
        assert_eq!(d.ftl().stats().host_writes, 0);
        assert_eq!(d.ftl().nand().stats().page_programs, 0);
    }
}
