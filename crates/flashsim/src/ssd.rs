//! Sector-level adapter: an FTL behind the [`BlockDevice`] interface.

use simclock::SimDuration;
use storagecore::{
    BlockDevice, Extent, Geometry, IoError, IoKind, IoRequest, IoStats, OffloadDescriptor,
    OFFLOAD_DESCRIPTOR_BYTES,
};

use crate::ftl::{Ftl, FtlError, PageMapFtl};
use crate::params::FlashParams;

/// Cumulative in-flash compute-unit accounting for one [`SsdDisk`].
///
/// The device-side view of the offload path: how much work the
/// per-channel compute units did and what it cost in energy under the
/// configured [`crate::ComputeParams`]. The host-side bus view lives in
/// [`IoStats::bus`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeStats {
    /// Offload-carrying reads serviced.
    pub offload_ops: u64,
    /// Pages streamed through the compute units.
    pub pages_scanned: u64,
    /// Matching entries emitted to the host.
    pub entries_emitted: u64,
    /// Energy spent scanning, in nanojoules.
    pub scan_energy_nj: u64,
    /// Energy spent emitting matches, in nanojoules.
    pub emit_energy_nj: u64,
}

/// A complete SSD: an FTL exposed as a sector-addressed block device.
///
/// Sector extents are widened to whole flash pages (a partial-page read
/// touches the whole page, as on real hardware). Multi-page requests are
/// spread over the configured channel count: the pure page latencies
/// divide by `min(channels, pages)` while GC work (already folded into the
/// per-page costs by the FTL) is preserved — a deliberate, documented
/// approximation.
#[derive(Debug, Clone)]
pub struct SsdDisk<F = PageMapFtl> {
    ftl: F,
    geometry: Geometry,
    stats: IoStats,
    compute: ComputeStats,
    /// Whether the most recent request triggered a NAND erase (GC or
    /// host trim): such work serializes the package, so the I/O pipeline
    /// must treat the request as a barrier across all channels.
    last_barrier: bool,
}

impl SsdDisk<PageMapFtl> {
    /// The paper's SSD: page-mapped FTL with Table III timing and the
    /// requested logical capacity.
    pub fn paper(logical_bytes: u64) -> Self {
        Self::with_ftl(PageMapFtl::new(FlashParams::paper(logical_bytes)))
    }

    /// The paper's SSD with a wider channel count — the knob the queued
    /// I/O path uses to overlap independent page operations.
    pub fn paper_channels(logical_bytes: u64, channels: u32) -> Self {
        let mut params = FlashParams::paper(logical_bytes);
        params.channels = channels;
        Self::with_ftl(PageMapFtl::new(params))
    }
}

impl<F: Ftl> SsdDisk<F> {
    /// Wrap an FTL.
    pub fn with_ftl(ftl: F) -> Self {
        let sectors = ftl.logical_pages() * ftl.params().sectors_per_page();
        SsdDisk {
            geometry: Geometry {
                sector_size: storagecore::SECTOR_SIZE as u32,
                sectors,
            },
            ftl,
            stats: IoStats::new(),
            compute: ComputeStats::default(),
            last_barrier: false,
        }
    }

    /// The FTL, for scheme-specific statistics.
    pub fn ftl(&self) -> &F {
        &self.ftl
    }

    /// Mutable FTL access.
    pub fn ftl_mut(&mut self) -> &mut F {
        &mut self.ftl
    }

    /// In-flash compute-unit accounting.
    pub fn compute_stats(&self) -> &ComputeStats {
        &self.compute
    }

    /// Test-only corruption hook: inflate the emitted-entry counter past
    /// what the compute units scanned, so the `emitted-within-scanned`
    /// validator provably fires.
    #[doc(hidden)]
    pub fn debug_corrupt_emitted_entries(&mut self, extra: u64) {
        self.compute.entries_emitted += extra;
    }

    /// Test-only mutable stats access, for seeding ledger corruption.
    #[doc(hidden)]
    pub fn debug_stats_mut(&mut self) -> &mut IoStats {
        &mut self.stats
    }

    /// Logical pages spanned by a sector extent.
    fn page_range(&self, extent: Extent) -> (u64, u64) {
        let spp = self.ftl.params().sectors_per_page();
        let first = extent.lba / spp;
        let last = (extent.end() - 1) / spp;
        (first, last + 1)
    }

    /// The per-page NAND op loop shared by every request shape: plain
    /// reads/writes and offload reads drive the FTL through this one
    /// path, so their NAND counters, GC triggers and barrier detection
    /// are identical by construction. Returns the page count and the
    /// summed per-page latency (pre channel division).
    fn execute<OP>(&mut self, extent: Extent, mut op: OP) -> Result<(u64, SimDuration), IoError>
    where
        OP: FnMut(&mut F, u64) -> Result<SimDuration, FtlError>,
    {
        self.check(extent)?;
        let (first, end) = self.page_range(extent);
        let pages = end - first;
        let erases_before = self.ftl.nand().stats().block_erases;
        let mut total = SimDuration::ZERO;
        for lpn in first..end {
            total += op(&mut self.ftl, lpn).map_err(|e| match e {
                FtlError::OutOfRange(_) => IoError::OutOfRange {
                    extent,
                    sectors: self.geometry.sectors,
                },
                FtlError::DeviceFull => IoError::DeviceFull,
            })?;
        }
        self.last_barrier = self.ftl.nand().stats().block_erases > erases_before;
        Ok((pages, total))
    }

    fn run<OP>(&mut self, kind: IoKind, extent: Extent, op: OP) -> Result<SimDuration, IoError>
    where
        OP: FnMut(&mut F, u64) -> Result<SimDuration, FtlError>,
    {
        let (pages, total) = self.execute(extent, op)?;
        if kind == IoKind::Read {
            // A plain read moves every touched page across the bus.
            self.stats
                .record_bus_read(pages * self.ftl.params().page_bytes as u64);
        }
        let lanes = (self.ftl.params().channels as u64).min(pages).max(1);
        let latency = total / lanes;
        self.stats.record(kind, extent.sectors, latency);
        Ok(latency)
    }

    /// Service a read whose matching runs in the per-channel compute
    /// units: the NAND work is exactly a plain read's (same FTL path,
    /// same GC, same barrier detection), the scan cost joins the
    /// channel-parallel pool, and only the descriptor plus the matching
    /// entries cross the bus. Under [`crate::ComputeParams::reference`]
    /// the charged latency is bit-identical to a plain read of the same
    /// extent.
    fn offload_read(
        &mut self,
        extent: Extent,
        desc: &OffloadDescriptor,
    ) -> Result<SimDuration, IoError> {
        let (pages, total) = self.execute(extent, |ftl, lpn| ftl.read(lpn))?;
        let params = self.ftl.params();
        let compute = params.compute;
        let page_bytes = params.page_bytes as u64;
        let channels = params.channels as u64;
        let lanes = channels.min(pages).max(1);
        let scan = compute.per_page_scan * pages;
        let emit = compute.per_entry_emit * desc.emit_entries as u64;
        let latency = (total + scan) / lanes + emit;
        self.compute.offload_ops += 1;
        self.compute.pages_scanned += pages;
        self.compute.entries_emitted += desc.emit_entries as u64;
        self.compute.scan_energy_nj += compute.page_scan_energy_nj * pages;
        self.compute.emit_energy_nj += compute.entry_emit_energy_nj * desc.emit_entries as u64;
        self.stats.record_bus_offload(
            desc.scan_entries as u64,
            desc.emit_entries as u64,
            pages * page_bytes,
            OFFLOAD_DESCRIPTOR_BYTES,
            desc.emitted_bytes(),
        );
        self.stats.record(IoKind::Read, extent.sectors, latency);
        Ok(latency)
    }
}

impl<F: Ftl> BlockDevice for SsdDisk<F> {
    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read(&mut self, extent: Extent) -> Result<SimDuration, IoError> {
        self.run(IoKind::Read, extent, |ftl, lpn| ftl.read(lpn))
    }

    fn write(&mut self, extent: Extent) -> Result<SimDuration, IoError> {
        self.run(IoKind::Write, extent, |ftl, lpn| ftl.write(lpn))
    }

    fn trim(&mut self, extent: Extent) -> Result<SimDuration, IoError> {
        // Only trim pages *fully* covered by the extent — trimming a
        // partially-covered page would discard live neighbouring sectors.
        self.check(extent)?;
        let spp = self.ftl.params().sectors_per_page();
        let first = extent.lba.div_ceil(spp);
        let end = extent.end() / spp;
        let erases_before = self.ftl.nand().stats().block_erases;
        let mut total = SimDuration::ZERO;
        for lpn in first..end {
            total += self.ftl.trim(lpn).map_err(|_| IoError::DeviceFull)?;
        }
        self.last_barrier = self.ftl.nand().stats().block_erases > erases_before;
        self.stats.record(IoKind::Trim, extent.sectors, total);
        Ok(total)
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.compute = ComputeStats::default();
        self.ftl.reset_stats();
    }

    fn request(&mut self, req: &IoRequest) -> Result<SimDuration, IoError> {
        match (req.kind, req.offload.as_ref()) {
            (IoKind::Read, Some(desc)) => self.offload_read(req.extent, desc),
            _ => match req.kind {
                IoKind::Read => self.read(req.extent),
                IoKind::Write => self.write(req.extent),
                IoKind::Trim => self.trim(req.extent),
            },
        }
    }

    fn supports_offload(&self) -> bool {
        true
    }

    fn offload_page_bytes(&self) -> u64 {
        self.ftl.params().page_bytes as u64
    }

    fn lanes(&self) -> u32 {
        self.ftl.params().channels.max(1)
    }

    /// Page-interleaved channel striping: a request entirely within one
    /// page reports that page's lane; any request spanning more than one
    /// page occupies every channel (`None`). The multi-page answer is a
    /// deliberate conservative approximation — pages interleave across
    /// channels, so a 2-page request on a 4-channel device really
    /// occupies exactly 2 lanes, but the single-latency request model
    /// has no way to book partial-stripe occupancy per lane. Reporting
    /// `None` serializes such a request against the whole package
    /// (pessimistic for queue overlap) rather than against one
    /// first-page lane that the request's tail does not actually use
    /// (which was both optimistic for the first lane and wrong for the
    /// others).
    fn lane_of(&self, extent: Extent) -> Option<u32> {
        let channels = self.ftl.params().channels.max(1);
        if channels == 1 || extent.sectors == 0 {
            return Some(0);
        }
        let (first, end) = self.page_range(extent);
        if end - first > 1 {
            None
        } else {
            Some((first % channels as u64) as u32)
        }
    }

    fn last_op_barrier(&self) -> bool {
        self.last_barrier
    }
}

impl<F: Ftl + invariant::Validate> invariant::Validate for SsdDisk<F> {
    fn validate(&self, report: &mut invariant::Report) {
        self.ftl.validate(report);
        let subject = "SsdDisk";
        let bus = self.stats.bus();
        // The compute units can only emit entries they scanned.
        report.check(
            bus.offload_emitted_entries() <= bus.offload_scanned_entries(),
            subject,
            "emitted-within-scanned",
            || {
                format!(
                    "{} entries emitted from {} scanned",
                    bus.offload_emitted_entries(),
                    bus.offload_scanned_entries()
                )
            },
        );
        // Bus-byte conservation: what the offloads saved is exactly the
        // on-device page bytes minus what still crossed (descriptors down,
        // matches back). Both sides are linear sums, so the identity holds
        // for the accumulators iff it held for every request.
        let crossed = (bus.offload_descriptor_bytes() + bus.offload_emitted_bytes()) as i64;
        report.check(
            bus.saved_bytes() == bus.offload_scanned_bytes() as i64 - crossed,
            subject,
            "bus-conservation",
            || {
                format!(
                    "saved {} != scanned {} - crossed {}",
                    bus.saved_bytes(),
                    bus.offload_scanned_bytes(),
                    crossed
                )
            },
        );
        // The device-side compute view and the host-side bus view count
        // the same offloads.
        let page_bytes = self.ftl.params().page_bytes as u64;
        report.check(
            self.compute.offload_ops == bus.offload_ops()
                && self.compute.entries_emitted == bus.offload_emitted_entries()
                && self.compute.pages_scanned * page_bytes == bus.offload_scanned_bytes(),
            subject,
            "compute-bus-agree",
            || {
                format!(
                    "compute {{ops {}, emitted {}, pages {}}} vs bus {{ops {}, emitted {}, scanned bytes {}}}",
                    self.compute.offload_ops,
                    self.compute.entries_emitted,
                    self.compute.pages_scanned,
                    bus.offload_ops(),
                    bus.offload_emitted_entries(),
                    bus.offload_scanned_bytes()
                )
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftl::{BlockMapFtl, Dftl, FastFtl};

    fn ssd() -> SsdDisk {
        SsdDisk::with_ftl(PageMapFtl::new(FlashParams::tiny(8)))
    }

    #[test]
    fn geometry_matches_logical_capacity() {
        let d = ssd();
        // 6 logical blocks × 4 pages × 4 sectors.
        assert_eq!(d.geometry().sectors, 96);
    }

    #[test]
    fn single_sector_read_touches_whole_page() {
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap(); // one full page
        let t = d.read(Extent::new(1, 1)).unwrap();
        assert_eq!(t, d.ftl().params().page_read);
        assert_eq!(d.ftl().nand().stats().page_reads, 1);
    }

    #[test]
    fn unaligned_extent_spans_two_pages() {
        let mut d = ssd();
        // Sectors 2..6 straddle pages 0 and 1.
        let t = d.write(Extent::new(2, 4)).unwrap();
        assert_eq!(t, d.ftl().params().page_write * 2);
        assert_eq!(d.ftl().nand().stats().page_programs, 2);
    }

    #[test]
    fn paper_ssd_block_write_programs_64_pages() {
        let mut d = SsdDisk::paper(16 * 1024 * 1024);
        // One 128 KB block = 256 sectors = 64 pages.
        let t = d.write(Extent::new(0, 256)).unwrap();
        assert_eq!(d.ftl().nand().stats().page_programs, 64);
        assert_eq!(t, d.ftl().params().page_write * 64);
    }

    #[test]
    fn channels_divide_multi_page_latency() {
        let mut params = FlashParams::tiny(8);
        params.channels = 4;
        let mut d = SsdDisk::with_ftl(PageMapFtl::new(params));
        // 4 pages over 4 channels: one page-time total.
        let t = d.write(Extent::new(0, 16)).unwrap();
        assert_eq!(t, d.ftl().params().page_write);
        // A single-page request cannot go faster than one page.
        let t1 = d.read(Extent::new(0, 1)).unwrap();
        assert_eq!(t1, d.ftl().params().page_read);
    }

    #[test]
    fn lane_mapping_interleaves_pages_across_channels() {
        let mut params = FlashParams::tiny(8);
        params.channels = 2;
        let d = SsdDisk::with_ftl(PageMapFtl::new(params));
        assert_eq!(d.lanes(), 2);
        assert_eq!(d.lane_of(Extent::new(0, 4)), Some(0)); // page 0
        assert_eq!(d.lane_of(Extent::new(4, 4)), Some(1)); // page 1
        assert_eq!(d.lane_of(Extent::new(8, 4)), Some(0)); // page 2
        assert_eq!(d.lane_of(Extent::new(0, 8)), None); // full stripe
                                                        // Single-channel devices always report lane 0.
        let d1 = ssd();
        assert_eq!(d1.lanes(), 1);
        assert_eq!(d1.lane_of(Extent::new(4, 4)), Some(0));
    }

    #[test]
    fn lane_of_single_page_extents_report_their_channel() {
        let mut params = FlashParams::tiny(8);
        params.channels = 4;
        let d = SsdDisk::with_ftl(PageMapFtl::new(params));
        // Aligned, unaligned and sub-page extents inside one page all
        // land on that page's interleaved channel.
        assert_eq!(d.lane_of(Extent::new(0, 4)), Some(0));
        assert_eq!(d.lane_of(Extent::new(5, 2)), Some(1)); // inside page 1
        assert_eq!(d.lane_of(Extent::new(9, 1)), Some(2)); // inside page 2
        assert_eq!(d.lane_of(Extent::new(16, 4)), Some(0)); // page 4 wraps
    }

    #[test]
    fn lane_of_partial_stripe_occupies_all_lanes() {
        // A 2-page extent on a 4-channel device touches exactly 2 lanes;
        // the model cannot book partial-stripe occupancy, so it answers
        // `None` (conservative: serializes against the whole package)
        // instead of the old first-page approximation which booked only
        // lane 0 and left lane 1's real work invisible.
        let mut params = FlashParams::tiny(8);
        params.channels = 4;
        let d = SsdDisk::with_ftl(PageMapFtl::new(params));
        assert_eq!(d.lane_of(Extent::new(0, 8)), None); // pages 0-1
        assert_eq!(d.lane_of(Extent::new(2, 4)), None); // straddles 0-1
        assert_eq!(d.lane_of(Extent::new(4, 12)), None); // pages 1-3
    }

    #[test]
    fn lane_of_full_stripe_occupies_all_lanes() {
        let mut params = FlashParams::tiny(8);
        params.channels = 2;
        let d = SsdDisk::with_ftl(PageMapFtl::new(params));
        assert_eq!(d.lane_of(Extent::new(0, 8)), None); // exactly one stripe
        assert_eq!(d.lane_of(Extent::new(0, 16)), None); // two stripes
    }

    #[test]
    fn queued_reads_overlap_on_distinct_channels() {
        use storagecore::{IoPath, PipelinedDevice};
        let mut params = FlashParams::tiny(8);
        params.channels = 2;
        let mut d = PipelinedDevice::direct(SsdDisk::with_ftl(PageMapFtl::new(params)));
        d.write(Extent::new(0, 16)).unwrap(); // prime pages 0..4
        d.set_path(IoPath::Queued { depth: 2 });
        let a = d.submit_read(Extent::new(0, 4)).unwrap(); // page 0 → lane 0
        let b = d.submit_read(Extent::new(4, 4)).unwrap(); // page 1 → lane 1
        let ca = d.wait(a).unwrap();
        let cb = d.wait(b).unwrap();
        assert_eq!(ca.wait(), SimDuration::ZERO);
        assert_eq!(cb.wait(), SimDuration::ZERO, "distinct channels overlap");
        // Pages 0 and 2 share lane 0: the second read queues behind the
        // first (and behind lane 0's earlier completion).
        let c = d.submit_read(Extent::new(0, 4)).unwrap();
        let e = d.submit_read(Extent::new(8, 4)).unwrap();
        let (cc, ce) = (d.wait(c).unwrap(), d.wait(e).unwrap());
        assert!(ce.start_at > cc.start_at, "same lane serializes");
        assert_eq!(ce.start_at, cc.finish_at);
    }

    #[test]
    fn offload_read_is_timing_neutral_under_reference_compute() {
        use invariant::Validate;
        let mut host = ssd();
        let mut offl = ssd();
        for d in [&mut host, &mut offl] {
            d.write(Extent::new(0, 8)).unwrap(); // pages 0-1
        }
        let desc = OffloadDescriptor::new(0, 1000, 0, 8).with_counts(512, 16);
        let th = host.read(Extent::new(0, 8)).unwrap();
        let to = offl
            .request(&IoRequest::read(Extent::new(0, 8)).with_offload(desc))
            .unwrap();
        assert_eq!(th, to, "reference compute is timing-neutral");
        assert_eq!(
            host.ftl().nand().stats(),
            offl.ftl().nand().stats(),
            "identical NAND work"
        );
        assert_eq!(
            host.stats().kind(IoKind::Read),
            offl.stats().kind(IoKind::Read),
            "identical kind accounting"
        );
        // Only the bus ledger differs: the host arm moved both pages,
        // the offload arm moved a descriptor plus 16 x 8-byte matches.
        assert_eq!(host.stats().bus().read_page_bytes(), 4096);
        assert_eq!(host.stats().bus().offload_ops(), 0);
        assert_eq!(offl.stats().bus().read_page_bytes(), 0);
        assert_eq!(offl.stats().bus().offload_ops(), 1);
        assert_eq!(offl.stats().bus().offload_scanned_bytes(), 4096);
        assert_eq!(offl.stats().bus().offload_descriptor_bytes(), 24);
        assert_eq!(offl.stats().bus().offload_emitted_bytes(), 128);
        assert_eq!(offl.stats().bus().saved_bytes(), 4096 - 24 - 128);
        assert_eq!(offl.compute_stats().offload_ops, 1);
        assert_eq!(offl.compute_stats().pages_scanned, 2);
        assert_eq!(offl.compute_stats().entries_emitted, 16);
        let report = offl.validation_report();
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn active_compute_charges_scan_and_emit() {
        let mut params = FlashParams::tiny(8);
        params.channels = 2;
        params.compute = crate::params::ComputeParams {
            per_page_scan: SimDuration::from_micros(8),
            per_entry_emit: SimDuration::from_nanos(50),
            page_scan_energy_nj: 100,
            entry_emit_energy_nj: 1,
        };
        let mut d = SsdDisk::with_ftl(PageMapFtl::new(params));
        d.write(Extent::new(0, 8)).unwrap(); // pages 0-1
        let desc = OffloadDescriptor::new(0, 1000, 0, 8).with_counts(512, 10);
        let t = d
            .request(&IoRequest::read(Extent::new(0, 8)).with_offload(desc))
            .unwrap();
        // (2 x 25us read + 2 x 8us scan) / 2 lanes + 10 x 50ns emit.
        assert_eq!(
            t,
            SimDuration::from_nanos((2 * 25_000 + 2 * 8_000) / 2 + 10 * 50)
        );
        assert_eq!(d.compute_stats().scan_energy_nj, 200);
        assert_eq!(d.compute_stats().emit_energy_nj, 10);
    }

    #[test]
    fn plain_request_ignores_no_descriptor_and_writes_never_offload() {
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap();
        // A descriptor on a write is ignored: the default kind dispatch
        // services it as a plain write.
        let desc = OffloadDescriptor::new(0, 10, 0, 8);
        d.request(&IoRequest::write(Extent::new(0, 4)).with_offload(desc))
            .unwrap();
        assert_eq!(d.stats().bus().offload_ops(), 0);
        assert!(d.supports_offload());
        assert_eq!(d.offload_page_bytes(), 2048);
    }

    #[test]
    fn corrupted_emitted_counter_trips_the_validator() {
        use invariant::Validate;
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap();
        let desc = OffloadDescriptor::new(0, 100, 0, 8).with_counts(256, 4);
        d.request(&IoRequest::read(Extent::new(0, 4)).with_offload(desc))
            .unwrap();
        assert!(d.validation_report().is_clean());
        // Claim the compute units emitted more than the bus ledger saw.
        d.debug_corrupt_emitted_entries(1_000_000);
        let report = d.validation_report();
        let hit: Vec<_> = report.violations().iter().map(|v| v.invariant).collect();
        assert!(hit.contains(&"compute-bus-agree"), "{}", report.summary());
    }

    #[test]
    fn corrupted_bus_ledger_trips_conservation() {
        use invariant::Validate;
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap();
        let desc = OffloadDescriptor::new(0, 100, 0, 8).with_counts(256, 4);
        d.request(&IoRequest::read(Extent::new(0, 4)).with_offload(desc))
            .unwrap();
        d.debug_stats_mut().debug_corrupt_bus_saved(512);
        let report = d.validation_report();
        let hit: Vec<_> = report.violations().iter().map(|v| v.invariant).collect();
        assert!(hit.contains(&"bus-conservation"), "{}", report.summary());
    }

    #[test]
    fn gc_erase_flags_a_barrier() {
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap();
        assert!(!d.last_op_barrier());
        let mut saw_barrier = false;
        for _ in 0..2000 {
            d.write(Extent::new(0, 4)).unwrap();
            if d.ftl().nand().stats().block_erases > 0 {
                saw_barrier = d.last_op_barrier();
                break;
            }
        }
        assert!(saw_barrier, "GC erase must surface as a pipeline barrier");
    }

    #[test]
    fn trim_only_covers_whole_pages() {
        let mut d = ssd();
        d.write(Extent::new(0, 8)).unwrap(); // pages 0 and 1
                                             // Trim sectors 1..7: only page... none fully covered? sectors 1-6.
                                             // Page 0 = sectors 0-3 (not fully covered), page 1 = 4-7 (missing 7).
        d.trim(Extent::new(1, 6)).unwrap();
        assert_eq!(d.ftl().stats().host_trims, 0);
        // Trim sectors 0..8 covers both pages.
        d.trim(Extent::new(0, 8)).unwrap();
        assert_eq!(d.ftl().stats().host_trims, 2);
    }

    #[test]
    fn out_of_range_is_io_error() {
        let mut d = ssd();
        let sectors = d.geometry().sectors;
        assert!(matches!(
            d.read(Extent::new(sectors, 1)),
            Err(IoError::OutOfRange { .. })
        ));
    }

    #[test]
    fn works_with_every_ftl_scheme() {
        fn exercise<F: Ftl>(mut d: SsdDisk<F>) {
            let sectors = d.geometry().sectors;
            d.write(Extent::new(0, 8)).unwrap();
            d.read(Extent::new(0, 8)).unwrap();
            d.write(Extent::new(sectors - 8, 8)).unwrap();
            assert_eq!(d.stats().ops(IoKind::Write), 2);
        }
        exercise(SsdDisk::with_ftl(PageMapFtl::new(FlashParams::tiny(8))));
        exercise(SsdDisk::with_ftl(BlockMapFtl::new(FlashParams::tiny(8))));
        exercise(SsdDisk::with_ftl(FastFtl::new(FlashParams::tiny(12))));
        exercise(SsdDisk::with_ftl(Dftl::new(FlashParams::tiny(16), 64)));
    }

    #[test]
    fn stats_reset_cascades_to_ftl() {
        let mut d = ssd();
        d.write(Extent::new(0, 4)).unwrap();
        d.reset_stats();
        assert_eq!(d.stats().total_ops(), 0);
        assert_eq!(d.ftl().stats().host_writes, 0);
        assert_eq!(d.ftl().nand().stats().page_programs, 0);
    }
}
