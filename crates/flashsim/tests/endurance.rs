//! Long-horizon endurance tests of the FTL schemes: sustained workloads
//! far past device turnover must preserve correctness and reasonable
//! wear behaviour.

use flashsim::{BlockMapFtl, Dftl, FastFtl, FlashParams, Ftl, PageMapFtl};
use simclock::{Rng, Zipf};

fn turnover_writes<F: Ftl>(ftl: &F) -> u64 {
    // Enough host writes to rewrite the logical space ~25 times.
    ftl.logical_pages() * 25
}

fn drive_zipf<F: Ftl>(mut ftl: F, seed: u64) -> F {
    let logical = ftl.logical_pages();
    let zipf = Zipf::new(logical, 1.0);
    let mut rng = Rng::new(seed);
    let n = turnover_writes(&ftl);
    for _ in 0..n {
        let lpn = zipf.sample(&mut rng) - 1;
        ftl.write(lpn).expect("within logical capacity");
    }
    ftl
}

fn check_all_readable<F: Ftl>(ftl: &mut F, written: impl Iterator<Item = u64>) {
    let floor = ftl.params().page_read;
    for lpn in written {
        let t = ftl.read(lpn).expect("in range");
        assert!(t >= floor, "lpn {lpn} unreadable after endurance run");
    }
}

#[test]
fn page_map_survives_25x_turnover() {
    let mut ftl = drive_zipf(PageMapFtl::new(FlashParams::tiny(16)), 1);
    // Hot head pages were certainly written.
    check_all_readable(&mut ftl, 0..8);
    let s = ftl.stats();
    let wa = s.write_amplification(ftl.nand().stats().page_programs);
    assert!((1.0..3.0).contains(&wa), "WA = {wa}");
    let (min, max, mean) = ftl.nand().wear();
    assert!(max > 0);
    assert!(
        (max - min) as f64 <= mean * 4.0 + 4.0,
        "wear spread too wide: {min}..{max} (mean {mean:.1})"
    );
}

#[test]
fn fast_survives_25x_turnover() {
    let mut ftl = drive_zipf(FastFtl::new(FlashParams::tiny(16)), 2);
    check_all_readable(&mut ftl, 0..8);
    assert!(ftl.stats().merges > 0, "merges must have happened");
}

#[test]
fn block_map_survives_25x_turnover() {
    let mut ftl = drive_zipf(BlockMapFtl::new(FlashParams::tiny(16)), 3);
    check_all_readable(&mut ftl, 0..8);
    assert!(ftl.stats().merges > 0);
}

#[test]
fn dftl_survives_25x_turnover() {
    let mut ftl = drive_zipf(Dftl::new(FlashParams::tiny(24), 32), 4);
    check_all_readable(&mut ftl, 0..8);
    let (hits, misses, _) = ftl.cmt_stats();
    assert!(hits + misses > 0);
}

#[test]
fn interleaved_trim_write_storm() {
    // Alternate trims and writes over a shrinking/growing live set; the
    // device must neither leak space nor lose data.
    let mut ftl = PageMapFtl::new(FlashParams::tiny(12));
    let logical = ftl.logical_pages();
    let mut rng = Rng::new(9);
    let mut live = vec![false; logical as usize];
    for round in 0..40 {
        for _ in 0..logical {
            let lpn = rng.next_below(logical);
            if rng.next_bool(0.4) {
                ftl.trim(lpn).expect("in range");
                live[lpn as usize] = false;
            } else {
                ftl.write(lpn).expect("in range");
                live[lpn as usize] = true;
            }
        }
        let expected: u64 = live.iter().filter(|&&l| l).count() as u64;
        assert_eq!(
            ftl.nand().valid_pages(),
            expected,
            "round {round}: live-page accounting drifted"
        );
    }
    for (lpn, &l) in live.iter().enumerate() {
        let t = ftl.read(lpn as u64).expect("in range");
        assert_eq!(t >= ftl.params().page_read, l, "lpn {lpn} mapping wrong");
    }
}

#[test]
fn erase_counts_scale_linearly_with_overwrite_volume() {
    let erases_for = |rounds: u64| {
        let mut ftl = PageMapFtl::new(FlashParams::tiny(16));
        let logical = ftl.logical_pages();
        for _ in 0..rounds {
            for lpn in 0..logical {
                ftl.write(lpn).expect("in range");
            }
        }
        ftl.nand().stats().block_erases
    };
    let e10 = erases_for(10);
    let e20 = erases_for(20);
    let ratio = e20 as f64 / e10.max(1) as f64;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "erases should scale ~linearly: {e10} -> {e20} (ratio {ratio:.2})"
    );
}
