//! A deterministic FxHash-style hasher for the simulator's hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with per-instance
//! random keys — a sound default for servers parsing untrusted input, but
//! pure overhead here: every key hashed on the simulator's hot path is an
//! internal integer id (`TermKey`, `QueryId`, slot ids), so there is no
//! attacker-controlled input to defend against, and SipHash's 64-bit
//! rounds dominate the probe cost of small keys. [`FxHasher`] is the
//! Firefox/rustc multiply-rotate hash: one rotate, one xor and one
//! multiply per word, with a **fixed** (keyless) state.
//!
//! Determinism note: none of the simulated figures depends on map
//! iteration order (runs are bit-identical under SipHash's per-instance
//! random keys, which already proves order independence; the few
//! order-sensitive consumers such as log analysis sort with explicit
//! tie-breaks). Swapping the hasher therefore changes wall-clock time
//! only, never a simulated quantity — `perf_regress` re-asserts the
//! committed figures after the swap.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// rustc-fx's 64-bit mixing constant (a truncation of π's digits, chosen
/// empirically by the Firefox authors for avalanche on short inputs).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation distance applied before each word is folded in.
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: keyless, deterministic across processes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    /// Byte-slice fallback: fold 8-byte words, then the zero-padded tail.
    /// Integer keys never reach this — they take the `write_uN` fast
    /// paths below — but `#[derive(Hash)]` keys with embedded slices do.
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        // Fold the length so "ab" + "c" and "a" + "bc" differ.
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `BuildHasher` producing [`FxHasher`]s; zero-sized and `Default`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash one value with the fixed Fx state — the sketch crates use this
/// for row hashing where a full `BuildHasher` plumb-through is noise.
pub fn hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_across_instances() {
        // The whole point of the swap: no per-instance random keys.
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        let a: FxHashMap<u32, u32> = [(1, 10), (2, 20), (3, 30)].into_iter().collect();
        let b: FxHashMap<u32, u32> = [(3, 30), (1, 10), (2, 20)].into_iter().collect();
        assert_eq!(a, b);
        let ka: Vec<u32> = a.keys().copied().collect();
        let kb: Vec<u32> = {
            let c: FxHashMap<u32, u32> = [(1, 10), (2, 20), (3, 30)].into_iter().collect();
            c.keys().copied().collect()
        };
        assert_eq!(ka, kb, "identical insertion order gives identical layout");
    }

    #[test]
    fn distinct_keys_hash_apart() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            assert!(seen.insert(hash_one(&k)), "collision at {k}");
        }
    }

    #[test]
    fn tail_and_length_disambiguate_slices() {
        assert_ne!(hash_one(&[1u8, 2, 3][..]), hash_one(&[1u8, 2][..]));
        assert_ne!(hash_one(&[1u8, 0][..]), hash_one(&[1u8][..]));
        assert_ne!(hash_one(&"ab"), hash_one(&"ba"));
    }

    #[test]
    fn map_and_set_aliases_behave() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        m.insert((7, 9), 1);
        assert_eq!(m.get(&(7, 9)), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
    }
}
