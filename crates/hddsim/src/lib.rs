//! Mechanical hard-disk drive timing model.
//!
//! The paper's backing store is a WDC WD3200AAJS (7200 RPM, 320 GB). Its
//! role in every experiment is to be *slow at random reads and decent at
//! sequential ones* — so the model concentrates on exactly the three
//! components that produce that behaviour:
//!
//! * a **seek curve**: track-to-track minimum, square-root ramp over short
//!   distances, linear tail to the full-stroke maximum (the classic
//!   Ruemmler–Wilkes shape);
//! * **rotational latency**: half a revolution on average after any seek;
//! * **media transfer** proportional to the request size, plus a fixed
//!   controller overhead per command.
//!
//! A small **read-ahead cache** models the drive's track buffer: after any
//! read the drive is assumed to have buffered the following
//! [`HddParams::readahead_sectors`] sectors, so a short forward sequential
//! read is served at buffer speed with no mechanical cost. Sequential
//! *appends* at the head position likewise skip the seek.

#![forbid(unsafe_code)]

pub mod model;
pub mod params;

pub use model::HddDisk;
pub use params::HddParams;
